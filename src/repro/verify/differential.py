"""Differential verification: the same workload down every execution path.

The pipeline makes three strong determinism promises and one quality
promise, and this module checks all of them on a seeded, block-structured
synthetic workload (the shape of the paper's Section-5.3 comparison):

1. **serial vs process-pool** — ``DASC.fit`` with ``n_jobs=1`` and with a
   :class:`~repro.mapreduce.executor.ParallelExecutor` must produce
   bit-identical labels, buckets, and allocations;
2. **serial vs process-pool, distributed** — the full
   :class:`~repro.dasc_mr.driver.DistributedDASC` job flow on either
   backend must produce bit-identical labels *and counters*;
3. **crash-resumed vs uninterrupted** — a flow killed between steps and
   :meth:`~repro.dasc_mr.driver.DistributedDASC.resume`-d must match the
   uninterrupted run bit-for-bit (labels, counters, makespan);
4. **local vs distributed** — ``DASC.fit`` and the MapReduce path must
   agree as partitions (identical up to relabelling; gated on NMI);
5. **DASC vs exact SC** — the Section-5.3 quality claim: on
   block-structured data, DASC's ASE stays within a tolerance of exact
   spectral clustering's and NMI against ground truth stays high;
6. **corrupt-checkpoint resume vs uninterrupted** — a flow crashed
   mid-run whose last checkpoint is then bit-flipped at rest must, on
   resume, quarantine the damaged object (``<key>.corrupt``),
   re-execute that step, and still match the uninterrupted run
   bit-for-bit (labels and counters);
7. **batched vs record data plane** — the vectorized columnar path and
   the record-at-a-time reference path must produce bit-identical
   labels, counters, and simulated makespans (only real wall-clock may
   differ);
8. **serving assign vs fit** — the exported :class:`~repro.serving.DASCModel`
   must route every training point by exact signature and reproduce the
   fit labels bit-identically (the serving plane's self-consistency
   contract).

Every run executes with the invariant layer on (``validate=True``), so a
passing report also certifies the stage-boundary contracts of
:mod:`repro.verify.invariants`. The ``repro verify`` CLI subcommand wraps
:func:`run_differential_suite` and renders the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CheckResult",
    "VerificationReport",
    "partitions_equal",
    "render_verification_report",
    "run_differential_suite",
]


@dataclass
class CheckResult:
    """Outcome of one differential check."""

    name: str
    passed: bool
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "details": self.details}


@dataclass
class VerificationReport:
    """All differential checks for one seeded workload."""

    workload: dict
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(c.passed for c in self.checks)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
        }


def partitions_equal(a, b) -> bool:
    """Whether two labelings induce the same partition (bijective relabelling)."""
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        return False
    forward: dict = {}
    backward: dict = {}
    for x, y in zip(a.tolist(), b.tolist()):
        if forward.setdefault(x, y) != y or backward.setdefault(y, x) != x:
            return False
    return True


def _counters_equal(a: dict, b: dict) -> bool:
    return a == b


def _run_check(report: VerificationReport, name: str, fn) -> None:
    """Run one check body, converting any exception into a failed check."""
    try:
        passed, details = fn()
    except Exception as exc:  # a crashed path is a failed check, not a crashed harness
        passed, details = False, {"error": f"{type(exc).__name__}: {exc}"}
    report.checks.append(CheckResult(name=name, passed=bool(passed), details=details))


def run_differential_suite(
    *,
    n_samples: int = 400,
    n_clusters: int = 4,
    n_features: int = 16,
    cluster_std: float = 0.03,
    seed: int = 0,
    n_jobs: int = 2,
    n_nodes: int = 4,
    nmi_min: float = 0.95,
    acc_min: float = 0.95,
    ase_rel_tol: float = 0.05,
    validate: bool = True,
) -> VerificationReport:
    """Run the full differential matrix on one seeded synthetic workload.

    Parameters mirror the workload knobs (block-structured blobs, the
    Section-5.3 shape) and the tolerance gates. ``validate=True`` (default)
    runs every path with stage-boundary invariant checks armed.
    """
    from repro.core.config import DASCConfig
    from repro.core.dasc import DASC
    from repro.data.synthetic import make_blobs
    from repro.dasc_mr.driver import DistributedDASC
    from repro.mapreduce.emr import ElasticMapReduce
    from repro.mapreduce.executor import ParallelExecutor, SerialExecutor
    from repro.metrics.accuracy import clustering_accuracy
    from repro.metrics.ase import average_squared_error
    from repro.metrics.nmi import normalized_mutual_info
    from repro.spectral.cluster import SpectralClustering

    X, y = make_blobs(
        n_samples=n_samples,
        n_clusters=n_clusters,
        n_features=n_features,
        cluster_std=cluster_std,
        seed=seed,
    )
    report = VerificationReport(
        workload={
            "n_samples": int(n_samples),
            "n_clusters": int(n_clusters),
            "n_features": int(n_features),
            "cluster_std": float(cluster_std),
            "seed": int(seed),
            "n_jobs": int(n_jobs),
            "n_nodes": int(n_nodes),
            "validate": bool(validate),
        },
    )

    def config(**overrides) -> DASCConfig:
        return DASCConfig(n_clusters=n_clusters, seed=seed, validate=validate, **overrides)

    # -- 1. serial vs process-pool DASC.fit ---------------------------------
    serial_model = DASC(config=config(n_jobs=1))
    serial_labels = serial_model.fit_predict(X)

    def check_serial_vs_parallel():
        parallel_model = DASC(config=config(n_jobs=max(2, n_jobs)))
        parallel_labels = parallel_model.fit_predict(X)
        same_labels = bool(np.array_equal(serial_labels, parallel_labels))
        same_buckets = bool(
            np.array_equal(serial_model.buckets_.assignments, parallel_model.buckets_.assignments)
            and np.array_equal(serial_model.buckets_.signatures, parallel_model.buckets_.signatures)
        )
        same_allocation = bool(
            np.array_equal(serial_model.cluster_allocation_, parallel_model.cluster_allocation_)
        )
        return same_labels and same_buckets and same_allocation, {
            "labels_identical": same_labels,
            "buckets_identical": same_buckets,
            "allocation_identical": same_allocation,
            "n_jobs": max(2, n_jobs),
        }

    _run_check(report, "dasc.serial_vs_parallel", check_serial_vs_parallel)

    # -- 2. serial vs process-pool DistributedDASC --------------------------
    def distributed(executor, emr=None, **kwargs):
        service = emr if emr is not None else ElasticMapReduce(executor=executor)
        return DistributedDASC(
            n_nodes=n_nodes, config=config(), emr=service, **kwargs
        )

    serial_dist = distributed(SerialExecutor()).run(X)

    def check_distributed_serial_vs_parallel():
        parallel_dist = distributed(ParallelExecutor(max(2, n_jobs))).run(X)
        same_labels = bool(np.array_equal(serial_dist.labels, parallel_dist.labels))
        same_counters = _counters_equal(serial_dist.counters, parallel_dist.counters)
        same_makespan = serial_dist.makespan == parallel_dist.makespan
        return same_labels and same_counters and same_makespan, {
            "labels_identical": same_labels,
            "counters_identical": same_counters,
            "makespan_identical": same_makespan,
        }

    _run_check(report, "distributed.serial_vs_parallel", check_distributed_serial_vs_parallel)

    # -- 3. crash-resumed vs uninterrupted ----------------------------------
    def check_resumed_vs_uninterrupted():
        emr = ElasticMapReduce(executor=SerialExecutor())
        dasc = distributed(None, emr=emr)
        flow_id = dasc.submit(X)
        emr.run_job_flow(flow_id, max_steps=1)  # "driver crash" after stage 1
        resumed = dasc.resume(flow_id)
        same_labels = bool(np.array_equal(serial_dist.labels, resumed.labels))
        same_counters = _counters_equal(serial_dist.counters, resumed.counters)
        return same_labels and same_counters and bool(resumed.resumed_steps), {
            "labels_identical": same_labels,
            "counters_identical": same_counters,
            "resumed_steps": list(resumed.resumed_steps),
        }

    _run_check(report, "distributed.resumed_vs_uninterrupted", check_resumed_vs_uninterrupted)

    # -- 4. local DASC.fit vs MapReduce DistributedDASC ---------------------
    def check_local_vs_distributed():
        identical = partitions_equal(serial_labels, serial_dist.labels)
        nmi = float(normalized_mutual_info(serial_labels, serial_dist.labels))
        return nmi >= nmi_min, {
            "partitions_identical": bool(identical),
            "nmi": nmi,
            "nmi_min": nmi_min,
        }

    _run_check(report, "dasc.local_vs_distributed", check_local_vs_distributed)

    # -- 5. DASC vs exact spectral clustering (Section 5.3) ------------------
    def check_vs_exact_sc():
        sigma = serial_model.sigma_ or 1.0
        exact = SpectralClustering(n_clusters, sigma=sigma, seed=seed).fit_predict(X)
        ase_dasc = float(average_squared_error(X, serial_labels))
        ase_exact = float(average_squared_error(X, exact))
        nmi_truth = float(normalized_mutual_info(y, serial_labels))
        acc_truth = float(clustering_accuracy(y, serial_labels))
        ase_gate = ase_dasc <= ase_exact * (1.0 + ase_rel_tol) + 1e-12
        return ase_gate and nmi_truth >= nmi_min and acc_truth >= acc_min, {
            "ase_dasc": ase_dasc,
            "ase_exact_sc": ase_exact,
            "ase_rel_tol": ase_rel_tol,
            "nmi_vs_truth": nmi_truth,
            "accuracy_vs_truth": acc_truth,
            "nmi_min": nmi_min,
            "accuracy_min": acc_min,
        }

    _run_check(report, "quality.dasc_vs_exact_sc", check_vs_exact_sc)

    # -- 6. corrupt-checkpoint resume vs uninterrupted -----------------------
    def check_corrupt_checkpoint_resume():
        emr = ElasticMapReduce(executor=SerialExecutor())
        dasc = distributed(None, emr=emr)
        flow_id = dasc.submit(X)
        emr.run_job_flow(flow_id, max_steps=2)  # "driver crash" after stage 2
        # Bit-flip the last checkpoint at rest, bypassing the hardened client.
        key = f"{flow_id}/checkpoints/step-000"
        damaged = bytearray(emr.s3.get(key))
        damaged[len(damaged) // 2] ^= 0xFF
        emr.s3.put(key, bytes(damaged))
        resumed = dasc.resume(flow_id)
        quarantined = emr.s3.exists(key + ".corrupt")
        same_labels = bool(np.array_equal(serial_dist.labels, resumed.labels))
        same_counters = _counters_equal(serial_dist.counters, resumed.counters)
        reexecuted = 0 not in resumed.resumed_steps
        return same_labels and same_counters and quarantined and reexecuted, {
            "labels_identical": same_labels,
            "counters_identical": same_counters,
            "quarantined": bool(quarantined),
            "step0_reexecuted": bool(reexecuted),
            "resumed_steps": list(resumed.resumed_steps),
        }

    _run_check(report, "storage.corrupt_checkpoint_resume", check_corrupt_checkpoint_resume)

    # -- 7. batched vs record data plane -------------------------------------
    def check_batched_vs_record():
        # serial_dist ran on the session default (batched unless disabled);
        # pin both planes explicitly so the check is meaningful either way.
        batched = distributed(SerialExecutor(), data_plane="batched").run(X)
        record = distributed(SerialExecutor(), data_plane="record").run(X)
        same_labels = bool(np.array_equal(batched.labels, record.labels))
        same_counters = _counters_equal(batched.counters, record.counters)
        same_makespan = batched.makespan == record.makespan
        same_stage_makespans = batched.stage_makespans == record.stage_makespans
        return same_labels and same_counters and same_makespan and same_stage_makespans, {
            "labels_identical": same_labels,
            "counters_identical": same_counters,
            "makespan_identical": same_makespan,
            "stage_makespans_identical": same_stage_makespans,
        }

    _run_check(report, "data_plane.batched_vs_record", check_batched_vs_record)

    # -- 8. serving assign vs fit --------------------------------------------
    def check_serving_assign_vs_fit():
        model = serial_model.export_model(X)
        assigned, details = model.assign(X, return_details=True)
        all_exact = bool((details["methods"] == 0).all())
        same_labels = bool(np.array_equal(assigned, serial_labels))
        # Round-trip the artifact through the checksummed envelope plane so
        # the served bytes, not just the in-memory object, carry the contract.
        from repro.mapreduce.storage import S3Store
        from repro.serving.model import DASCModel

        store = S3Store()
        model.save(store, "models/differential")
        reloaded = DASCModel.load(store, "models/differential")
        same_after_reload = bool(np.array_equal(reloaded.assign(X), serial_labels))
        return all_exact and same_labels and same_after_reload, {
            "all_routes_exact": all_exact,
            "labels_identical": same_labels,
            "labels_identical_after_reload": same_after_reload,
            "n_buckets": model.n_buckets,
        }

    _run_check(report, "serving.assign_vs_fit", check_serving_assign_vs_fit)

    return report


def render_verification_report(report: VerificationReport) -> str:
    """Human-readable report (what ``repro verify`` prints)."""
    w = report.workload
    lines = [
        "differential verification "
        f"(n={w.get('n_samples')}, k={w.get('n_clusters')}, d={w.get('n_features')}, "
        f"seed={w.get('seed')}, validate={'on' if w.get('validate') else 'off'})",
        "",
    ]
    for check in report.checks:
        status = "PASS" if check.passed else "FAIL"
        detail = ", ".join(
            f"{key}={_fmt(value)}" for key, value in sorted(check.details.items())
        )
        lines.append(f"  {status}  {check.name}" + (f"  [{detail}]" if detail else ""))
    lines.append("")
    lines.append(
        f"{sum(c.passed for c in report.checks)}/{len(report.checks)} checks passed"
        + ("" if report.passed else "  — VERIFICATION FAILED")
    )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
