"""Runtime verification: pipeline invariants and differential testing.

The paper's claim is *quality preservation* — the LSH-approximated,
block-diagonal kernel clusters as well as exact spectral clustering
(Section 5.3). This package turns that claim, and the internal contracts
the pipeline rests on, into machine-checked assertions:

* :mod:`~repro.verify.invariants` — an opt-in validation layer
  (``REPRO_VALIDATE=1`` or ``DASCConfig(validate=True)``) that checks
  structural invariants at every stage boundary — bucket partitions,
  Gram-block symmetry and range, Laplacian spectra, embedding row norms,
  counter conservation — raising a structured
  :class:`~repro.verify.invariants.InvariantViolation` instead of letting
  a corrupted intermediate flow silently downstream;
* :mod:`~repro.verify.differential` — the ``repro verify`` harness: the
  same seeded workload through serial vs process-pool execution, the
  in-process :class:`~repro.core.dasc.DASC` vs the MapReduce
  :class:`~repro.dasc_mr.driver.DistributedDASC`, and crash-resumed vs
  uninterrupted job flows, asserting bit-identical labels and counters;
  plus DASC vs exact spectral clustering under ASE/NMI tolerance gates
  (the Section-5.3 quality claim on block-structured synthetic data).
"""

from repro.verify.differential import (
    CheckResult,
    VerificationReport,
    partitions_equal,
    render_verification_report,
    run_differential_suite,
)
from repro.verify.invariants import (
    VALIDATE_ENV,
    InvariantViolation,
    check_buckets,
    check_counter_equals,
    check_eigenvalues,
    check_embedding,
    check_gram_block,
    check_labels_range,
    validation_enabled,
)

__all__ = [
    "VALIDATE_ENV",
    "CheckResult",
    "InvariantViolation",
    "VerificationReport",
    "check_buckets",
    "check_counter_equals",
    "check_eigenvalues",
    "check_embedding",
    "check_gram_block",
    "check_labels_range",
    "partitions_equal",
    "render_verification_report",
    "run_differential_suite",
    "validation_enabled",
]
