"""Stage-boundary invariant checks for the DASC pipeline.

Every check is a plain function that either returns ``None`` or raises
:class:`InvariantViolation` (after emitting an ``invariant.violation``
trace event, so a recorded trace shows *where* a run went wrong, not just
that it did). The checks are wired into the pipeline behind
:func:`validation_enabled` — off by default, switched on globally with
``REPRO_VALIDATE=1`` or per-estimator with ``DASCConfig(validate=True)`` —
so production runs pay nothing and verification runs fail loudly at the
first corrupted intermediate instead of producing garbage labels.

Invariants checked (see DESIGN.md §10 for the full matrix):

* ``buckets.*`` — a :class:`~repro.core.buckets.Buckets` is a true
  partition: assignment ids dense in ``[0, B)``, sizes summing to ``n``,
  one representative signature per bucket that actually belongs to one of
  its members.
* ``gram.*`` — per-bucket Gram blocks are square, finite, symmetric, obey
  the Algorithm-2 diagonal convention, and (for unit-range kernels such as
  the Gaussian of Eq. 1) take values in ``[0, 1]``.
* ``spectral.*`` — normalized-Laplacian eigenvalues lie in ``[-1, 1]``
  (Eq. 2's spectrum bound) and NJW embedding rows are unit-norm (or
  exactly zero for isolated vertices).
* ``labels.*`` — final labels are complete (no ``-1`` placeholders) and
  within the advertised cluster range.
* ``counters.*`` — Hadoop-style counters are conserved: retries, merges,
  and parallel execution must not inflate record tallies.
"""

from __future__ import annotations

import os

import numpy as np

from repro.observability import get_tracer

__all__ = [
    "VALIDATE_ENV",
    "InvariantViolation",
    "validation_enabled",
    "check_buckets",
    "check_counter_equals",
    "check_eigenvalues",
    "check_embedding",
    "check_gram_block",
    "check_labels_range",
]

#: Environment variable switching the validation layer on globally.
VALIDATE_ENV = "REPRO_VALIDATE"

_TRUTHY = ("1", "true", "yes", "on")


def validation_enabled(explicit: bool | None = None) -> bool:
    """Resolve whether invariant checking is active.

    An explicit ``True``/``False`` (e.g. ``DASCConfig.validate``) wins;
    ``None`` defers to the ``REPRO_VALIDATE`` environment variable.
    """
    if explicit is not None:
        return bool(explicit)
    return os.environ.get(VALIDATE_ENV, "").strip().lower() in _TRUTHY


class InvariantViolation(RuntimeError):
    """A pipeline invariant failed at a stage boundary.

    Attributes
    ----------
    invariant:
        Dotted invariant name, e.g. ``"gram.symmetric"``.
    stage:
        Pipeline stage whose boundary was being checked, e.g.
        ``"dasc.kernel"``.
    details:
        Structured context (offending values, indices, expected vs actual).
    """

    def __init__(self, invariant: str, message: str, *, stage: str = "", **details):
        self.invariant = invariant
        self.stage = stage
        self.details = details
        where = f" [{stage}]" if stage else ""
        super().__init__(f"invariant {invariant}{where}: {message}")

    def to_dict(self) -> dict:
        """JSON-friendly form (what the trace event carries)."""
        return {
            "invariant": self.invariant,
            "stage": self.stage,
            "message": str(self),
            "details": {k: _jsonable(v) for k, v in self.details.items()},
        }


def _jsonable(value):
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def _fail(invariant: str, message: str, *, stage: str, **details):
    """Emit the violation trace event, then raise."""
    err = InvariantViolation(invariant, message, stage=stage, **details)
    get_tracer().event("invariant.violation", **err.to_dict())
    raise err


# -- bucket partition ---------------------------------------------------------


def check_buckets(buckets, n_points: int, *, point_signatures=None, stage: str = "dasc.bucket"):
    """Assert ``buckets`` is a true partition of ``n_points`` points.

    ``point_signatures`` (the per-point packed signatures the partition was
    built from) additionally verifies that every bucket's representative
    signature belongs to at least one of its members — which holds by
    construction through :func:`~repro.core.buckets.group_by_signature`,
    :func:`~repro.core.buckets.merge_buckets` (the leader keeps its own
    signature) and :func:`~repro.core.buckets.fold_small_buckets` (fold
    targets keep theirs).
    """
    assignments = np.asarray(buckets.assignments)
    n_buckets = buckets.n_buckets
    if assignments.ndim != 1 or assignments.shape[0] != n_points:
        _fail(
            "buckets.assignment_shape",
            f"assignments shape {assignments.shape} does not cover {n_points} points",
            stage=stage, shape=list(assignments.shape), n_points=n_points,
        )
    if n_points > 0 and n_buckets < 1:
        _fail("buckets.empty", "no buckets for a non-empty dataset", stage=stage)
    if n_points > 0:
        lo, hi = int(assignments.min()), int(assignments.max())
        if lo < 0 or hi >= n_buckets:
            _fail(
                "buckets.id_range",
                f"assignment ids span [{lo}, {hi}], expected [0, {n_buckets})",
                stage=stage, min_id=lo, max_id=hi, n_buckets=n_buckets,
            )
    sizes = np.bincount(assignments, minlength=n_buckets)
    empty = np.flatnonzero(sizes == 0)
    if empty.size:
        _fail(
            "buckets.dense",
            f"{empty.size} bucket id(s) have no members (first: {empty[:8].tolist()})",
            stage=stage, empty_ids=empty[:32], n_buckets=n_buckets,
        )
    if int(sizes.sum()) != n_points:
        _fail(
            "buckets.size_conservation",
            f"bucket sizes sum to {int(sizes.sum())}, expected {n_points}",
            stage=stage, total=int(sizes.sum()), n_points=n_points,
        )
    if buckets.signatures.shape[0] != n_buckets:
        _fail(
            "buckets.signature_count",
            f"{buckets.signatures.shape[0]} representative signatures for {n_buckets} buckets",
            stage=stage,
        )
    if point_signatures is not None:
        point_signatures = np.asarray(point_signatures, dtype=np.uint64)
        if point_signatures.shape[0] != n_points:
            _fail(
                "buckets.point_signature_shape",
                f"{point_signatures.shape[0]} point signatures for {n_points} points",
                stage=stage,
            )
        hits = point_signatures == buckets.signatures[assignments]
        represented = np.bincount(assignments[hits], minlength=n_buckets) > 0
        orphan = np.flatnonzero(~represented)
        if orphan.size:
            _fail(
                "buckets.representative",
                f"{orphan.size} bucket(s) whose representative signature matches no member "
                f"(first ids: {orphan[:8].tolist()})",
                stage=stage, bucket_ids=orphan[:32],
            )


# -- Gram blocks --------------------------------------------------------------


def check_gram_block(
    block,
    *,
    zero_diagonal: bool = True,
    unit_range: bool = True,
    stage: str = "dasc.kernel",
    bucket_id=None,
    atol: float = 1e-5,
):
    """Assert a per-bucket Gram block obeys the Algorithm-2 contract.

    Square, finite, symmetric (within ``atol``; blocks are stored in single
    precision), diagonal all-zero (``zero_diagonal``, the paper's
    convention) or all-one, and — for unit-range kernels like Eq. 1's
    Gaussian — every entry in ``[0, 1]``.
    """
    block = np.asarray(block)
    ctx = {"bucket_id": bucket_id} if bucket_id is not None else {}
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        _fail("gram.square", f"block has shape {block.shape}", stage=stage,
              shape=list(block.shape), **ctx)
    if not np.all(np.isfinite(block)):
        bad = int((~np.isfinite(block)).sum())
        _fail("gram.finite", f"block contains {bad} non-finite entries", stage=stage,
              n_nonfinite=bad, **ctx)
    asym = float(np.abs(block - block.T).max()) if block.size else 0.0
    if asym > atol:
        _fail("gram.symmetric", f"max |K - K^T| = {asym:.3g} exceeds {atol:.3g}",
              stage=stage, max_asymmetry=asym, **ctx)
    diag = np.diagonal(block)
    target = 0.0 if zero_diagonal else 1.0
    if diag.size and float(np.abs(diag - target).max()) > atol:
        _fail(
            "gram.diagonal",
            f"diagonal deviates from {target} by {float(np.abs(diag - target).max()):.3g}",
            stage=stage, expected=target, max_deviation=float(np.abs(diag - target).max()), **ctx,
        )
    if unit_range and block.size:
        lo, hi = float(block.min()), float(block.max())
        if lo < -atol or hi > 1.0 + atol:
            _fail("gram.unit_range", f"entries span [{lo:.3g}, {hi:.3g}], expected [0, 1]",
                  stage=stage, min=lo, max=hi, **ctx)


# -- spectral stage -----------------------------------------------------------


def check_eigenvalues(values, *, stage: str = "dasc.spectral", atol: float = 1e-6):
    """Assert normalized-Laplacian eigenvalues lie in ``[-1, 1]`` (Eq. 2)."""
    values = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(values)):
        _fail("spectral.eigenvalues_finite", "non-finite eigenvalues", stage=stage,
              values=values[:16])
    if values.size:
        lo, hi = float(values.min()), float(values.max())
        if lo < -1.0 - atol or hi > 1.0 + atol:
            _fail(
                "spectral.eigenvalue_range",
                f"eigenvalues span [{lo:.6g}, {hi:.6g}], expected [-1, 1]",
                stage=stage, min=lo, max=hi,
            )


def check_embedding(Y, *, stage: str = "dasc.spectral", atol: float = 1e-6):
    """Assert NJW embedding rows are unit-norm (zero rows allowed: isolated vertices)."""
    Y = np.asarray(Y, dtype=np.float64)
    if Y.ndim != 2:
        _fail("spectral.embedding_shape", f"embedding has shape {Y.shape}", stage=stage,
              shape=list(Y.shape))
    if not np.all(np.isfinite(Y)):
        _fail("spectral.embedding_finite", "embedding contains non-finite entries", stage=stage)
    norms = np.linalg.norm(Y, axis=1)
    bad = np.flatnonzero((np.abs(norms - 1.0) > atol) & (norms > atol))
    if bad.size:
        _fail(
            "spectral.embedding_row_norm",
            f"{bad.size} embedding row(s) are neither unit-norm nor zero "
            f"(first norms: {np.round(norms[bad[:4]], 6).tolist()})",
            stage=stage, rows=bad[:32], norms=norms[bad[:8]],
        )


# -- labels -------------------------------------------------------------------


def check_labels_range(labels, n_clusters: int | None = None, *, stage: str = "dasc.labels"):
    """Assert labels are complete (no ``-1``) and within ``[0, n_clusters)``."""
    labels = np.asarray(labels)
    unassigned = np.flatnonzero(labels < 0)
    if unassigned.size:
        _fail(
            "labels.complete",
            f"{unassigned.size} point(s) never received a label "
            f"(first indices: {unassigned[:8].tolist()})",
            stage=stage, indices=unassigned[:32],
        )
    if n_clusters is not None and labels.size and int(labels.max()) >= n_clusters:
        _fail(
            "labels.range",
            f"label {int(labels.max())} outside [0, {n_clusters})",
            stage=stage, max_label=int(labels.max()), n_clusters=n_clusters,
        )


# -- counters -----------------------------------------------------------------


def check_counter_equals(counters, group: str, name: str, expected: int, *, stage: str):
    """Assert a counter holds exactly ``expected`` (conservation across retries/merges)."""
    actual = counters.value(group, name)
    if actual != expected:
        _fail(
            "counters.conservation",
            f"counter {group}:{name} = {actual}, expected {expected}",
            stage=stage, group=group, name=name, actual=actual, expected=expected,
        )
