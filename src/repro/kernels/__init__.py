"""Kernel functions and Gram-matrix computation substrate.

The DASC approximation is kernel-agnostic (Section 3.1): any positive
semi-definite kernel can be plugged into the per-bucket similarity step.
The paper's experiments use the Gaussian (RBF) kernel of Eq. (1).
"""

from repro.kernels.functions import (
    Kernel,
    GaussianKernel,
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
    CosineKernel,
    get_kernel,
)
from repro.kernels.matrix import (
    BLOCKED_THRESHOLD,
    pairwise_sq_distances,
    gram_matrix,
    gram_matrix_blocked,
    gram_matrix_auto,
)
from repro.kernels.bandwidth import median_heuristic, mean_knn_heuristic

__all__ = [
    "Kernel",
    "GaussianKernel",
    "LaplacianKernel",
    "LinearKernel",
    "PolynomialKernel",
    "CosineKernel",
    "get_kernel",
    "pairwise_sq_distances",
    "gram_matrix",
    "gram_matrix_blocked",
    "gram_matrix_auto",
    "BLOCKED_THRESHOLD",
    "median_heuristic",
    "mean_knn_heuristic",
]
