"""Full Gram-matrix computation (the O(N^2) baseline DASC avoids).

These routines are the exact-SC substrate: they compute every pairwise
similarity. ``gram_matrix_blocked`` streams the computation in row panels so
the working set stays cache-friendly and the N x N result is the only large
allocation — the idiom the HPC guides recommend over naive double loops.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.functions import Kernel
from repro.utils.validation import check_2d

__all__ = [
    "pairwise_sq_distances",
    "gram_matrix",
    "gram_matrix_blocked",
    "gram_matrix_auto",
    "BLOCKED_THRESHOLD",
]

#: Above this many rows, ``gram_matrix_auto`` switches to the blocked path.
BLOCKED_THRESHOLD = 2048


def pairwise_sq_distances(X, Y=None) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of X and Y (or X, X)."""
    X = check_2d(X)
    Y = X if Y is None else check_2d(Y)
    x2 = np.einsum("ij,ij->i", X, X)[:, None]
    y2 = np.einsum("ij,ij->i", Y, Y)[None, :]
    d2 = x2 + y2 - 2.0 * (X @ Y.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def gram_matrix(X, kernel: Kernel, *, zero_diagonal: bool = False) -> np.ndarray:
    """Dense kernel matrix ``K[i, j] = k(x_i, x_j)``.

    ``zero_diagonal=True`` reproduces the paper's Algorithm 2, which writes 0
    on the diagonal of each sub-similarity matrix (the NJW spectral
    clustering convention of a zero-self-affinity graph).
    """
    X = check_2d(X)
    K = kernel(X)
    if zero_diagonal:
        np.fill_diagonal(K, 0.0)
    return K


def gram_matrix_auto(
    X,
    kernel: Kernel,
    *,
    zero_diagonal: bool = False,
    threshold: int = BLOCKED_THRESHOLD,
    block_size: int = 1024,
) -> np.ndarray:
    """Gram matrix via the unblocked or blocked path, picked by size.

    Small inputs take :func:`gram_matrix` (one kernel call, no panel
    bookkeeping); inputs above ``threshold`` rows take
    :func:`gram_matrix_blocked` to bound the temporary working set.

    Every Gram consumer in the pipeline (the in-core kernel builder, both
    Stage-2 reducers, the parallel per-bucket workers) routes through this
    one helper so that any pair of runs being compared for bit-identity
    crosses the blocked/unblocked boundary at the same input sizes. (BLAS
    matrix products are not bitwise-reproducible across different problem
    partitionings, so blocked and unblocked results can differ by a few ULP
    beyond one panel — equal code paths, not equal tolerances, is what makes
    serial-vs-parallel comparisons exact.)
    """
    X = check_2d(X)
    if X.shape[0] > threshold:
        return gram_matrix_blocked(X, kernel, block_size=block_size, zero_diagonal=zero_diagonal)
    return gram_matrix(X, kernel, zero_diagonal=zero_diagonal)


def gram_matrix_blocked(
    X, kernel: Kernel, *, block_size: int = 1024, zero_diagonal: bool = False
) -> np.ndarray:
    """Dense kernel matrix computed in row panels of ``block_size``.

    Equivalent to :func:`gram_matrix` but bounds the temporary working set,
    exploiting symmetry by computing only the upper-triangular panels and
    mirroring them.
    """
    X = check_2d(X)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n = X.shape[0]
    K = np.empty((n, n), dtype=np.float64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        panel = kernel(X[start:stop], X[start:])  # upper-tri panel from the diagonal right
        K[start:stop, start:] = panel
        K[start:, start:stop] = panel.T
    if zero_diagonal:
        np.fill_diagonal(K, 0.0)
    return K
