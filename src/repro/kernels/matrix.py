"""Full Gram-matrix computation (the O(N^2) baseline DASC avoids).

These routines are the exact-SC substrate: they compute every pairwise
similarity. ``gram_matrix_blocked`` streams the computation in row panels so
the working set stays cache-friendly and the N x N result is the only large
allocation — the idiom the HPC guides recommend over naive double loops.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.functions import Kernel
from repro.utils.validation import check_2d

__all__ = ["pairwise_sq_distances", "gram_matrix", "gram_matrix_blocked"]


def pairwise_sq_distances(X, Y=None) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of X and Y (or X, X)."""
    X = check_2d(X)
    Y = X if Y is None else check_2d(Y)
    x2 = np.einsum("ij,ij->i", X, X)[:, None]
    y2 = np.einsum("ij,ij->i", Y, Y)[None, :]
    d2 = x2 + y2 - 2.0 * (X @ Y.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def gram_matrix(X, kernel: Kernel, *, zero_diagonal: bool = False) -> np.ndarray:
    """Dense kernel matrix ``K[i, j] = k(x_i, x_j)``.

    ``zero_diagonal=True`` reproduces the paper's Algorithm 2, which writes 0
    on the diagonal of each sub-similarity matrix (the NJW spectral
    clustering convention of a zero-self-affinity graph).
    """
    X = check_2d(X)
    K = kernel(X)
    if zero_diagonal:
        np.fill_diagonal(K, 0.0)
    return K


def gram_matrix_blocked(
    X, kernel: Kernel, *, block_size: int = 1024, zero_diagonal: bool = False
) -> np.ndarray:
    """Dense kernel matrix computed in row panels of ``block_size``.

    Equivalent to :func:`gram_matrix` but bounds the temporary working set,
    exploiting symmetry by computing only the upper-triangular panels and
    mirroring them.
    """
    X = check_2d(X)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    n = X.shape[0]
    K = np.empty((n, n), dtype=np.float64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        panel = kernel(X[start:stop], X[start:])  # upper-tri panel from the diagonal right
        K[start:stop, start:] = panel
        K[start:, start:stop] = panel.T
    if zero_diagonal:
        np.fill_diagonal(K, 0.0)
    return K
