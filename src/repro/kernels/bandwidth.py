"""Kernel-bandwidth (sigma) selection heuristics.

The paper treats sigma as a given; in practice every experiment needs one.
Both rules here are standard, deterministic given a seed, and O(sample^2)
on a subsample rather than O(N^2).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.matrix import pairwise_sq_distances
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = ["median_heuristic", "mean_knn_heuristic"]


def _subsample(X: np.ndarray, max_samples: int, seed) -> np.ndarray:
    if X.shape[0] <= max_samples:
        return X
    idx = as_rng(seed).choice(X.shape[0], size=max_samples, replace=False)
    return X[idx]


def median_heuristic(X, *, max_samples: int = 512, seed=0) -> float:
    """sigma = median pairwise Euclidean distance (on a subsample).

    Falls back to 1.0 for degenerate data whose median distance is zero.
    """
    X = check_2d(X)
    sample = _subsample(X, max_samples, seed)
    d2 = pairwise_sq_distances(sample)
    upper = d2[np.triu_indices_from(d2, k=1)]
    if upper.size == 0:
        return 1.0
    sigma = float(np.sqrt(np.median(upper)))
    return sigma if np.isfinite(sigma) and sigma > 0 else 1.0


def mean_knn_heuristic(X, *, k: int = 7, max_samples: int = 512, seed=0) -> float:
    """sigma = mean distance to the k-th nearest neighbour (on a subsample).

    Tracks local density better than the global median for unbalanced
    clusters; used by the PSC baseline's self-tuning variant.
    """
    X = check_2d(X)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sample = _subsample(X, max_samples, seed)
    n = sample.shape[0]
    if n < 2:
        return 1.0
    d2 = pairwise_sq_distances(sample)
    np.fill_diagonal(d2, np.inf)
    k_eff = min(k, n - 1)
    kth = np.sqrt(np.partition(d2, k_eff - 1, axis=1)[:, k_eff - 1])
    sigma = float(np.mean(kth))
    return sigma if np.isfinite(sigma) and sigma > 0 else 1.0
