"""Kernel function objects.

Each kernel maps two sample matrices ``X (n, d)`` and ``Y (m, d)`` to an
``(n, m)`` similarity matrix. All kernels here are positive semi-definite,
which the spectral substrate relies on (non-negative Laplacian spectra).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_positive

__all__ = [
    "Kernel",
    "GaussianKernel",
    "LaplacianKernel",
    "LinearKernel",
    "PolynomialKernel",
    "CosineKernel",
    "get_kernel",
]


class Kernel:
    """Base class: a callable ``k(X, Y) -> (n, m)`` similarity matrix."""

    #: Whether every kernel value lies in [0, 1] (with k(x, x) = 1), as the
    #: Gaussian of Eq. (1) does. The validation layer only enforces the
    #: Gram-block range invariant for kernels that declare it.
    unit_range = False

    def __call__(self, X, Y=None) -> np.ndarray:
        X = check_2d(X)
        Y = X if Y is None else check_2d(Y)
        if X.shape[1] != Y.shape[1]:
            raise ValueError(f"dimension mismatch: {X.shape[1]} vs {Y.shape[1]}")
        return self.compute(X, Y)

    def compute(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def diagonal(self, X) -> np.ndarray:
        """k(x, x) for each row of X without forming the full matrix.

        Generic fallback: evaluate the kernel on row chunks and keep each
        chunk's diagonal — one vectorized ``compute`` per chunk instead of
        one 1x1 Gram matrix per row. The working set stays bounded at
        ``chunk x chunk``; subclasses with a closed form override this with
        an O(n) expression.
        """
        X = check_2d(X)
        n = X.shape[0]
        chunk = 256
        if n <= chunk:
            return np.diagonal(self.compute(X, X)).copy()
        out = np.empty(n)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            out[start:stop] = np.diagonal(self.compute(X[start:stop], X[start:stop]))
        return out


def _sq_distances(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances via the expanded-norm identity."""
    x2 = np.einsum("ij,ij->i", X, X)[:, None]
    y2 = np.einsum("ij,ij->i", Y, Y)[None, :]
    d2 = x2 + y2 - 2.0 * (X @ Y.T)
    np.maximum(d2, 0.0, out=d2)  # clip tiny negative values from cancellation
    return d2


class GaussianKernel(Kernel):
    """The paper's Eq. (1): ``exp(-||x - y||^2 / (2 sigma^2))``.

    ``sigma`` is the kernel bandwidth controlling how rapidly similarity
    decays with distance.
    """

    unit_range = True

    def __init__(self, sigma: float = 1.0):
        check_positive(sigma, name="sigma")
        self.sigma = float(sigma)

    def compute(self, X, Y):
        return np.exp(_sq_distances(X, Y) / (-2.0 * self.sigma**2))

    def diagonal(self, X):
        X = check_2d(X)
        return np.ones(X.shape[0])


class LaplacianKernel(Kernel):
    """``exp(-||x - y||_1 / sigma)`` — heavier tails than the Gaussian."""

    unit_range = True

    def __init__(self, sigma: float = 1.0):
        check_positive(sigma, name="sigma")
        self.sigma = float(sigma)

    def compute(self, X, Y):
        l1 = np.abs(X[:, None, :] - Y[None, :, :]).sum(axis=2)
        return np.exp(-l1 / self.sigma)

    def diagonal(self, X):
        X = check_2d(X)
        return np.ones(X.shape[0])


class LinearKernel(Kernel):
    """Plain inner product ``x . y``."""

    def compute(self, X, Y):
        return X @ Y.T

    def diagonal(self, X):
        X = check_2d(X)
        return np.einsum("ij,ij->i", X, X)


class PolynomialKernel(Kernel):
    """``(gamma x.y + coef0)^degree``; PSD when gamma > 0, coef0 >= 0."""

    def __init__(self, degree: int = 3, gamma: float = 1.0, coef0: float = 1.0):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        check_positive(gamma, name="gamma")
        if coef0 < 0:
            raise ValueError(f"coef0 must be >= 0, got {coef0}")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def compute(self, X, Y):
        return (self.gamma * (X @ Y.T) + self.coef0) ** self.degree

    def diagonal(self, X):
        X = check_2d(X)
        return (self.gamma * np.einsum("ij,ij->i", X, X) + self.coef0) ** self.degree


class CosineKernel(Kernel):
    """Cosine similarity; the natural kernel for tf-idf document vectors."""

    def compute(self, X, Y):
        xn = np.linalg.norm(X, axis=1, keepdims=True)
        yn = np.linalg.norm(Y, axis=1, keepdims=True)
        xn = np.where(xn == 0, 1.0, xn)
        yn = np.where(yn == 0, 1.0, yn)
        return (X / xn) @ (Y / yn).T

    def diagonal(self, X):
        X = check_2d(X)
        return np.where(np.linalg.norm(X, axis=1) == 0, 0.0, 1.0)


_REGISTRY = {
    "gaussian": GaussianKernel,
    "rbf": GaussianKernel,
    "laplacian": LaplacianKernel,
    "linear": LinearKernel,
    "polynomial": PolynomialKernel,
    "cosine": CosineKernel,
}


def get_kernel(name: str, **params) -> Kernel:
    """Instantiate a kernel by registry name (``'gaussian'``, ``'linear'``, ...)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(f"unknown kernel {name!r}; known: {sorted(set(_REGISTRY))}") from None
    return cls(**params)
