"""Shared utilities: RNG plumbing, validation, timing, and memory accounting."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.memory import (
    dense_matrix_bytes,
    block_diagonal_bytes,
    sparse_matrix_bytes,
    MemoryLedger,
)
from repro.utils.validation import (
    check_2d,
    check_labels,
    check_positive,
    check_probability,
    check_square,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "dense_matrix_bytes",
    "block_diagonal_bytes",
    "sparse_matrix_bytes",
    "MemoryLedger",
    "check_2d",
    "check_labels",
    "check_positive",
    "check_probability",
    "check_square",
]
