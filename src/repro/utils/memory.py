"""Gram-matrix memory accounting.

The paper's Figure 6(b) and Table 3 report the memory needed to *store the
kernel (Gram) matrix* under each algorithm:

* exact SC stores the full dense ``N x N`` matrix,
* PSC stores a t-nearest-neighbour sparse matrix,
* DASC stores one dense block per hashing bucket.

These helpers compute those footprints exactly (in bytes) from the matrix
shapes, independent of how Python happens to allocate memory, which mirrors
the paper's single-precision accounting (Eq. 12: ``4 * B * (N/B)^2`` bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

__all__ = [
    "dense_matrix_bytes",
    "block_diagonal_bytes",
    "sparse_matrix_bytes",
    "MemoryLedger",
]

#: Bytes per matrix entry; the paper assumes single-precision floats (Eq. 12).
FLOAT_BYTES = 4


def dense_matrix_bytes(n_rows: int, n_cols: int | None = None, *, itemsize: int = FLOAT_BYTES) -> int:
    """Footprint of a dense ``n_rows x n_cols`` matrix (square if ``n_cols`` omitted)."""
    if n_rows < 0:
        raise ValueError(f"n_rows must be non-negative, got {n_rows}")
    if n_cols is None:
        n_cols = n_rows
    if n_cols < 0:
        raise ValueError(f"n_cols must be non-negative, got {n_cols}")
    return n_rows * n_cols * itemsize


def block_diagonal_bytes(block_sizes: Iterable[int], *, itemsize: int = FLOAT_BYTES) -> int:
    """Footprint of a block-diagonal matrix: sum of ``N_i^2`` dense blocks.

    This is the DASC approximate-kernel footprint (Eq. 11's space term).
    """
    total = 0
    for size in block_sizes:
        if size < 0:
            raise ValueError(f"block sizes must be non-negative, got {size}")
        total += size * size * itemsize
    return total


def sparse_matrix_bytes(
    n_rows: int, nnz: int, *, itemsize: int = FLOAT_BYTES, index_bytes: int = 4
) -> int:
    """CSR footprint: values + column indices + row pointers.

    Models PSC's t-nearest-neighbour sparse similarity matrix, where
    ``nnz ~= t * N`` after symmetrisation.
    """
    if n_rows < 0 or nnz < 0:
        raise ValueError("n_rows and nnz must be non-negative")
    return nnz * (itemsize + index_bytes) + (n_rows + 1) * index_bytes


@dataclass
class MemoryLedger:
    """Accumulates per-stage peak memory attributions for one algorithm run."""

    entries: dict[str, int] = field(default_factory=dict)

    def charge(self, stage: str, nbytes: int) -> None:
        """Record ``nbytes`` against ``stage`` (summing repeat charges)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.entries[stage] = self.entries.get(stage, 0) + nbytes

    @property
    def total(self) -> int:
        """Total bytes across all stages."""
        return sum(self.entries.values())

    @property
    def peak(self) -> int:
        """Largest single-stage charge (a proxy for resident peak)."""
        return max(self.entries.values(), default=0)
