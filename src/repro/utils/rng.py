"""Random-number-generator plumbing.

All stochastic components in the library accept a ``seed`` argument that may
be an integer, ``None``, or an existing :class:`numpy.random.Generator`.
Routing everything through :func:`as_rng` keeps experiments reproducible and
lets callers share a single generator across pipeline stages.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        generator (returned unchanged, so state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` so that the children's streams
    are statistically independent regardless of how many draws each consumes.
    This is how simulated cluster nodes obtain per-task randomness without
    coupling the outcome to scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return as_rng(seed).spawn(n)
