"""Input validation shared across estimators and metrics."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_2d",
    "check_labels",
    "check_positive",
    "check_probability",
    "check_square",
]


def check_2d(X, *, name: str = "X", dtype=np.float64, ensure_finite: bool = True) -> np.ndarray:
    """Validate a 2-D, non-empty sample matrix and return it as an array.

    With ``ensure_finite`` (the default) NaN/inf features are rejected up
    front with an error naming the offending column(s) — otherwise they
    flow through span/histogram statistics into selection probabilities
    and surface as an opaque ``rng.choice`` failure deep in the hasher.
    """
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {arr.shape}")
    if ensure_finite:
        finite = np.isfinite(arr)
        if not finite.all():
            bad_cols = np.flatnonzero(~finite.all(axis=0))
            n_bad = int((~finite).sum())
            shown = ", ".join(map(str, bad_cols[:8]))
            suffix = ", ..." if bad_cols.size > 8 else ""
            raise ValueError(
                f"{name} contains {n_bad} non-finite value(s) (NaN/inf) in "
                f"column(s) [{shown}{suffix}]; clean or impute these features "
                "before clustering"
            )
    return arr


def check_square(S, *, name: str = "S") -> np.ndarray:
    """Validate a square 2-D matrix."""
    arr = np.asarray(S, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_labels(labels, *, n_samples: int | None = None, name: str = "labels") -> np.ndarray:
    """Validate an integer label vector (optionally of a required length)."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise ValueError(f"{name} must be integers")
    if n_samples is not None and arr.shape[0] != n_samples:
        raise ValueError(f"{name} has length {arr.shape[0]}, expected {n_samples}")
    return arr.astype(np.int64, copy=False)


def check_positive(value, *, name: str = "value", strict: bool = True):
    """Validate a (strictly) positive scalar."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value, *, name: str = "value") -> float:
    """Validate a scalar in [0, 1]."""
    p = float(value)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return p
