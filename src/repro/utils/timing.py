"""Wall-clock measurement helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Used by the DASC pipeline to attribute wall time to individual stages
    (hashing, bucketing, kernel computation, eigensolve, k-means) so the
    per-stage breakdown reported in the paper's Section 5.6 can be rebuilt.
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str):
        """Context manager: accumulate elapsed seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + (time.perf_counter() - start)

    @property
    def total(self) -> float:
        """Sum of all recorded laps, in seconds."""
        return sum(self.laps.values())

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's laps into this one (summing collisions)."""
        for name, seconds in other.laps.items():
            self.laps[name] = self.laps.get(name, 0.0) + seconds


@contextmanager
def timed():
    """Context manager yielding a single-element list filled with elapsed seconds.

    >>> with timed() as t:
    ...     _ = sum(range(10))
    >>> t[0] >= 0.0
    True
    """
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
