"""Comparison algorithms from the paper's Section 5.4.

* **SC** — exact spectral clustering: :class:`repro.spectral.SpectralClustering`.
* **PSC** — Chen et al.'s parallel spectral clustering:
  :class:`repro.baselines.psc.PSC` (t-nearest-neighbour sparse similarity +
  ARPACK eigensolve, the PARPACK role).
* **NYST** — Nystrom-extension spectral clustering:
  :class:`repro.baselines.nystrom.NystromSpectralClustering`.
"""

from repro.baselines.nystrom import NystromSpectralClustering
from repro.baselines.psc import PSC

__all__ = ["NystromSpectralClustering", "PSC"]
