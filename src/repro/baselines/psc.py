"""Parallel Spectral Clustering (Chen et al., TPAMI 2011) — the PSC baseline.

PSC scales spectral clustering by *sparsifying* the similarity matrix: keep
only each point's ``t`` nearest neighbours (symmetrically), then solve the
sparse eigenproblem with an implicitly restarted Lanczos method (PARPACK in
the original; :func:`scipy.sparse.linalg.eigsh` here — the same ARPACK
algorithm). Memory is O(t N) instead of O(N^2); the accuracy cost of the
hard sparsification is what Figures 3-4 measure against DASC.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.kernels.functions import GaussianKernel, Kernel
from repro.kernels.matrix import pairwise_sq_distances
from repro.spectral.kmeans import KMeans
from repro.utils.memory import MemoryLedger, sparse_matrix_bytes
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_2d

__all__ = ["PSC"]


class PSC:
    """t-nearest-neighbour sparse spectral clustering.

    Parameters
    ----------
    n_clusters:
        Number of clusters K.
    n_neighbors:
        t, the number of retained neighbours per point.
    kernel / sigma:
        Affinity kernel on the retained edges (default Gaussian).
    block_size:
        Row-panel size for the neighbour search (bounds memory at
        O(block_size * N) during construction).
    seed:
        Eigensolver start vector and K-means randomness.

    Attributes (after :meth:`fit`)
    ------------------------------
    labels_ : (n,) cluster assignments
    affinity_matrix_ : the symmetrised sparse t-NN affinity (CSR)
    stopwatch_, memory_ : cost accounting
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_neighbors: int = 10,
        kernel: Kernel | None = None,
        sigma: float = 1.0,
        block_size: int = 1024,
        kmeans_n_init: int = 4,
        seed=None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_clusters = int(n_clusters)
        self.n_neighbors = int(n_neighbors)
        self.kernel = kernel if kernel is not None else GaussianKernel(sigma)
        self.block_size = int(block_size)
        self.kmeans_n_init = int(kmeans_n_init)
        self.seed = seed
        self.labels_: np.ndarray | None = None
        self.affinity_matrix_: sp.csr_matrix | None = None
        self.embedding_: np.ndarray | None = None
        self.stopwatch_ = Stopwatch()
        self.memory_ = MemoryLedger()

    def fit(self, X) -> "PSC":
        """Cluster ``X`` with the sparse t-NN spectral pipeline."""
        X = check_2d(X)
        n = X.shape[0]
        if n < self.n_clusters:
            raise ValueError(f"n_samples={n} < n_clusters={self.n_clusters}")
        with self.stopwatch_.lap("knn_graph"):
            S = self._knn_affinity(X)
        self.affinity_matrix_ = S
        self.memory_.charge("gram_sparse", sparse_matrix_bytes(n, S.nnz))

        with self.stopwatch_.lap("eigen"):
            Y = self._sparse_embedding(S)
        with self.stopwatch_.lap("kmeans"):
            km = KMeans(self.n_clusters, n_init=self.kmeans_n_init, seed=self.seed)
            self.labels_ = km.fit_predict(Y)
        self.embedding_ = Y
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(X).labels_

    # -- internals ----------------------------------------------------------

    def _knn_affinity(self, X: np.ndarray) -> sp.csr_matrix:
        """Symmetrised t-NN kernel affinity, built in row panels."""
        n = X.shape[0]
        t = min(self.n_neighbors, n - 1)
        rows, cols, vals = [], [], []
        for start in range(0, n, self.block_size):
            stop = min(start + self.block_size, n)
            d2 = pairwise_sq_distances(X[start:stop], X)
            d2[np.arange(stop - start), np.arange(start, stop)] = np.inf
            nbr = np.argpartition(d2, t - 1, axis=1)[:, :t]
            sims = self.kernel(X[start:stop], X)  # panel of kernel values
            panel_rows = np.repeat(np.arange(start, stop), t)
            panel_cols = nbr.ravel()
            rows.append(panel_rows)
            cols.append(panel_cols)
            vals.append(sims[np.arange(stop - start).repeat(t), panel_cols])
        S = sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        )
        # Symmetrise by max: keep an edge if either endpoint selected it.
        return S.maximum(S.T).tocsr()

    def _sparse_embedding(self, S: sp.csr_matrix) -> np.ndarray:
        """Row-normalized top-K eigenvectors of the sparse normalized Laplacian."""
        n = S.shape[0]
        d = np.asarray(S.sum(axis=1)).ravel()
        d_inv_sqrt = np.zeros_like(d)
        positive = d > 0
        d_inv_sqrt[positive] = 1.0 / np.sqrt(d[positive])
        D = sp.diags(d_inv_sqrt)
        L = (D @ S @ D).tocsr()
        k = self.n_clusters
        if k >= n - 1:
            vals, vecs = np.linalg.eigh(L.toarray())
            order = np.argsort(vals)[::-1][:k]
            V = vecs[:, order]
        else:
            rng = np.random.default_rng(self.seed if isinstance(self.seed, int) else 0)
            _, V = spla.eigsh(L, k=k, which="LA", v0=rng.standard_normal(n))
        norms = np.linalg.norm(V, axis=1, keepdims=True)
        return V / np.where(norms == 0, 1.0, norms)
