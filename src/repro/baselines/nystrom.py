"""Nystrom-extension spectral clustering (the paper's NYST baseline).

One-shot Nystrom (Fowlkes et al.; Schuetter & Shi's multi-sample data
spectroscopy is the paper's citation): sample m landmark points, compute the
``n x m`` cross-kernel C and ``m x m`` landmark kernel W, approximate the
full kernel as ``K ~= C W^+ C^T``, normalise, and orthogonalise the extended
eigenvectors through the one-shot trick

    R = A + A^{-1/2} B B^T A^{-1/2},   R = U_R L U_R^T
    V = [A; B^T] A^{-1/2} U_R L^{-1/2}

where A is the landmark block and B the landmark-to-rest block of the
normalised kernel. Complexity O(m^2 n) time and O(m n) space — the
low-rank-family member the paper compares against.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.functions import GaussianKernel, Kernel
from repro.spectral.kmeans import KMeans
from repro.utils.memory import MemoryLedger, dense_matrix_bytes
from repro.utils.rng import as_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_2d

__all__ = ["NystromSpectralClustering"]

_PINV_RCOND = 1e-10


class NystromSpectralClustering:
    """Spectral clustering via the Nystrom extension.

    Parameters
    ----------
    n_clusters:
        Number of clusters K.
    n_landmarks:
        Sample size m (clipped to n). More landmarks = better approximation,
        O(m^2 n) cost.
    kernel / sigma:
        Affinity kernel (default Gaussian with bandwidth ``sigma``).
    seed:
        Landmark sampling and K-means randomness.

    Attributes (after :meth:`fit`)
    ------------------------------
    labels_ : (n,) cluster assignments
    landmark_indices_ : (m,) sampled landmark rows
    stopwatch_, memory_ : cost accounting
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_landmarks: int = 100,
        kernel: Kernel | None = None,
        sigma: float = 1.0,
        kmeans_n_init: int = 4,
        seed=None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_landmarks < 1:
            raise ValueError(f"n_landmarks must be >= 1, got {n_landmarks}")
        self.n_clusters = int(n_clusters)
        self.n_landmarks = int(n_landmarks)
        self.kernel = kernel if kernel is not None else GaussianKernel(sigma)
        self.kmeans_n_init = int(kmeans_n_init)
        self.seed = seed
        self.labels_: np.ndarray | None = None
        self.landmark_indices_: np.ndarray | None = None
        self.embedding_: np.ndarray | None = None
        self.stopwatch_ = Stopwatch()
        self.memory_ = MemoryLedger()

    def fit(self, X) -> "NystromSpectralClustering":
        """Cluster ``X`` with the one-shot Nystrom pipeline."""
        X = check_2d(X)
        n = X.shape[0]
        if n < self.n_clusters:
            raise ValueError(f"n_samples={n} < n_clusters={self.n_clusters}")
        rng = as_rng(self.seed)
        m = min(self.n_landmarks, n)
        m = max(m, self.n_clusters)  # need at least K landmark eigenvectors

        with self.stopwatch_.lap("sample"):
            landmarks = np.sort(rng.choice(n, size=m, replace=False))
            rest = np.setdiff1d(np.arange(n), landmarks)
        with self.stopwatch_.lap("kernel"):
            A = self.kernel(X[landmarks], X[landmarks])  # (m, m)
            # m == n means every point is a landmark and there is no rest block.
            B = self.kernel(X[landmarks], X[rest]) if rest.size else np.zeros((m, 0))
        self.memory_.charge("gram_nystrom", dense_matrix_bytes(m, n))

        with self.stopwatch_.lap("eigen"):
            V = self._one_shot_embedding(A, B)
        # Undo the landmark-first permutation.
        order = np.concatenate([landmarks, rest])
        inv = np.empty(n, dtype=np.int64)
        inv[order] = np.arange(n)
        Y = V[inv]
        norms = np.linalg.norm(Y, axis=1, keepdims=True)
        Y = Y / np.where(norms == 0, 1.0, norms)

        with self.stopwatch_.lap("kmeans"):
            km = KMeans(self.n_clusters, n_init=self.kmeans_n_init, seed=self.seed)
            self.labels_ = km.fit_predict(Y)
        self.landmark_indices_ = landmarks
        self.embedding_ = Y
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(X).labels_

    # -- internals ----------------------------------------------------------

    def _one_shot_embedding(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Orthogonalised top-K eigenvectors of the Nystrom-approximated Laplacian."""
        m = A.shape[0]
        # Approximate degrees of K ~= [A B; B^T B^T A^+ B].
        a_row = A.sum(axis=1) + B.sum(axis=1)  # landmark degrees
        pinv_a_b_sum = np.linalg.pinv(A, rcond=_PINV_RCOND) @ B.sum(axis=1)
        b_row = B.sum(axis=0) + B.T @ pinv_a_b_sum  # rest degrees
        d = np.concatenate([a_row, b_row])
        d_inv_sqrt = np.zeros_like(d)
        positive = d > 0
        d_inv_sqrt[positive] = 1.0 / np.sqrt(d[positive])

        # Normalise the sampled blocks: L = D^{-1/2} K D^{-1/2}.
        A_n = A * d_inv_sqrt[:m, None] * d_inv_sqrt[None, :m]
        B_n = B * d_inv_sqrt[:m, None] * d_inv_sqrt[None, m:]

        # One-shot orthogonalisation (Fowlkes et al. Section 2.3).
        vals_a, vecs_a = np.linalg.eigh(A_n)
        vals_a = np.maximum(vals_a, 1e-12)
        A_isqrt = (vecs_a / np.sqrt(vals_a)) @ vecs_a.T
        R = A_n + A_isqrt @ (B_n @ B_n.T) @ A_isqrt
        R = (R + R.T) / 2.0
        vals_r, vecs_r = np.linalg.eigh(R)
        order = np.argsort(vals_r)[::-1][: self.n_clusters]
        lam = np.maximum(vals_r[order], 1e-12)
        U = vecs_r[:, order]
        stacked = np.vstack([A_n, B_n.T])  # (n, m)
        return stacked @ (A_isqrt @ U) / np.sqrt(lam)[None, :]
