"""The paper's experiments as a public, programmatic API.

Each function in :mod:`repro.experiments.paper` regenerates one table or
figure of the evaluation section and returns an
:class:`~repro.experiments.base.ExperimentResult` (named rows + series);
the benchmark suite calls these same functions and asserts the shape
criteria on their output, so ``pytest benchmarks/`` and
``python -m repro.experiments <id>`` are guaranteed to agree.

>>> from repro.experiments import run_experiment, EXPERIMENTS
>>> sorted(EXPERIMENTS)
['fig1', 'fig2', 'fig3', 'fig4', 'fig5', 'fig6', 'table1', 'table3']
>>> result = run_experiment("fig1")
>>> print(result.render())  # doctest: +SKIP
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.paper import (
    EXPERIMENTS,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    run_experiment,
    table1,
    table3,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table1",
    "table3",
]
