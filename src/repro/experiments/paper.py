"""One function per table/figure of the paper's evaluation section.

Default parameters reproduce what the benchmark suite runs (reduced N on
measured experiments, the paper's exact ranges on analytic ones); every
knob is exposed so larger machines can push the sweeps further.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.observability import get_logger

log = get_logger(__name__)

__all__ = [
    "figure1",
    "figure2",
    "table1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "table3",
    "EXPERIMENTS",
    "run_experiment",
]


def figure1(exponents=range(20, 30)) -> ExperimentResult:
    """Figure 1: analytic time/memory scalability of DASC vs SC."""
    from repro.analysis import figure1_curves

    curves = figure1_curves(exponents)
    rows = [
        [f"2^{e}", f"{dt:.1f}", f"{st:.1f}", f"{dm:.1f}", f"{sm:.1f}"]
        for e, dt, st, dm, sm in zip(
            curves["exponents"],
            curves["dasc_time_log2_hours"],
            curves["sc_time_log2_hours"],
            curves["dasc_memory_log2_kb"],
            curves["sc_memory_log2_kb"],
        )
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Figure 1 — scalability (log2 units, 1024 machines, beta=50us)",
        header=["N", "DASC t(h)", "SC t(h)", "DASC m(KB)", "SC m(KB)"],
        rows=rows,
        data=curves,
    )


def figure2(m_values=range(5, 36, 5), size_exponents=range(20, 31)) -> ExperimentResult:
    """Figure 2: collision probability vs M (Eq. 18) for N = 1M..1G."""
    from repro.analysis import figure2_curves

    curves = figure2_curves(m_values=m_values, size_exponents=size_exponents)
    header = ["M"] + list(curves["series"].keys())
    rows = [
        [m] + [f"{curves['series'][k][i]:.4f}" for k in curves["series"]]
        for i, m in enumerate(curves["m_values"])
    ]
    return ExperimentResult(
        experiment_id="fig2",
        title="Figure 2 — P(similar points share a bucket) vs M",
        header=header,
        rows=rows,
        data=curves,
        notes=(
            "evaluated literally, Eq. 18 gives larger probabilities for larger N "
            "at fixed M; the paper's prose claims the opposite ordering"
        ),
    )


def table1(generator_exponents=(10, 11, 12, 13)) -> ExperimentResult:
    """Table 1: Wikipedia category counts, the Eq.-15 fit, and the generator."""
    from repro.analysis import fit_k_log2
    from repro.data import generate_corpus
    from repro.data.wikipedia import TABLE1_CATEGORIES

    sizes = sorted(TABLE1_CATEGORIES)
    eq15 = {n: max(1, round(17 * (math.log2(n) - 9))) for n in sizes}
    fit = fit_k_log2(sizes[:6], [TABLE1_CATEGORIES[n] for n in sizes[:6]])
    generator = {
        2**e: generate_corpus(n_documents=2**e, seed=0).n_categories
        for e in generator_exponents
    }
    rows = [
        [n, TABLE1_CATEGORIES[n], eq15[n], generator.get(n, "-")] for n in sizes
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1 — Wikipedia categories vs dataset size",
        header=["N", "paper K", "Eq.15: 17(log2 N - 9)", "generator K"],
        rows=rows,
        data={"paper": dict(TABLE1_CATEGORIES), "eq15": eq15, "fit": fit, "generator": generator},
        notes=f"lower-half refit: K = {fit[0]:.1f}(log2 N - {fit[1]:.1f}), R^2 = {fit[2]:.3f}",
    )


def figure3(sizes=(2**9, 2**10, 2**11, 2**12), sc_max=2**11, *, seed=0) -> ExperimentResult:
    """Figure 3: document clustering accuracy for DASC / SC / PSC / NYST."""
    from repro import DASC, PSC, NystromSpectralClustering, SpectralClustering
    from repro.data import make_wikipedia_dataset
    from repro.metrics import clustering_accuracy

    results = {"DASC": {}, "SC": {}, "PSC": {}, "NYST": {}}
    for n in sizes:
        k = max(2, round(17 * (np.log2(n) - 9))) if n > 512 else 8
        log.info("figure3: clustering N=%d documents into K=%d categories", n, k)
        X, y = make_wikipedia_dataset(n, n_categories=k, seed=seed)
        sigma = 0.5
        results["DASC"][n] = clustering_accuracy(
            y, DASC(k, sigma=sigma, seed=seed).fit_predict(X)
        )
        # PSC's t must reach across a whole category of near-duplicate
        # tf-idf vectors or the t-NN graph shatters into cliques.
        t_nn = max(16, int(1.2 * n / k))
        results["PSC"][n] = clustering_accuracy(
            y, PSC(k, n_neighbors=t_nn, sigma=sigma, seed=seed).fit_predict(X)
        )
        results["NYST"][n] = clustering_accuracy(
            y,
            NystromSpectralClustering(
                k, n_landmarks=min(256, n // 2), sigma=sigma, seed=seed
            ).fit_predict(X),
        )
        if n <= sc_max:
            results["SC"][n] = clustering_accuracy(
                y, SpectralClustering(k, sigma=sigma, seed=seed).fit_predict(X)
            )
    rows = [
        [f"2^{int(np.log2(n))}"]
        + [f"{results[a][n]:.3f}" if n in results[a] else "-" for a in ("DASC", "SC", "PSC", "NYST")]
        for n in sizes
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3 — Wikipedia clustering accuracy",
        header=["N", "DASC", "SC", "PSC", "NYST"],
        rows=rows,
        data=results,
        notes="SC stops at its O(N^2) size wall, as in the paper",
    )


def figure4(sizes=(2**10, 2**11, 2**12), sc_max=2**11, *, seed=0) -> ExperimentResult:
    """Figure 4: DBI and ASE on synthetic data for the four algorithms."""
    from repro import DASC, PSC, NystromSpectralClustering, SpectralClustering
    from repro.data import make_blobs
    from repro.metrics import average_squared_error, davies_bouldin_index

    dbi = {a: {} for a in ("DASC", "SC", "PSC", "NYST")}
    ase = {a: {} for a in ("DASC", "SC", "PSC", "NYST")}
    k = 32
    sigma = 0.7
    for n in sizes:
        X, _ = make_blobs(n, n_clusters=k, n_features=64, cluster_std=0.09, seed=seed)
        fits = {
            "DASC": DASC(
                k, sigma=sigma, min_bucket_size=16, allocation="eigengap", seed=seed
            ).fit_predict(X),
            "PSC": PSC(k, n_neighbors=10, sigma=sigma, seed=seed).fit_predict(X),
            "NYST": NystromSpectralClustering(
                k, n_landmarks=2 * k, sigma=sigma, seed=seed
            ).fit_predict(X),
        }
        if n <= sc_max:
            fits["SC"] = SpectralClustering(k, sigma=sigma, seed=seed).fit_predict(X)
        for algo, labels in fits.items():
            dbi[algo][n] = davies_bouldin_index(X, labels)
            ase[algo][n] = average_squared_error(X, labels)
    rows = []
    for metric_name, metric in (("DBI", dbi), ("ASE", ase)):
        for n in sizes:
            rows.append(
                [metric_name, f"2^{int(np.log2(n))}"]
                + [f"{metric[a][n]:.3f}" if n in metric[a] else "-" for a in ("DASC", "SC", "PSC", "NYST")]
            )
    return ExperimentResult(
        experiment_id="fig4",
        title="Figure 4 — DBI (a) and ASE (b), lower is better",
        header=["metric", "N", "DASC", "SC", "PSC", "NYST"],
        rows=rows,
        data={"dbi": dbi, "ase": ase},
        notes="DASC runs with the eigengap+refine extensions (see EXPERIMENTS.md)",
    )


def figure5(sizes=(1024, 2048, 4096), bit_sweep=(2, 4, 6, 8, 10, 12), *, sigma=0.4, seed=0) -> ExperimentResult:
    """Figure 5: Fnorm(approx)/Fnorm(full) vs bucket count."""
    from repro.core import DASC
    from repro.data import make_blobs
    from repro.kernels import GaussianKernel, gram_matrix
    from repro.metrics import fnorm_ratio

    sweeps = {}
    for n in sizes:
        X, _ = make_blobs(n, n_clusters=64, n_features=64, cluster_std=0.06, seed=1)
        full = gram_matrix(X, GaussianKernel(sigma), zero_diagonal=True)
        series = []
        for n_bits in bit_sweep:
            dasc = DASC(sigma=sigma, n_bits=n_bits, min_bucket_size=1, seed=seed)
            approx = dasc.transform(X)
            series.append((dasc.buckets_.n_buckets, fnorm_ratio(approx, full)))
        sweeps[n] = series
    rows = [[n, b, f"{r:.3f}"] for n, series in sweeps.items() for b, r in series]
    return ExperimentResult(
        experiment_id="fig5",
        title="Figure 5 — Fnorm(approx)/Fnorm(full)",
        header=["N", "buckets", "ratio"],
        rows=rows,
        data=sweeps,
    )


def figure6(sizes=(2**9, 2**10, 2**11, 2**12), sc_max=2**11, *, seed=0) -> ExperimentResult:
    """Figure 6: measured wall time and Gram memory for DASC / SC / PSC."""
    from repro import DASC, PSC, SpectralClustering
    from repro.data import make_wikipedia_dataset
    from repro.utils.memory import dense_matrix_bytes

    out = {
        "time": {a: {} for a in ("DASC", "SC", "PSC")},
        "mem": {a: {} for a in ("DASC", "SC", "PSC")},
    }
    for n in sizes:
        k = max(4, round(17 * (np.log2(n) - 9))) if n > 512 else 8
        X, _ = make_wikipedia_dataset(n, n_categories=k, seed=seed)
        sigma = 0.5

        start = time.perf_counter()
        dasc = DASC(k, sigma=sigma, seed=seed).fit(X)
        out["time"]["DASC"][n] = time.perf_counter() - start
        out["mem"]["DASC"][n] = dasc.approx_kernel_.nbytes

        start = time.perf_counter()
        psc = PSC(k, n_neighbors=16, sigma=sigma, seed=seed).fit(X)
        out["time"]["PSC"][n] = time.perf_counter() - start
        out["mem"]["PSC"][n] = psc.memory_.total

        if n <= sc_max:
            start = time.perf_counter()
            SpectralClustering(k, sigma=sigma, seed=seed).fit(X)
            out["time"]["SC"][n] = time.perf_counter() - start
            out["mem"]["SC"][n] = dense_matrix_bytes(n)
    rows = [
        [f"2^{int(np.log2(n))}"]
        + [f"{out['time'][a][n]:.2f}" if n in out["time"][a] else "-" for a in ("DASC", "SC", "PSC")]
        + [f"{out['mem'][a][n] / 1024:.0f}" if n in out["mem"][a] else "-" for a in ("DASC", "SC", "PSC")]
        for n in sizes
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Figure 6 — measured time (s) and Gram memory (KB)",
        header=["N", "t DASC", "t SC", "t PSC", "m DASC", "m SC", "m PSC"],
        rows=rows,
        data=out,
        notes="PSC undercharged at laptop N (no MPI costs); see EXPERIMENTS.md",
    )


def table3(nodes=(16, 32, 64), *, n_documents=16384, seed=5) -> ExperimentResult:
    """Table 3: elasticity of distributed DASC on the simulated cloud."""
    from repro.analysis import BETA_SECONDS
    from repro.core import DASCConfig
    from repro.dasc_mr import DistributedDASC
    from repro.data import make_wikipedia_dataset
    from repro.metrics import clustering_accuracy

    X, y = make_wikipedia_dataset(
        n_documents, n_categories=1024, n_features=24, n_topic_terms=24,
        terms_per_category=3, doc_length=120, seed=seed,
    )
    k = len(np.unique(y))
    results = {}
    for n_nodes in nodes:
        log.info("table3: running distributed DASC on %d simulated nodes", n_nodes)
        cfg = DASCConfig(n_bits=24, dimension_policy="top_span", min_bucket_size=4, seed=seed)
        res = DistributedDASC(k, n_nodes=n_nodes, config=cfg, split_size=64).run(X)
        results[n_nodes] = {
            "accuracy": clustering_accuracy(y, res.labels),
            "memory_kb": res.gram_bytes / 1024,
            "hours": res.makespan * BETA_SECONDS / 3600.0,
            "buckets": res.n_buckets,
        }
    rows = [
        [n, f"{results[n]['accuracy']:.1%}", f"{results[n]['memory_kb']:.0f}",
         f"{results[n]['hours']:.5f}", results[n]["buckets"]]
        for n in nodes
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Table 3 — DASC on the simulated Amazon cloud",
        header=["nodes", "accuracy", "memory (KB)", "time (h, beta=50us)", "buckets"],
        rows=rows,
        data=results,
    )


#: Registry: experiment id -> zero-argument callable with bench defaults.
EXPERIMENTS = {
    "fig1": figure1,
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "table1": table1,
    "table3": table3,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one registered experiment by id with its default parameters."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    log.info("running experiment %s", experiment_id)
    start = time.perf_counter()
    result = fn()
    log.info("experiment %s finished in %.2fs", experiment_id, time.perf_counter() - start)
    return result
