"""Experiment result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_table"]


def format_table(title: str, header: list[str], rows: list[list]) -> str:
    """Fixed-width text table (the layout the benches print)."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    Attributes
    ----------
    experiment_id:
        Short id (``"fig3"``, ``"table1"``, ...).
    title:
        Human-readable name including the paper artifact.
    header / rows:
        The printable table, in the paper's row/series layout.
    data:
        The raw numbers keyed by series name, for assertions and plotting.
    notes:
        Substitutions / deviations relevant to interpreting the numbers.
    """

    experiment_id: str
    title: str
    header: list[str]
    rows: list[list]
    data: dict = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """The table as printable text (plus notes, when present)."""
        out = format_table(self.title, self.header, self.rows)
        if self.notes:
            out += f"\nnote: {self.notes}"
        return out
