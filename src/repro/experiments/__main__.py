"""``python -m repro.experiments [id ...]`` — regenerate paper artifacts.

With no arguments, lists the available experiment ids; with ids, runs each
and prints its table. ``all`` runs everything (the analytic experiments are
instant; the measured ones take minutes on one core).
"""

from __future__ import annotations

import sys

from repro.experiments import EXPERIMENTS, run_experiment
from repro.observability import configure_logging


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.experiments <id ...|all>", file=sys.stdout)
        print("available:", " ".join(sorted(EXPERIMENTS)), file=sys.stdout)
        return 0
    configure_logging()
    ids = sorted(EXPERIMENTS) if args == ["all"] else args
    try:
        for experiment_id in ids:
            result = run_experiment(experiment_id)
            print(result.render(), file=sys.stdout)
            print(file=sys.stdout)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
