"""Time and space complexity models (Section 4.1; Figure 1).

The paper's uniform-bucket upper bound: with B buckets of N/B points each
and K clusters split as K/B per bucket,

* DASC time (Eq. 11, in seconds):
  ``beta / C * (M N + B^2 + 2N + B (2 (N/B)^2 + 2 (K/B)(N/B)))``
* DASC memory (Eq. 12, bytes, single precision): ``4 B (N/B)^2 = 4 N^2/B``
* exact SC time: ``beta / C * (2 N^2 + 2 K N + 2 N)`` and memory ``4 N^2``.

Defaults match Figure 1's setting: ``beta = 50 microseconds``, ``C = 1024``
machines, ``M = log2 B``, ``K = 17 (log2 N - 9)`` (Eq. 15).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "BETA_SECONDS",
    "N_MACHINES",
    "dasc_time_ops",
    "sc_time_ops",
    "dasc_memory_bytes",
    "sc_memory_bytes",
    "dasc_time_seconds",
    "sc_time_seconds",
    "time_reduction_ratio",
    "space_reduction_ratio",
    "figure1_curves",
]

#: Figure 1's machine-operation constant (Hennessy & Patterson reference).
BETA_SECONDS = 50e-6

#: Figure 1's cluster size.
N_MACHINES = 1024


def _defaults(n: float, n_buckets: float | None, n_clusters: float | None):
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if n_buckets is None:
        # M = floor(log2 N / 2) - 1 and B = 2^M (the paper's M = log B link).
        m = max(1, math.floor(math.log2(n) / 2) - 1)
        n_buckets = float(2**m)
    if n_clusters is None:
        n_clusters = max(1.0, 17.0 * (math.log2(n) - 9.0))
    if n_buckets < 1 or n_clusters < 1:
        raise ValueError("n_buckets and n_clusters must be >= 1")
    return float(n), float(n_buckets), float(n_clusters)


def dasc_time_ops(n, *, n_buckets=None, n_clusters=None) -> float:
    """Machine operations of DASC under the uniform-bucket bound (Eq. 10/11)."""
    n, b, k = _defaults(n, n_buckets, n_clusters)
    m = math.log2(b)
    per_bucket = 2.0 * (n / b) ** 2 + 2.0 * (k / b) * (n / b)
    return m * n + b * b + 2.0 * n + b * per_bucket


def sc_time_ops(n, *, n_clusters=None) -> float:
    """Machine operations of exact SC: ``2 N^2 + 2 K N + 2 N``."""
    n, _, k = _defaults(n, 1.0, n_clusters)
    return 2.0 * n * n + 2.0 * k * n + 2.0 * n


def dasc_time_seconds(n, *, n_buckets=None, n_clusters=None, beta=BETA_SECONDS, n_machines=N_MACHINES) -> float:
    """Eq. (11): simulated seconds on ``n_machines`` machines."""
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")
    return beta / n_machines * dasc_time_ops(n, n_buckets=n_buckets, n_clusters=n_clusters)


def sc_time_seconds(n, *, n_clusters=None, beta=BETA_SECONDS, n_machines=N_MACHINES) -> float:
    """Exact-SC seconds under the same beta / C scaling."""
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")
    return beta / n_machines * sc_time_ops(n, n_clusters=n_clusters)


def dasc_memory_bytes(n, *, n_buckets=None) -> float:
    """Eq. (12): ``4 B (N/B)^2`` bytes (single precision)."""
    n, b, _ = _defaults(n, n_buckets, 1.0)
    return 4.0 * b * (n / b) ** 2


def sc_memory_bytes(n) -> float:
    """Full Gram matrix: ``4 N^2`` bytes."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 4.0 * float(n) ** 2


def time_reduction_ratio(n, *, n_buckets=None, n_clusters=None) -> float:
    """Eq. (7)/(8): DASC ops / SC ops; approaches 1/B for large N."""
    return dasc_time_ops(n, n_buckets=n_buckets, n_clusters=n_clusters) / sc_time_ops(
        n, n_clusters=n_clusters
    )


def space_reduction_ratio(n, *, n_buckets=None) -> float:
    """Eq. (9)/(10): DASC bytes / SC bytes = 1/B under the uniform bound."""
    return dasc_memory_bytes(n, n_buckets=n_buckets) / sc_memory_bytes(n)


def figure1_curves(exponents=range(20, 30)) -> dict:
    """The four Figure-1 series for N = 2^e, e in ``exponents``.

    Returns log2-scaled values exactly as the paper plots them: processing
    time in hours after log2, memory in KB after log2, for DASC and SC.
    """
    exps = list(exponents)
    out = {
        "exponents": exps,
        "dasc_time_log2_hours": [],
        "sc_time_log2_hours": [],
        "dasc_memory_log2_kb": [],
        "sc_memory_log2_kb": [],
    }
    for e in exps:
        n = 2.0**e
        out["dasc_time_log2_hours"].append(math.log2(dasc_time_seconds(n) / 3600.0))
        out["sc_time_log2_hours"].append(math.log2(sc_time_seconds(n) / 3600.0))
        out["dasc_memory_log2_kb"].append(math.log2(dasc_memory_bytes(n) / 1024.0))
        out["sc_memory_log2_kb"].append(math.log2(sc_memory_bytes(n) / 1024.0))
    return out
