"""Collision probability model (Section 4.2, Eqs. 13-19; Figure 2).

Two points that differ significantly in ``r`` of their ``d`` dimensions
collide (identical M-bit signatures) with probability
``P1 = ((d - r) / d)^M`` (Eq. 13); a whole group of N/K near-by points all
falls into one bucket with probability ``P2 = P1^(N/K)`` (Eq. 14).

For the Wikipedia corpus the paper instantiates d via the term structure:
each document has 11 terms, ``r = 5`` of which are category-specific,
``t = 11 - r + r/K`` distinct terms per cluster-normalised document
(Eq. 16), ``d = t K = K (11 - r) + N r`` (Eq. 17), and
``K = 17 (log2 N - 9)`` (Eq. 15), giving the closed form of Eq. (18)/(19):

``P2 = (1 - 5 / (17 (log2 N - 9) * 6 + 5 N))^(M N / (17 (log2 N - 9)))``

(the paper typesets the exponent as M N/17 (log2 N - 9); the group size is
N/K with K from Eq. 15).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "collision_probability_single",
    "collision_probability_group",
    "wikipedia_collision_probability",
    "fit_k_log2",
    "figure2_curves",
]


def collision_probability_single(d: float, r: float, m: float) -> float:
    """Eq. (13): ``((d - r)/d)^M`` — two r-dissimilar points collide."""
    if d <= 0:
        raise ValueError(f"d must be > 0, got {d}")
    if not 0 <= r <= d:
        raise ValueError(f"r must be in [0, d], got {r}")
    if m < 0:
        raise ValueError(f"m must be >= 0, got {m}")
    return ((d - r) / d) ** m


def collision_probability_group(d: float, r: float, m: float, group_size: float) -> float:
    """Eq. (14): ``P1^(N/K)`` — a group of near-by points shares one bucket."""
    if group_size < 0:
        raise ValueError(f"group_size must be >= 0, got {group_size}")
    return collision_probability_single(d, r, m) ** group_size


def wikipedia_collision_probability(n: float, m: float, *, r: float = 5.0, terms: float = 11.0) -> float:
    """Eq. (18)/(19) for the Wikipedia structure: collision probability at size N.

    Uses log-space evaluation so the astronomically small exponent bases at
    N = 1G stay numerically exact.
    """
    if n < 1024:
        raise ValueError(f"Eq. 15 needs N > 512 for a positive K; got n={n}")
    k = 17.0 * (math.log2(n) - 9.0)
    d = k * (terms - r) + n * r  # Eq. 17
    group = n / k
    # log P2 = M * group * log(1 - r/d)
    log_p1_bit = math.log1p(-r / d)
    return math.exp(m * group * log_p1_bit)


def fit_k_log2(sizes, counts) -> tuple[float, float, float]:
    """Least-squares fit ``K = a (log2 N - b)`` (the paper's Eq.-15 line fit).

    Returns ``(a, b, r_squared)``. On Table 1's data this recovers
    approximately a = 17, b = 9 for the lower half of the table (the paper
    fits the full table with that line even though the largest sizes grow
    faster).
    """
    x = np.log2(np.asarray(sizes, dtype=np.float64))
    y = np.asarray(counts, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValueError("need at least two (size, count) pairs of equal length")
    # K = a*x - a*b is linear in (a, a*b).
    slope, intercept = np.polyfit(x, y, 1)
    a = float(slope)
    b = float(-intercept / slope) if slope != 0 else 0.0
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return a, b, r2


def figure2_curves(m_values=range(5, 36), size_exponents=range(20, 31)) -> dict:
    """Figure 2's series: collision probability vs M for N = 1M .. 1G.

    Returns ``{"m_values": [...], "series": {"1M": [...], ...}}``.
    """
    ms = list(m_values)
    out = {"m_values": ms, "series": {}}
    for e in size_exponents:
        n = 2.0**e
        label = f"{2**(e - 20)}M" if e < 30 else "1G"
        out["series"][label] = [wikipedia_collision_probability(n, m) for m in ms]
    return out
