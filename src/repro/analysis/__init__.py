"""Analytic models from the paper's Section 4.

* :mod:`repro.analysis.complexity` — Eqs. (3), (7)-(12): time/memory of
  DASC vs exact SC (Figure 1's curves).
* :mod:`repro.analysis.collision` — Eqs. (13)-(19): the collision
  probability of near-duplicate points as a function of the signature
  length M (Figure 2's curves), plus the Eq.-15 category fit of Table 1.
"""

from repro.analysis.complexity import (
    dasc_time_ops,
    sc_time_ops,
    dasc_memory_bytes,
    sc_memory_bytes,
    dasc_time_seconds,
    sc_time_seconds,
    time_reduction_ratio,
    space_reduction_ratio,
    figure1_curves,
    BETA_SECONDS,
)
from repro.analysis.collision import (
    collision_probability_single,
    collision_probability_group,
    wikipedia_collision_probability,
    fit_k_log2,
    figure2_curves,
)

__all__ = [
    "dasc_time_ops",
    "sc_time_ops",
    "dasc_memory_bytes",
    "sc_memory_bytes",
    "dasc_time_seconds",
    "sc_time_seconds",
    "time_reduction_ratio",
    "space_reduction_ratio",
    "figure1_curves",
    "BETA_SECONDS",
    "collision_probability_single",
    "collision_probability_group",
    "wikipedia_collision_probability",
    "fit_k_log2",
    "figure2_curves",
]
