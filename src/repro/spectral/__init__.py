"""Spectral clustering substrate (the NJW algorithm and its numerics).

Implements everything the DASC pipeline's fourth step needs, from scratch:
normalized graph Laplacians (Eq. 2), Lanczos tridiagonalization + an
implicit-shift QL eigensolver for symmetric tridiagonal matrices (the
reduction chain the paper describes in Section 3.2), the NJW row-normalized
spectral embedding, and K-means with k-means++ seeding.
"""

from repro.spectral.laplacian import (
    degree_vector,
    normalized_laplacian,
    unnormalized_laplacian,
    random_walk_laplacian,
)
from repro.spectral.lanczos import lanczos_tridiagonalize
from repro.spectral.tridiagonal import tridiagonal_eigh
from repro.spectral.eigen import top_eigenvectors
from repro.spectral.embedding import spectral_embedding, row_normalize
from repro.spectral.kmeans import KMeans, kmeans_plus_plus_init
from repro.spectral.cluster import SpectralClustering

__all__ = [
    "degree_vector",
    "normalized_laplacian",
    "unnormalized_laplacian",
    "random_walk_laplacian",
    "lanczos_tridiagonalize",
    "tridiagonal_eigh",
    "top_eigenvectors",
    "spectral_embedding",
    "row_normalize",
    "KMeans",
    "kmeans_plus_plus_init",
    "SpectralClustering",
]
