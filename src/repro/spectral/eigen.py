"""Unified eigensolver front-end for the spectral pipeline.

Three interchangeable backends compute the ``k`` *largest* eigenpairs of a
symmetric (normalized-affinity) matrix:

* ``"lanczos"`` — the paper's route: from-scratch Lanczos tridiagonalization
  (:mod:`repro.spectral.lanczos`) + implicit-shift QL
  (:mod:`repro.spectral.tridiagonal`), a Ritz-pair extraction.
* ``"dense"`` — LAPACK ``eigh`` via numpy; the exact reference.
* ``"arpack"`` — :func:`scipy.sparse.linalg.eigsh`, the implicitly restarted
  Lanczos the PSC baseline's PARPACK dependency corresponds to.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.spectral.lanczos import lanczos_top_eigenpairs
from repro.spectral.tridiagonal import tridiagonal_eigh  # noqa: F401 (re-exported)

__all__ = ["top_eigenvectors"]

_BACKENDS = ("dense", "lanczos", "arpack")


def top_eigenvectors(L, k: int, *, backend: str = "dense", seed=0) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``k`` largest eigenvalues (descending) and their eigenvectors.

    Parameters
    ----------
    L:
        Symmetric matrix, dense or sparse.
    k:
        Number of eigenpairs; clipped to the matrix dimension.
    backend:
        One of ``"dense"``, ``"lanczos"``, ``"arpack"``.
    seed:
        Start-vector randomness for the iterative backends.

    Returns
    -------
    (eigenvalues, eigenvectors) with eigenvalues descending and
    eigenvectors as columns.
    """
    n = L.shape[0]
    if L.shape[0] != L.shape[1]:
        raise ValueError(f"matrix must be square, got {L.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {_BACKENDS}")

    if backend == "arpack" and k < n - 1 and n > 2:
        rng = np.random.default_rng(seed)
        v0 = rng.standard_normal(n)
        vals, vecs = spla.eigsh(L, k=k, which="LA", v0=v0)
        order = np.argsort(vals)[::-1]
        return vals[order], vecs[:, order]

    if backend == "lanczos" and n > 2:
        # Restarted Lanczos: handles degenerate eigenvalues (disconnected
        # affinity graphs) by deflated restarts after early breakdowns.
        dense = _densify(L)
        try:
            vals, vecs = lanczos_top_eigenpairs(lambda v: dense @ v, n, k, seed=seed)
        except (RuntimeError, np.linalg.LinAlgError):
            # Non-convergence (e.g. the tridiagonal QL hit its sweep cap):
            # degrade gracefully to the exact dense solver.
            vals = vecs = None
        if (
            vals is not None
            and vals.shape[0] == k
            and np.isfinite(vals).all()
            and np.isfinite(vecs).all()
        ):
            return vals, vecs
        # Space exhausted early (tiny matrices), non-convergence, or a
        # numerically broken result: fall through to dense.

    # Dense fallback (also the small-n path for the iterative backends).
    vals, vecs = np.linalg.eigh(_densify(L))
    order = np.argsort(vals)[::-1][:k]
    return vals[order], vecs[:, order]


def _densify(L) -> np.ndarray:
    if sp.issparse(L):
        return L.toarray()
    return np.asarray(L, dtype=np.float64)
