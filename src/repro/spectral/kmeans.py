"""K-means clustering (Lloyd's algorithm with k-means++ seeding), from scratch.

The final step of the NJW pipeline (Hartigan & Wong reference in the paper).
Fully vectorized: the assignment step is one pairwise-distance computation,
the update step one segmented mean. Empty clusters are re-seeded on the
point farthest from its centroid, so the algorithm always returns exactly
``n_clusters`` non-empty clusters when ``n >= n_clusters`` distinct points
exist.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.matrix import pairwise_sq_distances
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = ["kmeans_plus_plus_init", "KMeans"]


def kmeans_plus_plus_init(X: np.ndarray, n_clusters: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: centers drawn with probability ∝ squared distance."""
    X = check_2d(X)
    n = X.shape[0]
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    centers = np.empty((n_clusters, X.shape[1]))
    first = int(rng.integers(n))
    centers[0] = X[first]
    closest_sq = pairwise_sq_distances(X, centers[:1]).ravel()
    for c in range(1, n_clusters):
        total = closest_sq.sum()
        if total == 0:
            # All points coincide with chosen centers; fill with random picks.
            centers[c:] = X[rng.integers(n, size=n_clusters - c)]
            break
        probs = closest_sq / total
        idx = int(rng.choice(n, p=probs))
        centers[c] = X[idx]
        closest_sq = np.minimum(closest_sq, pairwise_sq_distances(X, centers[c : c + 1]).ravel())
    return centers


class KMeans:
    """Lloyd's algorithm with k-means++ restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters K.
    n_init:
        Independent restarts; the lowest-inertia run wins.
    max_iter:
        Lloyd iterations per restart.
    tol:
        Relative center-shift convergence tolerance.
    seed:
        Randomness for seeding.

    Attributes (after :meth:`fit`)
    ------------------------------
    cluster_centers_ : (K, d) final centroids
    labels_ : (n,) assignment of the training data
    inertia_ : float, sum of squared distances to assigned centroids
    n_iter_ : iterations used by the winning restart
    """

    def __init__(self, n_clusters: int, *, n_init: int = 4, max_iter: int = 100, tol: float = 1e-6, seed=None):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int | None = None

    def fit(self, X) -> "KMeans":
        """Cluster ``X``; keeps the best of ``n_init`` restarts."""
        X = check_2d(X)
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_samples={X.shape[0]} < n_clusters={self.n_clusters}"
            )
        rng = as_rng(self.seed)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._lloyd(X, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the training labels."""
        return self.fit(X).labels_

    def predict(self, X) -> np.ndarray:
        """Assign new points to the fitted centroids."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans is not fitted; call fit() first")
        X = check_2d(X)
        return np.argmin(pairwise_sq_distances(X, self.cluster_centers_), axis=1)

    # -- internals ----------------------------------------------------------

    def _lloyd(self, X: np.ndarray, rng: np.random.Generator):
        centers = kmeans_plus_plus_init(X, self.n_clusters, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            d2 = pairwise_sq_distances(X, centers)
            labels = np.argmin(d2, axis=1)
            new_centers = centers.copy()
            counts = np.bincount(labels, minlength=self.n_clusters)
            sums = np.zeros_like(centers)
            np.add.at(sums, labels, X)
            nonempty = counts > 0
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            # Re-seed empty clusters on the worst-served points. The
            # distance-to-assigned-center vector is masked after every pick:
            # argmax over the same stale vector would hand two empty
            # clusters the *same* point (the second overwriting the first's
            # label and leaving a cluster empty after all).
            empty = np.nonzero(~nonempty)[0]
            if empty.size:
                farthest = d2[np.arange(X.shape[0]), labels].astype(np.float64)
                for c in empty:
                    worst = int(np.argmax(farthest))
                    new_centers[c] = X[worst]
                    labels[worst] = c
                    farthest[worst] = -np.inf
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            scale = np.linalg.norm(centers) or 1.0
            if shift / scale < self.tol:
                break
        d2 = pairwise_sq_distances(X, centers)
        labels = np.argmin(d2, axis=1)
        inertia = float(d2[np.arange(X.shape[0]), labels].sum())
        return centers, labels, inertia, n_iter
