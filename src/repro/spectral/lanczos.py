"""Lanczos tridiagonalization (from scratch, with full reorthogonalization).

The paper's Section 3.2 reduces the Laplacian to a symmetric tridiagonal
matrix before QR, citing Cullum & Willoughby. This is the Lanczos process:
given symmetric ``A`` and a start vector, build an orthonormal Krylov basis
``Q`` with ``Q^T A Q = T`` tridiagonal. We keep full reorthogonalization
(one modified-Gram-Schmidt sweep per step) because the plain three-term
recurrence loses orthogonality catastrophically in floating point — the
cost is acceptable at the per-bucket sizes DASC produces.
"""

from __future__ import annotations

import numpy as np

from repro.observability import get_tracer
from repro.utils.rng import as_rng

__all__ = ["lanczos_tridiagonalize", "lanczos_top_eigenpairs"]

_BREAKDOWN_TOL = 1e-12


def lanczos_tridiagonalize(A, n_steps: int | None = None, *, seed=0):
    """Run ``n_steps`` of Lanczos on symmetric ``A``.

    Parameters
    ----------
    A:
        Symmetric matrix (dense array or anything supporting ``A @ v``).
    n_steps:
        Krylov dimension m (default: full dimension n).
    seed:
        Start-vector randomness.

    Returns
    -------
    alpha : (m,) diagonal of T
    beta : (m-1,) off-diagonal of T
    Q : (n, m) orthonormal Lanczos basis with ``Q^T A Q = T``

    Early breakdown (an invariant subspace found) truncates the outputs.
    """
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got {A.shape}")
    m = n if n_steps is None else int(n_steps)
    if not 1 <= m <= n:
        raise ValueError(f"n_steps must be in [1, {n}], got {n_steps}")

    rng = as_rng(seed)
    q = rng.standard_normal(n)
    q /= np.linalg.norm(q)

    Q = np.zeros((n, m))
    alpha = np.zeros(m)
    beta = np.zeros(max(m - 1, 0))

    tracer = get_tracer()
    Q[:, 0] = q
    for j in range(m):
        w = A @ Q[:, j]
        alpha[j] = Q[:, j] @ w
        w -= alpha[j] * Q[:, j]
        if j > 0:
            w -= beta[j - 1] * Q[:, j - 1]
        # Full reorthogonalization against the basis built so far.
        w -= Q[:, : j + 1] @ (Q[:, : j + 1].T @ w)
        if j + 1 == m:
            break
        norm = np.linalg.norm(w)
        if norm < _BREAKDOWN_TOL:
            # Invariant subspace: return the converged leading block.
            if tracer.enabled:
                tracer.event("lanczos.tridiagonalize", n=n, steps=j + 1, breakdown=True)
                tracer.metrics.counter("lanczos.steps").inc(j + 1)
            return alpha[: j + 1], beta[:j], Q[:, : j + 1]
        beta[j] = norm
        Q[:, j + 1] = w / norm
    if tracer.enabled:
        tracer.event("lanczos.tridiagonalize", n=n, steps=m, breakdown=False)
        tracer.metrics.counter("lanczos.steps").inc(m)
    return alpha, beta, Q


def lanczos_top_eigenpairs(matvec, n: int, k: int, *, n_steps: int | None = None, seed=0):
    """Top-``k`` eigenpairs of a symmetric operator via restarted Lanczos.

    A single Krylov space contains exactly one direction from each
    *degenerate* eigenspace (the projection of the start vector), so plain
    Lanczos cannot resolve an eigenvalue of multiplicity > 1 — and the
    normalized Laplacian of a graph with c connected components has
    eigenvalue 1 with multiplicity c, the common case for DASC buckets.
    This driver restarts with fresh random vectors deflated against the
    basis already built, accumulating Ritz pairs across runs until ``k``
    directions are available.

    Parameters
    ----------
    matvec:
        Callable ``v -> A @ v`` (lets MapReduce-backed operators plug in).
    n:
        Operator dimension.
    k:
        Number of eigenpairs wanted.
    n_steps:
        Krylov steps per run (``None``: a 4k+20-ish default).
    seed:
        Start-vector randomness.

    Returns
    -------
    (eigenvalues, eigenvectors) — eigenvalues descending, ``k`` columns
    (fewer only if the whole space is exhausted first).
    """
    from repro.spectral.tridiagonal import tridiagonal_eigh

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    m_run = n_steps if n_steps is not None else min(n, max(4 * k + 20, 30))
    m_run = max(1, min(m_run, n))
    rng = as_rng(seed)

    basis: list[np.ndarray] = []  # all orthonormal columns built so far
    ritz_vals: list[float] = []
    ritz_vecs: list[np.ndarray] = []

    def deflate(v: np.ndarray) -> np.ndarray:
        for b in basis:
            v = v - (b @ v) * b
        return v

    tracer = get_tracer()
    n_runs = 0
    n_matvecs = 0

    # Restart only after an *early breakdown* — the signature of having
    # exhausted an invariant subspace (degenerate eigenvalues). A run that
    # completes all its steps means the Krylov space is still productive
    # and no deflated restart would surface anything the Ritz pairs missed.
    max_restarts = k + 2
    for _ in range(max_restarts):
        if len(basis) >= n:
            break
        # Fresh start vector, orthogonal to everything already built.
        q = deflate(rng.standard_normal(n))
        norm = np.linalg.norm(q)
        if norm < _BREAKDOWN_TOL:
            break
        q /= norm

        n_runs += 1
        seg_cols: list[np.ndarray] = [q]
        alpha: list[float] = []
        beta: list[float] = []
        steps = min(m_run, n - len(basis))
        broke_down = False
        for j in range(steps):
            w = matvec(seg_cols[j])
            n_matvecs += 1
            alpha.append(float(seg_cols[j] @ w))
            w = w - alpha[j] * seg_cols[j]
            if j > 0:
                w = w - beta[j - 1] * seg_cols[j - 1]
            # Full reorthogonalization against this segment AND prior runs.
            for b in seg_cols:
                w = w - (b @ w) * b
            w = deflate(w)
            if j + 1 == steps:
                break
            norm = np.linalg.norm(w)
            if norm < _BREAKDOWN_TOL:
                broke_down = True
                break
            beta.append(float(norm))
            seg_cols.append(w / norm)

        Q_seg = np.column_stack(seg_cols)
        theta, U = tridiagonal_eigh(
            np.array(alpha[: Q_seg.shape[1]]), np.array(beta[: Q_seg.shape[1] - 1])
        )
        vectors = Q_seg @ U
        for t, vcol in zip(theta, vectors.T):
            ritz_vals.append(float(t))
            ritz_vecs.append(vcol)
        basis.extend(seg_cols)
        if not broke_down and len(ritz_vals) >= k:
            break

    if tracer.enabled:
        tracer.event(
            "lanczos.solve",
            n=n, k=k, restarts=n_runs, matvecs=n_matvecs, basis_size=len(basis),
        )
        tracer.metrics.counter("lanczos.matvecs").inc(n_matvecs)
        tracer.metrics.counter("lanczos.restarts").inc(n_runs)

    order = np.argsort(ritz_vals)[::-1][:k]
    vals = np.array([ritz_vals[i] for i in order])
    vecs = np.column_stack([ritz_vecs[i] for i in order])
    return vals, vecs
