"""Symmetric tridiagonal eigensolver: implicit-shift QL with Wilkinson shifts.

The classic ``tql2`` algorithm (EISPACK lineage; Numerical Recipes' tqli):
O(n) per implicit QL sweep, a handful of sweeps per eigenvalue, and plane
rotations accumulated into the eigenvector matrix. Combined with
:mod:`repro.spectral.lanczos` this is the paper's "transform L into a
symmetric tridiagonal matrix, then apply QR decomposition" pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tridiagonal_eigh"]

_MAX_SWEEPS = 50


def tridiagonal_eigh(alpha, beta) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of the symmetric tridiagonal matrix T(alpha, beta).

    Parameters
    ----------
    alpha:
        (n,) main diagonal.
    beta:
        (n-1,) sub/super-diagonal.

    Returns
    -------
    eigenvalues : (n,) ascending
    eigenvectors : (n, n), column i pairs with eigenvalue i
    """
    d = np.asarray(alpha, dtype=np.float64).copy()
    n = d.shape[0]
    if n == 0:
        raise ValueError("alpha must be non-empty")
    e = np.zeros(n)
    beta = np.asarray(beta, dtype=np.float64)
    if beta.shape[0] != max(n - 1, 0):
        raise ValueError(f"beta must have length {n - 1}, got {beta.shape[0]}")
    e[: n - 1] = beta
    Z = np.eye(n)

    for l in range(n):
        for iteration in range(_MAX_SWEEPS + 1):
            # Find the first negligible off-diagonal at or after l.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e[m]) <= np.finfo(float).eps * dd:
                    break
                m += 1
            if m == l:
                break  # eigenvalue l converged
            if iteration == _MAX_SWEEPS:
                raise RuntimeError(f"tridiagonal QL failed to converge at index {l}")
            # Wilkinson shift from the trailing 2x2 of the active block.
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + (r if g >= 0 else -r))
            s = c = 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = np.hypot(f, g)
                e[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    e[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                # Accumulate the plane rotation into the eigenvector matrix.
                tmp = Z[:, i + 1].copy()
                Z[:, i + 1] = s * Z[:, i] + c * tmp
                Z[:, i] = c * Z[:, i] - s * tmp
            else:
                d[l] -= p
                e[l] = g
                e[m] = 0.0
                continue
            continue

    order = np.argsort(d, kind="stable")
    return d[order], Z[:, order]
