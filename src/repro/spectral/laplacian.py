"""Graph Laplacians for affinity matrices.

The paper's Eq. (2) uses the symmetric normalized form
``L = D^{-1/2} S D^{-1/2}`` (note: this is the *normalized affinity*; NJW
cluster structure lives in its **largest** eigenvectors, equivalently the
smallest of ``I - L``). Degree inversion exploits that ``D`` is diagonal —
an O(N) operation, as the paper's complexity analysis assumes.

Isolated vertices (zero degree) get a zero row/column rather than a NaN,
which keeps per-bucket Laplacians well-defined when a bucket holds mutually
dissimilar points.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square

__all__ = [
    "degree_vector",
    "normalized_laplacian",
    "unnormalized_laplacian",
    "random_walk_laplacian",
]


def _as_affinity(S):
    if sp.issparse(S):
        if S.shape[0] != S.shape[1]:
            raise ValueError(f"affinity must be square, got {S.shape}")
        return S.tocsr()
    return check_square(S, name="affinity")


def degree_vector(S) -> np.ndarray:
    """Row sums of the affinity matrix (vertex degrees)."""
    S = _as_affinity(S)
    if sp.issparse(S):
        return np.asarray(S.sum(axis=1)).ravel()
    return S.sum(axis=1)


def _inv_sqrt_degrees(degrees: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore"):
        inv = 1.0 / np.sqrt(degrees)
    inv[~np.isfinite(inv)] = 0.0
    return inv


def normalized_laplacian(S):
    """Eq. (2): ``D^{-1/2} S D^{-1/2}`` (dense in, dense out; sparse in, sparse out).

    Eigenvalues lie in [-1, 1]; the top eigenvectors span the NJW embedding.
    """
    S = _as_affinity(S)
    d_inv_sqrt = _inv_sqrt_degrees(degree_vector(S))
    if sp.issparse(S):
        D = sp.diags(d_inv_sqrt)
        return (D @ S @ D).tocsr()
    return S * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


def unnormalized_laplacian(S) -> np.ndarray:
    """``L = D - S`` (positive semi-definite for non-negative symmetric S)."""
    S = _as_affinity(S)
    d = degree_vector(S)
    if sp.issparse(S):
        return (sp.diags(d) - S).tocsr()
    L = -S.copy()
    L[np.diag_indices_from(L)] += d
    return L


def random_walk_laplacian(S) -> np.ndarray:
    """``P = D^{-1} S`` — the transition matrix of the similarity random walk."""
    S = _as_affinity(S)
    d = degree_vector(S)
    with np.errstate(divide="ignore"):
        d_inv = 1.0 / d
    d_inv[~np.isfinite(d_inv)] = 0.0
    if sp.issparse(S):
        return (sp.diags(d_inv) @ S).tocsr()
    return S * d_inv[:, None]
