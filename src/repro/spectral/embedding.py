"""NJW spectral embedding: top eigenvectors, rows normalized to unit length.

The paper (Section 3.2): stack the first K eigenvectors of the normalized
Laplacian in columns, then normalize each row ``Y_ij = X_ij / sqrt(sum_j
X_ij^2)`` and treat rows as points on the unit sphere for K-means.
"""

from __future__ import annotations

import numpy as np

from repro.spectral.eigen import top_eigenvectors
from repro.spectral.laplacian import normalized_laplacian

__all__ = ["row_normalize", "spectral_embedding"]


def row_normalize(X) -> np.ndarray:
    """Scale each row to unit Euclidean norm (zero rows are left at zero)."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    safe = np.where(norms == 0, 1.0, norms)
    return X / safe


def spectral_embedding(S, k: int, *, backend: str = "dense", seed=0, validate: bool = False) -> np.ndarray:
    """(n, k) row-normalized NJW embedding of affinity matrix ``S``.

    Computes ``L = D^{-1/2} S D^{-1/2}`` (Eq. 2), extracts the ``k`` largest
    eigenvectors and row-normalizes. With ``validate`` the extracted
    eigenvalues are asserted to lie in ``[-1, 1]`` (the Eq.-2 spectrum
    bound) and the embedding rows to be unit-norm, raising
    :class:`repro.verify.InvariantViolation` otherwise.
    """
    L = normalized_laplacian(S)
    vals, vecs = top_eigenvectors(L, k, backend=backend, seed=seed)
    Y = row_normalize(vecs)
    if validate:
        from repro.verify.invariants import check_eigenvalues, check_embedding

        check_eigenvalues(vals, stage="spectral.embedding")
        check_embedding(Y, stage="spectral.embedding")
    return Y
