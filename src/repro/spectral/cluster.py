"""Exact spectral clustering — the paper's SC baseline.

The NJW pipeline on the *full* O(N^2) Gram matrix: Gaussian affinity
(Eq. 1), normalized Laplacian (Eq. 2), top-K eigenvectors, row-normalized
embedding, K-means. This is the accuracy gold standard DASC is compared
against and the cost baseline it beats.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.functions import GaussianKernel, Kernel
from repro.kernels.matrix import gram_matrix
from repro.spectral.embedding import spectral_embedding
from repro.spectral.kmeans import KMeans
from repro.utils.memory import MemoryLedger, dense_matrix_bytes
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_2d

__all__ = ["SpectralClustering"]


class SpectralClustering:
    """NJW spectral clustering on the full kernel matrix.

    Parameters
    ----------
    n_clusters:
        Number of clusters K.
    kernel:
        Kernel object (default: Gaussian with ``sigma``).
    sigma:
        Gaussian bandwidth used when ``kernel`` is not given.
    eig_backend:
        Eigensolver backend (see :func:`repro.spectral.eigen.top_eigenvectors`).
    zero_diagonal:
        Zero the affinity diagonal (the NJW / Algorithm-2 convention).
    seed:
        Randomness for the eigensolver start vector and K-means.

    Attributes (after :meth:`fit`)
    ------------------------------
    labels_ : (n,) cluster assignments
    affinity_matrix_ : the dense Gram matrix used
    stopwatch_ : per-stage wall time
    memory_ : Gram-matrix footprint ledger (Figure 6(b) accounting)
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        kernel: Kernel | None = None,
        sigma: float = 1.0,
        eig_backend: str = "dense",
        zero_diagonal: bool = True,
        kmeans_n_init: int = 4,
        seed=None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.kernel = kernel if kernel is not None else GaussianKernel(sigma)
        self.eig_backend = eig_backend
        self.zero_diagonal = bool(zero_diagonal)
        self.kmeans_n_init = int(kmeans_n_init)
        self.seed = seed
        self.labels_: np.ndarray | None = None
        self.affinity_matrix_: np.ndarray | None = None
        self.embedding_: np.ndarray | None = None
        self.stopwatch_ = Stopwatch()
        self.memory_ = MemoryLedger()

    def fit(self, X) -> "SpectralClustering":
        """Cluster ``X`` with the full-matrix NJW pipeline."""
        X = check_2d(X)
        n = X.shape[0]
        if n < self.n_clusters:
            raise ValueError(f"n_samples={n} < n_clusters={self.n_clusters}")
        with self.stopwatch_.lap("gram"):
            S = gram_matrix(X, self.kernel, zero_diagonal=self.zero_diagonal)
        self.memory_.charge("gram", dense_matrix_bytes(n))
        with self.stopwatch_.lap("eigen"):
            Y = spectral_embedding(S, self.n_clusters, backend=self.eig_backend, seed=_to_int_seed(self.seed))
        with self.stopwatch_.lap("kmeans"):
            km = KMeans(self.n_clusters, n_init=self.kmeans_n_init, seed=self.seed)
            self.labels_ = km.fit_predict(Y)
        self.affinity_matrix_ = S
        self.embedding_ = Y
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(X).labels_


def _to_int_seed(seed) -> int:
    """Derive a plain int seed (for solver start vectors) from any seed form."""
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return int(np.random.default_rng(seed).integers(2**31))
