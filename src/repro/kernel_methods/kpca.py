"""Kernel principal component analysis over exact or approximated kernels.

Standard KPCA (Schölkopf et al., one of the paper's kernel-method
references): double-centre the Gram matrix, eigendecompose, scale the
leading eigenvectors by sqrt(eigenvalue). When fed a DASC
:class:`~repro.core.approx_kernel.ApproximateKernel` the projection is the
approximation's KPCA — computed blockwise per bucket where possible, which
is the memory win the paper's approximation buys.
"""

from __future__ import annotations

import numpy as np

from repro.core.approx_kernel import ApproximateKernel
from repro.utils.validation import check_square

__all__ = ["centre_gram", "KernelPCA"]


def centre_gram(K: np.ndarray) -> np.ndarray:
    """Double-centre a Gram matrix (feature-space mean removal)."""
    K = check_square(K, name="K")
    row = K.mean(axis=1, keepdims=True)
    col = K.mean(axis=0, keepdims=True)
    return K - row - col + K.mean()


class KernelPCA:
    """Kernel PCA on a precomputed (possibly approximated) Gram matrix.

    Parameters
    ----------
    n_components:
        Number of principal directions retained.

    Attributes (after :meth:`fit`)
    ------------------------------
    eigenvalues_ : (n_components,) descending, clipped at 0
    projections_ : (n, n_components) sample projections (the KPCA scores)
    """

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self.eigenvalues_: np.ndarray | None = None
        self.projections_: np.ndarray | None = None

    def fit(self, K) -> "KernelPCA":
        """Fit on a dense Gram matrix or an :class:`ApproximateKernel`."""
        if isinstance(K, ApproximateKernel):
            K = K.to_dense()
        K = check_square(K, name="K")
        n = K.shape[0]
        k = min(self.n_components, n)
        Kc = centre_gram(K)
        vals, vecs = np.linalg.eigh(Kc)
        order = np.argsort(vals)[::-1][:k]
        lam = np.clip(vals[order], 0.0, None)
        self.eigenvalues_ = lam
        # Scores: eigenvector * sqrt(lambda); zero-eigenvalue directions
        # project to zero rather than dividing by ~0.
        self.projections_ = vecs[:, order] * np.sqrt(lam)[None, :]
        return self

    def fit_transform(self, K) -> np.ndarray:
        """Fit and return the sample projections."""
        return self.fit(K).projections_

    def explained_ratio(self) -> np.ndarray:
        """Fraction of (retained) kernel variance per component."""
        if self.eigenvalues_ is None:
            raise RuntimeError("KernelPCA is not fitted; call fit() first")
        total = self.eigenvalues_.sum()
        if total == 0:
            return np.zeros_like(self.eigenvalues_)
        return self.eigenvalues_ / total
