"""Kernel K-Means over exact or approximated kernels.

Kernel K-Means assigns each point to the cluster minimising the
feature-space distance

    ||phi(x) - m_c||^2 = K_xx - 2/|C| sum_{j in C} K_xj
                        + 1/|C|^2 sum_{i,j in C} K_ij,

computable from the Gram matrix alone. Kernel K-Means and normalized-cut
spectral clustering optimise closely related objectives (Dhillon et al.),
which makes this the natural second demonstration of the paper's
approximation: given a DASC block-diagonal kernel, assignments are computed
per bucket (a point's similarity to points outside its bucket is zero by
construction, so the blocks decouple exactly).
"""

from __future__ import annotations

import numpy as np

from repro.core.approx_kernel import ApproximateKernel
from repro.utils.rng import as_rng
from repro.utils.validation import check_square

__all__ = ["KernelKMeans"]


class KernelKMeans:
    """Lloyd-style kernel K-Means on a precomputed Gram matrix.

    Parameters
    ----------
    n_clusters:
        K.
    max_iter / tol:
        Iteration controls; ``tol`` is the fraction of points allowed to
        change cluster at convergence.
    n_init:
        Random-assignment restarts; lowest feature-space inertia wins.
    seed:
        Initialisation randomness.

    Attributes (after :meth:`fit`)
    ------------------------------
    labels_ : (n,)
    inertia_ : feature-space within-cluster sum of squares
    """

    def __init__(self, n_clusters: int, *, max_iter: int = 50, tol: float = 0.0, n_init: int = 3, seed=None):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.n_init = int(n_init)
        self.seed = seed
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None

    # -- public API ----------------------------------------------------------

    def fit(self, K) -> "KernelKMeans":
        """Cluster from a dense Gram matrix or an :class:`ApproximateKernel`.

        An approximate kernel is clustered blockwise: cluster budgets are
        split across buckets proportionally (at least one each), each block
        runs kernel K-Means independently, and labels are offset globally —
        mirroring how DASC parallelises spectral clustering.
        """
        if isinstance(K, ApproximateKernel):
            return self._fit_blocks(K)
        K = check_square(K, name="K")
        if K.shape[0] < self.n_clusters:
            raise ValueError(f"n_samples={K.shape[0]} < n_clusters={self.n_clusters}")
        rng = as_rng(self.seed)
        best = None
        for _ in range(self.n_init):
            labels, inertia = self._lloyd(K, self.n_clusters, rng)
            if best is None or inertia < best[1]:
                best = (labels, inertia)
        self.labels_, self.inertia_ = best
        return self

    def fit_predict(self, K) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(K).labels_

    # -- internals ----------------------------------------------------------

    def _fit_blocks(self, approx: ApproximateKernel) -> "KernelKMeans":
        from repro.core.allocation import allocate_clusters

        sizes = approx.block_sizes
        ks = allocate_clusters(sizes, self.n_clusters)
        rng = as_rng(self.seed)
        labels = np.full(approx.n_samples, -1, dtype=np.int64)
        inertia = 0.0
        offset = 0
        for block, idx, k_i in zip(approx.blocks, approx.bucket_indices, ks):
            local, block_inertia = self._lloyd(block, int(k_i), rng)
            labels[idx] = offset + local
            inertia += block_inertia
            offset += int(k_i)
        if (labels < 0).any():
            raise RuntimeError(
                f"{int((labels < 0).sum())} points were never assigned to a block cluster"
            )
        self.labels_ = labels
        self.inertia_ = inertia
        return self

    def _lloyd(self, K: np.ndarray, k: int, rng: np.random.Generator):
        n = K.shape[0]
        k = min(k, n)
        labels = rng.integers(0, k, n)
        labels[rng.permutation(n)[:k]] = np.arange(k)  # every cluster non-empty
        diag = np.diag(K)
        for _ in range(self.max_iter):
            dist = self._distances(K, diag, labels, k)
            new_labels = np.argmin(dist, axis=1)
            # Keep clusters alive: reseed empties on the worst-served point.
            for c in range(k):
                if not np.any(new_labels == c):
                    worst = int(np.argmax(dist[np.arange(n), new_labels]))
                    new_labels[worst] = c
            changed = np.count_nonzero(new_labels != labels)
            labels = new_labels
            if changed <= self.tol * n:
                break
        dist = self._distances(K, diag, labels, k)
        inertia = float(dist[np.arange(n), labels].sum())
        return labels.astype(np.int64), inertia

    @staticmethod
    def _distances(K: np.ndarray, diag: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
        """(n, k) feature-space squared distances to each cluster mean."""
        n = K.shape[0]
        onehot = np.zeros((n, k))
        onehot[np.arange(n), labels] = 1.0
        counts = onehot.sum(axis=0)
        counts = np.where(counts == 0, 1.0, counts)
        KZ = K @ onehot  # sum of similarities to each cluster
        within = np.einsum("ic,ic->c", onehot, KZ)  # sum_{i,j in C} K_ij
        return diag[:, None] - 2.0 * KZ / counts[None, :] + (within / counts**2)[None, :]
