"""Kernel methods consuming the DASC approximation.

The paper's central claim is that the LSH kernel approximation "is
independent of the subsequently used kernel-based machine learning
algorithm" (Section 3.1) — spectral clustering is only the demonstration.
This package makes that claim concrete inside the library: kernel PCA and
kernel K-Means both accept either a full Gram matrix or a DASC
:class:`~repro.core.approx_kernel.ApproximateKernel`, exploiting the block
structure when given one.
"""

from repro.kernel_methods.kpca import KernelPCA, centre_gram
from repro.kernel_methods.kernel_kmeans import KernelKMeans
from repro.kernel_methods.svm import KernelSVM

__all__ = ["KernelPCA", "centre_gram", "KernelKMeans", "KernelSVM"]
