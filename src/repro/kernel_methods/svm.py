"""Binary kernel SVM trained with simplified SMO.

The paper motivates kernel scaling with SVM training ("the false negative
rate of their image-based human detection algorithm is reduced by ~50% by
only doubling the size of [the] training dataset for their SVM
classifier"), and notes the bottleneck is the *training* kernel matrix.
This classifier closes that loop: it trains from a precomputed Gram matrix,
so it can consume either the exact kernel or a DASC approximation
restricted to a bucket — and its existence demonstrates once more that the
approximation layer is algorithm-agnostic.

Simplified SMO (Platt's algorithm with random second-choice heuristic):
adequate for the dataset sizes the test-suite and examples use; the point
is the kernel interface, not state-of-the-art QP speed.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.functions import GaussianKernel, Kernel
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d, check_labels

__all__ = ["KernelSVM"]


class KernelSVM:
    """Binary soft-margin SVM with a kernel, trained by simplified SMO.

    Parameters
    ----------
    kernel / sigma:
        Kernel object (default Gaussian with bandwidth ``sigma``).
    C:
        Soft-margin penalty.
    tol:
        KKT violation tolerance.
    max_passes:
        Consecutive full passes without an update before stopping.
    seed:
        Second-multiplier selection randomness.

    Attributes (after :meth:`fit`)
    ------------------------------
    alphas_ : (n,) dual coefficients
    bias_ : float
    support_ : indices with non-zero alpha
    """

    def __init__(
        self,
        *,
        kernel: Kernel | None = None,
        sigma: float = 1.0,
        C: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 10_000,
        seed=None,
    ):
        if C <= 0:
            raise ValueError(f"C must be > 0, got {C}")
        self.kernel = kernel if kernel is not None else GaussianKernel(sigma)
        self.C = float(C)
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iter = int(max_iter)
        self.seed = seed
        self.alphas_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.support_: np.ndarray | None = None
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X, y) -> "KernelSVM":
        """Train on labels in {-1, +1} (0/1 labels are remapped)."""
        X = check_2d(X)
        y = check_labels(y, n_samples=X.shape[0]).astype(np.float64)
        classes = np.unique(y)
        if classes.shape[0] != 2:
            raise ValueError(f"binary SVM needs exactly 2 classes, got {classes}")
        y = np.where(y == classes[0], -1.0, 1.0)
        n = X.shape[0]
        K = self.kernel(X)
        rng = as_rng(self.seed)

        alphas = np.zeros(n)
        b = 0.0
        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                iters += 1
                err_i = (alphas * y) @ K[:, i] + b - y[i]
                if (y[i] * err_i < -self.tol and alphas[i] < self.C) or (
                    y[i] * err_i > self.tol and alphas[i] > 0
                ):
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    err_j = (alphas * y) @ K[:, j] + b - y[j]
                    ai_old, aj_old = alphas[i], alphas[j]
                    if y[i] != y[j]:
                        lo = max(0.0, aj_old - ai_old)
                        hi = min(self.C, self.C + aj_old - ai_old)
                    else:
                        lo = max(0.0, ai_old + aj_old - self.C)
                        hi = min(self.C, ai_old + aj_old)
                    if lo == hi:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    aj = np.clip(aj_old - y[j] * (err_i - err_j) / eta, lo, hi)
                    if abs(aj - aj_old) < 1e-5:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alphas[i], alphas[j] = ai, aj
                    b1 = b - err_i - y[i] * (ai - ai_old) * K[i, i] - y[j] * (aj - aj_old) * K[i, j]
                    b2 = b - err_j - y[i] * (ai - ai_old) * K[i, j] - y[j] * (aj - aj_old) * K[j, j]
                    if 0 < ai < self.C:
                        b = b1
                    elif 0 < aj < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0

        self.alphas_ = alphas
        self.bias_ = float(b)
        self.support_ = np.nonzero(alphas > 1e-8)[0]
        self._X = X
        self._y = y
        self._classes = classes
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed margin for each row of ``X``."""
        if self.alphas_ is None:
            raise RuntimeError("KernelSVM is not fitted; call fit() first")
        X = check_2d(X)
        sv = self.support_
        K = self.kernel(X, self._X[sv])
        return K @ (self.alphas_[sv] * self._y[sv]) + self.bias_

    def predict(self, X) -> np.ndarray:
        """Predicted labels in the original label alphabet."""
        margins = self.decision_function(X)
        return np.where(margins < 0, self._classes[0], self._classes[1])

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = check_labels(y)
        return float(np.mean(self.predict(X) == y))
