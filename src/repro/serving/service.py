"""Micro-batched assignment serving on top of :class:`DASCModel`.

The ROADMAP's north star serves "heavy traffic"; this layer adds what a
request path needs beyond the raw model:

* **micro-batching** — requests are processed in fixed-size slices so one
  huge array cannot blow the per-batch kernel temporaries, and per-batch
  latency is an honest unit of measurement;
* **signature→route LRU cache** — routing is a pure function of the
  signature, and real traffic is Zipfian over signatures (points from the
  same region hash alike), so the Hamming ladder is paid once per distinct
  signature, not once per request;
* **observability** — every batch runs under a ``serving.batch`` tracer
  span, and a :class:`MetricsRegistry` accumulates request counts, route-
  method mix, cache hits and latency histograms that
  :meth:`AssignmentService.latency_summary` distils into p50/p95/p99 (the
  numbers ``repro serve-bench`` reports and CI smoke-checks).
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter

import numpy as np

from repro.observability import MetricsRegistry, get_tracer
from repro.observability.metrics import time_buckets
from repro.serving.model import ROUTE_NAMES, DASCModel
from repro.utils.validation import check_2d

__all__ = ["AssignmentService"]


class _RouteCache:
    """Tiny LRU over ``signature -> (bucket_id, method)`` routing decisions."""

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[int, tuple[int, int]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: int):
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: int, entry: tuple[int, int]) -> None:
        if self.capacity == 0:
            return
        self._data[key] = entry
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)


class AssignmentService:
    """Serve cluster assignments for a fitted :class:`DASCModel`.

    Parameters
    ----------
    model:
        The frozen artifact to serve.
    batch_size:
        Micro-batch width; requests are sliced to at most this many points.
    cache_size:
        Capacity of the signature→route LRU (0 disables caching).
    max_route_distance:
        Forwarded to :meth:`DASCModel.route` — Hamming radius beyond which
        queries skip the bucket ladder and take the global-centroid
        fallback.
    metrics:
        An external :class:`MetricsRegistry` to record into (a fresh
        private one by default).
    """

    def __init__(
        self,
        model: DASCModel,
        *,
        batch_size: int = 256,
        cache_size: int = 4096,
        max_route_distance: int | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.batch_size = int(batch_size)
        self.max_route_distance = max_route_distance
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cache = _RouteCache(int(cache_size))
        self._busy_seconds = 0.0

    @classmethod
    def from_store(cls, store, key: str, *, retry=None, **kwargs) -> "AssignmentService":
        """Load the model through the resilient/quarantine path and serve it."""
        return cls(DASCModel.load(store, key, retry=retry), **kwargs)

    # -- the request path ----------------------------------------------------

    def assign(self, X) -> np.ndarray:
        """Assign a request of points; processed in micro-batches."""
        X = check_2d(X)
        out = np.empty(X.shape[0], dtype=np.int64)
        for start in range(0, X.shape[0], self.batch_size):
            stop = min(start + self.batch_size, X.shape[0])
            out[start:stop] = self._assign_batch(X[start:stop])
        return out

    def _assign_batch(self, Q: np.ndarray) -> np.ndarray:
        tracer = get_tracer()
        t0 = perf_counter()
        with tracer.span("serving.batch", n_points=Q.shape[0]) as span:
            signatures = self.model.hasher.hash(Q)
            n = signatures.shape[0]
            bucket_ids = np.empty(n, dtype=np.int64)
            methods = np.empty(n, dtype=np.int64)
            missing: list[int] = []
            for i, sig in enumerate(signatures.tolist()):
                cached = self._cache.get(sig)
                if cached is None:
                    missing.append(i)
                else:
                    bucket_ids[i], methods[i] = cached
            if missing:
                rows = np.asarray(missing, dtype=np.int64)
                fresh_b, fresh_m = self.model.route(
                    signatures[rows], max_route_distance=self.max_route_distance
                )
                bucket_ids[rows] = fresh_b
                methods[rows] = fresh_m
                for i, b, m in zip(missing, fresh_b.tolist(), fresh_m.tolist()):
                    self._cache.put(int(signatures[i]), (b, m))
            labels, methods = self.model.assign_routed(Q, bucket_ids, methods)
            elapsed = perf_counter() - t0
            span.set("cache_hits", n - len(missing))
            span.set("seconds", elapsed)
        self._record(n, len(missing), methods, elapsed)
        return labels

    def _record(self, n: int, n_missing: int, methods: np.ndarray, elapsed: float) -> None:
        m = self.metrics
        m.counter("serving.requests").inc(n)
        m.counter("serving.batches").inc()
        m.counter("serving.cache.hits").inc(n - n_missing)
        m.counter("serving.cache.misses").inc(n_missing)
        for code, name in enumerate(ROUTE_NAMES):
            hits = int((methods == code).sum())
            if hits:
                m.counter(f"serving.route.{name}").inc(hits)
        m.histogram("serving.batch_seconds", buckets=time_buckets()).observe(elapsed)
        per_point = elapsed / n
        point_hist = m.histogram("serving.assign_seconds", buckets=time_buckets())
        for _ in range(n):
            point_hist.observe(per_point)
        self._busy_seconds += elapsed

    # -- reporting -----------------------------------------------------------

    def latency_summary(self) -> dict:
        """p50/p95/p99 per-point latency plus batch stats, from the registry."""
        point = self.metrics.histogram("serving.assign_seconds", buckets=time_buckets())
        batch = self.metrics.histogram("serving.batch_seconds", buckets=time_buckets())
        return {
            "requests": self.metrics.counter("serving.requests").value,
            "batches": self.metrics.counter("serving.batches").value,
            "p50_s": point.quantile(0.50),
            "p95_s": point.quantile(0.95),
            "p99_s": point.quantile(0.99),
            "batch_p99_s": batch.quantile(0.99),
            "mean_s": point.mean,
            "throughput_pts_per_s": (
                point.count / self._busy_seconds if self._busy_seconds > 0 else None
            ),
        }

    def route_mix(self) -> dict:
        """Requests per routing rung (exact/near/nearest/fallback) + cache."""
        return {
            **{
                name: self.metrics.counter(f"serving.route.{name}").value
                for name in ROUTE_NAMES
            },
            "cache_hits": self._cache.hits,
            "cache_misses": self._cache.misses,
            "cache_entries": len(self._cache),
        }
