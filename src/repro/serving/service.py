"""Micro-batched assignment serving on top of :class:`DASCModel`.

The ROADMAP's north star serves "heavy traffic"; this layer adds what a
request path needs beyond the raw model:

* **micro-batching** — requests are processed in fixed-size slices so one
  huge array cannot blow the per-batch kernel temporaries, and per-batch
  latency is an honest unit of measurement;
* **signature→route LRU cache** — routing is a pure function of the
  signature, and real traffic is Zipfian over signatures (points from the
  same region hash alike), so the Hamming ladder is paid once per distinct
  signature, not once per request;
* **observability** — every batch runs under a ``serving.batch`` tracer
  span, and a :class:`MetricsRegistry` accumulates request counts, route-
  method mix, cache hits and latency histograms that
  :meth:`AssignmentService.latency_summary` distils into p50/p95/p99 (the
  numbers ``repro serve-bench`` reports and CI smoke-checks);
* **admission control + replica scaling** — with a ``queue_watermark``
  set, each request's micro-batch queue depth is admitted against the
  simulated replica pool: depth beyond what ``max_replicas`` can absorb
  sheds the request with a structured :exc:`OverloadError` (the caller's
  backpressure signal), sustained load grows the pool toward
  ``max_replicas``, and an EWMA of recent depth shrinks it back to
  ``min_replicas`` when traffic fades — the serving-side mirror of the
  cluster autoscaler in :mod:`repro.mapreduce.autoscale`.
"""

from __future__ import annotations

from collections import OrderedDict
from math import ceil
from time import perf_counter

import numpy as np

from repro.observability import MetricsRegistry, get_tracer
from repro.observability.metrics import time_buckets
from repro.serving.model import ROUTE_NAMES, DASCModel
from repro.utils.validation import check_2d

__all__ = ["AssignmentService", "OverloadError"]


class OverloadError(RuntimeError):
    """A request was shed: its queue depth exceeds the replica pool's ceiling.

    Structured so callers can implement backpressure: ``queue_depth`` is
    the micro-batches the rejected request would enqueue, ``watermark``
    the per-replica depth each replica absorbs, and ``n_replicas`` /
    ``max_replicas`` the pool's current and maximum size.
    """

    def __init__(self, *, queue_depth: int, watermark: int, n_replicas: int, max_replicas: int):
        self.queue_depth = queue_depth
        self.watermark = watermark
        self.n_replicas = n_replicas
        self.max_replicas = max_replicas
        super().__init__(
            f"request shed: queue depth {queue_depth} exceeds capacity "
            f"{max_replicas * watermark} ({max_replicas} replicas x watermark "
            f"{watermark}; currently {n_replicas} replica(s))"
        )


class _RouteCache:
    """Tiny LRU over ``signature -> (bucket_id, method)`` routing decisions."""

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[int, tuple[int, int]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: int):
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: int, entry: tuple[int, int]) -> None:
        if self.capacity == 0:
            return
        self._data[key] = entry
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)


class AssignmentService:
    """Serve cluster assignments for a fitted :class:`DASCModel`.

    Parameters
    ----------
    model:
        The frozen artifact to serve.
    batch_size:
        Micro-batch width; requests are sliced to at most this many points.
    cache_size:
        Capacity of the signature→route LRU (0 disables caching).
    max_route_distance:
        Forwarded to :meth:`DASCModel.route` — Hamming radius beyond which
        queries skip the bucket ladder and take the global-centroid
        fallback.
    metrics:
        An external :class:`MetricsRegistry` to record into (a fresh
        private one by default).
    queue_watermark:
        Micro-batches of queue depth one replica absorbs before the pool
        must grow. ``None`` (the default) disables admission control and
        replica scaling entirely — every request is served.
    min_replicas / max_replicas:
        Bounds of the simulated replica pool. A request whose depth
        exceeds ``max_replicas * queue_watermark`` is shed with
        :exc:`OverloadError` before any work is done.
    """

    #: EWMA smoothing for the scale-down signal: recent queue depth counts
    #: this fraction, history the rest. Scale-*up* reacts instantly to the
    #: raw depth (and snaps the EWMA up to it); only the decay path reads
    #: the smoothed value, so one quiet request never tears the pool down.
    DECAY_ALPHA = 0.1

    def __init__(
        self,
        model: DASCModel,
        *,
        batch_size: int = 256,
        cache_size: int = 4096,
        max_route_distance: int | None = None,
        metrics: MetricsRegistry | None = None,
        queue_watermark: int | None = None,
        min_replicas: int = 1,
        max_replicas: int = 8,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if queue_watermark is not None and queue_watermark < 1:
            raise ValueError(f"queue_watermark must be >= 1, got {queue_watermark}")
        if min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {min_replicas}")
        if max_replicas < min_replicas:
            raise ValueError(
                f"max_replicas must be >= min_replicas, got {max_replicas} < {min_replicas}"
            )
        self.model = model
        self.batch_size = int(batch_size)
        self.max_route_distance = max_route_distance
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue_watermark = queue_watermark
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.n_replicas = int(min_replicas)
        self._depth_ewma = 0.0
        self._cache = _RouteCache(int(cache_size))
        self._busy_seconds = 0.0

    @classmethod
    def from_store(cls, store, key: str, *, retry=None, **kwargs) -> "AssignmentService":
        """Load the model through the resilient/quarantine path and serve it."""
        return cls(DASCModel.load(store, key, retry=retry), **kwargs)

    # -- the request path ----------------------------------------------------

    def assign(self, X) -> np.ndarray:
        """Assign a request of points; processed in micro-batches.

        With ``queue_watermark`` set, the request is first admitted
        against the replica pool (see :meth:`replica_status`); a request
        too deep for even ``max_replicas`` raises :exc:`OverloadError`
        without touching the model.
        """
        X = check_2d(X)
        self._admit(X.shape[0])
        out = np.empty(X.shape[0], dtype=np.int64)
        for start in range(0, X.shape[0], self.batch_size):
            stop = min(start + self.batch_size, X.shape[0])
            out[start:stop] = self._assign_batch(X[start:stop])
        return out

    def _admit(self, n_points: int) -> None:
        """Admission control: shed, scale up, or decay the replica pool."""
        if self.queue_watermark is None:
            return
        depth = -(-n_points // self.batch_size)  # micro-batches this request enqueues
        needed = -(-depth // self.queue_watermark)
        m = self.metrics
        if needed > self.max_replicas:
            m.counter("serving.shed.requests").inc(n_points)
            m.counter("serving.shed.batches").inc(depth)
            raise OverloadError(
                queue_depth=depth,
                watermark=self.queue_watermark,
                n_replicas=self.n_replicas,
                max_replicas=self.max_replicas,
            )
        self._depth_ewma = (
            self.DECAY_ALPHA * depth + (1.0 - self.DECAY_ALPHA) * self._depth_ewma
        )
        if needed > self.n_replicas:
            m.counter("serving.replicas.scale_up").inc(needed - self.n_replicas)
            self.n_replicas = needed
            self._depth_ewma = max(self._depth_ewma, float(depth))
        else:
            # Shrink one replica at a time, and only when the *smoothed*
            # depth fits the smaller pool — bursty traffic keeps its
            # replicas, faded traffic releases them gradually.
            settled = max(
                self.min_replicas,
                int(ceil(max(self._depth_ewma, 1.0) / self.queue_watermark)),
            )
            if settled < self.n_replicas:
                m.counter("serving.replicas.scale_down").inc()
                self.n_replicas -= 1
        m.gauge("serving.replicas").set(self.n_replicas)

    def _assign_batch(self, Q: np.ndarray) -> np.ndarray:
        tracer = get_tracer()
        t0 = perf_counter()
        with tracer.span("serving.batch", n_points=Q.shape[0]) as span:
            signatures = self.model.hasher.hash(Q)
            n = signatures.shape[0]
            bucket_ids = np.empty(n, dtype=np.int64)
            methods = np.empty(n, dtype=np.int64)
            missing: list[int] = []
            for i, sig in enumerate(signatures.tolist()):
                cached = self._cache.get(sig)
                if cached is None:
                    missing.append(i)
                else:
                    bucket_ids[i], methods[i] = cached
            if missing:
                rows = np.asarray(missing, dtype=np.int64)
                fresh_b, fresh_m = self.model.route(
                    signatures[rows], max_route_distance=self.max_route_distance
                )
                bucket_ids[rows] = fresh_b
                methods[rows] = fresh_m
                for i, b, m in zip(missing, fresh_b.tolist(), fresh_m.tolist()):
                    self._cache.put(int(signatures[i]), (b, m))
            labels, methods = self.model.assign_routed(Q, bucket_ids, methods)
            elapsed = perf_counter() - t0
            span.set("cache_hits", n - len(missing))
            span.set("seconds", elapsed)
        self._record(n, len(missing), methods, elapsed)
        return labels

    def _record(self, n: int, n_missing: int, methods: np.ndarray, elapsed: float) -> None:
        m = self.metrics
        m.counter("serving.requests").inc(n)
        m.counter("serving.batches").inc()
        m.counter("serving.cache.hits").inc(n - n_missing)
        m.counter("serving.cache.misses").inc(n_missing)
        for code, name in enumerate(ROUTE_NAMES):
            hits = int((methods == code).sum())
            if hits:
                m.counter(f"serving.route.{name}").inc(hits)
        m.histogram("serving.batch_seconds", buckets=time_buckets()).observe(elapsed)
        per_point = elapsed / n
        point_hist = m.histogram("serving.assign_seconds", buckets=time_buckets())
        for _ in range(n):
            point_hist.observe(per_point)
        self._busy_seconds += elapsed

    # -- reporting -----------------------------------------------------------

    def latency_summary(self) -> dict:
        """p50/p95/p99 per-point latency plus batch stats, from the registry."""
        point = self.metrics.histogram("serving.assign_seconds", buckets=time_buckets())
        batch = self.metrics.histogram("serving.batch_seconds", buckets=time_buckets())
        return {
            "requests": self.metrics.counter("serving.requests").value,
            "batches": self.metrics.counter("serving.batches").value,
            "p50_s": point.quantile(0.50),
            "p95_s": point.quantile(0.95),
            "p99_s": point.quantile(0.99),
            "batch_p99_s": batch.quantile(0.99),
            "mean_s": point.mean,
            "throughput_pts_per_s": (
                point.count / self._busy_seconds if self._busy_seconds > 0 else None
            ),
        }

    def replica_status(self) -> dict:
        """Replica-pool snapshot: size, bounds, smoothed depth, shed totals."""
        return {
            "enabled": self.queue_watermark is not None,
            "n_replicas": self.n_replicas,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "queue_watermark": self.queue_watermark,
            "depth_ewma": self._depth_ewma,
            "scale_ups": self.metrics.counter("serving.replicas.scale_up").value,
            "scale_downs": self.metrics.counter("serving.replicas.scale_down").value,
            "shed_requests": self.metrics.counter("serving.shed.requests").value,
            "shed_batches": self.metrics.counter("serving.shed.batches").value,
        }

    def route_mix(self) -> dict:
        """Requests per routing rung (exact/near/nearest/fallback) + cache."""
        return {
            **{
                name: self.metrics.counter(f"serving.route.{name}").value
                for name in ROUTE_NAMES
            },
            "cache_hits": self._cache.hits,
            "cache_misses": self._cache.misses,
            "cache_entries": len(self._cache),
        }
