"""Out-of-sample assignment (serving) plane.

A fitted ``DASC``/``StreamingDASC`` exports a frozen :class:`DASCModel`
artifact (``export_model``); :class:`AssignmentService` serves it with
micro-batching, route caching and latency metrics. See
:mod:`repro.serving.model` for the routing ladder and the Nyström
out-of-sample math.
"""

from repro.serving.model import (
    MODEL_FORMAT_VERSION,
    ROUTE_EXACT,
    ROUTE_FALLBACK,
    ROUTE_NAMES,
    ROUTE_NEAR,
    ROUTE_NEAREST,
    BucketModel,
    DASCModel,
    assemble_model,
    attach_global_labels,
    fit_bucket_model,
)
from repro.serving.service import AssignmentService, OverloadError

__all__ = [
    "MODEL_FORMAT_VERSION",
    "ROUTE_EXACT",
    "ROUTE_NEAR",
    "ROUTE_NEAREST",
    "ROUTE_FALLBACK",
    "ROUTE_NAMES",
    "BucketModel",
    "DASCModel",
    "AssignmentService",
    "OverloadError",
    "assemble_model",
    "attach_global_labels",
    "fit_bucket_model",
]
