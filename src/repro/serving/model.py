"""The servable model artifact: out-of-sample assignment for a fitted DASC.

The training pipeline ends at ``fit_predict``; serving answers the question
"which cluster does a *new* point belong to?" without re-running the
MapReduce job. A :class:`DASCModel` freezes everything assignment needs:

* the fitted hasher (so new points land in the same signature space),
* a signature table mapping every training signature to its final bucket,
* per bucket: the landmark points, the Nyström artifacts (degrees,
  eigenvector basis, eigenvalues, K-means centroids) and the local→global
  label map,
* the kernel and its ``zero_diagonal`` convention,
* global per-cluster centroids as the fallback of last resort.

Routing ladder (per query, cheapest rung first):

1. **exact** — the query's signature is in the table: it goes to the same
   bucket a training twin went to.
2. **near** — Hamming distance 1 to a table signature: the Eq.-6 merge
   rule applied at serving time (training merged buckets whose signatures
   differ by one bit, so a one-bit miss is the same neighbourhood).
3. **nearest** — unseen signature: nearest table signature by Hamming
   distance (ties: largest training bucket, then lowest signature — the
   fold-small-buckets convention).
4. **fallback** — no usable bucket (empty table, ``max_route_distance``
   exceeded, or an unmapped local cluster): nearest global centroid in
   input space.

Inside a bucket the assignment is the Nyström out-of-sample extension
(Fowlkes et al.; the paper's own NYST baseline): with ``k(x) = kernel(x,
landmarks)`` and training degrees ``d``,

    l_j(x) = k_j(x) / sqrt(d(x) * d_j),     d(x) = sum_j k_j(x)
    y(x)   = row_normalize( (l(x) @ V) / lambda )

which extends each eigenvector of the bucket's normalized affinity
``L = D^{-1/2} S D^{-1/2}`` to the query; the label is the nearest stored
K-means centroid, mapped through the bucket's local→global table.

Self-consistency contract: a training point re-presented to the model
routes **exact** and its ``l(x)`` row equals its training Laplacian row
(the ``zero_diagonal`` convention is re-applied to landmark-coincident
queries), so ``(l @ V) / lambda`` reproduces its own embedding row to
solver precision and the argmin over centroids returns the fit label
bit-identically. The differential harness checks exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.functions import Kernel
from repro.kernels.matrix import pairwise_sq_distances
from repro.lsh.hamming import hamming_distance
from repro.mapreduce.storage import CorruptObjectError, ResilientStore, RetryPolicy
from repro.spectral.eigen import top_eigenvectors
from repro.spectral.embedding import row_normalize
from repro.spectral.kmeans import KMeans
from repro.spectral.laplacian import degree_vector, normalized_laplacian
from repro.utils.validation import check_2d

__all__ = [
    "MODEL_FORMAT_VERSION",
    "ROUTE_EXACT",
    "ROUTE_NEAR",
    "ROUTE_NEAREST",
    "ROUTE_FALLBACK",
    "ROUTE_NAMES",
    "BucketModel",
    "DASCModel",
    "assemble_model",
    "attach_global_labels",
    "fit_bucket_model",
]

#: Payload schema version; bump on any incompatible layout change.
MODEL_FORMAT_VERSION = 1
_PAYLOAD_FORMAT = "repro.dasc-model"

#: Routing-method codes, in ladder order (see module docstring).
ROUTE_EXACT, ROUTE_NEAR, ROUTE_NEAREST, ROUTE_FALLBACK = 0, 1, 2, 3
ROUTE_NAMES = ("exact", "near", "nearest", "fallback")

#: Eigenvalues this close to zero carry no usable Nyström coordinate; the
#: division is clamped instead of exploding into noise.
_EIGENVALUE_FLOOR = 1e-12


@dataclass
class BucketModel:
    """Everything needed to assign a query routed to one training bucket.

    ``mode`` mirrors the three fit-time cases:

    * ``"nystrom"`` (``1 < k_i < n_i``) — full spectral block; carries the
      Nyström artifacts.
    * ``"const"`` (``k_i == 1``) — the whole bucket is one cluster.
    * ``"nn"`` (``k_i >= n_i``) — every landmark was its own cluster;
      queries take the label of their nearest landmark.
    """

    mode: str
    landmarks: np.ndarray            # (n_i, d) the bucket's training points
    labels: np.ndarray | None = None  # (n_i,) global labels of the landmarks
    label_map: np.ndarray | None = None  # (k_i,) local cluster -> global label
    d_inv_sqrt: np.ndarray | None = None  # (n_i,) 1/sqrt(training degrees)
    basis: np.ndarray | None = None       # (n_i, k_i) eigenvectors of L
    eigenvalues: np.ndarray | None = None  # (k_i,) matching eigenvalues
    centroids: np.ndarray | None = None    # (k_i, k_i) embedding centroids

    @property
    def n_landmarks(self) -> int:
        return int(self.landmarks.shape[0])


def fit_bucket_model(S, landmarks, k_i, eig_seed, km_seed, *, eig_backend="dense", kmeans_n_init=4):
    """Re-run one bucket's spectral stage, capturing the serving artifacts.

    Runs literally the same computation as the fit path (`spectral_embedding`
    then `KMeans`, same backend and seeds), so the returned local labels are
    bit-identical to the labels that bucket produced at fit time — callers
    verify this when attaching global labels. Returns ``(model, local)``.
    ``S`` may be ``None`` when the mode does not need a Gram block.
    """
    landmarks = np.asarray(landmarks, dtype=np.float64)
    n_i = landmarks.shape[0]
    if k_i >= n_i:
        local = np.arange(n_i, dtype=np.int64) % max(k_i, 1)
        return BucketModel(mode="nn", landmarks=landmarks), local
    if k_i == 1:
        local = np.zeros(n_i, dtype=np.int64)
        return BucketModel(mode="const", landmarks=landmarks), local
    S = np.asarray(S, dtype=np.float64)
    degrees = degree_vector(S)
    L = normalized_laplacian(S)
    vals, vecs = top_eigenvectors(L, k_i, backend=eig_backend, seed=eig_seed)
    Y = row_normalize(vecs)
    km = KMeans(k_i, n_init=kmeans_n_init, seed=km_seed).fit(Y)
    with np.errstate(divide="ignore"):
        d_inv_sqrt = 1.0 / np.sqrt(degrees)
    d_inv_sqrt[~np.isfinite(d_inv_sqrt)] = 0.0
    model = BucketModel(
        mode="nystrom",
        landmarks=landmarks,
        d_inv_sqrt=d_inv_sqrt,
        basis=vecs,
        eigenvalues=vals,
        centroids=km.cluster_centers_,
    )
    return model, km.labels_


def attach_global_labels(bm: BucketModel, local, final) -> BucketModel:
    """Attach the bucket's global labels and local→global cluster map.

    ``local`` are the bucket's fit-time local labels, ``final`` the global
    labels the full pipeline (offsets + refine) gave the same points. The
    refine step merges whole clusters, so each local cluster must map to
    exactly one global label — verified here, because a silent violation
    would serve wrong labels forever.
    """
    final = np.asarray(final, dtype=np.int64)
    bm.labels = final
    if bm.mode == "nn":
        return bm
    n_slots = 1 if bm.mode == "const" else bm.centroids.shape[0]
    label_map = np.full(n_slots, -1, dtype=np.int64)
    label_map[local] = final
    if not np.array_equal(label_map[local], final):
        raise RuntimeError(
            "a bucket-local cluster maps to more than one global label; "
            "refine is expected to merge whole clusters"
        )
    bm.label_map = label_map
    return bm


def assemble_model(*, hasher, kernel, zero_diagonal, bucket_models, table, labels, X, n_clusters, meta=None):
    """Build a :class:`DASCModel` from per-bucket artifacts and the fit output.

    ``table`` maps raw signature (int) → bucket index; ``X``/``labels`` are
    the training points and their final labels in matching order (used for
    the global-centroid fallback).
    """
    labels = np.asarray(labels, dtype=np.int64)
    X = np.asarray(X, dtype=np.float64)
    keys = sorted(table)
    table_signatures = np.array(keys, dtype=np.uint64)
    table_buckets = np.array([table[k] for k in keys], dtype=np.int64)
    counts = np.bincount(labels, minlength=n_clusters)
    present = np.flatnonzero(counts > 0).astype(np.int64)
    centroids = np.empty((present.size, X.shape[1]), dtype=np.float64)
    for row, c in enumerate(present.tolist()):
        centroids[row] = X[labels == c].mean(axis=0)
    return DASCModel(
        hasher=hasher,
        kernel=kernel,
        zero_diagonal=bool(zero_diagonal),
        n_clusters=int(n_clusters),
        table_signatures=table_signatures,
        table_buckets=table_buckets,
        bucket_sizes=np.array([bm.n_landmarks for bm in bucket_models], dtype=np.int64),
        buckets=list(bucket_models),
        global_centroids=centroids,
        global_centroid_labels=present,
        meta=dict(meta or {}),
    )


@dataclass
class DASCModel:
    """A frozen, servable DASC clustering (see module docstring)."""

    hasher: object
    kernel: Kernel
    zero_diagonal: bool
    n_clusters: int
    table_signatures: np.ndarray      # (T,) uint64, sorted ascending
    table_buckets: np.ndarray         # (T,) int64 bucket index per signature
    bucket_sizes: np.ndarray          # (B,) int64 training sizes (tie rule)
    buckets: list
    global_centroids: np.ndarray      # (C, d) input-space cluster means
    global_centroid_labels: np.ndarray  # (C,) label carried by each centroid
    meta: dict = field(default_factory=dict)

    @property
    def n_features(self) -> int:
        return int(self.global_centroids.shape[1])

    @property
    def n_buckets(self) -> int:
        return len(self.buckets)

    # -- routing -------------------------------------------------------------

    def route(self, signatures, *, max_route_distance=None):
        """Map signatures to bucket ids; returns ``(bucket_ids, methods)``.

        ``bucket_ids`` is ``-1`` where no bucket is usable (the caller falls
        back to global centroids); ``methods`` holds :data:`ROUTE_NAMES`
        codes. ``max_route_distance`` caps the Hamming distance the nearest-
        signature rung may bridge (``None``: unlimited).
        """
        sigs = np.ascontiguousarray(np.asarray(signatures, dtype=np.uint64).ravel())
        n = sigs.shape[0]
        bucket_ids = np.full(n, -1, dtype=np.int64)
        methods = np.full(n, ROUTE_FALLBACK, dtype=np.int64)
        if n == 0 or self.table_signatures.size == 0:
            return bucket_ids, methods
        pos = np.searchsorted(self.table_signatures, sigs)
        pos = np.minimum(pos, self.table_signatures.size - 1)
        exact = self.table_signatures[pos] == sigs
        bucket_ids[exact] = self.table_buckets[pos[exact]]
        methods[exact] = ROUTE_EXACT
        miss = np.flatnonzero(~exact)
        if miss.size == 0:
            return bucket_ids, methods
        # One Hamming table per *unique* missing signature bounds the
        # (U x T) popcount temporary regardless of batch size.
        unique, inverse = np.unique(sigs[miss], return_inverse=True)
        dist = hamming_distance(unique[:, None], self.table_signatures[None, :])
        dmin = dist.min(axis=1)
        chosen = np.empty(unique.shape[0], dtype=np.int64)
        for r in range(unique.shape[0]):
            cand = np.flatnonzero(dist[r] == dmin[r])
            # Tie rule: largest training bucket wins, then lowest signature
            # (argmax takes the first maximum; the table is signature-sorted).
            chosen[r] = cand[int(np.argmax(self.bucket_sizes[self.table_buckets[cand]]))]
        row_bucket = self.table_buckets[chosen]
        row_method = np.where(dmin <= 1, ROUTE_NEAR, ROUTE_NEAREST)
        if max_route_distance is not None:
            far = dmin > max_route_distance
            row_bucket = np.where(far, -1, row_bucket)
            row_method = np.where(far, ROUTE_FALLBACK, row_method)
        bucket_ids[miss] = row_bucket[inverse]
        methods[miss] = row_method[inverse]
        return bucket_ids, methods

    # -- assignment ----------------------------------------------------------

    def assign(self, X, *, max_route_distance=None, return_details=False):
        """Assign new points to clusters; returns ``(n,)`` int64 labels.

        With ``return_details`` also returns a dict with the per-point
        ``signatures``, ``bucket_ids`` and routing ``methods`` (codes into
        :data:`ROUTE_NAMES`).
        """
        X = check_2d(X)
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, the model was fitted on {self.n_features}"
            )
        signatures = self.hasher.hash(X)
        bucket_ids, methods = self.route(signatures, max_route_distance=max_route_distance)
        labels, methods = self.assign_routed(X, bucket_ids, methods)
        if return_details:
            return labels, {
                "signatures": signatures,
                "bucket_ids": bucket_ids,
                "methods": methods,
            }
        return labels

    def assign_routed(self, X, bucket_ids, methods):
        """Assign with routing already decided (the service's cached path).

        Returns ``(labels, methods)`` — ``methods`` is updated in the rare
        case a routed query still needed the global-centroid fallback (an
        unmapped local cluster).
        """
        X = np.asarray(X, dtype=np.float64)
        bucket_ids = np.asarray(bucket_ids, dtype=np.int64)
        methods = np.asarray(methods, dtype=np.int64).copy()
        labels = np.full(X.shape[0], -1, dtype=np.int64)
        for b in np.unique(bucket_ids[bucket_ids >= 0]).tolist():
            rows = np.flatnonzero(bucket_ids == b)
            labels[rows] = self._assign_in_bucket(self.buckets[b], X[rows])
        fallback = labels < 0
        if fallback.any():
            d2 = pairwise_sq_distances(X[fallback], self.global_centroids)
            labels[fallback] = self.global_centroid_labels[np.argmin(d2, axis=1)]
            methods[fallback] = ROUTE_FALLBACK
        return labels, methods

    def _assign_in_bucket(self, bm: BucketModel, Q: np.ndarray) -> np.ndarray:
        if bm.mode == "const":
            return np.full(Q.shape[0], int(bm.label_map[0]), dtype=np.int64)
        if bm.mode == "nn":
            d2 = pairwise_sq_distances(Q, bm.landmarks)
            return bm.labels[np.argmin(d2, axis=1)]
        K = self.kernel(Q, bm.landmarks)
        if self.zero_diagonal:
            # Algorithm 2 writes a zero self-affinity on every training row.
            # A query that *is* a landmark must see the same convention, or
            # its degree is inflated by the kernel's unit self-similarity
            # and the reproduced embedding row drifts off the training one.
            # Exact row equality (not a distance tolerance) keeps this a
            # pure replay decision.
            eq = (Q[:, None, :] == bm.landmarks[None, :, :]).all(axis=2)
            rows = np.flatnonzero(eq.any(axis=1))
            if rows.size:
                K[rows, np.argmax(eq[rows], axis=1)] = 0.0
        d_x = K.sum(axis=1)
        with np.errstate(divide="ignore"):
            inv_x = 1.0 / np.sqrt(d_x)
        inv_x[~np.isfinite(inv_x)] = 0.0
        l = K * inv_x[:, None] * bm.d_inv_sqrt[None, :]
        lam = bm.eigenvalues.copy()
        lam[np.abs(lam) < _EIGENVALUE_FLOOR] = _EIGENVALUE_FLOOR
        Y = row_normalize((l @ bm.basis) / lam[None, :])
        local = np.argmin(pairwise_sq_distances(Y, bm.centroids), axis=1)
        # label_map slots are -1 only for a fit-time empty cluster; the
        # caller's global-centroid fallback covers those queries.
        return bm.label_map[local]

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> dict:
        """A versioned dict ready for the checksummed envelope plane."""
        return {
            "format": _PAYLOAD_FORMAT,
            "version": MODEL_FORMAT_VERSION,
            "hasher": self.hasher,
            "kernel": self.kernel,
            "zero_diagonal": self.zero_diagonal,
            "n_clusters": self.n_clusters,
            "table_signatures": self.table_signatures,
            "table_buckets": self.table_buckets,
            "bucket_sizes": self.bucket_sizes,
            "buckets": [vars(bm).copy() for bm in self.buckets],
            "global_centroids": self.global_centroids,
            "global_centroid_labels": self.global_centroid_labels,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_payload(cls, payload) -> "DASCModel":
        if not isinstance(payload, dict) or payload.get("format") != _PAYLOAD_FORMAT:
            raise ValueError("payload is not a serialized DASCModel")
        if payload.get("version") != MODEL_FORMAT_VERSION:
            raise ValueError(
                f"unsupported DASCModel format version {payload.get('version')!r} "
                f"(this build reads version {MODEL_FORMAT_VERSION})"
            )
        return cls(
            hasher=payload["hasher"],
            kernel=payload["kernel"],
            zero_diagonal=payload["zero_diagonal"],
            n_clusters=payload["n_clusters"],
            table_signatures=payload["table_signatures"],
            table_buckets=payload["table_buckets"],
            bucket_sizes=payload["bucket_sizes"],
            buckets=[BucketModel(**d) for d in payload["buckets"]],
            global_centroids=payload["global_centroids"],
            global_centroid_labels=payload["global_centroid_labels"],
            meta=payload.get("meta", {}),
        )

    def save(self, store, key: str, *, retry: RetryPolicy | None = None) -> None:
        """Persist through the checksummed write-verify-promote path."""
        ResilientStore.wrap(store, retry=retry).put(key, self.to_payload())

    @classmethod
    def load(cls, store, key: str, *, retry: RetryPolicy | None = None, quarantine: bool = True) -> "DASCModel":
        """Load a model; a corrupt object is quarantined to ``<key>.corrupt``.

        Transient store faults are retried by the resilient layer; damage
        that survives the envelope check raises :class:`CorruptObjectError`
        after moving the bytes aside, so a re-published model under the
        same key loads cleanly.
        """
        resilient = ResilientStore.wrap(store, retry=retry)
        try:
            payload = resilient.get(key)
        except CorruptObjectError:
            if quarantine:
                resilient.quarantine(key)
            raise
        return cls.from_payload(payload)
