"""Command-line interface.

Three subcommands cover the common workflows:

* ``repro cluster`` — run DASC (or SC/PSC/NYST) on a CSV of feature rows
  and write a label column; prints accuracy when a label column is given.
* ``repro generate`` — emit a synthetic dataset (blobs / uniform /
  wikipedia) as CSV for experimentation.
* ``repro analyze`` — print the paper's analytic curves (Figure 1 / 2
  models) for a chosen dataset size.
* ``repro trace report`` — render a recorded JSON-lines trace as the
  per-stage timing breakdown of Section 5.6 plus the fault ledger.
* ``repro trace critical-path`` — the trace-analysis plane: wall-clock
  drill-down, per-phase simulated critical path with bottleneck-node and
  straggler attribution, node utilization, and parallel efficiency.
* ``repro trace diff`` — align two traces stage-by-stage, itemize deltas
  (incl. new/vanished stages and the fault-ledger delta), and gate on
  ``--fail-on 'PATTERN>NN%'`` regression rules (nonzero exit on violation).
* ``repro bench snapshot`` / ``repro bench compare`` — distill traced
  benchmark runs into schema-versioned ``BENCH_<tag>.json`` snapshots and
  gate a current snapshot against a committed baseline in CI.
* ``repro verify`` — the differential verification harness: the same
  seeded workload through serial vs process-pool execution, local vs
  MapReduce DASC, and crash-resumed vs uninterrupted job flows
  (bit-identical labels/counters), plus DASC-vs-exact-SC quality gates
  (Section 5.3), with stage-boundary invariant checks armed.
* ``repro chaos`` — the storage-fault smoke drill: the distributed driver
  under a seeded :class:`~repro.mapreduce.storage.ChaosStore` schedule
  (throttling, torn writes, bit flips) must match the fault-free run
  bit-for-bit, and a corrupted checkpoint must quarantine and resume
  cleanly; ``--trace`` records the run for ``repro trace report``.
* ``repro autoscale`` — the elasticity drill: the distributed driver with
  an :class:`~repro.mapreduce.autoscale.Autoscaler` resizing the cluster
  mid-flow must reproduce the static run's labels and counters
  bit-identically, a crashed-and-resumed flow must replay the identical
  scaling schedule, and the remaining-makespan win (net of cold starts
  and drains) is reported; ``--trace`` records the decision events.

Installed as ``python -m repro.cli ...`` (no console-script entry point is
registered so that offline ``setup.py develop`` installs stay simple).
"""

from __future__ import annotations

import argparse
import csv
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument grammar (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--log-level", default="WARNING",
        help="threshold for the repro logger tree (default: WARNING)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_cluster = sub.add_parser("cluster", help="cluster a CSV of feature rows")
    p_cluster.add_argument("input", help="CSV path, or '-' for stdin")
    p_cluster.add_argument("-k", "--n-clusters", type=int, required=True)
    p_cluster.add_argument(
        "-a", "--algorithm", choices=("dasc", "sc", "psc", "nyst"), default="dasc"
    )
    p_cluster.add_argument("--sigma", type=float, default=None, help="Gaussian bandwidth")
    p_cluster.add_argument("--n-bits", type=int, default=None, help="DASC signature length M")
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--n-jobs", type=int, default=None,
        help="worker processes for DASC's per-bucket stage (-1: all cores; "
        "default: REPRO_N_JOBS or serial); results are identical to serial",
    )
    p_cluster.add_argument(
        "--label-column", type=int, default=None,
        help="0-based column holding ground-truth labels (excluded from features)",
    )
    p_cluster.add_argument("-o", "--output", default="-", help="output CSV ('-': stdout)")
    p_cluster.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSON-lines trace of the run (view with 'repro trace report')",
    )

    p_gen = sub.add_parser("generate", help="emit a synthetic dataset as CSV")
    p_gen.add_argument("kind", choices=("blobs", "uniform", "wikipedia"))
    p_gen.add_argument("-n", "--n-samples", type=int, default=1024)
    p_gen.add_argument("-k", "--n-clusters", type=int, default=8)
    p_gen.add_argument("-d", "--n-features", type=int, default=16)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", default="-")

    p_an = sub.add_parser("analyze", help="print the paper's analytic models")
    p_an.add_argument("model", choices=("complexity", "collision"))
    p_an.add_argument("-n", "--n-samples", type=float, default=2**20)
    p_an.add_argument("-m", "--n-bits", type=int, default=15)

    p_verify = sub.add_parser(
        "verify",
        help="differential verification: serial/parallel/resumed equality + quality gates",
    )
    p_verify.add_argument("-n", "--n-samples", type=int, default=400)
    p_verify.add_argument("-k", "--n-clusters", type=int, default=4)
    p_verify.add_argument("-d", "--n-features", type=int, default=16)
    p_verify.add_argument("--cluster-std", type=float, default=0.03)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument(
        "--n-jobs", type=int, default=2,
        help="worker processes for the parallel legs (default: 2)",
    )
    p_verify.add_argument("--n-nodes", type=int, default=4, help="simulated cluster size")
    p_verify.add_argument("--nmi-min", type=float, default=0.95, help="NMI quality gate")
    p_verify.add_argument(
        "--ase-rel-tol", type=float, default=0.05,
        help="max relative ASE excess over exact spectral clustering",
    )
    p_verify.add_argument(
        "--no-validate", action="store_true",
        help="run without the stage-boundary invariant checks",
    )
    p_verify.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the report as JSON ('-': stdout)",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="storage-fault smoke drill: seeded ChaosStore schedule over the distributed driver",
    )
    p_chaos.add_argument("-n", "--n-samples", type=int, default=400)
    p_chaos.add_argument("-k", "--n-clusters", type=int, default=4)
    p_chaos.add_argument("-d", "--n-features", type=int, default=16)
    p_chaos.add_argument("--seed", type=int, default=0, help="workload/model seed")
    p_chaos.add_argument("--n-nodes", type=int, default=4, help="simulated cluster size")
    p_chaos.add_argument(
        "--error-rate", type=float, default=0.1,
        help="per-request transient InternalError probability",
    )
    p_chaos.add_argument(
        "--throttle-rate", type=float, default=0.05,
        help="per-request SlowDown throttling probability",
    )
    p_chaos.add_argument(
        "--torn-rate", type=float, default=0.1,
        help="probability a stored payload lands truncated",
    )
    p_chaos.add_argument(
        "--corrupt-rate", type=float, default=0.05,
        help="probability a stored payload lands with a flipped bit",
    )
    p_chaos.add_argument("--storage-seed", type=int, default=7, help="fault-schedule seed")
    p_chaos.add_argument(
        "--max-attempts", type=int, default=16,
        help="retry budget of the hardened storage client",
    )
    p_chaos.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSON-lines trace incl. the storage fault ledger",
    )

    p_scale = sub.add_parser(
        "autoscale",
        help="elasticity drill: autoscaled vs static flow, bit-identity + schedule replay",
    )
    p_scale.add_argument("-n", "--n-samples", type=int, default=2048)
    p_scale.add_argument("-k", "--n-clusters", type=int, default=24)
    p_scale.add_argument("-d", "--n-features", type=int, default=8)
    p_scale.add_argument("--cluster-std", type=float, default=0.01)
    p_scale.add_argument("--seed", type=int, default=0, help="workload/model seed")
    p_scale.add_argument(
        "--n-bits", type=int, default=7,
        help="signature length M (merging is disabled so buckets stay balanced)",
    )
    p_scale.add_argument("--n-nodes", type=int, default=2, help="provisioned cluster size")
    p_scale.add_argument(
        "--policy", choices=("target-makespan", "budget-cap"), default="target-makespan",
    )
    p_scale.add_argument(
        "--target", type=float, default=None, metavar="SECONDS",
        help="TargetMakespan SLO (default: a quarter of the static stage-2 makespan)",
    )
    p_scale.add_argument(
        "--budget", type=float, default=None, metavar="NODE_SECONDS",
        help="BudgetCap node-seconds ceiling (default: the static run's spend)",
    )
    p_scale.add_argument("--max-nodes", type=int, default=16, help="scale-up ceiling")
    p_scale.add_argument(
        "--cold-start", type=float, default=None, metavar="SECONDS",
        help="boot latency charged per scale-up (default: 2%% of static stage 2)",
    )
    p_scale.add_argument(
        "--drain-cost-per-block", type=float, default=1.0,
        help="re-replication cost charged per block moved off a draining node",
    )
    p_scale.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSON-lines trace incl. the autoscale decision events",
    )

    p_serve = sub.add_parser(
        "serve-bench",
        help="serving drill: export a fitted model, round-trip it through a chaotic store, report latency quantiles",
    )
    p_serve.add_argument("-n", "--n-samples", type=int, default=400)
    p_serve.add_argument("-k", "--n-clusters", type=int, default=4)
    p_serve.add_argument("-d", "--n-features", type=int, default=16)
    p_serve.add_argument("--cluster-std", type=float, default=0.03)
    p_serve.add_argument("--seed", type=int, default=0, help="workload/model seed")
    p_serve.add_argument(
        "--n-queries", type=int, default=2000,
        help="jittered out-of-sample queries to serve after the training replay",
    )
    p_serve.add_argument(
        "--noise", type=float, default=0.3,
        help="query jitter std around training points (exercises the routing ladder)",
    )
    p_serve.add_argument("--batch-size", type=int, default=256, help="service micro-batch width")
    p_serve.add_argument("--cache-size", type=int, default=4096, help="signature-route LRU capacity")
    p_serve.add_argument(
        "--error-rate", type=float, default=0.05,
        help="ChaosStore transient InternalError probability on the model round-trip",
    )
    p_serve.add_argument(
        "--torn-rate", type=float, default=0.05,
        help="probability a stored payload lands truncated",
    )
    p_serve.add_argument(
        "--corrupt-rate", type=float, default=0.05,
        help="probability a stored payload lands with a flipped bit",
    )
    p_serve.add_argument("--storage-seed", type=int, default=7, help="fault-schedule seed")
    p_serve.add_argument(
        "--p99-max", type=float, default=None, metavar="SECONDS",
        help="fail if per-point p99 assignment latency exceeds this",
    )
    p_serve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSON-lines trace of the serving batches",
    )

    p_trace = sub.add_parser("trace", help="inspect recorded traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_report = trace_sub.add_parser(
        "report", help="render a trace file as a per-stage timing breakdown"
    )
    p_report.add_argument("trace_file", help="JSON-lines trace path, or '-' for stdin")
    p_report.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="only show the N stages with the largest self time",
    )
    p_critical = trace_sub.add_parser(
        "critical-path",
        help="critical-path, straggler, and utilization analysis of one trace",
    )
    p_critical.add_argument("trace_file", help="JSON-lines trace path, or '-' for stdin")
    p_diff = trace_sub.add_parser(
        "diff", help="align two traces stage-by-stage and gate on regressions"
    )
    p_diff.add_argument("baseline", help="baseline JSON-lines trace path")
    p_diff.add_argument("current", help="current JSON-lines trace path")
    p_diff.add_argument(
        "--fail-on", action="append", default=[], metavar="SPEC",
        help="regression rule '[self:|total:]PATTERN>NN%%' (glob over stage "
        "names, e.g. 'mr.*>20%%'); repeatable; any violation exits nonzero",
    )
    p_diff.add_argument(
        "--min-time", type=float, default=0.0, metavar="SECONDS",
        help="noise floor: ignore stages whose time is below this on both sides",
    )

    p_bench = sub.add_parser("bench", help="perf-regression snapshot pipeline")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_snap = bench_sub.add_parser(
        "snapshot", help="distill traced benchmark runs into a snapshot JSON"
    )
    p_snap.add_argument(
        "traces", nargs="+", metavar="TRACE",
        help="JSON-lines trace files (benchmark name = file stem)",
    )
    p_snap.add_argument("-o", "--output", required=True, help="snapshot JSON output path")
    p_snap.add_argument("--tag", default="local", help="snapshot tag (default: local)")
    p_compare = bench_sub.add_parser(
        "compare", help="gate a current snapshot against a baseline snapshot"
    )
    p_compare.add_argument("baseline", help="baseline snapshot JSON path")
    p_compare.add_argument("current", help="current snapshot JSON path")
    p_compare.add_argument(
        "--fail-on", action="append", default=[], metavar="SPEC",
        help="regression rule '[self:|total:]PATTERN>NN%%'; repeatable",
    )
    p_compare.add_argument(
        "--min-time", type=float, default=0.0, metavar="SECONDS",
        help="noise floor: ignore stages whose time is below this on both sides",
    )
    return parser


def _read_matrix(path: str, label_column: int | None):
    stream = sys.stdin if path == "-" else open(path, newline="")
    try:
        rows = [row for row in csv.reader(stream) if row]
    finally:
        if stream is not sys.stdin:
            stream.close()
    if not rows:
        raise SystemExit("error: empty input")
    data = np.array([[float(v) for v in row] for row in rows])
    labels = None
    if label_column is not None:
        labels = data[:, label_column].astype(np.int64)
        data = np.delete(data, label_column, axis=1)
    return data, labels


def _write_rows(path: str, rows) -> None:
    stream = sys.stdout if path == "-" else open(path, "w", newline="")
    try:
        writer = csv.writer(stream)
        writer.writerows(rows)
    finally:
        if stream is not sys.stdout:
            stream.close()


def _cmd_cluster(args) -> int:
    import contextlib

    from repro import DASC, PSC, NystromSpectralClustering, SpectralClustering
    from repro.metrics import clustering_accuracy
    from repro.observability import trace_to

    X, y = _read_matrix(args.input, args.label_column)
    sigma = args.sigma
    if args.algorithm == "dasc":
        algo = DASC(
            args.n_clusters, sigma=sigma, n_bits=args.n_bits, seed=args.seed,
            n_jobs=args.n_jobs,
        )
    elif args.algorithm == "sc":
        algo = SpectralClustering(args.n_clusters, sigma=sigma or 1.0, seed=args.seed)
    elif args.algorithm == "psc":
        algo = PSC(args.n_clusters, sigma=sigma or 1.0, seed=args.seed)
    else:
        algo = NystromSpectralClustering(args.n_clusters, sigma=sigma or 1.0, seed=args.seed)
    scope = trace_to(args.trace) if args.trace else contextlib.nullcontext()
    with scope as tracer:
        if tracer is not None:
            tracer.meta(
                command="cluster", algorithm=args.algorithm,
                n_points=int(X.shape[0]), n_clusters=args.n_clusters,
            )
        labels = algo.fit_predict(X)
    _write_rows(args.output, [[int(l)] for l in labels])
    if y is not None:
        print(f"accuracy: {clustering_accuracy(y, labels):.4f}", file=sys.stderr)
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_generate(args) -> int:
    from repro.data import make_blobs, make_uniform, make_wikipedia_dataset

    if args.kind == "uniform":
        X = make_uniform(args.n_samples, args.n_features, seed=args.seed)
        rows = [list(map(float, row)) for row in X]
    elif args.kind == "blobs":
        X, y = make_blobs(
            args.n_samples, n_clusters=args.n_clusters, n_features=args.n_features, seed=args.seed
        )
        rows = [list(map(float, row)) + [int(label)] for row, label in zip(X, y)]
    else:
        X, y = make_wikipedia_dataset(
            args.n_samples, n_categories=args.n_clusters, seed=args.seed
        )
        rows = [list(map(float, row)) + [int(label)] for row, label in zip(X, y)]
    _write_rows(args.output, rows)
    return 0


def _cmd_analyze(args) -> int:
    if args.model == "complexity":
        from repro.analysis import (
            dasc_memory_bytes,
            dasc_time_seconds,
            sc_memory_bytes,
            sc_time_seconds,
        )

        n = args.n_samples
        print(f"N = {n:.0f}", file=sys.stdout)
        print(f"DASC time : {dasc_time_seconds(n) / 3600:.3f} h   memory: {dasc_memory_bytes(n) / 2**20:.1f} MiB", file=sys.stdout)
        print(f"SC time   : {sc_time_seconds(n) / 3600:.3f} h   memory: {sc_memory_bytes(n) / 2**20:.1f} MiB", file=sys.stdout)
    else:
        from repro.analysis import wikipedia_collision_probability

        p = wikipedia_collision_probability(args.n_samples, args.n_bits)
        print(f"N = {args.n_samples:.0f}, M = {args.n_bits}: collision probability = {p:.4f}", file=sys.stdout)
    return 0


def _cmd_verify(args) -> int:
    import json

    from repro.verify import render_verification_report, run_differential_suite

    report = run_differential_suite(
        n_samples=args.n_samples,
        n_clusters=args.n_clusters,
        n_features=args.n_features,
        cluster_std=args.cluster_std,
        seed=args.seed,
        n_jobs=args.n_jobs,
        n_nodes=args.n_nodes,
        nmi_min=args.nmi_min,
        ase_rel_tol=args.ase_rel_tol,
        validate=not args.no_validate,
    )
    print(render_verification_report(report), file=sys.stdout)
    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(payload, file=sys.stdout)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"report written to {args.json}", file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_chaos(args) -> int:
    import contextlib

    from repro.core.config import DASCConfig
    from repro.dasc_mr.driver import DistributedDASC
    from repro.data.synthetic import make_blobs
    from repro.mapreduce import ChaosStore, ElasticMapReduce, RetryPolicy, StorageFaultPolicy
    from repro.observability import trace_to

    X, _ = make_blobs(
        n_samples=args.n_samples, n_clusters=args.n_clusters,
        n_features=args.n_features, seed=args.seed,
    )

    def config() -> DASCConfig:
        return DASCConfig(n_clusters=args.n_clusters, seed=args.seed)

    clean = DistributedDASC(n_nodes=args.n_nodes, config=config()).run(X)
    policy = StorageFaultPolicy(
        error_rate=args.error_rate,
        throttle_rate=args.throttle_rate,
        torn_write_rate=args.torn_rate,
        corrupt_rate=args.corrupt_rate,
        latency=(0.001, 0.01),
        seed=args.storage_seed,
    )
    retry = RetryPolicy(max_attempts=args.max_attempts, deadline=300.0, seed=args.storage_seed)
    scope = trace_to(args.trace) if args.trace else contextlib.nullcontext()
    with scope as tracer:
        if tracer is not None:
            tracer.meta(
                command="chaos", n_points=int(X.shape[0]), n_nodes=args.n_nodes,
                error_rate=args.error_rate, throttle_rate=args.throttle_rate,
                torn_rate=args.torn_rate, corrupt_rate=args.corrupt_rate,
                storage_seed=args.storage_seed,
            )
        # Drill 1: the full flow under the seeded fault schedule.
        store = ChaosStore(policy=policy)
        emr = ElasticMapReduce(store=store, retry=retry)
        chaotic = DistributedDASC(n_nodes=args.n_nodes, config=config(), emr=emr).run(X)

        # Drill 2: driver crash + a corrupted last checkpoint; the resume
        # must quarantine it and still converge.
        emr2 = ElasticMapReduce()
        dasc2 = DistributedDASC(n_nodes=args.n_nodes, config=config(), emr=emr2)
        flow_id = dasc2.submit(X)
        emr2.run_job_flow(flow_id, max_steps=2)
        key = f"{flow_id}/checkpoints/step-000"
        damaged = bytearray(emr2.s3.get(key))
        damaged[len(damaged) // 2] ^= 0xFF
        emr2.s3.put(key, bytes(damaged))
        resumed = dasc2.resume(flow_id)
        quarantined = emr2.s3.exists(key + ".corrupt")

    checks = {
        "chaos_labels_identical": bool(np.array_equal(clean.labels, chaotic.labels)),
        "chaos_counters_identical": clean.counters == chaotic.counters,
        "chaos_makespan_identical": clean.makespan == chaotic.makespan,
        "resume_labels_identical": bool(np.array_equal(clean.labels, resumed.labels)),
        "corrupt_checkpoint_quarantined": bool(quarantined),
    }
    print(
        f"storage chaos drill (n={X.shape[0]}, n_nodes={args.n_nodes}, "
        f"storage_seed={args.storage_seed})",
        file=sys.stdout,
    )
    for name, passed in checks.items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}", file=sys.stdout)
    injected = ", ".join(f"{k}×{v}" for k, v in sorted(store.injected.items())) or "none"
    print(
        f"  injected faults: {injected}; simulated latency "
        f"{store.simulated_latency:.3f}s; retry backoff {emr.storage.backoff_total:.3f}s",
        file=sys.stdout,
    )
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0 if all(checks.values()) else 1


def _cmd_autoscale(args) -> int:
    import contextlib

    from repro.core.config import DASCConfig
    from repro.dasc_mr.driver import DistributedDASC
    from repro.data.synthetic import make_blobs
    from repro.mapreduce import Autoscaler, BudgetCap, TargetMakespan
    from repro.observability import trace_to

    X, _ = make_blobs(
        n_samples=args.n_samples, n_clusters=args.n_clusters,
        n_features=args.n_features, cluster_std=args.cluster_std, seed=args.seed,
    )

    def config() -> DASCConfig:
        # min_shared_bits == n_bits disables Eq.-6 merging so stage 2 keeps
        # many balanced buckets — the regime where elasticity can pay.
        return DASCConfig(
            n_clusters=args.n_clusters, n_bits=args.n_bits,
            min_shared_bits=args.n_bits, min_bucket_size=10, seed=args.seed,
        )

    static = DistributedDASC(n_nodes=args.n_nodes, config=config()).run(X)
    base = static.stage_makespans["spectral"]
    cold_start = args.cold_start if args.cold_start is not None else base * 0.02

    def make_scaler() -> Autoscaler:
        if args.policy == "budget-cap":
            budget = args.budget if args.budget is not None else static.makespan * args.n_nodes
            policy = BudgetCap(node_seconds=budget)
        else:
            target = args.target if args.target is not None else base / 4.0
            policy = TargetMakespan(target=target, max_nodes=args.max_nodes)
        return Autoscaler(
            policy, cold_start=cold_start, drain_cost_per_block=args.drain_cost_per_block
        )

    scope = trace_to(args.trace) if args.trace else contextlib.nullcontext()
    with scope as tracer:
        if tracer is not None:
            tracer.meta(
                command="autoscale", n_points=int(X.shape[0]), n_nodes=args.n_nodes,
                policy=args.policy, cold_start=cold_start,
            )
        # Drill 1: the autoscaled flow end to end.
        scaler = make_scaler()
        auto = DistributedDASC(
            n_nodes=args.n_nodes, config=config(), autoscaler=scaler
        ).run(X)

        # Drill 2: crash the driver after the LSH stage, resume, and demand
        # the checkpointed decision log replays the same schedule.
        replay_scaler = make_scaler()
        crashed = DistributedDASC(
            n_nodes=args.n_nodes, config=config(), autoscaler=replay_scaler
        )
        flow_id = crashed.submit(X)
        crashed.emr.run_job_flow(flow_id, max_steps=2)
        resumed = crashed.resume(flow_id)

    remaining_static = base
    remaining_auto = auto.stage_makespans["spectral"] + scaler.overhead
    checks = {
        "labels_identical": bool(np.array_equal(static.labels, auto.labels)),
        "counters_identical": static.counters == auto.counters,
        "resume_labels_identical": bool(np.array_equal(static.labels, resumed.labels)),
        "resume_schedule_identical": replay_scaler.schedule() == scaler.schedule(),
        "resume_makespan_identical": resumed.makespan == auto.makespan,
    }
    summary = scaler.summary()
    print(
        f"autoscale drill (n={X.shape[0]}, n_nodes={args.n_nodes}, "
        f"policy={summary['policy']})",
        file=sys.stdout,
    )
    for name, passed in checks.items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}", file=sys.stdout)
    print(
        f"  nodes: {summary['initial_nodes']} -> {summary['final_nodes']} over "
        f"{summary['decisions']} decisions "
        f"(up×{summary['actions']['up']}, down×{summary['actions']['down']}, "
        f"hold×{summary['actions']['hold']})",
        file=sys.stdout,
    )
    for trigger, action, before, after in scaler.schedule():
        print(f"    {trigger}: {action} {before} -> {after}", file=sys.stdout)
    print(
        f"  remaining makespan: static {remaining_static:.0f}s vs autoscaled "
        f"{remaining_auto:.0f}s "
        f"({remaining_static / remaining_auto:.2f}x; cold start {summary['cold_start']:.0f}s, "
        f"drain {summary['drain_cost']:.0f}s over {summary['blocks_moved']} blocks)",
        file=sys.stdout,
    )
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0 if all(checks.values()) else 1


def _cmd_serve_bench(args) -> int:
    import contextlib

    from repro.core.config import DASCConfig
    from repro.core.dasc import DASC
    from repro.data.synthetic import make_blobs
    from repro.mapreduce.storage import (
        ChaosStore,
        CorruptObjectError,
        RetryPolicy,
        S3Store,
        StorageFaultPolicy,
    )
    from repro.observability import trace_to
    from repro.serving import AssignmentService, DASCModel

    X, _ = make_blobs(
        n_samples=args.n_samples, n_clusters=args.n_clusters,
        n_features=args.n_features, cluster_std=args.cluster_std, seed=args.seed,
    )
    scope = trace_to(args.trace) if args.trace else contextlib.nullcontext()
    with scope as tracer:
        if tracer is not None:
            tracer.meta(
                command="serve-bench", n_points=int(X.shape[0]),
                n_queries=args.n_queries, batch_size=args.batch_size,
                storage_seed=args.storage_seed,
            )
        estimator = DASC(config=DASCConfig(n_clusters=args.n_clusters, seed=args.seed))
        labels = estimator.fit_predict(X)
        artifact = estimator.export_model(X)

        # Round-trip the artifact through a chaotic store: the hardened
        # write-verify-promote path must absorb the injected faults.
        policy = StorageFaultPolicy(
            error_rate=args.error_rate, torn_write_rate=args.torn_rate,
            corrupt_rate=args.corrupt_rate, latency=(0.001, 0.01),
            seed=args.storage_seed,
        )
        store = ChaosStore(policy=policy)
        retry = RetryPolicy(max_attempts=16, deadline=300.0, seed=args.storage_seed)
        artifact.save(store, "models/serve-bench", retry=retry)
        service = AssignmentService.from_store(
            store, "models/serve-bench", retry=retry,
            batch_size=args.batch_size, cache_size=args.cache_size,
        )

        # Drill 1: self-consistency — the training set must reproduce the
        # fit labels bit-identically through the served model.
        self_consistent = bool(np.array_equal(service.assign(X), labels))

        # Drill 2: serve jittered out-of-sample queries (the latency numbers).
        rng = np.random.default_rng(args.seed + 1)
        picks = rng.integers(X.shape[0], size=args.n_queries)
        queries = X[picks] + rng.normal(scale=args.noise, size=(args.n_queries, X.shape[1]))
        service.assign(queries)

        # Drill 3: a model corrupted at rest must be quarantined on load,
        # and a re-published model under the same key must load cleanly.
        plain = S3Store()
        artifact.save(plain, "models/at-rest")
        damaged = bytearray(plain.get("models/at-rest"))
        damaged[len(damaged) // 2] ^= 0xFF
        plain.put("models/at-rest", bytes(damaged))
        try:
            DASCModel.load(plain, "models/at-rest")
            quarantined = False
        except CorruptObjectError:
            quarantined = plain.exists("models/at-rest.corrupt") and not plain.exists(
                "models/at-rest"
            )
        artifact.save(plain, "models/at-rest")
        reload_ok = bool(
            np.array_equal(DASCModel.load(plain, "models/at-rest").assign(X), labels)
        )

    summary = service.latency_summary()
    mix = service.route_mix()
    checks = {
        "self_consistency": self_consistent,
        "corrupt_model_quarantined": bool(quarantined),
        "reload_after_quarantine": reload_ok,
    }
    if args.p99_max is not None:
        checks["p99_gate"] = summary["p99_s"] is not None and summary["p99_s"] <= args.p99_max
    print(
        f"serving bench (n_train={X.shape[0]}, n_queries={args.n_queries}, "
        f"batch={args.batch_size}, cache={args.cache_size}, noise={args.noise})",
        file=sys.stdout,
    )
    for name, passed in checks.items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}", file=sys.stdout)
    us = lambda v: "n/a" if v is None else f"{v * 1e6:.1f}us"
    print(
        f"  latency/pt: p50 {us(summary['p50_s'])}  p95 {us(summary['p95_s'])}  "
        f"p99 {us(summary['p99_s'])}  mean {us(summary['mean_s'])}",
        file=sys.stdout,
    )
    throughput = summary["throughput_pts_per_s"]
    print(
        f"  throughput: {throughput:.0f} pts/s over {summary['batches']} batches "
        f"({summary['requests']} requests)",
        file=sys.stdout,
    )
    print(
        "  routing: "
        + ", ".join(f"{k}={mix[k]}" for k in ("exact", "near", "nearest", "fallback"))
        + f"; cache hits {mix['cache_hits']}/{mix['cache_hits'] + mix['cache_misses']}",
        file=sys.stdout,
    )
    injected = ", ".join(f"{k}×{v}" for k, v in sorted(store.injected.items())) or "none"
    print(f"  injected store faults: {injected}", file=sys.stdout)
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0 if all(checks.values()) else 1


class _EmptyTraceError(Exception):
    pass


def _load_trace(path: str):
    from repro.observability import read_trace

    records = read_trace(sys.stdin) if path == "-" else read_trace(path)
    if not records:
        print(f"error: trace {path} contains no records", file=sys.stderr)
        raise _EmptyTraceError(path)
    return records


def _parse_rules(specs: list[str]):
    from repro.observability import parse_fail_on

    try:
        return [parse_fail_on(spec) for spec in specs]
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _cmd_trace(args) -> int:
    from repro.observability import (
        diff_traces,
        evaluate_rules,
        render_critical_path,
        render_trace_diff,
        render_trace_report,
    )

    try:
        if args.trace_command == "report":
            print(
                render_trace_report(_load_trace(args.trace_file), top=args.top),
                file=sys.stdout,
            )
            return 0
        if args.trace_command == "critical-path":
            print(render_critical_path(_load_trace(args.trace_file)), file=sys.stdout)
            return 0
        # trace diff
        rules = _parse_rules(args.fail_on)
        diff = diff_traces(_load_trace(args.baseline), _load_trace(args.current))
    except _EmptyTraceError:
        return 1
    violations = evaluate_rules(diff["stages"], rules, min_time=args.min_time) if rules else None
    print(render_trace_diff(diff, violations), file=sys.stdout)
    return 1 if violations else 0


def _cmd_bench(args) -> int:
    import os

    from repro.observability import (
        build_snapshot,
        compare_snapshots,
        read_snapshot,
        render_snapshot_comparison,
        snapshot_from_trace,
        write_snapshot,
    )

    if args.bench_command == "snapshot":
        entries = []
        for path in args.traces:
            name = os.path.splitext(os.path.basename(path))[0]
            try:
                entries.append(snapshot_from_trace(_load_trace(path), name))
            except _EmptyTraceError:
                return 1
        write_snapshot(build_snapshot(args.tag, entries), args.output)
        print(
            f"snapshot of {len(entries)} benchmark(s) written to {args.output}",
            file=sys.stderr,
        )
        return 0
    # bench compare
    rules = _parse_rules(args.fail_on)
    try:
        baseline = read_snapshot(args.baseline)
        current = read_snapshot(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_snapshots(baseline, current, rules, min_time=args.min_time)
    print(render_snapshot_comparison(comparison), file=sys.stdout)
    return 1 if comparison["violations"] else 0


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    from repro.observability import configure_logging

    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "autoscale":
        return _cmd_autoscale(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    return _cmd_analyze(args)


if __name__ == "__main__":
    raise SystemExit(main())
