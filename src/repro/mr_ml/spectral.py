"""Distributed spectral clustering — the Mahout role in the paper's stack.

The paper's final step hands the (approximated) similarity matrix to "the
standard MapReduce implementation of spectral clustering available in the
Mahout library". This module is that implementation, on our engine:

1. **degrees** — one map/reduce pass sums each row of the affinity matrix,
2. **normalize** — a map-only pass rescales each row block to
   ``D^{-1/2} S D^{-1/2}`` (Eq. 2),
3. **eigenvectors** — Lanczos iteration where every ``A @ v`` is a
   distributed :func:`repro.mr_ml.linalg.mr_matvec` job (Mahout's
   ``DistributedLanczosSolver``), followed by the small tridiagonal solve
   on the driver,
4. **K-Means** — the row-normalized embedding is clustered with
   :class:`repro.mr_ml.kmeans.MRKMeans`.

Agrees with the in-process :class:`repro.spectral.SpectralClustering` up to
eigensolver tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.types import JobSpec
from repro.mr_ml.kmeans import MRKMeans
from repro.mr_ml.linalg import mr_matvec, row_block_splits
from repro.spectral.lanczos import lanczos_top_eigenpairs
from repro.utils.validation import check_square

__all__ = ["MRSpectralClustering"]


def _degree_mapper(first_row, block, ctx):
    yield (first_row, block.sum(axis=1))


def _normalize_mapper(first_row, block, ctx):
    d_inv_sqrt = ctx.job.params["d_inv_sqrt"]
    rows = d_inv_sqrt[first_row : first_row + block.shape[0], None]
    yield (first_row, block * rows * d_inv_sqrt[None, :])


class MRSpectralClustering:
    """NJW spectral clustering executed as MapReduce jobs.

    Parameters
    ----------
    n_clusters:
        K.
    engine:
        Shared MapReduce engine (serial default).
    n_lanczos:
        Krylov steps for the distributed Lanczos solver (``None``: auto).
    block_size:
        Affinity-matrix rows per map task.
    seed:
        Lanczos start vector and K-Means seeding.

    Attributes (after :meth:`fit`)
    ------------------------------
    labels_ : (n,)
    embedding_ : (n, K) row-normalized spectral embedding
    total_makespan_ : simulated wall clock across every job
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        engine: MapReduceEngine | None = None,
        n_lanczos: int | None = None,
        block_size: int = 256,
        seed=None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.engine = engine if engine is not None else MapReduceEngine()
        self.n_lanczos = n_lanczos
        self.block_size = int(block_size)
        self.seed = seed
        self.labels_: np.ndarray | None = None
        self.embedding_: np.ndarray | None = None
        self.total_makespan_: float = 0.0

    def fit(self, S) -> "MRSpectralClustering":
        """Cluster an affinity matrix ``S`` (dense, symmetric, non-negative)."""
        S = check_square(S, name="S")
        n = S.shape[0]
        if n < self.n_clusters:
            raise ValueError(f"n_samples={n} < n_clusters={self.n_clusters}")
        self.total_makespan_ = 0.0

        # Job 1: degrees.
        splits = row_block_splits(S, self.block_size)
        degree_job = JobSpec(name="mr-sc-degrees", mapper=_degree_mapper)
        result = self.engine.run(degree_job, splits)
        self.total_makespan_ += result.makespan
        d = np.concatenate([piece for _, piece in sorted(result.output)])
        d_inv_sqrt = np.zeros_like(d)
        positive = d > 0
        d_inv_sqrt[positive] = 1.0 / np.sqrt(d[positive])

        # Job 2: normalized Laplacian row blocks (Eq. 2), map-only.
        norm_job = JobSpec(
            name="mr-sc-normalize",
            mapper=_normalize_mapper,
            params={"d_inv_sqrt": d_inv_sqrt},
        )
        result = self.engine.run(norm_job, splits)
        self.total_makespan_ += result.makespan
        l_splits = [[record] for record in sorted(result.output)]

        # Jobs 3..: distributed Lanczos — each A @ v is one MapReduce job.
        V = self._distributed_lanczos(l_splits, n)

        # Final jobs: distributed K-Means on the row-normalized embedding.
        norms = np.linalg.norm(V, axis=1, keepdims=True)
        Y = V / np.where(norms == 0, 1.0, norms)
        km = MRKMeans(
            self.n_clusters, engine=self.engine, split_size=self.block_size, seed=self.seed
        )
        self.labels_ = km.fit_predict(Y)
        self.total_makespan_ += km.total_makespan_
        self.embedding_ = Y
        return self

    def fit_predict(self, S) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(S).labels_

    # -- internals ----------------------------------------------------------

    def _distributed_lanczos(self, l_splits, n: int) -> np.ndarray:
        """Top-K eigenvectors via restarted Lanczos with MapReduce mat-vecs.

        Every operator application is one :func:`mr_matvec` job (Mahout's
        ``DistributedLanczosSolver`` shape); the restart-on-breakdown logic
        lives in :func:`repro.spectral.lanczos.lanczos_top_eigenpairs` and
        handles the degenerate spectra of disconnected affinity graphs.
        """
        k = self.n_clusters
        seed = self.seed if isinstance(self.seed, int) else 0
        _, vecs = lanczos_top_eigenpairs(
            lambda v: mr_matvec(self.engine, l_splits, v),
            n,
            k,
            n_steps=self.n_lanczos,
            seed=seed,
        )
        if vecs.shape[1] < k:
            # Space exhausted: pad with zero columns (rank-deficient input).
            vecs = np.pad(vecs, ((0, 0), (0, k - vecs.shape[1])))
        return vecs
