"""Distributed singular value decomposition (the Mahout SVD job shape).

For a tall matrix ``A (n x d)`` with ``d`` small enough for one machine —
the regime Mahout's stochastic/Lanczos SVD targets — the decomposition
reduces to:

1. a MapReduce pass accumulating the ``d x d`` Gram matrix ``A.T @ A``
   (:func:`repro.mr_ml.linalg.mr_gram`),
2. a local eigendecomposition ``A.T A = V S^2 V.T`` on the driver,
3. a map-only pass computing the left factor block-wise:
   ``U = A V S^{-1}``.

Exact (not randomized); agrees with :func:`numpy.linalg.svd` up to sign.
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.types import JobSpec
from repro.mr_ml.linalg import mr_gram, row_block_splits

__all__ = ["mr_svd"]

_RANK_TOL = 1e-10


def _left_factor_mapper(first_row, block, ctx):
    v_sinv = ctx.job.params["v_sinv"]
    yield (first_row, block @ v_sinv)


def mr_svd(
    engine: MapReduceEngine, A: np.ndarray, *, n_components: int | None = None, block_size: int = 256
):
    """Thin SVD of ``A`` computed with MapReduce passes.

    Parameters
    ----------
    engine:
        MapReduce engine to run the two passes on.
    A:
        (n, d) dense matrix; ``d`` must fit on the driver.
    n_components:
        Retained components (``None``: full rank, up to numerical rank).
    block_size:
        Rows per map task.

    Returns
    -------
    (U, s, Vt) with ``U (n, r)``, ``s (r,)`` descending, ``Vt (r, d)`` and
    ``A ~= U @ diag(s) @ Vt``.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"A must be 2-D, got shape {A.shape}")
    n, d = A.shape
    splits = row_block_splits(A, block_size)

    # Pass 1: G = A.T A via map/combine/reduce.
    G = mr_gram(engine, splits)
    vals, V = np.linalg.eigh(G)
    order = np.argsort(vals)[::-1]
    vals = np.clip(vals[order], 0.0, None)
    V = V[:, order]

    # Numerical rank from the *eigenvalues* of A.T A (squaring widens the
    # gap between true and round-off singular values), then truncation.
    s = np.sqrt(vals)
    rank = int(np.sum(vals > _RANK_TOL * max(vals[0] if vals.size else 0.0, 1.0)))
    r = rank if n_components is None else min(n_components, rank)
    if r == 0:
        return np.zeros((n, 0)), np.zeros(0), np.zeros((0, d))
    s = s[:r]
    V = V[:, :r]

    # Pass 2: U = A V S^{-1}, block-wise map-only job.
    job = JobSpec(
        name="mr-svd-left",
        mapper=_left_factor_mapper,
        params={"v_sinv": V / s[None, :]},
    )
    result = engine.run(job, splits)
    U = np.vstack([piece for _, piece in sorted(result.output)])
    return U, s, V.T
