"""Distributed dense linear algebra on MapReduce.

The primitives Mahout's distributed spectral/SVD jobs are built from:

* :func:`mr_matvec` — ``y = A @ x`` with ``A`` stored as row blocks on the
  (simulated) filesystem; each map task multiplies its block by the
  broadcast vector,
* :func:`mr_row_norms` — row norms of a distributed matrix,
* :func:`mr_gram` — ``A.T @ A`` accumulated block-wise (the workhorse of
  distributed SVD/PCA).

Rows are keyed by their global index so results reassemble exactly.
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.types import JobSpec

__all__ = ["row_block_splits", "mr_matvec", "mr_row_norms", "mr_gram"]


def row_block_splits(A: np.ndarray, block_size: int = 256) -> list[list[tuple]]:
    """Partition a matrix into row-block records ``(first_row, block)``."""
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"A must be 2-D, got shape {A.shape}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    return [
        [(start, A[start : start + block_size])]
        for start in range(0, A.shape[0], block_size)
    ]


def _matvec_mapper(first_row, block, ctx):
    x = ctx.job.params["x"]
    yield (first_row, block @ x)


def mr_matvec(engine: MapReduceEngine, splits: list[list[tuple]], x: np.ndarray) -> np.ndarray:
    """``A @ x`` over row-block splits; returns the assembled dense vector."""
    x = np.asarray(x, dtype=np.float64)
    job = JobSpec(name="mr-matvec", mapper=_matvec_mapper, params={"x": x})
    result = engine.run(job, splits)
    pieces = sorted(result.output)  # sorted by first_row
    return np.concatenate([piece for _, piece in pieces])


def _row_norm_mapper(first_row, block, ctx):
    yield (first_row, np.linalg.norm(block, axis=1))


def mr_row_norms(engine: MapReduceEngine, splits: list[list[tuple]]) -> np.ndarray:
    """Euclidean norm of every row of the distributed matrix."""
    job = JobSpec(name="mr-row-norms", mapper=_row_norm_mapper)
    result = engine.run(job, splits)
    pieces = sorted(result.output)
    return np.concatenate([piece for _, piece in pieces])


def _gram_mapper(first_row, block, ctx):
    yield (0, block.T @ block)


def _gram_reducer(key, partials, ctx):
    total = partials[0]
    for partial in partials[1:]:
        total = total + partial
    yield (key, total)


def mr_gram(engine: MapReduceEngine, splits: list[list[tuple]]) -> np.ndarray:
    """``A.T @ A`` accumulated across row blocks (one reduce task)."""
    job = JobSpec(
        name="mr-gram",
        mapper=_gram_mapper,
        combiner=_gram_reducer,
        reducer=_gram_reducer,
        n_reducers=1,
        partitioner=lambda key, n: 0,
    )
    result = engine.run(job, splits)
    return result.output[0][1]
