"""Distributed machine-learning primitives on the MapReduce engine.

The paper leans on Apache Mahout for the distributed pieces it does not
build itself: "the open-source Apache Mahout library implements important
machine learning algorithms such as K-Means, Singular Value Decomposition
and Hidden Markov Models using the MapReduce model", and DASC's final step
"use[s] the standard MapReduce implementation of spectral clustering
available in the Mahout library". This package is that substrate, built on
:mod:`repro.mapreduce`:

* :mod:`repro.mr_ml.kmeans` — iterative MapReduce K-Means (Mahout's
  canonical job: map = assign to nearest centroid, combine = partial sums,
  reduce = recompute centroids),
* :mod:`repro.mr_ml.linalg` — distributed matrix-vector products and Gram
  accumulation over row blocks,
* :mod:`repro.mr_ml.spectral` — distributed spectral clustering: Laplacian
  normalisation, Lanczos iteration driven by MapReduce mat-vecs, and the
  final distributed K-Means — the Mahout role in the paper's pipeline.
"""

from repro.mr_ml.kmeans import MRKMeans
from repro.mr_ml.linalg import mr_matvec, mr_row_norms, mr_gram
from repro.mr_ml.spectral import MRSpectralClustering
from repro.mr_ml.svd import mr_svd
from repro.mr_ml.hmm import HiddenMarkovModel, fit_hmm_mapreduce

__all__ = [
    "MRKMeans",
    "mr_matvec",
    "mr_row_norms",
    "mr_gram",
    "MRSpectralClustering",
    "mr_svd",
    "HiddenMarkovModel",
    "fit_hmm_mapreduce",
]
