"""Distributed K-Means on MapReduce (the Mahout K-Means job).

One Lloyd iteration is one MapReduce job:

* **map** — each input ``(index, vector)`` is assigned to the nearest of
  the broadcast centroids; emit ``(centroid_id, (vector_sum, count))``,
* **combine** — pre-aggregate partial sums map-side (this is what makes
  Mahout's K-Means shuffle O(K) per mapper instead of O(N)),
* **reduce** — new centroid = sum / count.

The driver iterates jobs until the centroid shift falls below ``tol`` and
runs a final assignment job for the labels. Numerically identical to
:class:`repro.spectral.kmeans.KMeans` given the same initial centroids.
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.types import JobSpec
from repro.spectral.kmeans import kmeans_plus_plus_init
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = ["MRKMeans"]


def _assign_mapper(index, vector, ctx):
    centroids = ctx.job.params["centroids"]
    vec = np.asarray(vector, dtype=np.float64)
    d2 = ((centroids - vec) ** 2).sum(axis=1)
    c = int(np.argmin(d2))
    yield (c, (vec, 1))


def _sum_combiner(centroid_id, partials, ctx):
    total = np.zeros_like(partials[0][0])
    count = 0
    for vec_sum, n in partials:
        total = total + vec_sum
        count += n
    yield (centroid_id, (total, count))


def _centroid_reducer(centroid_id, partials, ctx):
    total = np.zeros_like(partials[0][0])
    count = 0
    for vec_sum, n in partials:
        total = total + vec_sum
        count += n
    yield (centroid_id, total / count)


def _label_mapper(index, vector, ctx):
    centroids = ctx.job.params["centroids"]
    vec = np.asarray(vector, dtype=np.float64)
    yield (index, int(np.argmin(((centroids - vec) ** 2).sum(axis=1))))


class MRKMeans:
    """K-Means as a sequence of MapReduce jobs.

    Parameters
    ----------
    n_clusters:
        K.
    engine:
        MapReduce engine (a serial one is built when omitted).
    max_iter / tol:
        Lloyd iteration controls, matching the in-process KMeans.
    split_size:
        Records per map task.
    seed:
        k-means++ seeding randomness.

    Attributes (after :meth:`fit`)
    ------------------------------
    cluster_centers_ : (K, d)
    labels_ : (n,)
    n_iter_ : Lloyd iterations executed
    total_makespan_ : simulated wall-clock across all jobs
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        engine: MapReduceEngine | None = None,
        max_iter: int = 50,
        tol: float = 1e-6,
        split_size: int = 256,
        seed=None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.engine = engine if engine is not None else MapReduceEngine()
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.split_size = int(split_size)
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.n_iter_: int | None = None
        self.total_makespan_: float = 0.0

    def _splits(self, X: np.ndarray) -> list[list[tuple]]:
        records = [(i, X[i]) for i in range(X.shape[0])]
        return [
            records[s : s + self.split_size] for s in range(0, len(records), self.split_size)
        ]

    def fit(self, X) -> "MRKMeans":
        """Run distributed Lloyd iterations until convergence."""
        X = check_2d(X)
        if X.shape[0] < self.n_clusters:
            raise ValueError(f"n_samples={X.shape[0]} < n_clusters={self.n_clusters}")
        rng = as_rng(self.seed)
        centroids = kmeans_plus_plus_init(X, self.n_clusters, rng)
        splits = self._splits(X)
        self.total_makespan_ = 0.0

        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            job = JobSpec(
                name=f"mr-kmeans-iter-{n_iter}",
                mapper=_assign_mapper,
                combiner=_sum_combiner,
                reducer=_centroid_reducer,
                n_reducers=self.n_clusters,
                partitioner=lambda key, n: int(key) % n,
                params={"centroids": centroids},
            )
            result = self.engine.run(job, splits)
            self.total_makespan_ += result.makespan
            new_centroids = centroids.copy()
            for cid, centroid in result.output:
                new_centroids[cid] = centroid
            shift = np.linalg.norm(new_centroids - centroids)
            centroids = new_centroids
            if shift / (np.linalg.norm(centroids) or 1.0) < self.tol:
                break

        label_job = JobSpec(
            name="mr-kmeans-labels",
            mapper=_label_mapper,
            params={"centroids": centroids},
        )
        result = self.engine.run(label_job, splits)
        self.total_makespan_ += result.makespan
        labels = np.empty(X.shape[0], dtype=np.int64)
        for index, label in result.output:
            labels[index] = label
        self.cluster_centers_ = centroids
        self.labels_ = labels
        self.n_iter_ = n_iter
        return self

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the labels."""
        return self.fit(X).labels_
