"""Discrete hidden Markov models (the third algorithm in the paper's Mahout list).

Section 2: "the open-source Apache Mahout library implements important
machine learning algorithms such as K-Means, Singular Value Decomposition
and Hidden Markov Models using the MapReduce model". K-Means and SVD live
in this package already; this module completes the trio with a discrete
HMM: scaled forward/backward, Viterbi decoding, and Baum-Welch training.
Training over multiple sequences accumulates sufficient statistics
per-sequence — the exact structure Mahout's MapReduce trainer distributes
(map = per-sequence E-step, reduce = pooled M-step), exposed here via
:meth:`HiddenMarkovModel.estep` so a MapReduce wrapper is a few lines.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["HiddenMarkovModel", "fit_hmm_mapreduce"]

_EPS = 1e-300


class HiddenMarkovModel:
    """Discrete-emission HMM.

    Parameters
    ----------
    n_states / n_symbols:
        Sizes of the hidden and observed alphabets.
    seed:
        Random initialisation of the probability tables (rows normalised).

    Attributes
    ----------
    start_ : (S,) initial distribution
    transition_ : (S, S) row-stochastic transition matrix
    emission_ : (S, V) row-stochastic emission matrix
    """

    def __init__(self, n_states: int, n_symbols: int, *, seed=None):
        if n_states < 1 or n_symbols < 1:
            raise ValueError("n_states and n_symbols must be >= 1")
        self.n_states = int(n_states)
        self.n_symbols = int(n_symbols)
        rng = as_rng(seed)
        self.start_ = self._random_stochastic(rng, (self.n_states,))
        self.transition_ = self._random_stochastic(rng, (self.n_states, self.n_states))
        self.emission_ = self._random_stochastic(rng, (self.n_states, self.n_symbols))

    @staticmethod
    def _random_stochastic(rng, shape) -> np.ndarray:
        m = rng.uniform(0.5, 1.5, size=shape)
        return m / m.sum(axis=-1, keepdims=True)

    def set_parameters(self, start, transition, emission) -> "HiddenMarkovModel":
        """Install explicit probability tables (validated to be stochastic)."""
        start = np.asarray(start, dtype=np.float64)
        transition = np.asarray(transition, dtype=np.float64)
        emission = np.asarray(emission, dtype=np.float64)
        if start.shape != (self.n_states,):
            raise ValueError(f"start must have shape ({self.n_states},)")
        if transition.shape != (self.n_states, self.n_states):
            raise ValueError("transition shape mismatch")
        if emission.shape != (self.n_states, self.n_symbols):
            raise ValueError("emission shape mismatch")
        for name, table in (("start", start[None, :]), ("transition", transition), ("emission", emission)):
            if (table < 0).any() or not np.allclose(table.sum(axis=-1), 1.0, atol=1e-8):
                raise ValueError(f"{name} rows must be probability distributions")
        self.start_, self.transition_, self.emission_ = start, transition, emission
        return self

    # -- inference -------------------------------------------------------------

    def _check_obs(self, obs) -> np.ndarray:
        obs = np.asarray(obs, dtype=np.int64)
        if obs.ndim != 1 or obs.size == 0:
            raise ValueError("observations must be a non-empty 1-D integer sequence")
        if obs.min() < 0 or obs.max() >= self.n_symbols:
            raise ValueError(f"symbols must be in [0, {self.n_symbols})")
        return obs

    def _forward(self, obs: np.ndarray):
        """Scaled forward pass; returns (alpha, scales)."""
        T = obs.shape[0]
        alpha = np.zeros((T, self.n_states))
        scales = np.zeros(T)
        alpha[0] = self.start_ * self.emission_[:, obs[0]]
        scales[0] = alpha[0].sum() + _EPS
        alpha[0] /= scales[0]
        for t in range(1, T):
            alpha[t] = (alpha[t - 1] @ self.transition_) * self.emission_[:, obs[t]]
            scales[t] = alpha[t].sum() + _EPS
            alpha[t] /= scales[t]
        return alpha, scales

    def _backward(self, obs: np.ndarray, scales: np.ndarray) -> np.ndarray:
        T = obs.shape[0]
        beta = np.zeros((T, self.n_states))
        beta[-1] = 1.0
        for t in range(T - 2, -1, -1):
            beta[t] = self.transition_ @ (self.emission_[:, obs[t + 1]] * beta[t + 1])
            beta[t] /= scales[t + 1]
        return beta

    def log_likelihood(self, obs) -> float:
        """Log P(observations | model)."""
        obs = self._check_obs(obs)
        _, scales = self._forward(obs)
        return float(np.log(scales).sum())

    def viterbi(self, obs) -> np.ndarray:
        """Most probable hidden-state path (log-space Viterbi)."""
        obs = self._check_obs(obs)
        T = obs.shape[0]
        with np.errstate(divide="ignore"):
            log_a = np.log(self.transition_ + _EPS)
            log_e = np.log(self.emission_ + _EPS)
            log_pi = np.log(self.start_ + _EPS)
        delta = log_pi + log_e[:, obs[0]]
        psi = np.zeros((T, self.n_states), dtype=np.int64)
        for t in range(1, T):
            scores = delta[:, None] + log_a
            psi[t] = np.argmax(scores, axis=0)
            delta = scores[psi[t], np.arange(self.n_states)] + log_e[:, obs[t]]
        path = np.zeros(T, dtype=np.int64)
        path[-1] = int(np.argmax(delta))
        for t in range(T - 2, -1, -1):
            path[t] = psi[t + 1][path[t + 1]]
        return path

    # -- training ----------------------------------------------------------------

    def estep(self, obs) -> dict:
        """Per-sequence sufficient statistics (the map-side of MR training).

        Returns start counts, expected transition counts, expected emission
        counts, and the sequence log-likelihood.
        """
        obs = self._check_obs(obs)
        T = obs.shape[0]
        alpha, scales = self._forward(obs)
        beta = self._backward(obs, scales)
        gamma = alpha * beta
        gamma /= gamma.sum(axis=1, keepdims=True) + _EPS

        xi_sum = np.zeros((self.n_states, self.n_states))
        for t in range(T - 1):
            xi = (
                alpha[t][:, None]
                * self.transition_
                * (self.emission_[:, obs[t + 1]] * beta[t + 1])[None, :]
            )
            xi_sum += xi / (xi.sum() + _EPS)

        emit = np.zeros((self.n_states, self.n_symbols))
        np.add.at(emit.T, obs, gamma)
        return {
            "start": gamma[0],
            "transitions": xi_sum,
            "emissions": emit,
            "log_likelihood": float(np.log(scales).sum()),
        }

    @staticmethod
    def _pool(stats_list: list[dict]) -> dict:
        pooled = {
            "start": sum(s["start"] for s in stats_list),
            "transitions": sum(s["transitions"] for s in stats_list),
            "emissions": sum(s["emissions"] for s in stats_list),
            "log_likelihood": sum(s["log_likelihood"] for s in stats_list),
        }
        return pooled

    def mstep(self, pooled: dict) -> None:
        """Reestimate the tables from pooled statistics (the reduce side)."""
        self.start_ = pooled["start"] / (pooled["start"].sum() + _EPS)
        trans = pooled["transitions"] + _EPS
        self.transition_ = trans / trans.sum(axis=1, keepdims=True)
        emit = pooled["emissions"] + _EPS
        self.emission_ = emit / emit.sum(axis=1, keepdims=True)

    def fit(self, sequences, *, max_iter: int = 50, tol: float = 1e-4) -> "HiddenMarkovModel":
        """Baum-Welch over a list of observation sequences.

        Stops when the total log-likelihood improves by less than ``tol``.
        """
        if not sequences:
            raise ValueError("need at least one sequence")
        previous = -np.inf
        for _ in range(max_iter):
            stats = [self.estep(obs) for obs in sequences]
            pooled = self._pool(stats)
            self.mstep(pooled)
            ll = pooled["log_likelihood"]
            if ll - previous < tol:
                break
            previous = ll
        return self

    def sample(self, length: int, *, seed=None) -> tuple[np.ndarray, np.ndarray]:
        """Draw (states, observations) of the given length from the model."""
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        rng = as_rng(seed)
        states = np.zeros(length, dtype=np.int64)
        obs = np.zeros(length, dtype=np.int64)
        states[0] = rng.choice(self.n_states, p=self.start_)
        obs[0] = rng.choice(self.n_symbols, p=self.emission_[states[0]])
        for t in range(1, length):
            states[t] = rng.choice(self.n_states, p=self.transition_[states[t - 1]])
            obs[t] = rng.choice(self.n_symbols, p=self.emission_[states[t]])
        return states, obs


def fit_hmm_mapreduce(
    model: HiddenMarkovModel,
    sequences,
    engine,
    *,
    max_iter: int = 50,
    tol: float = 1e-4,
):
    """Baum-Welch with MapReduce E-steps — "HMM using the MapReduce model".

    Each iteration is one job: the mapper runs :meth:`HiddenMarkovModel.estep`
    on its sequence, a single reducer pools the sufficient statistics, and
    the driver applies :meth:`HiddenMarkovModel.mstep`. Numerically identical
    to :meth:`HiddenMarkovModel.fit` (the tests assert it).

    Parameters
    ----------
    model:
        The model to train in place.
    sequences:
        List of integer observation sequences.
    engine:
        A :class:`repro.mapreduce.engine.MapReduceEngine`.

    Returns
    -------
    The trained ``model`` (same object), for chaining.
    """
    from repro.mapreduce.types import JobSpec

    if not sequences:
        raise ValueError("need at least one sequence")

    def estep_mapper(seq_id, obs, ctx):
        yield (0, ctx.job.params["model"].estep(obs))

    def pool_reducer(key, stats_list, ctx):
        yield (key, HiddenMarkovModel._pool(stats_list))

    splits = [[(i, np.asarray(obs, dtype=np.int64))] for i, obs in enumerate(sequences)]
    previous = -np.inf
    for iteration in range(max_iter):
        job = JobSpec(
            name=f"hmm-baum-welch-{iteration}",
            mapper=estep_mapper,
            reducer=pool_reducer,
            n_reducers=1,
            partitioner=lambda key, n: 0,
            params={"model": model},
        )
        result = engine.run(job, splits)
        pooled = result.output[0][1]
        model.mstep(pooled)
        if pooled["log_likelihood"] - previous < tol:
            break
        previous = pooled["log_likelihood"]
    return model
