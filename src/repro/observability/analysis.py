"""Trace-analysis plane: the span DAG, critical paths, and utilization.

The raw trace (see :mod:`repro.observability.sink`) is a flat list of span
and event records; :mod:`~repro.observability.report` aggregates it by stage
name. This module rebuilds the *structure* the paper's Section 5.6 questions
need — "which stage bounds the run", "which node bounds each phase", "how
close to the hardware are we":

* :func:`build_span_tree` reconstructs the span DAG from parent links,
  tolerating the damage crashed runs leave behind (open spans, spans whose
  parents never closed);
* :func:`wall_critical_path` drills from the longest root span down the
  longest-child chain — the wall-clock answer to "where did the time go";
* :func:`phase_critical_path` reads the ``cluster.phase`` events the
  simulated cluster emits and attributes each phase's *simulated* makespan:
  the critical (most-loaded-slot) time, the bottleneck node, and the
  straggler task that bounded the phase;
* :func:`node_utilization` and :func:`parallel_efficiency` fold the same
  events into per-node busy/idle time and one scalar efficiency;
* :func:`analyze_trace` bundles all of the above into the dict that
  ``repro trace critical-path``, the perf-snapshot pipeline, and
  ``render_trace_report`` consume.

Invariant (asserted by the chaos suite): a phase's critical-path length is
the busy time of its most loaded slot, so it never exceeds the phase
makespan — and equals it exactly on gap-free schedules (every clean run;
fault re-placements introduce idle gaps, so chaos runs may fall short).
"""

from __future__ import annotations

import re

from repro.observability.metrics import quantile_from_counts

__all__ = [
    "SpanNode",
    "SpanTree",
    "build_span_tree",
    "wall_critical_path",
    "phase_critical_path",
    "node_utilization",
    "parallel_efficiency",
    "autoscale_timeline",
    "analyze_trace",
    "render_critical_path",
]

_TASK_INDEX = re.compile(r"(\d+)$")


class SpanNode:
    """One span in the reconstructed DAG.

    ``duration`` is 0.0 for spans left open by a crashed run (their end was
    never recorded, so they contribute structure but no time); ``self_time``
    is duration minus child durations, floored at zero.
    """

    __slots__ = ("record", "children", "orphan")

    def __init__(self, record: dict):
        self.record = record
        self.children: list[SpanNode] = []
        self.orphan = False  # parent_id set but the parent span never closed

    @property
    def name(self) -> str:
        return self.record.get("name", "")

    @property
    def span_id(self):
        return self.record.get("span_id")

    @property
    def attributes(self) -> dict:
        return self.record.get("attributes", {}) or {}

    @property
    def open(self) -> bool:
        return self.record.get("end") is None

    @property
    def duration(self) -> float:
        d = self.record.get("duration")
        return float(d) if d is not None else 0.0

    @property
    def self_time(self) -> float:
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanNode({self.name!r}, id={self.span_id}, children={len(self.children)})"


class SpanTree:
    """The reconstructed span forest plus its bookkeeping indexes."""

    def __init__(self, roots, by_id, orphans, open_spans):
        self.roots: list[SpanNode] = roots
        self.by_id: dict = by_id
        self.orphans: list[SpanNode] = orphans  # adopted as roots
        self.open_spans: list[SpanNode] = open_spans


def build_span_tree(records: list[dict]) -> SpanTree:
    """Rebuild the span forest from one trace's records.

    Tolerant by design — the traces worth diagnosing are the damaged ones:

    * spans still open at crash time (``end is None``) join the tree with
      zero duration;
    * spans whose ``parent_id`` matches no recorded span (the parent was
      open when the writer died) are adopted as roots and flagged
      ``orphan``;
    * children are ordered by ``seq`` (open order).
    """
    by_id: dict = {}
    spans: list[SpanNode] = []
    for r in records:
        if r.get("type") != "span" or r.get("span_id") is None:
            continue
        node = SpanNode(r)
        spans.append(node)
        by_id[r["span_id"]] = node
    roots: list[SpanNode] = []
    orphans: list[SpanNode] = []
    for node in sorted(spans, key=lambda n: n.record.get("seq", 0)):
        parent_id = node.record.get("parent_id")
        if parent_id is None:
            roots.append(node)
        elif parent_id in by_id:
            by_id[parent_id].children.append(node)
        else:
            node.orphan = True
            orphans.append(node)
            roots.append(node)
    open_spans = [n for n in spans if n.open]
    return SpanTree(roots, by_id, orphans, open_spans)


def wall_critical_path(records: list[dict]) -> list[dict]:
    """The wall-clock drill-down: longest root, then longest child, etc.

    The tracer is single-threaded, so sibling spans never overlap and the
    chain of largest spans *is* the wall-clock critical path. Each level
    reports its duration, its self time, and its share of the chain's root.
    Returns ``[]`` for traces with no spans.
    """
    tree = build_span_tree(records)
    if not tree.roots:
        return []
    node = max(tree.roots, key=lambda n: n.duration)
    total = node.duration
    path: list[dict] = []
    while node is not None:
        path.append(
            {
                "name": node.name,
                "duration": node.duration,
                "self": node.self_time,
                "share": node.duration / total if total > 0 else 0.0,
                "open": node.open,
            }
        )
        node = max(node.children, key=lambda n: n.duration, default=None)
    return path


def _task_spans_by_index(job_node: SpanNode | None, span_name: str) -> list[SpanNode]:
    """The job's task spans in submission order (``map-0``, ``map-1``, ...)."""
    if job_node is None:
        return []
    tasks = [c for c in job_node.children if c.name == span_name]

    def index(node: SpanNode):
        m = _TASK_INDEX.search(str(node.attributes.get("task", "")))
        return int(m.group(1)) if m else 0

    return sorted(tasks, key=index)


def phase_critical_path(records: list[dict]) -> list[dict]:
    """Attribute every scheduled phase's simulated makespan.

    One entry per ``cluster.phase`` event, in trace order. ``critical`` is
    the busy time of the phase's most loaded slot (``max_slot_cost``;
    older traces without the attribute fall back to the makespan), the
    quantity the chaos suite pins against the makespan. ``bottleneck_node``
    carries the largest per-node cost, and ``straggler`` names the
    highest-cost task of the phase with the node that executed it — the
    task to blame when the phase is skew-bound.
    """
    tree = build_span_tree(records)
    phases: list[dict] = []
    for r in records:
        if r.get("type") != "event" or r.get("name") != "cluster.phase":
            continue
        attrs = r.get("attributes", {}) or {}
        makespan = float(attrs.get("makespan", 0.0) or 0.0)
        critical = attrs.get("max_slot_cost")
        critical = makespan if critical is None else float(critical)
        per_node = list(attrs.get("per_node_cost", []) or [])
        bottleneck = max(range(len(per_node)), key=per_node.__getitem__) if per_node else None

        # The event hangs off the mr.schedule span whose parent is the
        # mr.job span owning the phase's task spans.
        schedule = tree.by_id.get(r.get("parent_id"))
        job_node = None
        if schedule is not None:
            job_node = tree.by_id.get(schedule.record.get("parent_id"))
        phase = attrs.get("phase", "map")
        task_span_name = "mr.map_task" if phase == "map" else "mr.reduce_task"
        tasks = _task_spans_by_index(job_node, task_span_name)
        task_nodes = list(attrs.get("task_nodes", []) or [])
        straggler = None
        if tasks:
            worst = max(
                range(len(tasks)),
                key=lambda i: float(tasks[i].attributes.get("cost", 0.0) or 0.0),
            )
            straggler = {
                "task": tasks[worst].attributes.get("task", f"{phase}-{worst}"),
                "cost": float(tasks[worst].attributes.get("cost", 0.0) or 0.0),
                "node": task_nodes[worst] if worst < len(task_nodes) else None,
            }
        phases.append(
            {
                "job": job_node.attributes.get("job") if job_node is not None else None,
                "phase": phase,
                "n_nodes": int(attrs.get("n_nodes", 0) or 0),
                "n_slots": int(attrs.get("n_slots", 0) or 0),
                "n_tasks": int(attrs.get("n_tasks", 0) or 0),
                "makespan": makespan,
                "critical": critical,
                "total_cost": float(attrs.get("total_cost", 0.0) or 0.0),
                "utilization": float(attrs.get("utilization", 0.0) or 0.0),
                "bottleneck_node": bottleneck,
                "bottleneck_node_cost": per_node[bottleneck] if bottleneck is not None else 0.0,
                "per_node_cost": per_node,
                "straggler": straggler,
                "wasted_cost": float(attrs.get("wasted_cost", 0.0) or 0.0),
            }
        )
    return phases


def node_utilization(phases: list[dict]) -> dict[int, dict]:
    """Per-node busy time and utilization across all scheduled phases.

    Capacity per node and phase is ``makespan × slots_per_node`` (one slot
    when the trace predates the ``n_slots`` attribute); ``idle`` is capacity
    minus busy. Nodes are keyed by their id in the simulated cluster.
    """
    nodes: dict[int, dict] = {}
    for p in phases:
        n_nodes = p["n_nodes"] or len(p["per_node_cost"])
        if not n_nodes:
            continue
        slots_per_node = (p["n_slots"] / n_nodes) if p["n_slots"] else 1.0
        for node, busy in enumerate(p["per_node_cost"]):
            entry = nodes.setdefault(node, {"busy": 0.0, "capacity": 0.0})
            entry["busy"] += busy
            entry["capacity"] += p["makespan"] * slots_per_node
    for entry in nodes.values():
        entry["idle"] = max(0.0, entry["capacity"] - entry["busy"])
        entry["utilization"] = entry["busy"] / entry["capacity"] if entry["capacity"] > 0 else 0.0
    return nodes


def parallel_efficiency(phases: list[dict]) -> float | None:
    """Aggregate useful-work fraction: Σ total_cost / Σ (makespan × slots).

    1.0 means every slot was busy for every phase's whole makespan; lower
    values quantify load imbalance plus fault-burned slack. ``None`` when
    the trace contains no scheduled phases (a purely local run).
    """
    capacity = sum(p["makespan"] * (p["n_slots"] or p["n_nodes"] or 1) for p in phases)
    if capacity <= 0.0:
        return None
    return min(1.0, sum(p["total_cost"] for p in phases) / capacity)


def _task_duration_quantiles(records: list[dict]) -> dict | None:
    """p50/p95/p99 of task durations, preferring the exported histogram.

    Traced engines observe every task body's wall time into the
    ``mr.task_seconds`` histogram; when a trace predates it, fall back to
    the exact span durations (``worker_time`` for re-emitted parallel
    spans).
    """
    for r in reversed(records):
        if r.get("type") == "metrics":
            hist = r.get("data", {}).get("histograms", {}).get("mr.task_seconds")
            if hist and hist.get("count"):
                return {
                    "count": hist["count"],
                    "p50": quantile_from_counts(
                        hist["buckets"], hist["counts"], 0.50,
                        minimum=hist.get("min"), maximum=hist.get("max"),
                    ),
                    "p95": quantile_from_counts(
                        hist["buckets"], hist["counts"], 0.95,
                        minimum=hist.get("min"), maximum=hist.get("max"),
                    ),
                    "p99": quantile_from_counts(
                        hist["buckets"], hist["counts"], 0.99,
                        minimum=hist.get("min"), maximum=hist.get("max"),
                    ),
                    "source": "histogram",
                }
            break
    durations = sorted(
        float(r.get("attributes", {}).get("worker_time") or r["duration"])
        for r in records
        if r.get("type") == "span"
        and r.get("name") in ("mr.map_task", "mr.reduce_task")
        and r.get("duration") is not None
    )
    if not durations:
        return None

    def exact(q: float) -> float:
        return durations[min(len(durations) - 1, int(q * len(durations)))]

    return {
        "count": len(durations),
        "p50": exact(0.50),
        "p95": exact(0.95),
        "p99": exact(0.99),
        "source": "spans",
    }


def autoscale_timeline(records: list[dict]) -> dict:
    """The autoscaler's story as told by the trace.

    ``decisions`` lists every ``autoscale.decision`` event's attributes in
    trace order (the node-count trajectory: ``n_before`` → ``n_after``
    with the policy's reason); ``overhead`` totals the cold-start and
    drain latency charged by ``autoscale.cold_start`` / ``autoscale.drain``
    events, and ``blocks_moved`` the block copies the decommission drains
    re-replicated.
    """
    decisions: list[dict] = []
    cold_start = 0.0
    drain = 0.0
    blocks = 0
    for r in records:
        if r.get("type") != "event":
            continue
        attrs = r.get("attributes", {}) or {}
        name = r.get("name")
        if name == "autoscale.decision":
            decisions.append(dict(attrs))
        elif name == "autoscale.cold_start":
            cold_start += float(attrs.get("wasted_cost", 0.0) or 0.0)
        elif name == "autoscale.drain":
            drain += float(attrs.get("wasted_cost", 0.0) or 0.0)
            blocks += int(attrs.get("blocks_moved", 0) or 0)
    return {
        "decisions": decisions,
        "resizes": sum(1 for d in decisions if d.get("action") != "hold"),
        "cold_start": cold_start,
        "drain_cost": drain,
        "blocks_moved": blocks,
        "overhead": cold_start + drain,
    }


def analyze_trace(records: list[dict]) -> dict:
    """The full analysis bundle for one trace.

    Keys: ``wall_time`` (closed-root wall clock), ``drilldown`` (the
    wall-clock critical path), ``phases`` + ``critical_path_length`` +
    ``simulated_makespan`` (the simulated schedule), ``parallel_efficiency``,
    ``nodes`` (busy/idle per node), ``task_quantiles``, and the trace-health
    counters ``open_spans`` / ``orphan_spans`` / ``skipped_lines``.
    """
    tree = build_span_tree(records)
    phases = phase_critical_path(records)
    skipped = sum(
        int(r.get("skipped", 0)) for r in records if r.get("type") == "trace_warning"
    )
    wall = sum(n.duration for n in tree.roots if not n.open)
    return {
        "wall_time": wall,
        "drilldown": wall_critical_path(records),
        "phases": phases,
        "critical_path_length": sum(p["critical"] for p in phases),
        "simulated_makespan": sum(p["makespan"] for p in phases),
        "parallel_efficiency": parallel_efficiency(phases),
        "nodes": node_utilization(phases),
        "autoscale": autoscale_timeline(records),
        "task_quantiles": _task_duration_quantiles(records),
        "open_spans": len(tree.open_spans),
        "orphan_spans": len(tree.orphans),
        "skipped_lines": skipped,
    }


def _fmt(value: float) -> str:
    return f"{value:.6f}"


def render_critical_path(records: list[dict]) -> str:
    """Human-readable critical-path report (``repro trace critical-path``)."""
    from repro.observability.report import _table  # shared fixed-width renderer

    analysis = analyze_trace(records)
    lines: list[str] = []

    lines.append("== Wall-clock critical path ==")
    if analysis["drilldown"]:
        rows = [
            [
                ("  " * depth) + (step["name"] or "?") + (" (open)" if step["open"] else ""),
                _fmt(step["duration"]),
                _fmt(step["self"]),
                f"{100.0 * step['share']:.1f}%",
            ]
            for depth, step in enumerate(analysis["drilldown"])
        ]
        lines.extend(_table(["span", "duration s", "self s", "share"], rows))
    else:
        lines.append("  (no spans in trace)")
    lines.append("")

    lines.append("== Simulated phase critical path ==")
    if analysis["phases"]:
        rows = []
        for p in analysis["phases"]:
            straggler = p["straggler"]
            rows.append(
                [
                    p["job"] or "?",
                    p["phase"],
                    p["n_tasks"],
                    _fmt(p["makespan"]),
                    _fmt(p["critical"]),
                    "-" if p["bottleneck_node"] is None else f"n{p['bottleneck_node']}",
                    "-"
                    if straggler is None
                    else f"{straggler['task']}"
                    + ("" if straggler["node"] is None else f"@n{straggler['node']}"),
                ]
            )
        lines.extend(
            _table(
                ["job", "phase", "tasks", "makespan", "critical", "bottleneck", "straggler"],
                rows,
            )
        )
        lines.append(
            f"  critical path {_fmt(analysis['critical_path_length'])} of "
            f"makespan {_fmt(analysis['simulated_makespan'])}"
            + (
                f"; parallel efficiency {100.0 * analysis['parallel_efficiency']:.1f}%"
                if analysis["parallel_efficiency"] is not None
                else ""
            )
        )
    else:
        lines.append("  (no scheduled phases in trace — local run)")
    lines.append("")

    lines.append("== Node utilization ==")
    if analysis["nodes"]:
        rows = [
            [
                f"n{node}",
                _fmt(entry["busy"]),
                _fmt(entry["idle"]),
                f"{100.0 * entry['utilization']:.1f}%",
            ]
            for node, entry in sorted(analysis["nodes"].items())
        ]
        lines.extend(_table(["node", "busy", "idle", "utilization"], rows))
    else:
        lines.append("  (no per-node attribution in trace)")

    quantiles = analysis["task_quantiles"]
    if quantiles is not None:
        lines.append("")
        lines.append(
            f"task durations ({quantiles['count']} tasks, {quantiles['source']}): "
            f"p50={quantiles['p50']:.6f}s p95={quantiles['p95']:.6f}s "
            f"p99={quantiles['p99']:.6f}s"
        )
    health = []
    if analysis["open_spans"]:
        health.append(f"{analysis['open_spans']} span(s) left open")
    if analysis["orphan_spans"]:
        health.append(f"{analysis['orphan_spans']} orphan span(s)")
    if analysis["skipped_lines"]:
        health.append(f"{analysis['skipped_lines']} malformed line(s) skipped")
    if health:
        lines.append("")
        lines.append("trace health: " + ", ".join(health))
    return "\n".join(lines) + "\n"
