"""Perf-regression snapshots: distill traced benchmarks into committable JSON.

A *snapshot* is the durable residue of one benchmark session: for every
traced benchmark, the per-stage self/total times, the exported counters,
the simulated makespan and critical-path length, and the parallel
efficiency — schema-versioned so a CI job from next month can refuse a
stale baseline instead of mis-reading it. The pipeline:

1. ``repro bench snapshot RUN.jsonl ... -o BENCH_x.json`` (or the
   ``benchmarks/_harness.py`` hook via ``REPRO_BENCH_DIR``) distills traces;
2. a known-good snapshot is committed as the baseline;
3. ``repro bench compare BASELINE CURRENT --fail-on 'mr.*>200%'`` aligns the
   two stage tables per benchmark with the same rule engine as
   ``repro trace diff`` and exits nonzero on any violation.

Counter drift (task retries, Lanczos iterations, block counts) is reported
but never gates — counts change for legitimate reasons; only time rules
fail the build.
"""

from __future__ import annotations

import json

from repro.observability.analysis import analyze_trace
from repro.observability.diff import diff_stage_tables, evaluate_rules, stage_table
from repro.observability.report import fault_summary

__all__ = [
    "SCHEMA_VERSION",
    "SNAPSHOT_KIND",
    "snapshot_from_trace",
    "build_snapshot",
    "write_snapshot",
    "read_snapshot",
    "compare_snapshots",
    "render_snapshot_comparison",
]

SCHEMA_VERSION = 1
SNAPSHOT_KIND = "repro-bench-snapshot"


def snapshot_from_trace(records: list[dict], name: str) -> dict:
    """Distill one trace into a snapshot entry.

    Stage times keep ``count``/``total``/``self`` (the diffable core;
    shares and means are derivable); ``counters`` is the final exported
    counter map; the schedule block records what the analysis plane
    computed so compare output can show makespan movement without
    re-reading traces.
    """
    analysis = analyze_trace(records)
    stages = {
        stage: {"count": e["count"], "total": e["total"], "self": e["self"]}
        for stage, e in stage_table(records).items()
    }
    counters = {}
    for r in reversed(records):
        if r.get("type") == "metrics":
            counters = dict(r.get("data", {}).get("counters", {}))
            break
    return {
        "name": name,
        "stages": stages,
        "counters": counters,
        "wall_time": analysis["wall_time"],
        "makespan": analysis["simulated_makespan"],
        "critical_path": analysis["critical_path_length"],
        "parallel_efficiency": analysis["parallel_efficiency"],
        "wasted_cost": fault_summary(records)["wasted_cost"],
    }


def build_snapshot(tag: str, entries: list[dict]) -> dict:
    """Assemble benchmark entries into one schema-versioned snapshot."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": SNAPSHOT_KIND,
        "tag": tag,
        "benchmarks": {e["name"]: {k: v for k, v in e.items() if k != "name"} for e in entries},
    }


def write_snapshot(snapshot: dict, path) -> None:
    """Write a snapshot as stable, committable JSON (sorted keys)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_snapshot(path) -> dict:
    """Read and validate a snapshot file.

    Raises ``ValueError`` on a wrong ``kind`` or an unknown
    ``schema_version`` — a CI baseline from a different schema generation
    must fail loudly, not diff nonsensically.
    """
    with open(path, encoding="utf-8") as fh:
        snapshot = json.load(fh)
    if not isinstance(snapshot, dict) or snapshot.get("kind") != SNAPSHOT_KIND:
        raise ValueError(f"{path}: not a {SNAPSHOT_KIND} file")
    version = snapshot.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: snapshot schema_version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    if not isinstance(snapshot.get("benchmarks"), dict):
        raise ValueError(f"{path}: snapshot has no 'benchmarks' mapping")
    return snapshot


def compare_snapshots(
    baseline: dict, current: dict, rules: list, *, min_time: float = 0.0
) -> dict:
    """Align two snapshots benchmark-by-benchmark and gate on the rules.

    Returns ``{"benchmarks": {name: {"stages": <diff>, "violations": [...],
    "counters": {...}, "base"/"cur": schedule summaries}}, "new": [...],
    "vanished": [...], "violations": [...]}`` — the top-level violation
    list (each tagged with its benchmark) is what decides the exit code.
    """
    base_benches = baseline["benchmarks"]
    cur_benches = current["benchmarks"]
    out: dict = {
        "benchmarks": {},
        "new": sorted(set(cur_benches) - set(base_benches)),
        "vanished": sorted(set(base_benches) - set(cur_benches)),
        "violations": [],
    }
    for name in sorted(set(base_benches) & set(cur_benches)):
        b, c = base_benches[name], cur_benches[name]
        stages = diff_stage_tables(b.get("stages", {}), c.get("stages", {}))
        violations = evaluate_rules(stages, rules, min_time=min_time)
        for v in violations:
            v["benchmark"] = name
        counter_names = sorted(set(b.get("counters", {})) | set(c.get("counters", {})))
        counters = {
            k: {"base": b.get("counters", {}).get(k, 0), "cur": c.get("counters", {}).get(k, 0)}
            for k in counter_names
            if b.get("counters", {}).get(k, 0) != c.get("counters", {}).get(k, 0)
        }
        summary_keys = ("wall_time", "makespan", "critical_path", "parallel_efficiency")
        out["benchmarks"][name] = {
            "stages": stages,
            "violations": violations,
            "counters": counters,
            "base": {k: b.get(k) for k in summary_keys},
            "cur": {k: c.get(k) for k in summary_keys},
        }
        out["violations"].extend(violations)
    out["violations"].sort(key=lambda v: -v["pct"])
    return out


def render_snapshot_comparison(comparison: dict) -> str:
    """Human-readable ``repro bench compare`` report."""
    from repro.observability.report import _table

    lines: list[str] = []
    for name, entry in comparison["benchmarks"].items():
        lines.append(f"== Benchmark {name} ==")
        common = entry["stages"]["common"]
        if common:
            ranked = sorted(common.items(), key=lambda kv: -abs(kv[1]["delta_self"]))
            rows = [
                [
                    stage,
                    f"{e['base_self']:.6f}",
                    f"{e['cur_self']:.6f}",
                    f"{e['delta_self']:+.6f}",
                    "new" if e["pct_self"] is None else f"{e['pct_self']:+.1f}%",
                ]
                for stage, e in ranked
            ]
            lines.extend(_table(["stage", "base self", "cur self", "delta", "delta%"], rows))
        for label, key in (("new stages", "new"), ("vanished stages", "vanished")):
            if entry["stages"][key]:
                lines.append(f"  {label}: " + ", ".join(entry["stages"][key]))
        if entry["counters"]:
            drift = ", ".join(
                f"{k} {pair['base']}→{pair['cur']}" for k, pair in sorted(entry["counters"].items())
            )
            lines.append(f"  counter drift (informational): {drift}")
        base, cur = entry["base"], entry["cur"]
        if base.get("makespan") is not None and cur.get("makespan") is not None:
            lines.append(
                f"  makespan {base['makespan']:.6f} → {cur['makespan']:.6f}; "
                f"critical path {base['critical_path']:.6f} → {cur['critical_path']:.6f}"
            )
        for v in entry["violations"]:
            lines.append(
                f"  FAIL {v['stage']}: {v['metric']} {v['base']:.6f} → {v['cur']:.6f} "
                f"({v['pct']:+.1f}% > {v['threshold_pct']:g}% allowed)"
            )
        lines.append("")
    for label, key in (("new benchmarks", "new"), ("vanished benchmarks", "vanished")):
        if comparison[key]:
            lines.append(f"{label}: " + ", ".join(comparison[key]))
    total = len(comparison["violations"])
    lines.append(
        "regression gate: "
        + ("all rules passed" if total == 0 else f"{total} violation(s)")
    )
    return "\n".join(lines) + "\n"
