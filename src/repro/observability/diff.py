"""Trace diffing: align two runs stage-by-stage and gate on regressions.

``repro trace diff BASELINE CURRENT`` (and the snapshot pipeline's
``repro bench compare``) answer "what changed between these two runs":
per-stage total/self/count deltas, stages that appeared or vanished, the
fault-ledger delta, and the simulated makespan / critical-path movement.
Regression *gating* is a list of :class:`RegressionRule` objects parsed
from ``--fail-on 'PATTERN>NN%'`` specs — a glob over stage names with a
percentage threshold on self (default) or total time — evaluated against
the aligned table; any violation makes the CLI exit nonzero, which is the
whole CI story.

Stages are keyed by span name, refined with the span's ``phase`` attribute
when present (``mr.schedule:map`` vs ``mr.schedule:reduce``), so a
reduce-side regression is not averaged away by a healthy map side.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.observability.analysis import analyze_trace
from repro.observability.report import _table, fault_summary, stage_breakdown

__all__ = [
    "RegressionRule",
    "parse_fail_on",
    "stage_table",
    "diff_stage_tables",
    "diff_traces",
    "evaluate_rules",
    "render_trace_diff",
]

_FAIL_ON = re.compile(r"^(?:(?P<metric>self|total):)?(?P<pattern>.+?)>(?P<pct>\d+(?:\.\d+)?)%$")


@dataclass(frozen=True)
class RegressionRule:
    """One gating rule: stages matching ``pattern`` may not slow down by
    more than ``threshold_pct`` percent on ``metric`` (``self`` or
    ``total`` time)."""

    pattern: str
    threshold_pct: float
    metric: str = "self"

    def matches(self, stage: str) -> bool:
        return fnmatchcase(stage, self.pattern)


def parse_fail_on(spec: str) -> RegressionRule:
    """Parse a ``--fail-on`` spec into a rule.

    Grammar: ``[self:|total:]PATTERN>NN%`` where PATTERN is an
    ``fnmatch``-style glob over stage keys (``mr.*``, ``dasc.fit``,
    ``mr.schedule:reduce``) and NN the allowed slowdown percentage.
    """
    m = _FAIL_ON.match(spec.strip())
    if not m:
        raise ValueError(
            f"bad --fail-on spec {spec!r}; expected '[self:|total:]PATTERN>NN%' "
            "e.g. 'mr.*>20%' or 'total:dasc.fit>50%'"
        )
    return RegressionRule(
        pattern=m.group("pattern"),
        threshold_pct=float(m.group("pct")),
        metric=m.group("metric") or "self",
    )


def stage_table(records: list[dict]) -> dict:
    """Per-stage breakdown keyed by diff-stable stage names.

    Same numbers as :func:`~repro.observability.report.stage_breakdown`,
    but span names carrying a ``phase`` attribute are split into
    ``name:phase`` keys so the two sides of a diff align at the phase
    level.
    """
    refined = []
    for r in records:
        if r.get("type") == "span":
            phase = (r.get("attributes") or {}).get("phase")
            if phase is not None:
                r = dict(r, name=f"{r.get('name')}:{phase}")
        refined.append(r)
    return stage_breakdown(refined)


def _pct(base: float, cur: float) -> float | None:
    """Percent change from ``base`` to ``cur`` (``None`` when base is 0)."""
    if base > 0.0:
        return 100.0 * (cur - base) / base
    return None


def diff_stage_tables(base: dict, cur: dict) -> dict:
    """Align two stage tables by stage key.

    Returns ``{"common": {...}, "new": {...}, "vanished": {...}}`` where each
    common entry carries base/current/delta/percent for both self and total
    time plus the call-count pair. ``new``/``vanished`` hold the raw
    one-sided entries.
    """
    common: dict = {}
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        common[name] = {
            "base_self": b["self"],
            "cur_self": c["self"],
            "delta_self": c["self"] - b["self"],
            "pct_self": _pct(b["self"], c["self"]),
            "base_total": b["total"],
            "cur_total": c["total"],
            "delta_total": c["total"] - b["total"],
            "pct_total": _pct(b["total"], c["total"]),
            "base_count": b["count"],
            "cur_count": c["count"],
        }
    return {
        "common": common,
        "new": {name: dict(cur[name]) for name in sorted(set(cur) - set(base))},
        "vanished": {name: dict(base[name]) for name in sorted(set(base) - set(cur))},
    }


def diff_traces(base_records: list[dict], cur_records: list[dict]) -> dict:
    """The full two-trace diff: stages, faults, and schedule summary."""
    base_faults = fault_summary(base_records)
    cur_faults = fault_summary(cur_records)
    fault_kinds = sorted(set(base_faults["by_kind"]) | set(cur_faults["by_kind"]))
    base_analysis = analyze_trace(base_records)
    cur_analysis = analyze_trace(cur_records)

    def summary(analysis: dict) -> dict:
        return {
            "wall_time": analysis["wall_time"],
            "simulated_makespan": analysis["simulated_makespan"],
            "critical_path_length": analysis["critical_path_length"],
            "parallel_efficiency": analysis["parallel_efficiency"],
        }

    return {
        "stages": diff_stage_tables(stage_table(base_records), stage_table(cur_records)),
        "faults": {
            "by_kind": {
                kind: {
                    "base": base_faults["by_kind"].get(kind, 0),
                    "cur": cur_faults["by_kind"].get(kind, 0),
                }
                for kind in fault_kinds
            },
            "base_wasted": base_faults["wasted_cost"],
            "cur_wasted": cur_faults["wasted_cost"],
        },
        "base": summary(base_analysis),
        "cur": summary(cur_analysis),
    }


def evaluate_rules(
    stages_diff: dict, rules: list[RegressionRule], *, min_time: float = 0.0
) -> list[dict]:
    """Check every common stage against every rule.

    A stage violates a rule when the rule's glob matches, the chosen metric
    regressed past the rule's threshold, and the metric's larger side is at
    least ``min_time`` seconds (the noise floor — sub-floor stages jitter
    by large percentages without meaning anything). Returns one violation
    dict per (stage, rule) hit, worst first.
    """
    violations: list[dict] = []
    for stage, entry in stages_diff["common"].items():
        for rule in rules:
            if not rule.matches(stage):
                continue
            base = entry[f"base_{rule.metric}"]
            cur = entry[f"cur_{rule.metric}"]
            if max(base, cur) < min_time:
                continue
            pct = _pct(base, cur)
            if pct is not None and pct > rule.threshold_pct:
                violations.append(
                    {
                        "stage": stage,
                        "metric": rule.metric,
                        "base": base,
                        "cur": cur,
                        "pct": pct,
                        "threshold_pct": rule.threshold_pct,
                        "rule": f"{rule.metric}:{rule.pattern}>{rule.threshold_pct:g}%",
                    }
                )
    violations.sort(key=lambda v: -v["pct"])
    return violations


def _fmt_pct(pct: float | None) -> str:
    return "new" if pct is None else f"{pct:+.1f}%"


def render_trace_diff(diff: dict, violations: list[dict] | None = None) -> str:
    """Human-readable diff report (``repro trace diff``).

    Common stages are ranked by absolute self-time delta; new and vanished
    stages, fault-ledger deltas, and the schedule summary follow. When
    ``violations`` is given, a final section itemizes each gating failure.
    """
    lines: list[str] = []
    stages = diff["stages"]

    lines.append("== Stage deltas ==")
    if stages["common"]:
        ranked = sorted(stages["common"].items(), key=lambda kv: -abs(kv[1]["delta_self"]))
        rows = [
            [
                name,
                f"{e['base_self']:.6f}",
                f"{e['cur_self']:.6f}",
                f"{e['delta_self']:+.6f}",
                _fmt_pct(e["pct_self"]),
                f"{e['base_count']}→{e['cur_count']}",
            ]
            for name, e in ranked
        ]
        lines.extend(
            _table(["stage", "base self", "cur self", "delta", "delta%", "calls"], rows)
        )
    else:
        lines.append("  (no stages in common)")
    for label, key in (("new in current", "new"), ("vanished from baseline", "vanished")):
        if stages[key]:
            lines.append(f"  {label}:")
            for name, e in stages[key].items():
                lines.append(f"    {name}  self={e['self']:.6f}s  calls={e['count']}")
    lines.append("")

    lines.append("== Fault deltas ==")
    faults = diff["faults"]
    changed = {
        kind: pair for kind, pair in faults["by_kind"].items() if pair["base"] != pair["cur"]
    }
    if changed or faults["by_kind"]:
        for kind, pair in sorted(faults["by_kind"].items()):
            marker = "" if pair["base"] == pair["cur"] else "  *"
            lines.append(f"  {kind}: {pair['base']} → {pair['cur']}{marker}")
        lines.append(
            f"  wasted cost: {faults['base_wasted']:.4f} → {faults['cur_wasted']:.4f}"
        )
    else:
        lines.append("  no fault events in either run")
    lines.append("")

    lines.append("== Summary ==")
    base, cur = diff["base"], diff["cur"]
    for label, key in (
        ("wall time", "wall_time"),
        ("simulated makespan", "simulated_makespan"),
        ("critical path", "critical_path_length"),
    ):
        pct = _fmt_pct(_pct(base[key], cur[key]))
        lines.append(f"  {label}: {base[key]:.6f} → {cur[key]:.6f}  ({pct})")
    if base["parallel_efficiency"] is not None or cur["parallel_efficiency"] is not None:
        b = base["parallel_efficiency"]
        c = cur["parallel_efficiency"]
        lines.append(
            "  parallel efficiency: "
            + ("-" if b is None else f"{100.0 * b:.1f}%")
            + " → "
            + ("-" if c is None else f"{100.0 * c:.1f}%")
        )

    if violations is not None:
        lines.append("")
        lines.append("== Regression gate ==")
        if violations:
            for v in violations:
                lines.append(
                    f"  FAIL {v['stage']}: {v['metric']} {v['base']:.6f} → {v['cur']:.6f} "
                    f"({v['pct']:+.1f}% > {v['threshold_pct']:g}% allowed by {v['rule']})"
                )
        else:
            lines.append("  all rules passed")
    return "\n".join(lines) + "\n"
