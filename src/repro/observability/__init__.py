"""Observability: tracing, metrics, structured logging, and trace analysis.

The paper's whole evaluation (Sections 5.4-5.6) is per-stage attribution —
time and memory by pipeline stage, collision statistics, and 16/32/64-node
makespans. This package makes every such number a first-class artifact of a
run instead of an ad-hoc measurement:

* :mod:`~repro.observability.trace` — nested spans with wall time and
  explicit parent links, point events, and a process-wide tracer that
  defaults to a zero-overhead no-op;
* :mod:`~repro.observability.metrics` — counters, gauges, and fixed-bucket
  histograms (with quantile estimation) exported with the trace;
* :mod:`~repro.observability.sink` — the JSON-lines trace file (one run,
  one file) and its damage-tolerant reader;
* :mod:`~repro.observability.report` — the Section 5.6 per-stage breakdown
  and the fault ledger, rebuilt from a trace file (``repro trace report``);
* :mod:`~repro.observability.analysis` — the span DAG, wall-clock and
  simulated critical paths, per-node utilization, and parallel efficiency
  (``repro trace critical-path``);
* :mod:`~repro.observability.diff` — two-trace stage diffing with
  ``--fail-on`` regression gating (``repro trace diff``);
* :mod:`~repro.observability.snapshot` — schema-versioned perf snapshots
  distilled from traced benchmarks and the snapshot-vs-baseline compare
  that CI gates on (``repro bench snapshot`` / ``repro bench compare``);
* :mod:`~repro.observability.logging` — the single place handlers/levels
  for the ``repro`` logger namespace are configured.
"""

from repro.observability.analysis import (
    analyze_trace,
    build_span_tree,
    node_utilization,
    parallel_efficiency,
    phase_critical_path,
    render_critical_path,
    wall_critical_path,
)
from repro.observability.diff import (
    RegressionRule,
    diff_stage_tables,
    diff_traces,
    evaluate_rules,
    parse_fail_on,
    render_trace_diff,
    stage_table,
)
from repro.observability.logging import configure, configure_logging, get_logger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    pow2_buckets,
    quantile_from_counts,
    time_buckets,
)
from repro.observability.report import (
    fault_summary,
    render_trace_report,
    shuffle_volume,
    stage_breakdown,
)
from repro.observability.sink import InMemorySink, JsonLinesSink, read_trace
from repro.observability.snapshot import (
    SCHEMA_VERSION,
    build_snapshot,
    compare_snapshots,
    read_snapshot,
    render_snapshot_comparison,
    snapshot_from_trace,
    write_snapshot,
)
from repro.observability.trace import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace_to,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NullTracer",
    "RegressionRule",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "analyze_trace",
    "build_snapshot",
    "build_span_tree",
    "compare_snapshots",
    "configure",
    "configure_logging",
    "diff_stage_tables",
    "diff_traces",
    "evaluate_rules",
    "fault_summary",
    "get_logger",
    "get_tracer",
    "node_utilization",
    "parallel_efficiency",
    "parse_fail_on",
    "phase_critical_path",
    "pow2_buckets",
    "quantile_from_counts",
    "read_snapshot",
    "read_trace",
    "render_critical_path",
    "render_snapshot_comparison",
    "render_trace_diff",
    "render_trace_report",
    "set_tracer",
    "shuffle_volume",
    "snapshot_from_trace",
    "stage_breakdown",
    "stage_table",
    "time_buckets",
    "trace_to",
    "use_tracer",
    "wall_critical_path",
    "write_snapshot",
]
