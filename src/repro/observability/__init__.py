"""Observability: tracing, metrics, structured logging, and trace reports.

The paper's whole evaluation (Sections 5.4-5.6) is per-stage attribution —
time and memory by pipeline stage, collision statistics, and 16/32/64-node
makespans. This package makes every such number a first-class artifact of a
run instead of an ad-hoc measurement:

* :mod:`~repro.observability.trace` — nested spans with wall time and
  explicit parent links, point events, and a process-wide tracer that
  defaults to a zero-overhead no-op;
* :mod:`~repro.observability.metrics` — counters, gauges, and fixed-bucket
  histograms exported with the trace;
* :mod:`~repro.observability.sink` — the JSON-lines trace file (one run,
  one file) and its reader;
* :mod:`~repro.observability.report` — the Section 5.6 per-stage breakdown
  and the fault ledger, rebuilt from a trace file (``repro trace report``);
* :mod:`~repro.observability.logging` — the single place handlers/levels
  for the ``repro`` logger namespace are configured.
"""

from repro.observability.logging import configure, configure_logging, get_logger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    pow2_buckets,
)
from repro.observability.report import fault_summary, render_trace_report, stage_breakdown
from repro.observability.sink import InMemorySink, JsonLinesSink, read_trace
from repro.observability.trace import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace_to,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "configure",
    "configure_logging",
    "fault_summary",
    "get_logger",
    "get_tracer",
    "pow2_buckets",
    "read_trace",
    "render_trace_report",
    "set_tracer",
    "stage_breakdown",
    "trace_to",
    "use_tracer",
]
