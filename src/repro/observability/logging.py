"""Unified logging configuration for the whole package.

Library modules obtain namespaced loggers with :func:`get_logger` and never
touch handlers themselves (``logging.basicConfig`` in a library hijacks the
host application's root logger); entry points — the CLI, experiment runner,
benchmark harness — call :func:`configure` exactly once to decide level,
format, destination, and per-module overrides for everything under the
``repro`` namespace.
"""

from __future__ import annotations

import logging as _logging
import sys

__all__ = [
    "ROOT_LOGGER_NAME",
    "DEFAULT_FORMAT",
    "configure",
    "configure_logging",
    "get_logger",
]

#: Every repro logger lives under this namespace.
ROOT_LOGGER_NAME = "repro"

#: Default record format: time, level, dotted module, message.
DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: The handler installed by :func:`configure` (tracked so reconfiguration
#: replaces it instead of stacking duplicates).
_installed_handler: _logging.Handler | None = None


def _qualify(name: str | None) -> str:
    if not name:
        return ROOT_LOGGER_NAME
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return name
    return f"{ROOT_LOGGER_NAME}.{name}"


def get_logger(name: str | None = None) -> _logging.Logger:
    """A logger under the ``repro`` namespace.

    Pass ``__name__`` from package modules (already qualified) or a short
    suffix like ``"core.tuning"``; no argument returns the root logger.
    """
    return _logging.getLogger(_qualify(name))


def configure(
    level: int | str = "INFO",
    *,
    fmt: str = DEFAULT_FORMAT,
    stream=None,
    module_levels: dict | None = None,
) -> _logging.Logger:
    """Configure the ``repro`` logger tree; safe to call repeatedly.

    Parameters
    ----------
    level:
        Threshold for the ``repro`` root logger (name or numeric).
    fmt:
        ``logging.Formatter`` format string for the installed handler.
    stream:
        Destination stream (default ``sys.stderr``, so CSV/label output on
        stdout stays machine-readable).
    module_levels:
        Per-module overrides, e.g. ``{"core.tuning": "DEBUG"}`` (names are
        qualified under ``repro`` automatically).

    Returns the configured root logger. Reconfiguring replaces the handler
    installed by the previous call rather than stacking a duplicate, and
    only ever touches the ``repro`` subtree — never the global root logger.
    """
    global _installed_handler
    root = _logging.getLogger(ROOT_LOGGER_NAME)
    if _installed_handler is not None:
        root.removeHandler(_installed_handler)
    handler = _logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_logging.Formatter(fmt))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False  # the host application's root logger is not ours
    _installed_handler = handler
    for name, module_level in (module_levels or {}).items():
        _logging.getLogger(_qualify(name)).setLevel(module_level)
    return root


#: Unambiguous alias for importing alongside other configure-ish names.
configure_logging = configure
