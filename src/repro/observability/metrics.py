"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The quantities the paper tabulates that are *not* wall time — bucket-size
distributions (Section 4's collision analysis), kernel-block storage
(Eq. 12), Lanczos iteration counts, retry tallies — are recorded here and
exported as one ``metrics`` record at the end of a trace. Instruments are
deliberately minimal (no labels, no time series): one process, one run,
one snapshot.

The null registry (:data:`NULL_METRICS`) backs the disabled tracer so hot
paths can call ``tracer.metrics.counter(...).inc()`` unconditionally and
pay only attribute lookups and a no-op call when tracing is off.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "pow2_buckets",
    "time_buckets",
    "quantile_from_counts",
]


def pow2_buckets(max_exponent: int = 20) -> tuple:
    """Power-of-two bucket bounds ``(1, 2, 4, ..., 2**max_exponent)``.

    The natural scale for bucket sizes and block byte counts, whose
    distributions span orders of magnitude (Figure 5's sweep covers
    2..4096-point buckets).
    """
    if max_exponent < 0:
        raise ValueError(f"max_exponent must be >= 0, got {max_exponent}")
    return tuple(2**i for i in range(max_exponent + 1))


def time_buckets() -> tuple:
    """Power-of-two *seconds* bounds from ~1 µs to ~17 min.

    Durations (task bodies, storage backoffs) live well below the integer
    pow2 scale, so histograms of seconds use this sub-second geometric
    ladder instead.
    """
    return tuple(2.0**e for e in range(-20, 11))


def quantile_from_counts(buckets, counts, q, *, minimum=None, maximum=None) -> float | None:
    """Estimate the ``q``-quantile of a bucketed distribution.

    ``buckets`` are inclusive upper bounds, ``counts`` the per-bucket tallies
    including the trailing overflow bucket (the :class:`Histogram` layout).
    The estimate interpolates *within* the bucket holding the target rank —
    log-linearly when the bucket's bounds are positive (the right choice for
    geometric ladders like :func:`pow2_buckets`), linearly otherwise. The
    known ``minimum``/``maximum`` samples, when given, tighten the first and
    overflow buckets and clamp the result. Returns ``None`` for an empty
    distribution.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    target = q * total
    cumulative = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cumulative + c >= target:
            frac = (target - cumulative) / c if c else 0.0
            frac = min(1.0, max(0.0, frac))
            if i == 0:
                lo = minimum if minimum is not None else 0.0
                hi = buckets[0]
            elif i == len(buckets):  # overflow bucket
                lo = buckets[-1]
                hi = maximum if maximum is not None else buckets[-1] * 2.0
            else:
                lo = buckets[i - 1]
                hi = buckets[i]
            lo, hi = float(lo), float(hi)
            if hi < lo:
                hi = lo
            if lo > 0.0 and hi > 0.0:
                value = lo * (hi / lo) ** frac
            else:
                value = lo + (hi - lo) * frac
            if minimum is not None:
                value = max(value, float(minimum))
            if maximum is not None:
                value = min(value, float(maximum))
            return value
        cumulative += c
    # q == 1.0 lands past the last non-empty bucket on exact arithmetic.
    return float(maximum) if maximum is not None else float(buckets[-1])


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A last-value-wins measurement (e.g. resolved sigma, peak block bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = None

    def set(self, value) -> None:
        """Record the current value, replacing any previous one."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are inclusive upper bounds in increasing order; one implicit
    overflow bucket catches everything above the last bound, so ``counts``
    has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets=None):
        bounds = tuple(float(b) for b in (buckets if buckets is not None else pow2_buckets()))
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value) -> None:
        """Record one sample into its bucket (linear scan: bucket lists are
        short and fixed, and this stays allocation-free)."""
        value = float(value)
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (``None`` when empty).

        Log-linear interpolation within the target bucket, clamped to the
        observed ``[min, max]`` — see :func:`quantile_from_counts`.
        """
        if self.count == 0:
            return None
        return quantile_from_counts(
            self.buckets, self.counts, q, minimum=self.min, maximum=self.max
        )


class MetricsRegistry:
    """Get-or-create registry keyed by metric name.

    A name identifies exactly one instrument kind for the registry's
    lifetime; asking for the same name with a different kind (or a
    histogram with different buckets) is a programming error and raises.
    """

    def __init__(self):
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name: str, kind, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(existing).__name__}, not a {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets=None) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        hist = self._get_or_create(name, Histogram, lambda: Histogram(name, buckets))
        if buckets is not None and hist.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets {hist.buckets}"
            )
        return hist

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Serializable snapshot: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["histograms"][name] = {
                    "buckets": list(inst.buckets),
                    "counts": list(inst.counts),
                    "count": inst.count,
                    "sum": inst.sum,
                    "min": None if inst.count == 0 else inst.min,
                    "max": None if inst.count == 0 else inst.max,
                }
        return out


class _NullInstrument:
    """Accepts every instrument method as a no-op (disabled-tracer path)."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetricsRegistry:
    """Registry returned by the disabled tracer: every lookup is the same
    shared no-op instrument and nothing is retained."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared no-op registry backing :class:`~repro.observability.trace.NullTracer`.
NULL_METRICS = _NullMetricsRegistry()
