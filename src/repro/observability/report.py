"""Trace-file analysis: the Section 5.6 per-stage view, rebuilt offline.

Given the records of one JSON-lines trace (see
:mod:`repro.observability.sink`), these helpers reconstruct the per-stage
wall-time breakdown the paper reports in Section 5.6 / Figure 6(a), plus a
fault ledger itemizing every retry, node loss, and speculative attempt with
its wasted time — the audit trail for the fault-injection machinery.
``repro trace report`` is a thin CLI wrapper over :func:`render_trace_report`.
"""

from __future__ import annotations

from repro.observability.metrics import quantile_from_counts

__all__ = ["stage_breakdown", "fault_summary", "shuffle_volume", "render_trace_report"]


def _spans(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("type") == "span" and r.get("duration") is not None]


def stage_breakdown(records: list[dict]) -> dict:
    """Aggregate spans by name into the per-stage table.

    Returns ``{name: {"count", "total", "self", "mean", "share"}}`` where
    ``total`` sums the span durations, ``self`` excludes time covered by
    child spans (so nested instrumentation does not double-count), and
    ``share`` is ``self`` over the run wall time. The run wall time is the
    sum of root-span durations (falling back to the overall start→end
    envelope for truncated traces with no closed roots).
    """
    spans = _spans(records)
    child_time: dict[int, float] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + s["duration"]

    wall = sum(s["duration"] for s in spans if s.get("parent_id") is None)
    if wall <= 0.0 and spans:
        wall = max(s["end"] for s in spans) - min(s["start"] for s in spans)

    out: dict = {}
    for s in spans:
        entry = out.setdefault(s["name"], {"count": 0, "total": 0.0, "self": 0.0})
        entry["count"] += 1
        entry["total"] += s["duration"]
        entry["self"] += max(0.0, s["duration"] - child_time.get(s["span_id"], 0.0))
    for entry in out.values():
        entry["mean"] = entry["total"] / entry["count"]
        entry["share"] = entry["self"] / wall if wall > 0 else 0.0
    return out


def fault_summary(records: list[dict]) -> dict:
    """Itemize fault events and total their wasted time.

    Every ``fault.*`` event (task retries, node failures, speculative
    attempts), every ``storage.*`` event (retries with their backoff
    time, corruption detections, quarantines), and every ``autoscale.*``
    event (resize decisions, cold starts, decommission drains) appears in
    ``items`` verbatim; ``wasted_cost`` sums whatever cost each event
    reports as thrown-away work — for a storage retry the backoff delay
    it burned, for a scale-up the cold-start latency, for a drain the
    block re-replication time.
    """
    items = [
        r
        for r in records
        if r.get("type") == "event"
        and str(r.get("name", "")).startswith(("fault.", "storage.", "autoscale."))
    ]
    by_kind: dict[str, int] = {}
    wasted = 0.0
    for ev in items:
        by_kind[ev["name"]] = by_kind.get(ev["name"], 0) + 1
        wasted += float(ev.get("attributes", {}).get("wasted_cost", 0.0) or 0.0)
    return {"items": items, "by_kind": by_kind, "wasted_cost": wasted}


def shuffle_volume(records: list[dict]) -> list[dict]:
    """Per-job shuffle volume and partition skew.

    One entry per ``mr.shuffle`` span that carries the volume attributes
    (``partition_records``, ``bytes``): the owning job's name, partition
    count, total/max records, approximate bytes, and ``skew`` — the ratio
    of the largest partition to the mean, the number that tells you
    whether a slow reduce phase is data skew or compute.
    """
    by_id = {
        r["span_id"]: r
        for r in records
        if r.get("type") == "span" and r.get("span_id") is not None
    }
    out: list[dict] = []
    for r in records:
        if r.get("type") != "span" or r.get("name") != "mr.shuffle":
            continue
        attrs = r.get("attributes", {}) or {}
        partition_records = attrs.get("partition_records")
        if partition_records is None:
            continue
        parent = by_id.get(r.get("parent_id"))
        job = (parent.get("attributes", {}) or {}).get("job") if parent else None
        counts = [int(c) for c in partition_records]
        total = sum(counts)
        mean = total / len(counts) if counts else 0.0
        out.append(
            {
                "job": job,
                "n_partitions": len(counts),
                "records": total,
                "max_partition": max(counts, default=0),
                "bytes": int(attrs.get("bytes", 0) or 0),
                "skew": (max(counts) / mean) if counts and mean > 0 else 0.0,
            }
        )
    return out


def _table(header: list[str], rows: list[list]) -> list[str]:
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines


def render_trace_report(records: list[dict], *, top: int | None = None) -> str:
    """Render a trace as the human-readable per-stage report.

    Sections: run metadata, the stage table (sorted by self time, optionally
    truncated to ``top`` rows), task-duration percentiles, shuffle volume,
    the simulated critical path, the fault ledger, and the exported
    metrics. A lenient :func:`~repro.observability.sink.read_trace` pass
    that skipped malformed lines is flagged up front.
    """
    from repro.observability.analysis import analyze_trace

    lines: list[str] = []

    skipped = sum(
        int(r.get("skipped", 0)) for r in records if r.get("type") == "trace_warning"
    )
    if skipped:
        lines.append(
            f"!! warning: {skipped} malformed trace line(s) skipped while reading "
            "(truncated or corrupt file?)"
        )
        lines.append("")

    metas = [r for r in records if r.get("type") == "meta"]
    if metas:
        lines.append("== Run ==")
        for meta in metas:
            attrs = ", ".join(f"{k}={v}" for k, v in sorted(meta.get("attributes", {}).items()))
            lines.append(f"  {attrs}" if attrs else "  (no metadata)")
        lines.append("")

    stages = stage_breakdown(records)
    lines.append("== Stage breakdown ==")
    if stages:
        ranked = sorted(stages.items(), key=lambda kv: -kv[1]["self"])
        dropped = 0
        if top is not None and top < len(ranked):
            dropped = len(ranked) - top
            ranked = ranked[:top]
        rows = [
            [
                name,
                e["count"],
                f"{e['total']:.6f}",
                f"{e['self']:.6f}",
                f"{100.0 * e['share']:.1f}%",
            ]
            for name, e in ranked
        ]
        lines.extend(_table(["stage", "calls", "total s", "self s", "share"], rows))
        if dropped:
            lines.append(f"  ... {dropped} more stage(s); raise --top to see them")
    else:
        lines.append("  (no closed spans in trace)")
    lines.append("")

    analysis = analyze_trace(records)

    quantiles = analysis["task_quantiles"]
    if quantiles is not None:
        lines.append("== Task durations ==")
        lines.append(
            f"  {quantiles['count']} tasks ({quantiles['source']}): "
            f"p50={quantiles['p50']:.6f}s  p95={quantiles['p95']:.6f}s  "
            f"p99={quantiles['p99']:.6f}s"
        )
        lines.append("")

    shuffles = shuffle_volume(records)
    if shuffles:
        lines.append("== Shuffle volume ==")
        rows = [
            [
                s["job"] or "?",
                s["n_partitions"],
                s["records"],
                s["max_partition"],
                f"{s['skew']:.2f}x",
                s["bytes"],
            ]
            for s in shuffles
        ]
        lines.extend(
            _table(
                ["job", "partitions", "records", "max part", "skew", "~bytes"], rows
            )
        )
        lines.append("")

    if analysis["phases"]:
        lines.append("== Critical path (simulated) ==")
        for p in analysis["phases"]:
            straggler = p["straggler"]
            detail = (
                "-"
                if straggler is None
                else f"{straggler['task']}"
                + ("" if straggler["node"] is None else f"@n{straggler['node']}")
            )
            job = p["job"] or "?"
            lines.append(
                f"  {job}/{p['phase']}: makespan={p['makespan']:.6f} "
                f"critical={p['critical']:.6f} straggler={detail}"
            )
        lines.append(
            f"  total: critical path {analysis['critical_path_length']:.6f} of "
            f"makespan {analysis['simulated_makespan']:.6f}"
            + (
                f"; parallel efficiency {100.0 * analysis['parallel_efficiency']:.1f}%"
                if analysis["parallel_efficiency"] is not None
                else ""
            )
        )
        lines.append("")

    faults = fault_summary(records)
    lines.append("== Faults ==")
    if faults["items"]:
        rows = []
        for ev in faults["items"]:
            attrs = ev.get("attributes", {})
            wasted = float(attrs.get("wasted_cost", 0.0) or 0.0)
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(attrs.items()) if k != "wasted_cost"
            )
            rows.append([ev["name"], f"{wasted:.4f}", detail])
        lines.extend(_table(["event", "wasted", "detail"], rows))
        counts = ", ".join(f"{k}×{v}" for k, v in sorted(faults["by_kind"].items()))
        lines.append(f"  total wasted cost: {faults['wasted_cost']:.4f}  ({counts})")
    else:
        lines.append("  clean run: no fault events")
    lines.append("")

    metric_records = [r for r in records if r.get("type") == "metrics"]
    lines.append("== Metrics ==")
    if metric_records:
        data = metric_records[-1].get("data", {})
        for name, value in sorted(data.get("counters", {}).items()):
            lines.append(f"  counter    {name} = {value}")
        for name, value in sorted(data.get("gauges", {}).items()):
            lines.append(f"  gauge      {name} = {value}")
        for name, hist in sorted(data.get("histograms", {}).items()):
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            quantile_note = ""
            if hist["count"]:
                qs = [
                    quantile_from_counts(
                        hist["buckets"],
                        hist["counts"],
                        q,
                        minimum=hist.get("min"),
                        maximum=hist.get("max"),
                    )
                    for q in (0.50, 0.95, 0.99)
                ]
                quantile_note = (
                    f" p50={qs[0]:.4g} p95={qs[1]:.4g} p99={qs[2]:.4g}"
                )
            lines.append(
                f"  histogram  {name}: count={hist['count']} mean={mean:.2f} "
                f"min={hist['min']} max={hist['max']}{quantile_note}"
            )
            occupied = [
                (bound, c)
                for bound, c in zip(list(hist["buckets"]) + ["inf"], hist["counts"])
                if c
            ]
            if occupied:
                lines.append(
                    "             "
                    + "  ".join(f"<={bound}: {c}" for bound, c in occupied)
                )
    else:
        lines.append("  (no metrics record in trace)")
    return "\n".join(lines) + "\n"
