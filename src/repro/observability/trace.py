"""Span-based tracing for the DASC pipeline and the MapReduce substrate.

A :class:`Span` is a named interval of wall time with key/value attributes,
an explicit parent link, and a monotonic sequence number; a point-in-time
:meth:`Tracer.event` hangs fault/checkpoint occurrences off the current
span. Spans nest through a plain stack — the tracer is single-threaded by
design, matching the in-process engine it instruments.

The default global tracer is a :class:`NullTracer`: every instrumentation
site costs one ``get_tracer()`` call and a no-op context manager when
tracing is off, so the quickstart path pays no measurable overhead. Enable
tracing by installing a real tracer::

    from repro.observability import trace_to

    with trace_to("run.jsonl"):
        DASC(8, seed=0).fit(X)

or, for explicit control, ``set_tracer(Tracer(sink=JsonLinesSink(path)))``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.observability.metrics import NULL_METRICS, MetricsRegistry
from repro.observability.sink import InMemorySink, JsonLinesSink

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_to",
]


class Span:
    """One named, timed interval in a trace.

    Attributes
    ----------
    name / span_id / parent_id:
        Identity and the explicit parent link (``None`` for roots).
    seq:
        Monotonic open-order index shared with events — total ordering of
        the whole trace even though spans are emitted at close.
    start / end:
        ``time.perf_counter()`` readings; ``end`` is ``None`` while open.
    attributes:
        Key/value payload (set at open via kwargs or later via :meth:`set`).
    """

    __slots__ = ("name", "span_id", "parent_id", "seq", "start", "end", "attributes")

    def __init__(self, name: str, span_id: int, parent_id: int | None, seq: int, start: float):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq
        self.start = start
        self.end: float | None = None
        self.attributes: dict = {}

    def set(self, key: str, value) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    @property
    def duration(self) -> float | None:
        """Elapsed seconds (``None`` while the span is still open)."""
        return None if self.end is None else self.end - self.start

    def to_record(self) -> dict:
        """The span as a serializable trace record."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "seq": self.seq,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.end is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, {state})"


class Tracer:
    """Collects nested spans, point events, and metrics into a sink.

    Parameters
    ----------
    sink:
        Record destination (default: an :class:`InMemorySink`, whose
        ``records`` list the tests read back directly).
    metrics:
        A :class:`MetricsRegistry`; a fresh one is created when omitted.
        :meth:`flush` exports its snapshot as a ``metrics`` record.
    """

    enabled = True

    def __init__(self, sink=None, *, metrics: MetricsRegistry | None = None):
        self.sink = sink if sink is not None else InMemorySink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stack: list[Span] = []
        self._next_id = 1
        self._next_seq = 0

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of whatever span is currently innermost.

        The span record is emitted at close (it needs its end time); ``seq``
        preserves open order for readers. Exceptions propagate after the
        span is closed and stamped with ``error``.
        """
        span = Span(
            name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            seq=self._next_seq,
            start=time.perf_counter(),
        )
        self._next_id += 1
        self._next_seq += 1
        if attributes:
            span.attributes.update(attributes)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.set("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            span.end = time.perf_counter()
            popped = self._stack.pop()
            if popped is not span:  # pragma: no cover - misuse guard
                raise RuntimeError(f"span stack corrupted: closed {span!r}, top was {popped!r}")
            self.sink.emit(span.to_record())

    def event(self, name: str, **attributes) -> dict:
        """Emit a point-in-time event under the current span (retry fired,
        node died, checkpoint written...). Returns the emitted record."""
        record = {
            "type": "event",
            "name": name,
            "parent_id": self._stack[-1].span_id if self._stack else None,
            "seq": self._next_seq,
            "time": time.perf_counter(),
            "attributes": attributes,
        }
        self._next_seq += 1
        self.sink.emit(record)
        return record

    def meta(self, **attributes) -> dict:
        """Emit a ``meta`` record (run identity: dataset size, config,
        wall-clock timestamp — anything the report should echo)."""
        record = {
            "type": "meta",
            "seq": self._next_seq,
            "unix_time": time.time(),
            "attributes": attributes,
        }
        self._next_seq += 1
        self.sink.emit(record)
        return record

    # -- lifecycle ----------------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def flush(self) -> None:
        """Export the metrics snapshot (when non-empty) and flush the sink."""
        if len(self.metrics):
            self.sink.emit(
                {"type": "metrics", "seq": self._next_seq, "data": self.metrics.snapshot()}
            )
            self._next_seq += 1
        self.sink.flush()

    def close(self) -> None:
        """Flush, then close the sink."""
        self.flush()
        self.sink.close()


class _NullSpanContext:
    """The do-nothing span: context manager and attribute sink in one.

    A single shared instance is returned for every disabled ``span()`` call,
    so the hot path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, key, value) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a guard-check-cheap no-op."""

    enabled = False
    metrics = NULL_METRICS

    def span(self, name: str, **attributes):
        return _NULL_SPAN

    def event(self, name: str, **attributes) -> None:
        return None

    def meta(self, **attributes) -> None:
        return None

    @property
    def current_span(self):
        return None

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled tracer (also what :func:`set_tracer(None)` restores).
NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER


def get_tracer():
    """The process-wide tracer (a :class:`NullTracer` unless one was installed)."""
    return _current


def set_tracer(tracer):
    """Install ``tracer`` globally (``None`` → disabled); returns the previous one."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer):
    """Scoped :func:`set_tracer`: install for the block, then restore."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def trace_to(path, *, mode: str = "w"):
    """Record everything inside the block to a JSON-lines trace file.

    The one-liner wrapping of sink + tracer + install + flush; ``mode="a"``
    appends (what a resumed driver run uses to extend its original trace).
    """
    tracer = Tracer(sink=JsonLinesSink(path, mode=mode))
    try:
        with use_tracer(tracer):
            yield tracer
    finally:
        tracer.close()
