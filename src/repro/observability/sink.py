"""Trace event sinks: where tracer records go.

A *record* is a plain dict with a ``type`` field (``span`` / ``event`` /
``metrics`` / ``meta``). Sinks only need an ``emit(record)`` method;
:class:`JsonLinesSink` appends one JSON object per line so a whole run —
pipeline stages, MapReduce task attempts, fault events, final metric
snapshots — exports to a single machine-readable file that
``repro trace report`` (and the tests) can re-read with :func:`read_trace`.
"""

from __future__ import annotations

import io
import json
import os
import threading

__all__ = ["InMemorySink", "JsonLinesSink", "read_trace"]


def _json_default(obj):
    """Coerce non-JSON values (numpy scalars/arrays, sets, objects) to JSON."""
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "ndim", None) in (None, 0):
        return obj.item()  # numpy scalar
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return obj.tolist()  # numpy array
    if isinstance(obj, (set, frozenset)):
        return sorted(obj, key=repr)
    return repr(obj)


class InMemorySink:
    """Collects records in a list (the default sink; used heavily by tests)."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        """Append one record."""
        self.records.append(record)

    def flush(self) -> None:  # interface parity with JsonLinesSink
        pass

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Appends records to a JSON-lines file (one trace file per run).

    Parameters
    ----------
    path:
        Output file path, or an already-open text stream.
    mode:
        ``"w"`` truncates (fresh run); ``"a"`` appends — what a resumed
        driver uses so post-crash spans land in the same trace file.
    """

    def __init__(self, path, *, mode: str = "w"):
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        if isinstance(path, (str, os.PathLike)):
            self.path = os.fspath(path)
            self._stream = open(self.path, mode, encoding="utf-8")
            self._owns_stream = True
        else:
            self.path = getattr(path, "name", None)
            self._stream = path
            self._owns_stream = False
        # Span re-emission from parallel phases may reach the sink from
        # executor callback threads; serialise write+flush so lines never
        # interleave mid-record.
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        """Serialize one record as a JSON line (flushed immediately, so a
        crashed driver still leaves a readable prefix)."""
        line = json.dumps(record, default=_json_default) + "\n"
        with self._lock:
            self._stream.write(line)
            self._stream.flush()

    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()


def _parse_lines(lines, strict: bool) -> list[dict]:
    records: list[dict] = []
    skipped = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if strict:
                raise
            skipped += 1
            continue
        if not isinstance(record, dict):
            # A bare JSON scalar/array is not a trace record; same handling
            # as an unparsable line.
            if strict:
                raise ValueError(f"trace line is not a JSON object: {line.strip()[:80]!r}")
            skipped += 1
            continue
        records.append(record)
    if skipped:
        warning = {"type": "trace_warning", "name": "read.skipped_lines", "skipped": skipped}
        if records and all("seq" in r for r in records):
            warning["seq"] = max(r["seq"] for r in records) + 1
        records.append(warning)
    return records


def read_trace(source, *, strict: bool = False) -> list[dict]:
    """Load a JSON-lines trace back into a list of record dicts.

    ``source`` is a file path or a text stream; blank lines are skipped and
    records are returned in ``seq`` order when every record carries one
    (file order otherwise), so reports see spans in open order even though
    the tracer emits them at close.

    A crashed writer leaves a truncated trailing line (and a corrupted disk
    can damage any line); by default such malformed lines are *skipped* and
    counted into one synthetic ``{"type": "trace_warning", "name":
    "read.skipped_lines", "skipped": N}`` record appended to the result, so
    ``render_trace_report`` can surface how much of the trace was dropped.
    ``strict=True`` restores raise-on-malformed behavior.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as fh:
            records = _parse_lines(fh, strict)
    elif isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        records = _parse_lines(source, strict)
    else:
        raise TypeError(f"expected a path or text stream, got {type(source).__name__}")
    if records and all("seq" in r for r in records):
        records.sort(key=lambda r: r["seq"])
    return records
