"""Trace event sinks: where tracer records go.

A *record* is a plain dict with a ``type`` field (``span`` / ``event`` /
``metrics`` / ``meta``). Sinks only need an ``emit(record)`` method;
:class:`JsonLinesSink` appends one JSON object per line so a whole run —
pipeline stages, MapReduce task attempts, fault events, final metric
snapshots — exports to a single machine-readable file that
``repro trace report`` (and the tests) can re-read with :func:`read_trace`.
"""

from __future__ import annotations

import io
import json
import os
import threading

__all__ = ["InMemorySink", "JsonLinesSink", "read_trace"]


def _json_default(obj):
    """Coerce non-JSON values (numpy scalars/arrays, sets, objects) to JSON."""
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "ndim", None) in (None, 0):
        return obj.item()  # numpy scalar
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return obj.tolist()  # numpy array
    if isinstance(obj, (set, frozenset)):
        return sorted(obj, key=repr)
    return repr(obj)


class InMemorySink:
    """Collects records in a list (the default sink; used heavily by tests)."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        """Append one record."""
        self.records.append(record)

    def flush(self) -> None:  # interface parity with JsonLinesSink
        pass

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Appends records to a JSON-lines file (one trace file per run).

    Parameters
    ----------
    path:
        Output file path, or an already-open text stream.
    mode:
        ``"w"`` truncates (fresh run); ``"a"`` appends — what a resumed
        driver uses so post-crash spans land in the same trace file.
    """

    def __init__(self, path, *, mode: str = "w"):
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        if isinstance(path, (str, os.PathLike)):
            self.path = os.fspath(path)
            self._stream = open(self.path, mode, encoding="utf-8")
            self._owns_stream = True
        else:
            self.path = getattr(path, "name", None)
            self._stream = path
            self._owns_stream = False
        # Span re-emission from parallel phases may reach the sink from
        # executor callback threads; serialise write+flush so lines never
        # interleave mid-record.
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        """Serialize one record as a JSON line (flushed immediately, so a
        crashed driver still leaves a readable prefix)."""
        line = json.dumps(record, default=_json_default) + "\n"
        with self._lock:
            self._stream.write(line)
            self._stream.flush()

    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()


def read_trace(source) -> list[dict]:
    """Load a JSON-lines trace back into a list of record dicts.

    ``source`` is a file path or a text stream; blank lines are skipped and
    records are returned in ``seq`` order when every record carries one
    (file order otherwise), so reports see spans in open order even though
    the tracer emits them at close.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
    elif isinstance(source, io.TextIOBase) or hasattr(source, "read"):
        records = [json.loads(line) for line in source if line.strip()]
    else:
        raise TypeError(f"expected a path or text stream, got {type(source).__name__}")
    if records and all("seq" in r for r in records):
        records.sort(key=lambda r: r["seq"])
    return records
