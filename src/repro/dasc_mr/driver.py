"""The distributed DASC driver: the paper's EMR job flow, end to end.

Section 5.1's workflow: upload the dataset to S3, start a job flow whose
first step partitions the data into buckets with LSH, whose second step runs
spectral clustering on individual buckets, and whose final step stores the
results in S3 and terminates. The driver fits the hash parameters (the
global hyperplane/threshold arrays of Algorithm 1), performs the Eq.-6
bucket merge between the stages, and computes the global cluster
allocation.

:class:`DistributedDASC` is numerically equivalent to the in-process
:class:`repro.core.dasc.DASC` (same hashing, bucketing, kernels, spectral
steps) but executes through the MapReduce engine, yielding the simulated
makespans Table 3 reports for 16/32/64-node clusters.

The driver is crash-recoverable: :meth:`DistributedDASC.submit` provisions
the flow, :meth:`~DistributedDASC.run` executes and collects it, and — if
the driver dies between stages — :meth:`~DistributedDASC.resume` restarts
from the last completed checkpoint (the LSH pass is *not* redone) and
produces byte-identical labels. Degradation ladder on the way down:
per-attempt task retries, node-loss re-execution, speculative backups
(see :mod:`repro.mapreduce.faults`), nearest-neighbour repair for any
unlabelled point, and a structured
:class:`~repro.mapreduce.job.JobFlowError` when retries are exhausted.

The storage boundary is hardened the same way: driver artifacts (the
uploaded input, the collected labels) and every job-flow checkpoint travel
through the :class:`~repro.mapreduce.storage.ResilientStore` client, so
transient S3 faults retry with seeded backoff, torn or bit-flipped
checkpoints are quarantined and their steps re-executed, and an
unsurvivable storage-fault schedule surfaces as a structured
:class:`~repro.mapreduce.storage.StorageError` — never a bare ``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import allocate_clusters
from repro.core.buckets import fold_small_buckets, group_by_signature, merge_buckets
from repro.core.config import DASCConfig
from repro.dasc_mr.stage1 import make_signature_job
from repro.dasc_mr.stage2 import make_clustering_job, make_similarity_job
from repro.kernels.bandwidth import median_heuristic
from repro.lsh.axis import AxisParallelHasher
from repro.mapreduce.emr import ElasticMapReduce
from repro.mapreduce.engine import resolve_data_plane
from repro.mapreduce.types import RecordBatch
from repro.observability import get_tracer
from repro.utils.memory import block_diagonal_bytes
from repro.utils.validation import check_2d
from repro.verify.invariants import (
    check_buckets,
    check_counter_equals,
    check_labels_range,
    validation_enabled,
)

__all__ = ["DistributedResult", "DistributedDASC"]

#: Floor for the Gaussian-kernel bandwidth: duplicate-heavy data can drive
#: the median heuristic to zero, which would put 0/0 in every kernel entry.
_SIGMA_EPS = 1e-9

#: Step names the merge action appends dynamically (pruned before re-append
#: so that resuming a crashed flow does not duplicate them).
_DYNAMIC_STEPS = ("dasc-stage2-spectral", "dasc-stage2-simmat", "mahout-spectral")


@dataclass
class DistributedResult:
    """Outcome of one distributed DASC run.

    Attributes
    ----------
    labels:
        (n,) global cluster assignments.
    n_clusters:
        Number of global clusters produced.
    n_buckets:
        Buckets after merging/folding (the stage-2 parallelism).
    makespan:
        Simulated wall-clock over both MapReduce stages.
    gram_bytes:
        Exact storage of the block-diagonal Gram approximation (Eq. 12).
    n_nodes:
        Cluster size the flow ran on.
    counters:
        Per-stage Hadoop-style counter snapshots.
    stage_makespans:
        ``{"lsh": ..., "spectral": ...}`` per-stage simulated time.
    n_repaired:
        Points that came back unlabelled from stage 2 and were repaired by
        nearest-labelled-neighbour assignment (0 in a healthy run).
    resumed_steps:
        Step indices restored from checkpoints (non-empty only after
        :meth:`DistributedDASC.resume`).
    """

    labels: np.ndarray
    n_clusters: int
    n_buckets: int
    makespan: float
    gram_bytes: int
    n_nodes: int
    counters: dict = field(default_factory=dict)
    stage_makespans: dict = field(default_factory=dict)
    n_repaired: int = 0
    resumed_steps: tuple = ()


class DistributedDASC:
    """DASC as an EMR job flow on a simulated elastic cluster.

    Parameters
    ----------
    n_clusters:
        Global cluster budget K (``None``: the Eq.-15 default).
    n_nodes:
        Cluster size to provision (the paper sweeps 16/32/64).
    config:
        Full :class:`DASCConfig`; only the axis-parallel hasher is supported
        here because Algorithm 1's mapper is defined in terms of
        hyperplane/threshold lookups.
    emr:
        An :class:`ElasticMapReduce` service to provision from (a fresh one
        is created when omitted, so independent runs don't share state).
    split_size:
        Records per HDFS input split (the unit of map parallelism).
    n_jobs:
        Worker processes for real task compute (``None``: the
        ``REPRO_N_JOBS`` environment variable, unset = serial). Applies
        when the driver creates its own EMR service; an explicit ``emr``
        keeps whatever executor it was built with. Results are
        bit-identical to serial for any value.
    spectral_mode:
        ``"inline"`` (default): each stage-2 reducer carries Algorithm 2
        straight through the NJW steps — one reduce call per bucket.
        ``"mahout"``: the paper's literal architecture — stage 2 runs
        Algorithm 2 verbatim (sub-similarity matrices written to the
        filesystem) and the spectral step is delegated to the Mahout-role
        :class:`repro.mr_ml.spectral.MRSpectralClustering`, one MR spectral
        run per bucket. Same partitions, different job structure.
    data_plane:
        ``"batched"`` (default): ship columnar splits and use the
        vectorized stage-1/shuffle/stage-2 operators; ``"record"``: pin the
        record-at-a-time reference path. ``None`` consults the
        ``REPRO_DATA_PLANE`` environment variable (unset = batched).
        Labels, counters and simulated makespans are bit-identical either
        way — only real wall-clock differs.
    autoscaler:
        Optional :class:`~repro.mapreduce.autoscale.Autoscaler` making the
        provisioned cluster elastic: it resizes between the flow's phases
        and steps (e.g. growing for the reduce-bound spectral stage) and
        checkpoints its decisions so :meth:`resume` replays the identical
        scaling schedule. Labels and counters are unaffected — scaling
        moves only the simulated makespan.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        n_nodes: int = 16,
        config: DASCConfig | None = None,
        emr: ElasticMapReduce | None = None,
        split_size: int = 1024,
        spectral_mode: str = "inline",
        n_jobs: int | None = None,
        data_plane: str | None = None,
        autoscaler=None,
    ):
        self.config = config if config is not None else DASCConfig()
        if n_clusters is not None:
            self.config.n_clusters = n_clusters
        if self.config.hasher != "axis":
            raise ValueError("DistributedDASC implements Algorithm 1 (axis-parallel hashing only)")
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if spectral_mode not in ("inline", "mahout"):
            raise ValueError(f"spectral_mode must be 'inline' or 'mahout', got {spectral_mode!r}")
        self.n_nodes = int(n_nodes)
        if emr is not None:
            self.emr = emr
        else:
            from repro.mapreduce.executor import resolve_executor

            self.emr = ElasticMapReduce(executor=resolve_executor(n_jobs))
        self.split_size = int(split_size)
        self.spectral_mode = spectral_mode
        self.data_plane = resolve_data_plane(data_plane)
        self._batched = self.data_plane == "batched"
        self.autoscaler = autoscaler
        self._pending: dict[str, dict] = {}

    # -- public API ----------------------------------------------------------

    def run(self, X) -> DistributedResult:
        """Execute the full job flow on ``X`` and return the collected result."""
        flow_id = self.submit(X)
        self.emr.run_job_flow(flow_id)
        return self.collect(flow_id)

    def submit(self, X) -> str:
        """Provision the job flow for ``X`` without executing it.

        Returns the flow id; pair with :meth:`collect` after
        ``emr.run_job_flow`` (or :meth:`resume` after a crash).
        """
        with get_tracer().span("driver.submit") as span:
            flow_id = self._submit(X, span)
        return flow_id

    def _submit(self, X, span) -> str:
        X = check_2d(X)
        n = X.shape[0]
        k_total = self.config.resolve_n_clusters(n)
        n_bits = self.config.resolve_n_bits(n)
        sigma = self.config.sigma
        if sigma is None:
            sigma = median_heuristic(X, seed=self.config.seed)
        # Duplicate-heavy or degenerate data can produce sigma <= 0 (or a
        # non-finite value from pathological inputs): clamp to a positive
        # epsilon instead of poisoning every kernel entry downstream.
        sigma = float(sigma)
        if not np.isfinite(sigma) or sigma <= 0:
            sigma = _SIGMA_EPS

        # Driver-side preprocessing: fit the global hash parameters
        # (Eqs. 4-5 need dataset-wide spans and histograms).
        hasher = AxisParallelHasher(
            n_bits,
            dimension_policy=self.config.dimension_policy,
            threshold_policy=self.config.threshold_policy,
            seed=self.config.seed,
        ).fit(X)

        # Only forward the autoscaler when one is set: EMR subclasses that
        # predate elasticity (test fixtures, chaos wrappers) keep working.
        flow_kwargs = {"split_size": self.split_size}
        if self.autoscaler is not None:
            flow_kwargs["autoscaler"] = self.autoscaler
        flow_id, flow = self.emr.create_job_flow(self.n_nodes, **flow_kwargs)
        # "Upload to S3" through the hardened client: the write is
        # checksummed, atomic, and retried under transient storage faults.
        self.emr.storage.put(f"{flow_id}/input", X)
        if self._batched:
            # Columnar upload: index column + the (n, d) matrix itself, so
            # stage-1 splits are array views rather than per-record tuples.
            input_file = RecordBatch(keys=np.arange(n, dtype=np.int64), values=X)
        else:
            input_file = [(i, X[i]) for i in range(n)]
        flow.fs.write("input", input_file, split_size=self.split_size)

        # Step 1: LSH partitioning (Algorithm 1, map-only).
        stage1 = make_signature_job(
            hasher.dimensions_, hasher.thresholds_, batched=self._batched
        )
        flow.add_job(stage1, "input", "signatures")

        # Between-stage driver action: Eq.-6 merge + small-bucket folding +
        # global cluster allocation, then materialise bucket files. The
        # action is idempotent so a resumed flow can replay it safely.
        state: dict = {}
        flow.add_action("merge-buckets", self._merge_action(state, sigma, n_bits, k_total))

        span.set("flow_id", flow_id)
        span.set("n_points", n)
        span.set("n_bits", n_bits)
        span.set("sigma", sigma)
        span.set("n_nodes", self.n_nodes)
        span.set("spectral_mode", self.spectral_mode)
        span.set("data_plane", self.data_plane)
        self._pending[flow_id] = {"flow": flow, "state": state, "n": n, "sigma": sigma}
        return flow_id

    def resume(self, flow_id: str) -> DistributedResult:
        """Recover a crashed/interrupted flow and collect its result.

        Completed MapReduce steps are restored from their S3 checkpoints
        (the LSH pass is not redone after a crash between stages); driver
        actions replay deterministically, so the labels are identical to an
        uninterrupted run. With tracing on, the resume's spans continue the
        same trace (append the sink) so one file holds the whole lifecycle.
        """
        with get_tracer().span("driver.resume", flow_id=flow_id) as span:
            results = self.emr.resume_job_flow(flow_id)
            span.set("n_steps", len(results))
        return self.collect(flow_id)

    def collect(self, flow_id: str) -> DistributedResult:
        """Gather labels + statistics from an executed flow and terminate it."""
        with get_tracer().span("driver.collect", flow_id=flow_id) as span:
            result = self._collect(flow_id)
            span.set("n_clusters", result.n_clusters)
            span.set("n_buckets", result.n_buckets)
            span.set("makespan", result.makespan)
            span.set("n_repaired", result.n_repaired)
            span.set("resumed_steps", list(result.resumed_steps))
        return result

    def _collect(self, flow_id: str) -> DistributedResult:
        try:
            pending = self._pending.pop(flow_id)
        except KeyError:
            raise KeyError(f"flow {flow_id!r} was not submitted by this driver") from None
        flow, state, n = pending["flow"], pending["state"], pending["n"]
        results = flow.results
        if len(results) < len(flow.steps) or "buckets" not in state:
            self._pending[flow_id] = pending  # still collectable after resume
            raise RuntimeError(
                f"flow {flow_id} is incomplete ({len(results)}/{len(flow.steps)} steps); "
                "run or resume it before collecting"
            )
        stage1_result, stage2_result = results[0], results[2]

        # Final step: collect labels from the output file into S3 and terminate.
        label_records = flow.fs.read("labels")
        labels = np.full(n, -1, dtype=np.int64)
        if isinstance(label_records, RecordBatch):
            labels[np.asarray(label_records.keys, dtype=np.int64)] = np.asarray(
                label_records.values, dtype=np.int64
            )
        else:
            for idx, lab in label_records:
                labels[idx] = lab
        labels, n_repaired = self._validate_and_repair(flow_id, labels)
        self.emr.storage.put(f"{flow_id}/output/labels", labels)
        self.emr.terminate(flow_id)

        buckets = state["buckets"]
        if validation_enabled(self.config.validate):
            # Conservation: one signature per point through stage 1 (retries
            # must not inflate the tally), one reduce call per bucket in
            # stage 2, and a complete in-range final labelling.
            check_counter_equals(
                stage1_result.counters, "dasc", "signatures_emitted", n,
                stage="driver.collect",
            )
            check_counter_equals(
                stage1_result.counters, "map", "input_records", n,
                stage="driver.collect",
            )
            if self.spectral_mode == "inline":
                check_counter_equals(
                    stage2_result.counters, "dasc", "buckets_reduced",
                    buckets.n_buckets, stage="driver.collect",
                )
            check_labels_range(labels, state["total_clusters"], stage="driver.collect")
        return DistributedResult(
            labels=labels,
            n_clusters=state["total_clusters"],
            n_buckets=buckets.n_buckets,
            makespan=flow.makespan + state.get("spectral_makespan", 0.0),
            gram_bytes=block_diagonal_bytes(buckets.sizes),
            n_nodes=self.n_nodes,
            counters={
                "stage1": stage1_result.counters.as_dict(),
                "stage2": stage2_result.counters.as_dict(),
            },
            stage_makespans={
                "lsh": stage1_result.makespan,
                "spectral": stage2_result.makespan + state.get("spectral_makespan", 0.0),
            },
            n_repaired=n_repaired,
            resumed_steps=tuple(flow.restored_steps),
        )

    # -- internals ----------------------------------------------------------

    def _merge_action(self, state: dict, sigma: float, n_bits: int, k_total: int):
        def merge_action(fl):
            records = fl.fs.read("signatures")  # (signature, (index, vector))
            columnar = isinstance(records, RecordBatch)
            if columnar:
                sigs = np.asarray(records.keys, dtype=np.uint64)
                n_records = len(records)
            else:
                sigs = np.array([r[0] for r in records], dtype=np.uint64)
                payloads = [r[1] for r in records]
                n_records = len(payloads)
            buckets = group_by_signature(sigs, n_bits)
            p = self.config.resolve_min_shared_bits(n_bits)
            buckets = merge_buckets(buckets, p, strategy=self.config.merge_strategy)
            buckets = fold_small_buckets(buckets, self.config.min_bucket_size)
            if validation_enabled(self.config.validate):
                check_buckets(
                    buckets, n_records, point_signatures=sigs, stage="driver.merge"
                )
            sizes = buckets.sizes
            ks = allocate_clusters(sizes, k_total, policy=self.config.allocation)
            offsets = np.concatenate([[0], np.cumsum(ks)[:-1]])
            allocation = {int(b): (int(ks[b]), int(offsets[b])) for b in range(buckets.n_buckets)}
            if columnar and self.spectral_mode == "inline":
                # Re-key the columnar signature file by bucket id; the
                # payload columns (index, vectors) ride through untouched.
                bucket_records = RecordBatch(
                    keys=np.asarray(buckets.assignments, dtype=np.int64),
                    values=records.values,
                )
            else:
                if columnar:
                    # Mahout mode keeps its record-path stage-2 jobs.
                    payloads = [row for _, row in records.to_records()]
                bucket_records = [
                    (int(buckets.assignments[i]), payloads[i]) for i in range(n_records)
                ]
            fl.fs.write("buckets", bucket_records, split_size=self.split_size, overwrite=True)
            state["buckets"] = buckets
            state["allocation"] = allocation
            state["total_clusters"] = int(ks.sum())
            # Stage 2 must exist before run() reaches it; append it now that
            # the allocation is known. A resumed flow replays this action,
            # so prune any stage-2 steps a previous run already appended.
            fl.remove_steps_named(*_DYNAMIC_STEPS)
            if self.spectral_mode == "inline":
                stage2 = make_clustering_job(
                    sigma=sigma,
                    allocation=allocation,
                    n_reducers=max(buckets.n_buckets, 1),
                    eig_backend=self.config.eig_backend,
                    kmeans_n_init=self.config.kmeans_n_init,
                    seed=self.config.seed if isinstance(self.config.seed, int) else 0,
                    validate=validation_enabled(self.config.validate),
                    batched=self._batched,
                )
                fl.add_job(stage2, "buckets", "labels")
            else:
                # The paper's literal pipeline: Algorithm 2 writes the
                # sub-similarity matrices; Mahout-style MR spectral
                # clustering then runs per bucket.
                stage2 = make_similarity_job(
                    sigma=sigma, n_reducers=max(buckets.n_buckets, 1)
                )
                fl.add_job(stage2, "buckets", "simmats")
                fl.add_action("mahout-spectral", self._mahout_spectral_action(state))
            return allocation

        return merge_action

    def _validate_and_repair(self, flow_id: str, labels: np.ndarray) -> tuple[np.ndarray, int]:
        """Graceful degradation for unlabelled points.

        A healthy flow labels every point; if label records went missing
        anyway, assign each orphan the label of its nearest labelled
        neighbour (its de-facto bucket) instead of crashing the driver.
        """
        unlabelled = np.flatnonzero(labels < 0)
        if unlabelled.size == 0:
            return labels, 0
        if unlabelled.size == labels.size:
            raise RuntimeError(
                f"flow {flow_id} produced no labels at all; nothing to repair from"
            )
        X = np.asarray(self.emr.storage.get(f"{flow_id}/input"), dtype=np.float64)
        labelled = np.flatnonzero(labels >= 0)
        for i in unlabelled:
            d2 = np.sum((X[labelled] - X[i]) ** 2, axis=1)
            labels[i] = labels[labelled[int(np.argmin(d2))]]
        get_tracer().event(
            "fault.label_repair", flow_id=flow_id, n_repaired=int(unlabelled.size)
        )
        return labels, int(unlabelled.size)

    def _mahout_spectral_action(self, state: dict):
        """Driver step delegating the spectral phase to MR spectral clustering.

        One :class:`~repro.mr_ml.spectral.MRSpectralClustering` run per
        bucket's stored sub-similarity matrix, on the same engine (so the
        jobs share the cluster's slots); accumulated makespans are recorded
        in ``state`` and folded into the flow total.
        """
        from repro.mr_ml.spectral import MRSpectralClustering

        def action(fl):
            records = fl.fs.read("simmats")  # (bucket_id, (indices, S))
            allocation = state["allocation"]
            seed = self.config.seed if isinstance(self.config.seed, int) else 0
            label_records = []
            extra_makespan = 0.0
            for bucket_id, (indices, S) in records:
                k_i, offset = allocation[int(bucket_id)]
                n_i = len(indices)
                if k_i >= n_i:
                    local = list(range(n_i))
                elif k_i == 1:
                    local = [0] * n_i
                else:
                    sc = MRSpectralClustering(
                        k_i, engine=fl.engine, block_size=max(16, self.split_size),
                        seed=(seed + int(bucket_id)) % (2**31),
                    )
                    local = sc.fit_predict(S)
                    extra_makespan += sc.total_makespan_
                label_records.extend(
                    (idx, offset + int(lab)) for idx, lab in zip(indices, local)
                )
            fl.fs.write("labels", label_records, overwrite=True)
            state["spectral_makespan"] = extra_makespan
            return extra_makespan

        return action
