"""The distributed DASC driver: the paper's EMR job flow, end to end.

Section 5.1's workflow: upload the dataset to S3, start a job flow whose
first step partitions the data into buckets with LSH, whose second step runs
spectral clustering on individual buckets, and whose final step stores the
results in S3 and terminates. The driver fits the hash parameters (the
global hyperplane/threshold arrays of Algorithm 1), performs the Eq.-6
bucket merge between the stages, and computes the global cluster
allocation.

:class:`DistributedDASC` is numerically equivalent to the in-process
:class:`repro.core.dasc.DASC` (same hashing, bucketing, kernels, spectral
steps) but executes through the MapReduce engine, yielding the simulated
makespans Table 3 reports for 16/32/64-node clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import allocate_clusters
from repro.core.buckets import fold_small_buckets, group_by_signature, merge_buckets
from repro.core.config import DASCConfig
from repro.dasc_mr.stage1 import make_signature_job
from repro.dasc_mr.stage2 import make_clustering_job, make_similarity_job
from repro.kernels.bandwidth import median_heuristic
from repro.lsh.axis import AxisParallelHasher
from repro.mapreduce.emr import ElasticMapReduce
from repro.utils.memory import block_diagonal_bytes
from repro.utils.validation import check_2d

__all__ = ["DistributedResult", "DistributedDASC"]


@dataclass
class DistributedResult:
    """Outcome of one distributed DASC run.

    Attributes
    ----------
    labels:
        (n,) global cluster assignments.
    n_clusters:
        Number of global clusters produced.
    n_buckets:
        Buckets after merging/folding (the stage-2 parallelism).
    makespan:
        Simulated wall-clock over both MapReduce stages.
    gram_bytes:
        Exact storage of the block-diagonal Gram approximation (Eq. 12).
    n_nodes:
        Cluster size the flow ran on.
    counters:
        Per-stage Hadoop-style counter snapshots.
    stage_makespans:
        ``{"lsh": ..., "spectral": ...}`` per-stage simulated time.
    """

    labels: np.ndarray
    n_clusters: int
    n_buckets: int
    makespan: float
    gram_bytes: int
    n_nodes: int
    counters: dict = field(default_factory=dict)
    stage_makespans: dict = field(default_factory=dict)


class DistributedDASC:
    """DASC as an EMR job flow on a simulated elastic cluster.

    Parameters
    ----------
    n_clusters:
        Global cluster budget K (``None``: the Eq.-15 default).
    n_nodes:
        Cluster size to provision (the paper sweeps 16/32/64).
    config:
        Full :class:`DASCConfig`; only the axis-parallel hasher is supported
        here because Algorithm 1's mapper is defined in terms of
        hyperplane/threshold lookups.
    emr:
        An :class:`ElasticMapReduce` service to provision from (a fresh one
        is created when omitted, so independent runs don't share state).
    split_size:
        Records per HDFS input split (the unit of map parallelism).
    spectral_mode:
        ``"inline"`` (default): each stage-2 reducer carries Algorithm 2
        straight through the NJW steps — one reduce call per bucket.
        ``"mahout"``: the paper's literal architecture — stage 2 runs
        Algorithm 2 verbatim (sub-similarity matrices written to the
        filesystem) and the spectral step is delegated to the Mahout-role
        :class:`repro.mr_ml.spectral.MRSpectralClustering`, one MR spectral
        run per bucket. Same partitions, different job structure.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        n_nodes: int = 16,
        config: DASCConfig | None = None,
        emr: ElasticMapReduce | None = None,
        split_size: int = 1024,
        spectral_mode: str = "inline",
    ):
        self.config = config if config is not None else DASCConfig()
        if n_clusters is not None:
            self.config.n_clusters = n_clusters
        if self.config.hasher != "axis":
            raise ValueError("DistributedDASC implements Algorithm 1 (axis-parallel hashing only)")
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if spectral_mode not in ("inline", "mahout"):
            raise ValueError(f"spectral_mode must be 'inline' or 'mahout', got {spectral_mode!r}")
        self.n_nodes = int(n_nodes)
        self.emr = emr if emr is not None else ElasticMapReduce()
        self.split_size = int(split_size)
        self.spectral_mode = spectral_mode

    def run(self, X) -> DistributedResult:
        """Execute the full job flow on ``X`` and return the collected result."""
        X = check_2d(X)
        n = X.shape[0]
        k_total = self.config.resolve_n_clusters(n)
        n_bits = self.config.resolve_n_bits(n)
        sigma = self.config.sigma
        if sigma is None:
            sigma = median_heuristic(X, seed=self.config.seed)

        # Driver-side preprocessing: fit the global hash parameters
        # (Eqs. 4-5 need dataset-wide spans and histograms).
        hasher = AxisParallelHasher(
            n_bits,
            dimension_policy=self.config.dimension_policy,
            threshold_policy=self.config.threshold_policy,
            seed=self.config.seed,
        ).fit(X)

        flow_id, flow = self.emr.create_job_flow(self.n_nodes, split_size=self.split_size)
        # "Upload to S3": the input dataset as (index, vector) records.
        self.emr.s3.put(f"{flow_id}/input", X)
        flow.fs.write("input", [(i, X[i]) for i in range(n)], split_size=self.split_size)

        # Step 1: LSH partitioning (Algorithm 1, map-only).
        stage1 = make_signature_job(hasher.dimensions_, hasher.thresholds_)
        flow.add_job(stage1, "input", "signatures")

        # Between-stage driver action: Eq.-6 merge + small-bucket folding +
        # global cluster allocation, then materialise bucket files.
        state: dict = {}

        def merge_action(fl):
            records = fl.fs.read("signatures")  # (signature, (index, vector))
            sigs = np.array([r[0] for r in records], dtype=np.uint64)
            payloads = [r[1] for r in records]
            buckets = group_by_signature(sigs, n_bits)
            p = self.config.resolve_min_shared_bits(n_bits)
            buckets = merge_buckets(buckets, p, strategy=self.config.merge_strategy)
            buckets = fold_small_buckets(buckets, self.config.min_bucket_size)
            sizes = buckets.sizes
            ks = allocate_clusters(sizes, k_total, policy=self.config.allocation)
            offsets = np.concatenate([[0], np.cumsum(ks)[:-1]])
            allocation = {int(b): (int(ks[b]), int(offsets[b])) for b in range(buckets.n_buckets)}
            bucket_records = [
                (int(buckets.assignments[i]), payloads[i]) for i in range(len(payloads))
            ]
            fl.fs.write("buckets", bucket_records, split_size=self.split_size)
            state["buckets"] = buckets
            state["allocation"] = allocation
            state["total_clusters"] = int(ks.sum())
            # Stage 2 must exist before run() reaches it; append it now that
            # the allocation is known.
            if self.spectral_mode == "inline":
                stage2 = make_clustering_job(
                    sigma=sigma,
                    allocation=allocation,
                    n_reducers=max(buckets.n_buckets, 1),
                    eig_backend=self.config.eig_backend,
                    kmeans_n_init=self.config.kmeans_n_init,
                    seed=self.config.seed if isinstance(self.config.seed, int) else 0,
                )
                fl.add_job(stage2, "buckets", "labels")
            else:
                # The paper's literal pipeline: Algorithm 2 writes the
                # sub-similarity matrices; Mahout-style MR spectral
                # clustering then runs per bucket.
                stage2 = make_similarity_job(
                    sigma=sigma, n_reducers=max(buckets.n_buckets, 1)
                )
                fl.add_job(stage2, "buckets", "simmats")
                fl.add_action("mahout-spectral", self._mahout_spectral_action(state))
            return allocation

        flow.add_action("merge-buckets", merge_action)

        results = self.emr.run_job_flow(flow_id)
        stage2_result = results[2]

        # Final step: collect labels from the output file into S3 and terminate.
        label_records = flow.fs.read("labels")
        labels = np.full(n, -1, dtype=np.int64)
        for idx, lab in label_records:
            labels[idx] = lab
        assert (labels >= 0).all(), "every point must be labelled"
        self.emr.s3.put(f"{flow_id}/output/labels", labels)
        self.emr.terminate(flow_id)

        buckets = state["buckets"]
        stage1_result = results[0]
        return DistributedResult(
            labels=labels,
            n_clusters=state["total_clusters"],
            n_buckets=buckets.n_buckets,
            makespan=flow.makespan + state.get("spectral_makespan", 0.0),
            gram_bytes=block_diagonal_bytes(buckets.sizes),
            n_nodes=self.n_nodes,
            counters={
                "stage1": stage1_result.counters.as_dict(),
                "stage2": stage2_result.counters.as_dict(),
            },
            stage_makespans={
                "lsh": stage1_result.makespan,
                "spectral": stage2_result.makespan + state.get("spectral_makespan", 0.0),
            },
        )

    # -- internals ----------------------------------------------------------

    def _mahout_spectral_action(self, state: dict):
        """Driver step delegating the spectral phase to MR spectral clustering.

        One :class:`~repro.mr_ml.spectral.MRSpectralClustering` run per
        bucket's stored sub-similarity matrix, on the same engine (so the
        jobs share the cluster's slots); accumulated makespans are recorded
        in ``state`` and folded into the flow total.
        """
        from repro.mr_ml.spectral import MRSpectralClustering

        def action(fl):
            records = fl.fs.read("simmats")  # (bucket_id, (indices, S))
            allocation = state["allocation"]
            seed = self.config.seed if isinstance(self.config.seed, int) else 0
            label_records = []
            extra_makespan = 0.0
            for bucket_id, (indices, S) in records:
                k_i, offset = allocation[int(bucket_id)]
                n_i = len(indices)
                if k_i >= n_i:
                    local = list(range(n_i))
                elif k_i == 1:
                    local = [0] * n_i
                else:
                    sc = MRSpectralClustering(
                        k_i, engine=fl.engine, block_size=max(16, self.split_size),
                        seed=(seed + int(bucket_id)) % (2**31),
                    )
                    local = sc.fit_predict(S)
                    extra_makespan += sc.total_makespan_
                label_records.extend(
                    (idx, offset + int(lab)) for idx, lab in zip(indices, local)
                )
            fl.fs.write("labels", label_records)
            state["spectral_makespan"] = extra_makespan
            return extra_makespan

        return action
