"""Stage 2: Algorithm 2 + spectral clustering, one bucket per reducer.

Algorithm 2's reducer receives ``(signature, list of indices)`` and computes
the bucket's sub-similarity matrix with ``simFunc`` (the Gaussian kernel,
Eq. 1), writing 0 on the diagonal. The paper then hands the matrices to
Mahout's spectral clustering; here the same reducer carries on with the NJW
steps (Eq.-2 Laplacian, top-K_i eigenvectors, row-normalized K-means) so a
single reduce call turns one bucket into final labels — which is exactly
the per-bucket unit of parallelism the elasticity experiment exploits.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.functions import GaussianKernel
from repro.kernels.matrix import gram_matrix_auto
from repro.mapreduce.types import JobSpec, RecordBatch
from repro.spectral.embedding import spectral_embedding
from repro.spectral.kmeans import KMeans

__all__ = [
    "similarity_reducer",
    "similarity_batch_reducer",
    "make_clustering_job",
    "similarity_matrix_reducer",
    "make_similarity_job",
    "identity_mapper",
    "identity_batch_mapper",
    "bucket_partitioner",
    "bucket_batch_partitioner",
    "SpectralReduceCost",
]


# Module-level (not nested) so stage-2 JobSpecs pickle cleanly and the
# engine may run their tasks in worker processes.


def identity_mapper(key, value, ctx):
    """Pass records through unchanged (stage 2 consumes stage 1's output)."""
    yield (key, value)


def identity_batch_mapper(batch, ctx):
    """Columnar twin of :func:`identity_mapper`: the split passes through."""
    return batch


def bucket_partitioner(key, n: int) -> int:
    """Bucket ids are small ints; partition them round-robin."""
    return int(key) % n


def bucket_batch_partitioner(keys, n: int):
    """Vectorized twin of :func:`bucket_partitioner` over a key column."""
    return np.asarray(keys).astype(np.int64, copy=False) % np.int64(n)


def quadratic_reduce_cost(bucket_id, members) -> float:
    """Algorithm 2's cost: filling an N_i x N_i sub-similarity matrix."""
    return float(len(members) ** 2)


class SpectralReduceCost:
    """The paper's per-bucket complexity ``2 N_i^2 + 2 K_i N_i`` (Eq. 3).

    A picklable callable closed over the driver's allocation table, which is
    what makes the simulated makespans follow the paper's analysis.
    """

    __slots__ = ("allocation",)

    def __init__(self, allocation: dict):
        self.allocation = allocation

    def __call__(self, bucket_id, members) -> float:
        n_i = len(members)
        k_i = self.allocation[bucket_id][0]
        return float(2 * n_i * n_i + 2 * k_i * n_i)


def similarity_matrix_reducer(bucket_id, members, ctx):
    """Algorithm 2 *verbatim*: emit the bucket's sub-similarity matrix.

    This is the paper's literal reducer — compute ``subSimMat`` with
    ``simFunc`` (Eq. 1, zero diagonal) and ``Output_to_File`` it. The
    spectral step then runs as separate Mahout-style jobs
    (:class:`repro.mr_ml.spectral.MRSpectralClustering`) over the stored
    matrices; see ``DistributedDASC(spectral_mode="mahout")``.
    """
    params = ctx.job.params
    indices = [m[0] for m in members]
    X = np.asarray([np.asarray(m[1], dtype=np.float64) for m in members])
    S = gram_matrix_auto(X, GaussianKernel(params["sigma"]), zero_diagonal=True)
    ctx.increment("dasc", "similarity_matrices_written")
    ctx.increment("dasc", "similarity_entries", S.shape[0] * S.shape[0])
    yield (bucket_id, (indices, S))


def make_similarity_job(*, sigma: float, n_reducers: int, name: str = "dasc-stage2-simmat") -> JobSpec:
    """Build the Algorithm-2-only JobSpec (sub-similarity matrices as output)."""
    if n_reducers < 1:
        raise ValueError(f"n_reducers must be >= 1, got {n_reducers}")
    return JobSpec(
        name=name,
        mapper=identity_mapper,
        reducer=similarity_matrix_reducer,
        n_reducers=n_reducers,
        partitioner=bucket_partitioner,
        reduce_cost=quadratic_reduce_cost,
        params={"sigma": float(sigma)},
    )


def similarity_reducer(bucket_id, members, ctx):
    """One bucket -> sub-similarity matrix -> local spectral labels.

    ``members`` is a list of ``(index, vector)`` pairs. ``ctx.job.params``
    carries ``sigma``, ``allocation`` (bucket_id -> (K_i, label_offset)),
    ``kmeans_n_init``, ``eig_backend`` and ``seed``. Emits
    ``(index, global_label)`` pairs.
    """
    params = ctx.job.params
    k_i, offset = params["allocation"][bucket_id]
    indices = [m[0] for m in members]
    X = np.asarray([np.asarray(m[1], dtype=np.float64) for m in members])
    n_i = X.shape[0]
    ctx.increment("dasc", "buckets_reduced")
    ctx.increment("dasc", "similarity_entries", n_i * n_i)

    validate = bool(params.get("validate", False))
    if k_i >= n_i:
        local = np.arange(n_i, dtype=np.int64)
    elif k_i == 1:
        local = np.zeros(n_i, dtype=np.int64)
    else:
        # Algorithm 2: the bucket's Gram block with a zero diagonal...
        S = gram_matrix_auto(X, GaussianKernel(params["sigma"]), zero_diagonal=True)
        if validate:
            from repro.verify.invariants import check_gram_block

            check_gram_block(
                S, zero_diagonal=True, unit_range=True,
                stage="mr.stage2", bucket_id=int(bucket_id),
            )
        # ...then Eq. 2 + NJW embedding + K-means on the embedding rows.
        seed = (params["seed"] + int(bucket_id)) % (2**31)
        Y = spectral_embedding(
            S, k_i, backend=params["eig_backend"], seed=seed, validate=validate
        )
        local = KMeans(k_i, n_init=params["kmeans_n_init"], seed=seed).fit_predict(Y)

    for idx, lab in zip(indices, local):
        yield (idx, offset + int(lab))


def similarity_batch_reducer(bucket_id, group, ctx):
    """Columnar twin of :func:`similarity_reducer` for one bucket's group.

    ``group`` is a :class:`RecordBatch` whose keys all equal ``bucket_id``
    and whose values are the shuffled ``(index column, vector rows)`` pair
    emitted by stage 1. The spectral math is byte-for-byte the record
    reducer's — same Gram block, same seed, same K-means — only the member
    gather is a column view instead of a Python list comprehension.
    """
    params = ctx.job.params
    k_i, offset = params["allocation"][bucket_id]
    idx_col, vecs = group.values
    X = np.asarray(vecs, dtype=np.float64)
    n_i = X.shape[0]
    ctx.increment("dasc", "buckets_reduced")
    ctx.increment("dasc", "similarity_entries", n_i * n_i)

    validate = bool(params.get("validate", False))
    if k_i >= n_i:
        local = np.arange(n_i, dtype=np.int64)
    elif k_i == 1:
        local = np.zeros(n_i, dtype=np.int64)
    else:
        S = gram_matrix_auto(X, GaussianKernel(params["sigma"]), zero_diagonal=True)
        if validate:
            from repro.verify.invariants import check_gram_block

            check_gram_block(
                S, zero_diagonal=True, unit_range=True,
                stage="mr.stage2", bucket_id=int(bucket_id),
            )
        seed = (params["seed"] + int(bucket_id)) % (2**31)
        Y = spectral_embedding(
            S, k_i, backend=params["eig_backend"], seed=seed, validate=validate
        )
        local = KMeans(k_i, n_init=params["kmeans_n_init"], seed=seed).fit_predict(Y)

    return RecordBatch(
        keys=np.asarray(idx_col), values=np.int64(offset) + local.astype(np.int64)
    )


def make_clustering_job(
    *,
    sigma: float,
    allocation: dict,
    n_reducers: int,
    eig_backend: str = "dense",
    kmeans_n_init: int = 4,
    seed: int = 0,
    validate: bool = False,
    name: str = "dasc-stage2-spectral",
    batched: bool = True,
) -> JobSpec:
    """Build the stage-2 JobSpec.

    ``allocation`` maps bucket id -> ``(K_i, global label offset)``; the
    driver computes it from the bucket sizes (Section 4.1's K_i split).
    The reduce cost model is the paper's per-bucket complexity,
    ``2 N_i^2 + 2 K_i N_i`` (Eq. 3's bucket terms), which is what makes the
    simulated makespans follow the paper's analysis. ``batched`` (default)
    additionally attaches the columnar mapper/partitioner/reducer trio; the
    engine falls back to the record operators when the input is not
    columnar or the batched plane is disabled.
    """
    if n_reducers < 1:
        raise ValueError(f"n_reducers must be >= 1, got {n_reducers}")
    return JobSpec(
        name=name,
        mapper=identity_mapper,
        reducer=similarity_reducer,
        n_reducers=n_reducers,
        partitioner=bucket_partitioner,
        reduce_cost=SpectralReduceCost(allocation),
        batch_mapper=identity_batch_mapper if batched else None,
        batch_reducer=similarity_batch_reducer if batched else None,
        batch_partitioner=bucket_batch_partitioner if batched else None,
        params={
            "sigma": float(sigma),
            "allocation": allocation,
            "eig_backend": eig_backend,
            "kmeans_n_init": int(kmeans_n_init),
            "seed": int(seed),
            "validate": bool(validate),
        },
    )
