"""Stage 1: Algorithm 1 — the LSH signature mapper.

The paper's mapper receives ``(index, inputVector)`` and, for each of the M
hash functions, looks up the function's hyperplane (dimension) and threshold
— global parameters precomputed by the driver from the dataset's spans and
histograms (Eqs. 4-5) — compares, and appends one bit to the signature
string. It emits ``(signature, index)``.

We additionally carry the vector in the value so stage 2's reducers are
self-contained (the Hadoop original re-reads vectors from HDFS; carrying
them through the shuffle is the in-process equivalent).

Two operator implementations share the job: :func:`signature_mapper` is the
record-at-a-time semantic reference (one Python-level bit loop per vector),
and :func:`signature_batch_mapper` hashes a whole split in one broadcast
comparison plus a bit-packing reduction. The engine picks the batched one
whenever the input splits are columnar; both emit identical records.
"""

from __future__ import annotations

import numpy as np

from repro.mapreduce.types import JobSpec, RecordBatch

__all__ = [
    "signature_mapper",
    "signature_batch_mapper",
    "ConstantMapCost",
    "make_signature_job",
]


class ConstantMapCost:
    """Picklable constant per-record map cost.

    A module-level class (not a lambda) so the JobSpec survives pickling and
    the engine may dispatch its map tasks to worker processes.
    """

    __slots__ = ("cost",)

    def __init__(self, cost: float):
        self.cost = float(cost)

    def __call__(self, key, value) -> float:
        return self.cost

    def batch_cost(self, batch) -> float:
        """Whole-split cost for the batched plane.

        Bit-identical to summing the per-record calls whenever ``cost`` is
        integer-valued (every DASC job uses the hash width M), since adding
        an integer float n times is exact in IEEE double.
        """
        return self.cost * len(batch)

    def __repr__(self) -> str:
        return f"ConstantMapCost({self.cost!r})"


def signature_mapper(index, vector, ctx):
    """Algorithm 1, one input vector at a time.

    ``ctx.job.params`` must hold ``dimensions`` (M,), ``thresholds`` (M,):
    the driver-fitted hash parameters (``get_hyperplane`` / ``get_threshold``
    in the paper's pseudo-code).
    """
    dims = ctx.job.params["dimensions"]
    thresholds = ctx.job.params["thresholds"]
    vec = np.asarray(vector, dtype=np.float64)
    sig = 0
    for j in range(len(dims)):
        # Algorithm 1 line 6: bit = 1 when the feature value is <= threshold.
        if vec[dims[j]] <= thresholds[j]:
            sig |= 1 << j
    ctx.increment("dasc", "signatures_emitted")
    yield (np.uint64(sig), (index, vector))


def signature_batch_mapper(batch, ctx):
    """Algorithm 1 over a whole split: broadcast compare + bit-pack.

    ``batch.values`` must be the (n, d) vector matrix (the driver writes the
    input file columnar; ``RecordBatch.from_records`` stacks record splits
    into the same shape). Emits the batch twin of the record mapper's
    output: keys = packed uint64 signatures, values = (index column, the
    original vector rows).
    """
    dims = ctx.job.params["dimensions"]
    thresholds = ctx.job.params["thresholds"]
    X = batch.values
    if not isinstance(X, np.ndarray) or X.ndim != 2:
        raise TypeError("stage-1 batch mapper expects a single (n, d) vector column")
    bits = np.asarray(X, dtype=np.float64)[:, dims] <= thresholds[None, :]
    weights = np.uint64(1) << np.arange(dims.shape[0], dtype=np.uint64)
    sigs = (bits.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)
    ctx.increment("dasc", "signatures_emitted", len(batch))
    return RecordBatch(keys=sigs, values=(batch.keys, X))


def make_signature_job(
    dimensions, thresholds, *, name: str = "dasc-stage1-lsh", batched: bool = True
) -> JobSpec:
    """Build the map-only stage-1 JobSpec.

    Parameters
    ----------
    dimensions / thresholds:
        The fitted per-bit hash parameters (from
        :class:`repro.lsh.axis.AxisParallelHasher`).
    batched:
        Attach the columnar mapper (default). The engine still falls back
        to :func:`signature_mapper` for non-columnar splits or when the
        batched plane is disabled; ``batched=False`` pins the record path.
    """
    dims = np.asarray(dimensions, dtype=np.int64)
    thr = np.asarray(thresholds, dtype=np.float64)
    if dims.shape != thr.shape or dims.ndim != 1 or dims.size == 0:
        raise ValueError("dimensions and thresholds must be equal-length non-empty vectors")
    m = dims.size
    return JobSpec(
        name=name,
        mapper=signature_mapper,
        reducer=None,  # map-only: the driver merges buckets before stage 2
        map_cost=ConstantMapCost(m),  # O(M) hash work per vector
        params={"dimensions": dims, "thresholds": thr},
        batch_mapper=signature_batch_mapper if batched else None,
    )
