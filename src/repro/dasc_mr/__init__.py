"""DASC on MapReduce — the paper's Section 3.3 implementation.

Stage 1 (:mod:`repro.dasc_mr.stage1`) is Algorithm 1: a mapper that turns
each input vector into its M-bit LSH signature. Between the stages the
driver merges near-duplicate buckets (Eq. 6) exactly as the paper does
"before applying the reducer". Stage 2 (:mod:`repro.dasc_mr.stage2`) is
Algorithm 2 plus the spectral step: each reducer receives one bucket,
computes its sub-similarity matrix, and clusters it. The
:class:`repro.dasc_mr.driver.DistributedDASC` driver assembles the job flow
and runs it on a simulated EMR cluster of any size — the Table-3 elasticity
experiment in library form.
"""

from repro.dasc_mr.stage1 import make_signature_job, signature_mapper
from repro.dasc_mr.stage2 import make_clustering_job, similarity_reducer
from repro.dasc_mr.driver import DistributedDASC, DistributedResult

__all__ = [
    "make_signature_job",
    "signature_mapper",
    "make_clustering_job",
    "similarity_reducer",
    "DistributedDASC",
    "DistributedResult",
]
