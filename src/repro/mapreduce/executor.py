"""Execution backends: run independent tasks serially or on real cores.

The simulated cluster models *scheduling*; this module supplies the actual
*compute* parallelism the paper's elasticity argument rests on. A task here
is one pure function call over one picklable payload — exactly the shape of
a map task, a reduce call, or a per-bucket kernel+spectral solve, all of
which are independent by construction (Section 4's decomposition).

Two backends share one interface:

* :class:`SerialExecutor` — in-process, in-order execution. The default;
  preserves the engine's historical behavior exactly.
* :class:`ParallelExecutor` — a shared :class:`concurrent.futures.
  ProcessPoolExecutor` (``fork`` start method where available, so workers
  inherit the loaded modules). Results are collected **in submission
  order**, which is what makes the parallel backend bit-identical to the
  serial one: same outputs, same counter totals, same shuffle inputs.

Determinism and robustness contract:

* ``map_ordered(fn, payloads)`` returns ``[fn(p) for p in payloads]`` — the
  backend only changes *where* the calls run, never the results or their
  order. Tasks must be pure functions of their payloads.
* If the pool cannot start, a worker dies mid-task (``BrokenProcessPool``),
  or a payload refuses to pickle, the executor falls back to executing the
  payloads serially in-process — the same degradation idea as the fault
  machinery's task re-execution: tasks are deterministic, so re-running
  them is always safe. The fallback is reported as an
  ``executor.fallback`` trace event, never through counters (counters must
  stay bit-identical to a serial run).

:class:`SharedArray` broadcasts a large read-only ``numpy`` array (the
dataset) to workers through POSIX shared memory, so per-bucket tasks ship
only their index arrays instead of copying the data once per task.

Worker-count resolution honors the ``REPRO_N_JOBS`` environment variable:
``resolve_executor(None)`` is serial unless ``REPRO_N_JOBS`` is set to a
value greater than 1 — which is how the CI matrix leg flips the whole test
suite onto the parallel backend without touching any call site.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.observability import get_logger, get_tracer

__all__ = [
    "N_JOBS_ENV",
    "SHARED_BATCH_MIN_BYTES",
    "ExecutorError",
    "SerialExecutor",
    "ParallelExecutor",
    "SharedArray",
    "effective_n_jobs",
    "resolve_executor",
    "default_executor",
    "is_picklable",
    "ship_batch",
    "load_batch",
]

#: Environment variable selecting the default worker count (0/1/unset = serial).
N_JOBS_ENV = "REPRO_N_JOBS"

logger = get_logger("mapreduce.executor")


class ExecutorError(RuntimeError):
    """The parallel backend failed and serial fallback was disabled."""


def is_picklable(obj) -> bool:
    """Whether ``obj`` survives pickling (the bar for crossing a process).

    Jobs built from module-level callables pass; ad-hoc closures and lambdas
    (common in tests) fail, in which case the engine simply keeps them on
    the serial path.
    """
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


def effective_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_N_JOBS`` > serial.

    ``-1`` (or any negative value) means "all visible cores". ``None`` defers
    to the environment; ``0`` is treated as 1 (serial).
    """
    if n_jobs is None:
        raw = os.environ.get(N_JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            logger.warning("ignoring non-integer %s=%r", N_JOBS_ENV, raw)
            return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, int(n_jobs))


class SerialExecutor:
    """In-process, in-order execution — the historical engine behavior."""

    parallel = False
    n_workers = 1

    def map_ordered(self, fn, payloads: list) -> list:
        """``[fn(p) for p in payloads]``, literally."""
        return [fn(p) for p in payloads]

    def describe(self) -> str:
        """Short label for traces and reports."""
        return "serial"

    def close(self) -> None:
        """Nothing to release."""

    def __repr__(self) -> str:
        return "SerialExecutor()"


# -- shared process pools ----------------------------------------------------
#
# Pools are expensive to start and cheap to keep; engines and estimators are
# constructed freely all over the test suite, so executors share one pool
# per worker count for the life of the process.

_SHARED_POOLS: dict[int, ProcessPoolExecutor] = {}

# A fork child inherits this registry, but the pool objects in it belong to
# the parent (their manager threads don't exist in the child, and their locks
# may have been captured mid-acquire). A child touching them at its own exit
# deadlocks — and a hung worker then hangs the parent's shutdown join. Drop
# the inherited entries the moment a child is born.
os.register_at_fork(after_in_child=_SHARED_POOLS.clear)


def _make_pool(n_workers: int) -> ProcessPoolExecutor:
    import multiprocessing as mp

    if "fork" in mp.get_all_start_methods():
        # Workers inherit loaded modules and module state; task dispatch
        # still pickles payloads, but startup is milliseconds, not seconds.
        return ProcessPoolExecutor(n_workers, mp_context=mp.get_context("fork"))
    return ProcessPoolExecutor(n_workers)


def _get_shared_pool(n_workers: int) -> ProcessPoolExecutor:
    pool = _SHARED_POOLS.get(n_workers)
    if pool is None:
        pool = _make_pool(n_workers)
        _SHARED_POOLS[n_workers] = pool
    return pool


def _discard_shared_pool(n_workers: int) -> None:
    # wait=True so the pool's manager thread is fully joined here: leaving
    # half-shut pools behind races concurrent.futures' own interpreter-exit
    # hook, whose manager-thread join can miss its wakeup and deadlock.
    pool = _SHARED_POOLS.pop(n_workers, None)
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def _shutdown_shared_pools() -> None:
    import multiprocessing as mp

    if mp.parent_process() is not None:
        # Never run in a worker: any pool visible here was inherited (e.g.
        # a pool created after this child forked) and is not ours to stop.
        return
    for n in list(_SHARED_POOLS):
        _discard_shared_pool(n)


try:
    # Pools must die before concurrent.futures' _python_exit runs: that hook
    # fires during threading._shutdown — *before* regular atexit callbacks —
    # and joining a still-live manager thread there can deadlock. Threading
    # atexits run in reverse registration order, so registering after the
    # ProcessPoolExecutor import above puts this cleanup ahead of it.
    import threading as _threading

    _threading._register_atexit(_shutdown_shared_pools)
except Exception:  # pragma: no cover - future interpreters without the hook
    atexit.register(_shutdown_shared_pools)


def _run_pickled(blob: bytes):
    """Worker entry point: unpickle ``(fn, payload)`` and run it.

    Tasks are shipped pre-pickled so serialization errors surface in the
    submitting thread, inside our own try/except — an unpicklable object
    handed directly to ``pool.submit`` is serialized later, in the pool's
    internal queue-feeder thread, whose error path can wedge the pool's
    manager thread permanently (a CPython race seen on 3.11: the manager
    misses its shutdown wakeup and every later ``shutdown()`` — including
    the interpreter's own exit hook — deadlocks joining it).
    """
    fn, payload = pickle.loads(blob)
    return fn(payload)


def _null_child_tracer() -> None:
    """Disable tracing inside a worker process.

    A forked worker inherits the parent's tracer — including an open trace
    file descriptor. Two processes appending spans to one stream would
    interleave garbage, so workers run silent and the parent re-emits one
    span per task from the results (same names, same attributes; the
    Section-5.6 report reconstructs identically).

    No-op outside a child process: the serial fallback runs worker entry
    points in the parent, whose tracer must survive.
    """
    import multiprocessing as mp

    if mp.parent_process() is None:
        return
    from repro.observability import set_tracer

    set_tracer(None)


class ParallelExecutor:
    """Process-pool execution with deterministic, in-order collection.

    Parameters
    ----------
    n_workers:
        Worker processes (``None``: ``REPRO_N_JOBS`` or all cores; negative:
        all cores).
    fallback:
        Re-run the payloads serially when the pool breaks or payloads don't
        pickle (default). With ``fallback=False`` those conditions raise
        :class:`ExecutorError` instead (used by tests).
    """

    parallel = True

    def __init__(self, n_workers: int | None = None, *, fallback: bool = True):
        if n_workers is None:
            raw = os.environ.get(N_JOBS_ENV, "").strip()
            n_workers = effective_n_jobs(int(raw) if raw.lstrip("-").isdigit() else -1)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.fallback = bool(fallback)

    def map_ordered(self, fn, payloads: list) -> list:
        """Run ``fn`` over ``payloads`` on the pool; results in input order.

        Task-level exceptions propagate exactly as they would serially (the
        failing payload is re-executed in-process to surface the error with
        identical semantics); infrastructure failures trigger the serial
        fallback for the whole batch.
        """
        if not payloads:
            return []
        try:
            # Serialize up front (see _run_pickled): a payload that cannot
            # pickle raises *here*, before the pool is involved at all.
            blobs = [
                pickle.dumps((fn, p), protocol=pickle.HIGHEST_PROTOCOL) for p in payloads
            ]
            pool = _get_shared_pool(self.n_workers)
            futures = [pool.submit(_run_pickled, b) for b in blobs]
            return [f.result() for f in futures]
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            # Serialization failed, the pool never started, a worker died
            # mid-task, or the task itself raised. Tasks are pure, so serial
            # re-execution is safe and reproduces task-level exceptions
            # deterministically. The pool is only torn down when its workers
            # are actually gone — a task exception leaves it healthy.
            if isinstance(exc, BrokenProcessPool):
                _discard_shared_pool(self.n_workers)
            if not self.fallback:
                raise ExecutorError(
                    f"parallel execution failed ({type(exc).__name__}: {exc})"
                ) from exc
            logger.warning(
                "parallel backend failed (%s: %s); falling back to serial",
                type(exc).__name__, exc,
            )
            get_tracer().event(
                "executor.fallback",
                n_workers=self.n_workers,
                n_tasks=len(payloads),
                reason=f"{type(exc).__name__}: {exc}",
            )
            return [fn(p) for p in payloads]

    def describe(self) -> str:
        """Short label for traces and reports."""
        return f"process-pool:{self.n_workers}"

    def close(self) -> None:
        """Release this worker count's shared pool (next use restarts it)."""
        _discard_shared_pool(self.n_workers)

    def __repr__(self) -> str:
        return f"ParallelExecutor(n_workers={self.n_workers})"


def resolve_executor(n_jobs: int | None = None):
    """Build the executor an ``n_jobs`` option (or the environment) asks for."""
    n = effective_n_jobs(n_jobs)
    return ParallelExecutor(n) if n > 1 else SerialExecutor()


def default_executor():
    """The executor implied by the environment (serial unless REPRO_N_JOBS > 1)."""
    return resolve_executor(None)


class SharedArray:
    """A read-only ``numpy`` array broadcast to workers via shared memory.

    The owner copies the array into a POSIX shared-memory segment once;
    the handle (name + shape + dtype, a few bytes) is what task payloads
    carry. Workers attach by name, slice out what they need (fancy indexing
    copies), and detach — the dataset is never pickled per task.

    Lifecycle: the creating process calls :meth:`close` + :meth:`unlink`
    (or uses the instance as a context manager) once the parallel phase is
    done; workers call :meth:`close` after reading.
    """

    __slots__ = ("name", "shape", "dtype", "_shm", "_owner")

    def __init__(self, name: str, shape: tuple, dtype: str):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = str(dtype)
        self._shm = None
        self._owner = False

    def __reduce__(self):
        # Pickle only the handle, never the segment or the data.
        return (SharedArray, (self.name, self.shape, self.dtype))

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared-memory segment."""
        from multiprocessing import shared_memory

        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        handle = cls(shm.name, array.shape, array.dtype.str)
        handle._shm = shm
        handle._owner = True
        return handle

    def asarray(self) -> np.ndarray:
        """Attach (if needed) and view the shared segment as a read-only array."""
        if self._shm is None:
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(name=self.name)
            try:
                # An attaching (non-owning) process must not let Python's
                # resource tracker "clean up" the owner's segment at exit
                # (bpo-38119); 3.13 has track=False, older versions need
                # the unregister workaround.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:
                pass
        view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=self._shm.buf)
        view.flags.writeable = self._owner
        return view

    def close(self) -> None:
        """Detach this process's mapping (safe to call repeatedly)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; after all workers detached)."""
        from multiprocessing import shared_memory

        try:
            shm = self._shm if self._shm is not None else shared_memory.SharedMemory(name=self.name)
            shm.unlink()
        except FileNotFoundError:
            pass
        finally:
            self.close()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        if self._owner:
            self.unlink()

    def __repr__(self) -> str:
        return f"SharedArray(name={self.name!r}, shape={self.shape}, dtype={self.dtype!r})"


# -- columnar batch shipping -------------------------------------------------
#
# The batched engine's task payloads carry whole RecordBatch columns. Small
# columns ride the normal pickle channel; columns at or above the threshold
# are broadcast through SharedArray so the pool's pipe moves a few-byte
# handle instead of megabytes of data. The parent owns the segments and
# unlinks them once the phase's results are collected.

#: Columns at least this large travel through shared memory (1 MiB).
SHARED_BATCH_MIN_BYTES = 1 << 20


def _pack_column(col, owners: list, min_bytes: int):
    if isinstance(col, tuple):
        return tuple(_pack_column(c, owners, min_bytes) for c in col)
    if isinstance(col, np.ndarray) and col.nbytes >= min_bytes:
        handle = SharedArray.create(col)
        owners.append(handle)
        return handle
    return col


def _unpack_column(col):
    if isinstance(col, tuple):
        return tuple(_unpack_column(c) for c in col)
    if isinstance(col, SharedArray):
        # Copy out of the segment immediately: the worker's result may hold
        # (views of) these rows and must not dangle once the parent unlinks.
        array = np.array(col.asarray())
        col.close()
        return array
    return col


def ship_batch(batch, *, min_bytes: int | None = None):
    """Prepare a RecordBatch for a task payload.

    Returns ``(shipped, owners)`` where ``shipped`` is either the batch
    itself (all columns small) or a compact form with large columns replaced
    by :class:`SharedArray` handles, and ``owners`` are the created segments
    — the caller must ``unlink()`` each after the phase completes.
    """
    if min_bytes is None:
        min_bytes = SHARED_BATCH_MIN_BYTES
    owners: list = []
    keys = _pack_column(batch.keys, owners, min_bytes)
    values = _pack_column(batch.values, owners, min_bytes)
    if not owners:
        return batch, []
    return ("record-batch", keys, values), owners


def load_batch(shipped):
    """Worker-side inverse of :func:`ship_batch`."""
    from repro.mapreduce.types import RecordBatch

    if isinstance(shipped, RecordBatch):
        return shipped
    kind, keys, values = shipped
    if kind != "record-batch":
        raise TypeError(f"not a shipped batch: {shipped!r}")
    return RecordBatch(_unpack_column(keys), _unpack_column(values))
