"""Closed-loop autoscaling for the simulated MapReduce substrate.

The paper's Table 3 shows DASC's runtime halving per node-doubling — but
only for *statically* sized clusters. The workload itself is not uniform:
stage 1 (hashing) is map-bound, stage 2 (per-bucket Gram/eigendecomposition)
is reduce-bound and skew-prone, so the resource mix that is right for one
phase is wrong for the next. This module closes the loop: an
:class:`Autoscaler` reads the same per-phase signals the observability
plane derives from ``cluster.phase`` events — slot utilization, critical-
path slack, straggler ratio, pending-task queue depth — and issues
:meth:`SimulatedCluster.resize` decisions at two kinds of decision points:

* **between phases** of a job step (after the map phase is scheduled and
  the reduce queue is known, before the reduce phase is scheduled), and
* **between job-flow steps** (after each step completes).

Scale-ups charge a flat cold-start latency to the flow's makespan (nodes
boot in parallel); scale-downs run the HDFS drain protocol — re-replicate
every retiring node's blocks onto survivors *before* removal
(:meth:`SimulatedHDFS.decommission_nodes`) — and charge the re-replication
time. Every decision is appended to a checkpointed log
(``<prefix>/autoscale-log``) so a crashed driver resumes by *replaying*
the recorded scaling schedule bit-identically instead of re-deciding;
signals of restored steps never recompute, so replay is the only way the
resumed trajectory can match the original.

Policies:

* :class:`TargetMakespan` — scale to hit a simulated-makespan SLO: grow
  when the pending phase would overshoot the remaining budget, shrink when
  utilization is low and the projection fits comfortably at fewer nodes.
* :class:`BudgetCap` — a node-seconds ceiling: shed idle capacity when the
  projected spend would breach the cap or when slot slack says the nodes
  are not earning their keep.
* :class:`Static` — the do-nothing reference the benchmarks compare
  against.

The bit-identity contract extends unchanged: scaling alters *when* work
runs (makespans, the ``autoscale.*`` ledger), never *what* it computes —
labels, counters, and partitions are identical to a static run.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.mapreduce.cluster import ScaleReport, SimulatedCluster
from repro.observability import get_tracer

__all__ = [
    "PhaseSignals",
    "ScaleDecision",
    "AutoscalerState",
    "AutoscalePolicy",
    "Static",
    "TargetMakespan",
    "BudgetCap",
    "Autoscaler",
]


@dataclass(frozen=True)
class PhaseSignals:
    """What the observability plane knows right after a scheduled phase.

    Derived from the phase's :class:`~repro.mapreduce.cluster.TaskStats`
    exactly the way :func:`repro.observability.analysis.phase_critical_path`
    derives its rows from ``cluster.phase`` events: ``critical_path`` is
    the busy time of the most loaded slot, ``slack`` the idle slot-time
    below it, ``straggler_ratio`` the most loaded slot over the median
    one. ``pending_*`` describe the queue entering the *next* phase — the
    quantity a scale decision actually buys time against.
    """

    trigger: str  # stable decision-point id (replay matches on it)
    phase: str  # what just ran: "map", "reduce", or "step"
    n_tasks: int = 0
    n_slots: int = 0
    makespan: float = 0.0
    total_cost: float = 0.0
    utilization: float = 1.0
    critical_path: float = 0.0
    slack: float = 0.0
    straggler_ratio: float = 1.0
    pending_phase: str = "map"  # which slot pool the pending queue draws on
    pending_tasks: int = 0
    pending_cost: float = 0.0
    max_pending_cost: float = 0.0

    @classmethod
    def from_stats(
        cls,
        trigger: str,
        phase: str,
        stats,
        *,
        pending_costs=(),
        pending_phase: str = "map",
    ) -> "PhaseSignals":
        per_slot = [float(c) for c in stats.per_slot_cost]
        critical = max(per_slot, default=0.0)
        median = sorted(per_slot)[len(per_slot) // 2] if per_slot else 0.0
        pending = [float(c) for c in pending_costs]
        return cls(
            trigger=trigger,
            phase=phase,
            n_tasks=stats.n_tasks,
            n_slots=len(per_slot),
            makespan=float(stats.makespan),
            total_cost=float(stats.total_cost),
            utilization=float(stats.utilization),
            critical_path=critical,
            slack=sum(critical - c for c in per_slot),
            straggler_ratio=critical / median if median > 0 else 1.0,
            pending_phase=pending_phase,
            pending_tasks=len(pending),
            pending_cost=sum(pending),
            max_pending_cost=max(pending, default=0.0),
        )


@dataclass(frozen=True)
class ScaleDecision:
    """What a policy wants done at one decision point."""

    action: str  # "up" | "down" | "hold"
    delta: int = 0
    reason: str = ""

    def __post_init__(self):
        if self.action not in ("up", "down", "hold"):
            raise ValueError(f"action must be 'up', 'down' or 'hold', got {self.action!r}")
        if self.action != "hold" and self.delta < 1:
            raise ValueError(f"{self.action}-decisions need delta >= 1, got {self.delta}")


@dataclass(frozen=True)
class AutoscalerState:
    """Cluster + ledger snapshot a policy decides against."""

    n_nodes: int
    map_slots_per_node: int
    reduce_slots_per_node: int
    elapsed: float  # simulated makespan so far, scaling overhead included
    node_seconds: float  # provisioned node-time consumed so far
    overhead: float  # cold-start + drain latency charged so far
    cold_start: float  # what the next scale-up would charge

    def slots_per_node(self, phase: str) -> int:
        return self.reduce_slots_per_node if phase == "reduce" else self.map_slots_per_node


class AutoscalePolicy:
    """Base class: map ``(signals, state)`` to a :class:`ScaleDecision`."""

    name = "policy"

    def decide(self, signals: PhaseSignals, state: AutoscalerState) -> ScaleDecision:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class Static(AutoscalePolicy):
    """The reference policy: never resize."""

    name = "static"

    def decide(self, signals: PhaseSignals, state: AutoscalerState) -> ScaleDecision:
        return ScaleDecision("hold", reason="static policy")


def _projected_makespan(pending_cost: float, max_cost: float, n_slots: int) -> float:
    """LPT lower bound for the pending queue on ``n_slots`` slots."""
    if n_slots < 1:
        return math.inf
    return max(pending_cost / n_slots, max_cost)


@dataclass
class TargetMakespan(AutoscalePolicy):
    """Scale to finish within ``target`` simulated seconds (the SLO).

    At a decision point with a known pending queue, the policy projects the
    queue's makespan at the current size (the LPT lower bound
    ``max(total/slots, max_task)``). If the projection overshoots the
    remaining budget, it grows to the smallest node count whose projection
    fits the budget *after* the cold start is charged; one indivisible task
    longer than the whole budget caps what growing can buy, so the policy
    never scales past ``max_nodes`` chasing it. If utilization is below
    ``scale_down_utilization`` and the projection fits at fewer nodes, it
    shrinks to the smallest sufficient size. ``headroom`` keeps a safety
    fraction of the budget unspent (1.1 = decide as if the SLO were 10%
    tighter). Without pending-queue information it holds.
    """

    target: float
    min_nodes: int = 1
    max_nodes: int = 64
    scale_down_utilization: float = 0.5
    headroom: float = 1.1
    name: str = field(default="target-makespan", repr=False)

    def __post_init__(self):
        if self.target <= 0:
            raise ValueError(f"target must be > 0, got {self.target}")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError(
                f"need 1 <= min_nodes <= max_nodes, got {self.min_nodes}..{self.max_nodes}"
            )
        if self.headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {self.headroom}")

    def decide(self, signals: PhaseSignals, state: AutoscalerState) -> ScaleDecision:
        if signals.pending_tasks == 0:
            return ScaleDecision("hold", reason="no pending queue to scale against")
        spn = state.slots_per_node(signals.pending_phase)
        budget = max(self.target - state.elapsed, 0.0) / self.headroom
        projected = _projected_makespan(
            signals.pending_cost, signals.max_pending_cost, state.n_nodes * spn
        )
        if projected > budget:
            # Smallest size whose projection fits after paying the boot.
            usable = max(budget - state.cold_start, signals.max_pending_cost, 1e-12)
            needed = math.ceil(signals.pending_cost / (spn * usable))
            needed = min(self.max_nodes, max(needed, state.n_nodes))
            if needed > state.n_nodes:
                return ScaleDecision(
                    "up",
                    delta=needed - state.n_nodes,
                    reason=(
                        f"pending {signals.pending_phase} queue projects "
                        f"{projected:.3g}s > budget {budget:.3g}s"
                    ),
                )
            return ScaleDecision("hold", reason="over budget but already at max_nodes")
        if signals.utilization < self.scale_down_utilization:
            usable = max(budget, 1e-12)
            needed = max(self.min_nodes, math.ceil(signals.pending_cost / (spn * usable)))
            if needed < state.n_nodes:
                return ScaleDecision(
                    "down",
                    delta=state.n_nodes - needed,
                    reason=(
                        f"utilization {signals.utilization:.2f} below "
                        f"{self.scale_down_utilization}; {needed} nodes fit the budget"
                    ),
                )
        return ScaleDecision("hold", reason="projection fits the remaining budget")


@dataclass
class BudgetCap(AutoscalePolicy):
    """A node-seconds ceiling: scale down when there is slack.

    The spend of a phase at size ``n`` is roughly ``n * makespan(n)``;
    because total work is conserved, idle slots are pure cost. The policy
    sheds nodes when the projected spend of the pending queue would breach
    the remaining budget, and trims toward ``ceil(n * utilization)`` when
    the last phase left slots idle below ``low_utilization``. It never
    scales up — the cap is a ceiling, not an SLO.
    """

    node_seconds: float
    min_nodes: int = 1
    low_utilization: float = 0.6
    name: str = field(default="budget-cap", repr=False)

    def __post_init__(self):
        if self.node_seconds <= 0:
            raise ValueError(f"node_seconds must be > 0, got {self.node_seconds}")
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")

    def decide(self, signals: PhaseSignals, state: AutoscalerState) -> ScaleDecision:
        if state.n_nodes <= self.min_nodes:
            return ScaleDecision("hold", reason="already at min_nodes")
        remaining = self.node_seconds - state.node_seconds
        spn = state.slots_per_node(signals.pending_phase)
        if signals.pending_tasks:

            def spend(n: int) -> float:
                return n * _projected_makespan(
                    signals.pending_cost, signals.max_pending_cost, n * spn
                )

            if spend(state.n_nodes) > remaining:
                n = state.n_nodes
                while n > self.min_nodes and spend(n - 1) <= spend(n):
                    n -= 1
                if n < state.n_nodes:
                    return ScaleDecision(
                        "down",
                        delta=state.n_nodes - n,
                        reason=(
                            f"projected spend {spend(state.n_nodes):.3g} node-s exceeds "
                            f"remaining budget {remaining:.3g}"
                        ),
                    )
        if signals.utilization < self.low_utilization:
            needed = max(self.min_nodes, math.ceil(state.n_nodes * signals.utilization))
            if needed < state.n_nodes:
                return ScaleDecision(
                    "down",
                    delta=state.n_nodes - needed,
                    reason=(
                        f"utilization {signals.utilization:.2f} below {self.low_utilization}: "
                        f"trimming idle capacity"
                    ),
                )
        return ScaleDecision("hold", reason="spend within budget")


class Autoscaler:
    """Drives policy decisions into one :class:`~repro.mapreduce.job.JobFlow`.

    Lifecycle: :meth:`bind` at flow start resets the cluster to its
    provisioned size (so a resumed run replays the same trajectory from
    the same origin) and, on resume, loads the checkpointed decision log.
    The engine then reports a decision point between the map and reduce
    phases of every job, and the flow reports one after every step. Each
    point either *replays* the next logged decision (matched by its stable
    trigger id) or consults the policy live; either way the resize is
    applied through the cluster/HDFS drain primitives, ``autoscale.*``
    trace events are emitted, and the updated log is persisted.

    Parameters
    ----------
    policy:
        The :class:`AutoscalePolicy` consulted at live decision points.
    cold_start:
        Simulated latency one scale-up charges to the flow makespan (flat
        per event — nodes boot in parallel).
    drain_cost_per_block:
        Simulated re-replication latency per block copy a decommission
        drain moves off the retiring nodes.
    """

    def __init__(
        self,
        policy: AutoscalePolicy,
        *,
        cold_start: float = 0.0,
        drain_cost_per_block: float = 0.0,
    ):
        if cold_start < 0:
            raise ValueError(f"cold_start must be >= 0, got {cold_start}")
        if drain_cost_per_block < 0:
            raise ValueError(f"drain_cost_per_block must be >= 0, got {drain_cost_per_block}")
        self.policy = policy
        self.cold_start = float(cold_start)
        self.drain_cost_per_block = float(drain_cost_per_block)
        self.decisions: list[dict] = []
        self.overhead = 0.0
        self.node_seconds = 0.0
        self._elapsed = 0.0
        self._partial = 0.0  # makespan of the current step already observed
        self._replay: deque = deque()
        self._flow = None
        self._initial_nodes: int | None = None
        self._initial_fs_nodes: int | None = None
        self._step_index = -1
        self._step_points = 0
        self._log_key: str | None = None

    # -- wiring --------------------------------------------------------------

    @property
    def cluster(self) -> SimulatedCluster | None:
        return None if self._flow is None else self._flow.engine.cluster

    @property
    def n_nodes(self) -> int | None:
        """Current cluster size (``None`` before the first bind)."""
        cluster = self.cluster
        return None if cluster is None else cluster.n_nodes

    def bind(self, flow, *, resume: bool = False) -> None:
        """Attach to a flow at run start; load the decision log on resume.

        Resets the cluster (and filesystem node pool) to the provisioned
        size — a bookkeeping rewind, not a simulated drain — so replayed
        decisions re-grow the same trajectory the original run took.
        """
        if self._flow is not None and self._flow is not flow:
            raise RuntimeError("an Autoscaler drives exactly one JobFlow")
        self._flow = flow
        flow.engine.autoscaler = self
        cluster = flow.engine.cluster
        if self._initial_nodes is None:
            self._initial_nodes = cluster.n_nodes
            self._initial_fs_nodes = getattr(flow.fs, "n_nodes", None)
        cluster.n_nodes = self._initial_nodes
        if self._initial_fs_nodes is not None:
            flow.fs.n_nodes = self._initial_fs_nodes
            flow.fs.replication = min(flow.fs._requested_replication, flow.fs.n_nodes)
        store = flow._checkpoint_client()
        self._log_key = (
            f"{flow.checkpoint_prefix}/autoscale-log" if store is not None else None
        )
        self.decisions = []
        self.overhead = 0.0
        self.node_seconds = 0.0
        self._elapsed = 0.0
        self._partial = 0.0
        self._step_index = -1
        self._step_points = 0
        self._replay.clear()
        if resume and store is not None and store.exists(self._log_key):
            self._replay.extend(store.get(self._log_key)["decisions"])

    # -- decision points -----------------------------------------------------

    def begin_step(self, index: int) -> None:
        """The flow is about to run step ``index``."""
        self._step_index = index
        self._step_points = 0
        self._partial = 0.0

    def between_phases(self, job_name: str, map_stats, reduce_costs) -> None:
        """The engine finished a job's map phase; the reduce queue is known.

        Called once per reducer-bearing job, after the map phase is
        scheduled and before the reduce phase is — the point where growing
        (or shrinking) the cluster still changes the reduce schedule.
        """
        self._step_points += 1
        trigger = (
            f"step-{self._step_index:03d}:{job_name}#{self._step_points}:between-phases"
        )
        self._observe(map_stats.makespan)
        self._point(
            PhaseSignals.from_stats(
                trigger,
                "map",
                map_stats,
                pending_costs=reduce_costs,
                pending_phase="reduce",
            )
        )

    def after_step(self, index: int, name: str, result) -> None:
        """The flow completed step ``index`` (job, action, or restored job)."""
        trigger = f"step-{index:03d}:{name}:end"
        makespan = float(getattr(result, "makespan", 0.0) or 0.0)
        self._observe(max(0.0, makespan - self._partial))
        self._partial = 0.0
        stats = getattr(result, "reduce_stats", None)
        if stats is not None and getattr(stats, "n_tasks", 0):
            signals = PhaseSignals.from_stats(trigger, "reduce", stats)
        else:
            stats = getattr(result, "map_stats", None)
            if stats is not None and getattr(stats, "n_tasks", 0):
                signals = PhaseSignals.from_stats(trigger, "map", stats)
            else:
                signals = PhaseSignals(trigger=trigger, phase="step")
        self._point(signals)

    def replay_step(self, index: int) -> None:
        """Apply the logged between-phase decisions of a restored step.

        A step restored from its checkpoint never re-runs its phases, so
        its between-phase decision points never fire live — this flushes
        them from the replay log in order (the step's ``:end`` point still
        fires normally via :meth:`after_step`).
        """
        prefix = f"step-{index:03d}:"
        while (
            self._replay
            and self._replay[0]["trigger"].startswith(prefix)
            and not self._replay[0]["trigger"].endswith(":end")
        ):
            self._apply(self._replay.popleft(), replay=True)

    # -- internals -----------------------------------------------------------

    def _observe(self, makespan: float) -> None:
        cluster = self.cluster
        self._elapsed += makespan
        self._partial += makespan
        self.node_seconds += makespan * (cluster.n_nodes if cluster is not None else 0)

    def _state(self) -> AutoscalerState:
        cluster = self.cluster
        return AutoscalerState(
            n_nodes=cluster.n_nodes,
            map_slots_per_node=cluster.node.map_slots,
            reduce_slots_per_node=cluster.node.reduce_slots,
            elapsed=self._elapsed + self.overhead,
            node_seconds=self.node_seconds,
            overhead=self.overhead,
            cold_start=self.cold_start,
        )

    def _point(self, signals: PhaseSignals) -> None:
        if self._replay:
            head = self._replay[0]
            if head["trigger"] == signals.trigger:
                self._apply(self._replay.popleft(), replay=True)
                return
            # The run diverged from the log (a step the crashed run passed
            # is re-executing): the remaining log no longer lines up, and
            # deterministic signals reproduce the same schedule live.
            self._replay.clear()
        decision = self.policy.decide(signals, self._state())
        cluster = self.cluster
        delta = decision.delta
        if decision.action == "down":
            delta = min(delta, cluster.n_nodes - 1)  # never drain the last node
        if decision.action == "hold" or delta < 1:
            entry = self._entry(signals.trigger, "hold", 0, ScaleReport(), decision.reason)
        elif decision.action == "up":
            report = cluster.add_nodes(delta, cold_start=self.cold_start)
            self._flow.fs.add_nodes(delta)
            entry = self._entry(signals.trigger, "up", delta, report, decision.reason)
        else:
            report = cluster.decommission_nodes(
                delta, fs=self._flow.fs, drain_cost_per_block=self.drain_cost_per_block
            )
            entry = self._entry(signals.trigger, "down", delta, report, decision.reason)
        self.overhead += entry["cold_start"] + entry["drain_cost"]
        # Snapshot the ledger *after* the decision so replay restores the
        # exact accounting a live decision would have left behind.
        entry["elapsed"] = self._elapsed
        entry["node_seconds"] = self.node_seconds
        entry["partial"] = self._partial
        self.decisions.append(entry)
        self._emit(entry, signals, replay=False)
        self._persist()

    def _apply(self, entry: dict, *, replay: bool) -> None:
        """Re-apply a logged decision: same resize, same recorded charges."""
        cluster = self.cluster
        delta = int(entry["delta"])
        if entry["action"] == "up":
            cluster.add_nodes(delta, cold_start=self.cold_start)
            self._flow.fs.add_nodes(delta)
        elif entry["action"] == "down":
            cluster.decommission_nodes(
                delta, fs=self._flow.fs, drain_cost_per_block=self.drain_cost_per_block
            )
        self.overhead += float(entry["cold_start"]) + float(entry["drain_cost"])
        self._elapsed = float(entry["elapsed"])
        self.node_seconds = float(entry["node_seconds"])
        self._partial = float(entry["partial"])
        self.decisions.append(dict(entry))
        self._emit(entry, None, replay=replay)
        self._persist()

    def _entry(
        self, trigger: str, action: str, delta: int, report: ScaleReport, reason: str
    ) -> dict:
        cluster = self.cluster
        before = cluster.n_nodes - (delta if action == "up" else -delta if action == "down" else 0)
        return {
            "trigger": trigger,
            "action": action,
            "delta": int(delta),
            "n_before": int(before),
            "n_after": int(cluster.n_nodes),
            "cold_start": float(report.cold_start),
            "drain_cost": float(report.drain_cost),
            "blocks_moved": int(report.blocks_moved),
            "reason": reason,
            "policy": self.policy.describe(),
        }

    def _emit(self, entry: dict, signals: PhaseSignals | None, *, replay: bool) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        attrs = {
            "trigger": entry["trigger"],
            "action": entry["action"],
            "delta": entry["delta"],
            "n_before": entry["n_before"],
            "n_after": entry["n_after"],
            "policy": entry["policy"],
            "reason": entry["reason"],
            "replay": replay,
        }
        if signals is not None:
            attrs["utilization"] = signals.utilization
            attrs["pending_tasks"] = signals.pending_tasks
            attrs["straggler_ratio"] = signals.straggler_ratio
        tracer.event("autoscale.decision", **attrs)
        if entry["action"] == "up" and entry["cold_start"] > 0:
            tracer.event(
                "autoscale.cold_start",
                trigger=entry["trigger"],
                n_added=entry["delta"],
                wasted_cost=entry["cold_start"],
            )
        if entry["action"] == "down":
            tracer.event(
                "autoscale.drain",
                trigger=entry["trigger"],
                n_removed=entry["delta"],
                blocks_moved=entry["blocks_moved"],
                wasted_cost=entry["drain_cost"],
            )

    def _persist(self) -> None:
        if self._log_key is not None:
            self._flow._checkpoint_client().put(self._log_key, {"decisions": self.decisions})

    # -- reporting -----------------------------------------------------------

    def schedule(self) -> list[tuple[str, str, int, int]]:
        """The scaling schedule as ``(trigger, action, n_before, n_after)``
        tuples — the compact form the replay gates compare."""
        return [
            (d["trigger"], d["action"], d["n_before"], d["n_after"]) for d in self.decisions
        ]

    def summary(self) -> dict:
        """Ledger roll-up: decision counts, node trajectory, overheads."""
        actions: dict[str, int] = {"up": 0, "down": 0, "hold": 0}
        for d in self.decisions:
            actions[d["action"]] = actions.get(d["action"], 0) + 1
        return {
            "policy": self.policy.describe(),
            "decisions": len(self.decisions),
            "actions": actions,
            "initial_nodes": self._initial_nodes,
            "final_nodes": self.n_nodes,
            "cold_start": sum(d["cold_start"] for d in self.decisions),
            "drain_cost": sum(d["drain_cost"] for d in self.decisions),
            "blocks_moved": sum(d["blocks_moved"] for d in self.decisions),
            "overhead": self.overhead,
            "node_seconds": self.node_seconds,
        }
