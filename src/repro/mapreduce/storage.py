"""The storage plane: object stores, fault injection, and the hardened client.

The paper's Section 5.1 workflow leans entirely on remote storage — inputs
go up to S3, job-flow checkpoints and results come back out — and a real
EMR deployment fails most often at exactly that boundary: throttled
requests, torn writes, flipped bits, reads that time out. This module gives
the simulated storage plane the same chaos treatment the compute plane got
from :mod:`repro.mapreduce.faults`, in three layers:

* :class:`S3Store` — the flat in-memory object store (bucket/key → value).
  Writes snapshot their object (a later caller-side mutation cannot corrupt
  a "persisted" checkpoint) and missing keys surface as a structured
  :class:`NoSuchKeyError` naming the key and its nearest-prefix neighbours.
* :class:`ChaosStore` — a policy-driven fault injector wrapping any store:
  seeded per-op latency, transient request errors and ``SlowDown``-style
  throttling, torn writes (key promoted, payload truncated), bit-flip
  corruption, and read-unavailability windows. The storage analogue of
  :class:`~repro.mapreduce.faults.FaultyEngine`.
* :class:`ResilientStore` — the hardened client layered over any store:
  checksummed self-describing envelopes (CRC32 + format version over the
  pickled payload), atomic write-then-verify-then-promote, deterministic
  seeded exponential backoff with jitter, per-op deadlines, and the
  :class:`StorageError` hierarchy. Under any survivable fault schedule the
  bytes that land under a key decode to exactly the object that was put;
  an unsurvivable schedule raises a structured :class:`StorageError`,
  never a bare ``KeyError``/``EOFError``.

Retries, corruption detections, and quarantines are emitted as
``storage.*`` trace events (with backoff time as ``wasted_cost``, so the
fault ledger of :func:`repro.observability.report.fault_summary` itemizes
storage waste next to compute waste) and tallied on the tracer's metrics
registry.
"""

from __future__ import annotations

import copy
import pickle
import struct
import zlib
from dataclasses import dataclass

from repro.observability import get_tracer
from repro.utils.rng import as_rng

__all__ = [
    "StorageError",
    "NoSuchKeyError",
    "TransientStorageError",
    "CorruptObjectError",
    "StorageDeadlineError",
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "pack_envelope",
    "unpack_envelope",
    "S3Store",
    "StorageFaultPolicy",
    "ChaosStore",
    "RetryPolicy",
    "ResilientStore",
]


# -- error hierarchy ---------------------------------------------------------


class StorageError(RuntimeError):
    """Base class for every structured storage-plane failure."""


class NoSuchKeyError(StorageError, KeyError):
    """A get/delete named a key that is not in the store.

    Subclasses ``KeyError`` so pre-existing ``except KeyError`` callers keep
    working; carries the key and the nearest-prefix candidates so the
    message is actionable (a typo'd checkpoint prefix shows its neighbours).
    """

    def __init__(self, key: str, candidates: tuple = ()):
        message = f"no such key {key!r}"
        if candidates:
            message += " (nearest keys: " + ", ".join(repr(c) for c in candidates) + ")"
        super().__init__(message)
        self.key = key
        self.candidates = tuple(candidates)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class TransientStorageError(StorageError):
    """A retryable request failure (throttling, 5xx, unavailability window).

    ``code`` mirrors the S3 error-code vocabulary (``SlowDown``,
    ``InternalError``, ``ServiceUnavailable``).
    """

    def __init__(self, message: str, *, code: str = "InternalError", op: str = "", key: str = ""):
        super().__init__(message)
        self.code = code
        self.op = op
        self.key = key


class CorruptObjectError(StorageError):
    """An object failed envelope verification (torn write, flipped bits).

    ``reason`` is one of ``not-bytes`` / ``truncated-header`` /
    ``bad-magic`` / ``unsupported-version`` / ``torn`` / ``checksum`` /
    ``undecodable``.
    """

    def __init__(self, message: str, *, key: str = "", reason: str = "checksum"):
        super().__init__(message)
        self.key = key
        self.reason = reason


class StorageDeadlineError(StorageError):
    """An operation exhausted its retry budget or per-op deadline.

    Carries the op, key, attempt count, simulated backoff spent, and the
    last underlying error (also chained as ``__cause__``).
    """

    def __init__(self, message: str, *, op: str, key: str, attempts: int, elapsed: float):
        super().__init__(message)
        self.op = op
        self.key = key
        self.attempts = attempts
        self.elapsed = elapsed


# -- checksummed envelopes ---------------------------------------------------

ENVELOPE_MAGIC = b"RSE1"
ENVELOPE_VERSION = 1

#: magic(4) | version(1) | crc32(4) | payload-length(8), big-endian.
_HEADER = struct.Struct(">4sBIQ")


def pack_envelope(obj) -> bytes:
    """Serialize ``obj`` into a self-describing checksummed envelope.

    Layout: 4-byte magic, 1-byte format version, CRC32 of the payload,
    payload length, then the pickled payload. Everything a reader needs to
    detect truncation (length mismatch) or bit flips (CRC mismatch) before
    it ever reaches the unpickler.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        ENVELOPE_MAGIC, ENVELOPE_VERSION, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )
    return header + payload


def unpack_envelope(data, *, key: str = "") -> object:
    """Verify and decode an envelope produced by :func:`pack_envelope`.

    Raises :class:`CorruptObjectError` with a specific ``reason`` on any
    mismatch — the caller never sees a bare ``EOFError``/``UnpicklingError``
    from a torn or corrupted object.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise CorruptObjectError(
            f"object {key!r} is not an envelope (got {type(data).__name__})",
            key=key, reason="not-bytes",
        )
    if len(data) < _HEADER.size:
        raise CorruptObjectError(
            f"object {key!r} is truncated inside the envelope header "
            f"({len(data)} < {_HEADER.size} bytes)",
            key=key, reason="truncated-header",
        )
    magic, version, crc, length = _HEADER.unpack_from(bytes(data))
    if magic != ENVELOPE_MAGIC:
        raise CorruptObjectError(
            f"object {key!r} has bad envelope magic {magic!r}", key=key, reason="bad-magic"
        )
    if version != ENVELOPE_VERSION:
        raise CorruptObjectError(
            f"object {key!r} has unsupported envelope version {version}",
            key=key, reason="unsupported-version",
        )
    payload = bytes(data[_HEADER.size :])
    if len(payload) != length:
        raise CorruptObjectError(
            f"object {key!r} is torn: payload is {len(payload)} bytes, envelope "
            f"promises {length}",
            key=key, reason="torn",
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CorruptObjectError(
            f"object {key!r} failed its CRC32 check", key=key, reason="checksum"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CorruptObjectError(
            f"object {key!r} passed its checksum but failed to decode: {exc}",
            key=key, reason="undecodable",
        ) from exc


# -- the base object store ---------------------------------------------------


class S3Store:
    """A flat object store: bucket/key -> object (any Python value).

    Writes store a *snapshot* of the object (pickle round-trip, falling back
    to ``copy.deepcopy`` for unpicklable values): mutating the caller's
    object after ``put`` cannot silently corrupt what was "persisted", which
    is exactly the property checkpoint recovery depends on. ``bytes``
    payloads are immutable and stored as-is.
    """

    def __init__(self):
        self._objects: dict[str, object] = {}

    @staticmethod
    def _snapshot(obj: object) -> object:
        if isinstance(obj, (bytes, bytearray)):
            return bytes(obj)
        try:
            return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return copy.deepcopy(obj)

    def _nearest(self, key: str, limit: int = 3) -> tuple:
        """Keys sharing the longest common prefix with ``key`` (for errors)."""

        def shared(other: str) -> int:
            n = 0
            for a, b in zip(key, other):
                if a != b:
                    break
                n += 1
            return n

        ranked = sorted(self._objects, key=lambda k: (-shared(k), k))
        return tuple(k for k in ranked[:limit] if shared(k) > 0)

    def put(self, key: str, obj: object) -> None:
        """Store a snapshot of an object (overwrite allowed — S3 semantics)."""
        self._objects[key] = self._snapshot(obj)

    def get(self, key: str) -> object:
        """Fetch an object (:class:`NoSuchKeyError` if absent)."""
        try:
            return self._objects[key]
        except KeyError:
            raise NoSuchKeyError(key, self._nearest(key)) from None

    def exists(self, key: str) -> bool:
        """Whether the key is present."""
        return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        """All keys under a prefix, sorted."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    def delete(self, key: str) -> None:
        """Remove an object (:class:`NoSuchKeyError` if absent)."""
        try:
            del self._objects[key]
        except KeyError:
            raise NoSuchKeyError(key, self._nearest(key)) from None


# -- chaos injection ---------------------------------------------------------


@dataclass
class StorageFaultPolicy:
    """Deterministic, seeded storage-fault schedule for :class:`ChaosStore`.

    The storage analogue of :class:`~repro.mapreduce.faults.FaultPolicy` /
    :class:`~repro.mapreduce.faults.NodeFailurePolicy`: every fault draw
    comes from one seeded generator consumed in a fixed per-op order, so a
    given schedule replays identically.

    Parameters
    ----------
    error_rate:
        Per-request probability of a transient ``InternalError`` (applies
        to put/get/delete).
    throttle_rate:
        Per-request probability of a ``SlowDown`` throttling response.
    latency:
        ``(low, high)`` simulated seconds added per request (accumulated on
        :attr:`ChaosStore.simulated_latency`, never slept).
    torn_write_rate:
        Probability that a put of a ``bytes`` payload lands truncated — the
        key is promoted but the payload is cut short (the classic
        partial-upload failure). Non-bytes payloads consume the draw but
        cannot be torn.
    corrupt_rate:
        Probability that a put of a ``bytes`` payload lands with one bit
        flipped (persistent at-rest corruption).
    unavailable:
        ``(first, last)`` windows of *get-request sequence numbers* (0-based,
        inclusive) during which reads fail with ``ServiceUnavailable`` —
        a deterministic read-outage window.
    seed:
        Randomness for all draws.
    """

    error_rate: float = 0.0
    throttle_rate: float = 0.0
    latency: tuple = (0.0, 0.0)
    torn_write_rate: float = 0.0
    corrupt_rate: float = 0.0
    unavailable: tuple = ()
    seed: int = 0

    def __post_init__(self):
        for name in ("error_rate", "throttle_rate", "torn_write_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        low, high = self.latency
        if not 0.0 <= low <= high:
            raise ValueError(f"latency range must satisfy 0 <= low <= high, got {self.latency}")
        for window in self.unavailable:
            if len(window) != 2 or window[0] > window[1] or window[0] < 0:
                raise ValueError(
                    f"unavailable windows are (first_get, last_get) with 0 <= first <= last, "
                    f"got {window!r}"
                )


class ChaosStore:
    """A fault-injecting wrapper over any object store.

    Wraps a store implementing the object-store protocol
    (``put/get/exists/list_keys/delete``) and injects the faults of a
    :class:`StorageFaultPolicy` in front of it. Metadata operations
    (``exists``/``list_keys``) are left clean — they model cheap HEAD/LIST
    requests — so existence probes stay truthful while data paths misbehave.

    Torn writes and bit flips only apply to ``bytes`` payloads (the
    :class:`ResilientStore` envelope path); the draws are still consumed
    for other values so fault schedules stay aligned across runs.

    Attributes
    ----------
    injected:
        Tally of injected faults by kind (``error`` / ``throttle`` /
        ``torn`` / ``corrupt`` / ``unavailable``).
    simulated_latency:
        Total injected latency in simulated seconds (never slept).
    """

    def __init__(self, inner: object | None = None, *, policy: StorageFaultPolicy | None = None):
        self.inner = inner if inner is not None else S3Store()
        self.policy = policy if policy is not None else StorageFaultPolicy()
        self._rng = as_rng(self.policy.seed)
        self._n_gets = 0
        self.injected: dict[str, int] = {}
        self.simulated_latency = 0.0

    # -- fault draws ---------------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _draw_latency(self) -> None:
        low, high = self.policy.latency
        if high > 0.0:
            self.simulated_latency += float(low + (high - low) * self._rng.random())

    def _maybe_fail_request(self, op: str, key: str) -> None:
        self._draw_latency()
        if self.policy.error_rate > 0 and self._rng.random() < self.policy.error_rate:
            self._count("error")
            raise TransientStorageError(
                f"injected InternalError on {op} {key!r}", code="InternalError", op=op, key=key
            )
        if self.policy.throttle_rate > 0 and self._rng.random() < self.policy.throttle_rate:
            self._count("throttle")
            raise TransientStorageError(
                f"injected SlowDown on {op} {key!r}", code="SlowDown", op=op, key=key
            )

    def _damage(self, key: str, obj: object) -> object:
        """Apply write-path damage draws (torn / bit-flip) to a payload."""
        torn = self.policy.torn_write_rate > 0 and self._rng.random() < self.policy.torn_write_rate
        frac = self._rng.random()  # always consumed: keeps schedules aligned
        corrupt = self.policy.corrupt_rate > 0 and self._rng.random() < self.policy.corrupt_rate
        pos = self._rng.random()
        bit = int(self._rng.integers(8))
        if not isinstance(obj, (bytes, bytearray)) or len(obj) == 0:
            return obj
        data = bytes(obj)
        if torn:
            self._count("torn")
            cut = max(1, int(len(data) * (0.1 + 0.8 * frac)))
            data = data[:cut]
        if corrupt and data:
            self._count("corrupt")
            damaged = bytearray(data)
            damaged[int(pos * len(damaged)) % len(damaged)] ^= 1 << bit
            data = bytes(damaged)
        return data

    # -- the store protocol --------------------------------------------------

    def put(self, key: str, obj: object) -> None:
        self._maybe_fail_request("put", key)
        self.inner.put(key, self._damage(key, obj))

    def get(self, key: str) -> object:
        seq = self._n_gets
        self._n_gets += 1
        for first, last in self.policy.unavailable:
            if first <= seq <= last:
                self._count("unavailable")
                self._draw_latency()
                raise TransientStorageError(
                    f"injected ServiceUnavailable on get {key!r} (request #{seq})",
                    code="ServiceUnavailable", op="get", key=key,
                )
        self._maybe_fail_request("get", key)
        return self.inner.get(key)

    def exists(self, key: str) -> bool:
        return self.inner.exists(key)

    def list_keys(self, prefix: str = "") -> list[str]:
        return self.inner.list_keys(prefix)

    def delete(self, key: str) -> None:
        self._maybe_fail_request("delete", key)
        self.inner.delete(key)


# -- the hardened client -----------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic seeded exponential backoff with jitter + per-op deadline.

    ``delay(k)`` for attempt ``k`` (0-based) is
    ``min(max_delay, base_delay * multiplier**k)`` shrunk by up to
    ``jitter`` of itself via a seeded uniform draw — the decorrelated-jitter
    shape real S3 clients use, made reproducible. Backoff time is
    *simulated* (accumulated, not slept): the deadline is enforced against
    the accumulated total.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float = 30.0
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("delays must satisfy 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def delays(self, rng) -> list[float]:
        """The full jittered backoff schedule (one delay per retry slot)."""
        out = []
        for k in range(self.max_attempts - 1):
            base = min(self.max_delay, self.base_delay * self.multiplier**k)
            out.append(base * (1.0 - self.jitter * float(rng.random())))
        return out


class ResilientStore:
    """The hardened object-store client: envelopes, retries, atomic writes.

    Layered over any store implementing the object-store protocol (a plain
    :class:`S3Store`, a :class:`ChaosStore`, anything duck-typed the same):

    * every object is wrapped in a :func:`pack_envelope` checksummed
      envelope, so torn writes and bit flips are *detected*, never
      silently unpickled;
    * ``put`` is write-then-verify-then-promote: the envelope lands under a
      temporary key, is read back and verified, is promoted to the final
      key, and the promoted copy is verified again before the temp key is
      cleaned up — a damaged write at any stage is retried, and the final
      key never holds bytes that were not verified after landing;
    * transient errors (and failed write verifications) retry under the
      seeded exponential backoff of :class:`RetryPolicy`, with each retry
      emitted as a ``storage.retry`` trace event whose backoff delay is the
      ``wasted_cost`` the fault ledger itemizes;
    * a ``get`` that decodes to damaged bytes raises
      :class:`CorruptObjectError` (persistent corruption is not retried —
      the caller decides whether to quarantine and fall back);
    * retry/deadline exhaustion raises :class:`StorageDeadlineError`.

    Backoff time is simulated: it accrues on :attr:`backoff_total` instead
    of sleeping, keeping chaos suites fast and deterministic.
    """

    #: Suffixes for the commit protocol and for quarantined objects.
    TMP_SUFFIX = ".tmp"
    CORRUPT_SUFFIX = ".corrupt"

    def __init__(self, inner: object, *, retry: RetryPolicy | None = None):
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = as_rng(self.retry.seed)
        self.backoff_total = 0.0

    @classmethod
    def wrap(cls, store: object, *, retry: RetryPolicy | None = None) -> "ResilientStore":
        """``store`` unchanged if already resilient, else wrapped."""
        if isinstance(store, ResilientStore):
            return store
        return cls(store, retry=retry)

    # -- the object API ------------------------------------------------------

    def put(self, key: str, obj: object) -> None:
        """Atomically persist ``obj`` under ``key`` (write-verify-promote)."""
        data = pack_envelope(obj)
        tmp = key + self.TMP_SUFFIX

        def attempt():
            self.inner.put(tmp, data)
            unpack_envelope(self.inner.get(tmp), key=tmp)
            self.inner.put(key, data)  # promote
            unpack_envelope(self.inner.get(key), key=key)  # promote may tear too
            try:
                self.inner.delete(tmp)
            except (TransientStorageError, KeyError):
                pass  # best-effort cleanup; an orphan tmp key is harmless

        self._with_retries("put", key, attempt, retry_corrupt=True)

    def get(self, key: str) -> object:
        """Fetch and verify the object under ``key``.

        Raises :class:`NoSuchKeyError` when absent, :class:`CorruptObjectError`
        when the stored envelope fails verification (torn/corrupted at rest).
        """

        def attempt():
            try:
                data = self.inner.get(key)
            except NoSuchKeyError:
                raise
            except KeyError as exc:  # normalize foreign stores' bare KeyError
                raise NoSuchKeyError(key) from exc
            return unpack_envelope(data, key=key)

        return self._with_retries("get", key, attempt, retry_corrupt=False)

    def exists(self, key: str) -> bool:
        """Whether ``key`` is present (metadata op, passed through)."""
        return self.inner.exists(key)

    def list_keys(self, prefix: str = "") -> list[str]:
        """Keys under ``prefix`` (metadata op, passed through)."""
        return self.inner.list_keys(prefix)

    def delete(self, key: str) -> None:
        """Remove ``key`` (:class:`NoSuchKeyError` if absent), with retries."""

        def attempt():
            try:
                self.inner.delete(key)
            except NoSuchKeyError:
                raise
            except KeyError as exc:
                raise NoSuchKeyError(key) from exc

        self._with_retries("delete", key, attempt, retry_corrupt=False)

    def quarantine(self, key: str) -> str:
        """Move a damaged object aside to ``key + '.corrupt'``.

        The damaged bytes are preserved verbatim for post-mortem (moved, not
        deleted) and the original key is freed so a re-executed producer can
        rewrite it. Returns the quarantine key. Emits a
        ``storage.quarantine`` trace event and bumps the
        ``storage.quarantined`` metric.
        """
        dest = key + self.CORRUPT_SUFFIX

        def attempt():
            try:
                damaged = self.inner.get(key)
            except KeyError:
                return  # already gone — quarantine is idempotent
            self.inner.put(dest, damaged)
            try:
                self.inner.delete(key)
            except KeyError:
                pass

        self._with_retries("quarantine", key, attempt, retry_corrupt=False)
        tracer = get_tracer()
        tracer.event("storage.quarantine", key=key, quarantine_key=dest)
        tracer.metrics.counter("storage.quarantined").inc()
        return dest

    # -- retry machinery -----------------------------------------------------

    def _with_retries(self, op: str, key: str, attempt_fn, *, retry_corrupt: bool):
        """Run one storage op under the retry policy.

        ``retry_corrupt`` is True only for writes: a failed write
        verification means the attempt landed damaged and rewriting may
        succeed, whereas a corrupt *read* is damage at rest — retrying
        cannot help, the caller must quarantine and fall back.
        """
        tracer = get_tracer()
        delays = self.retry.delays(self._rng)
        elapsed = 0.0
        last_exc: StorageError | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return attempt_fn()
            except TransientStorageError as exc:
                last_exc = exc
            except CorruptObjectError as exc:
                if not retry_corrupt:
                    tracer.event(
                        "storage.corruption",
                        op=op, key=key, reason=exc.reason, retryable=False,
                    )
                    tracer.metrics.counter("storage.corruption").inc()
                    raise
                last_exc = exc
            if attempt > len(delays):
                break  # retry slots exhausted
            delay = delays[attempt - 1]
            if elapsed + delay > self.retry.deadline:
                raise StorageDeadlineError(
                    f"storage {op} {key!r} exceeded its {self.retry.deadline:.3f}s deadline "
                    f"after {attempt} attempt(s) ({elapsed:.3f}s backoff): {last_exc}",
                    op=op, key=key, attempts=attempt, elapsed=elapsed,
                ) from last_exc
            elapsed += delay
            self.backoff_total += delay
            tracer.event(
                "storage.retry",
                op=op, key=key, attempt=attempt, delay=delay,
                error=f"{type(last_exc).__name__}: {last_exc}",
                wasted_cost=delay,
            )
            tracer.metrics.counter("storage.retries").inc()
        raise StorageDeadlineError(
            f"storage {op} {key!r} failed after {self.retry.max_attempts} attempt(s) "
            f"({elapsed:.3f}s backoff): {last_exc}",
            op=op, key=key, attempts=self.retry.max_attempts, elapsed=elapsed,
        ) from last_exc
