"""MapReduce execution substrate (the Hadoop/EMR role in the paper).

A deterministic, in-process MapReduce engine with the pieces the paper's
deployment story needs:

* :mod:`repro.mapreduce.types` — keyed records and job definitions,
* :mod:`repro.mapreduce.engine` — map / combine / shuffle-sort / reduce,
* :mod:`repro.mapreduce.hdfs` — a simulated distributed filesystem
  (splits, replication, block placement),
* :mod:`repro.mapreduce.cluster` — a simulated cluster: nodes with map and
  reduce slots (Table 2's configuration), an LPT slot scheduler, and a
  discrete cost model that yields simulated makespans (the elasticity
  quantity of Table 3),
* :mod:`repro.mapreduce.emr` — an Elastic-MapReduce-like service: an
  S3-like object store plus job flows of steps,
* :mod:`repro.mapreduce.autoscale` — the closed loop over the cluster:
  policies that read per-phase scheduling signals and resize the cluster
  between phases and steps (cold starts and decommission drains charged
  to the makespan, decisions checkpointed for bit-identical resume),
* :mod:`repro.mapreduce.storage` — the storage plane: the object store,
  the :class:`ChaosStore` fault injector, and the hardened
  :class:`ResilientStore` client (checksummed envelopes, atomic writes,
  seeded retries, quarantine),
* :mod:`repro.mapreduce.counters` — Hadoop-style counters,
* :mod:`repro.mapreduce.executor` — serial / process-pool execution
  backends for real-core task parallelism (``REPRO_N_JOBS``).
"""

from repro.mapreduce.types import KeyValue, MapTaskResult, JobSpec, RecordBatch
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import (
    MapReduceEngine,
    stable_hash,
    data_plane_enabled,
    resolve_data_plane,
)
from repro.mapreduce.executor import (
    ExecutorError,
    ParallelExecutor,
    SerialExecutor,
    SharedArray,
    default_executor,
    effective_n_jobs,
    resolve_executor,
)
from repro.mapreduce.hdfs import SimulatedHDFS, FileSplit, ReplicaUnavailableError
from repro.mapreduce.storage import (
    StorageError,
    NoSuchKeyError,
    TransientStorageError,
    CorruptObjectError,
    StorageDeadlineError,
    StorageFaultPolicy,
    ChaosStore,
    RetryPolicy,
    ResilientStore,
    pack_envelope,
    unpack_envelope,
)
from repro.mapreduce.cluster import (
    NodeConfig,
    EMR_NODE_CONFIG,
    TABLE2_DEFAULTS,
    SimulatedCluster,
    TaskStats,
    PhaseTask,
    ScaleReport,
    SpeculationConfig,
)
from repro.mapreduce.autoscale import (
    Autoscaler,
    AutoscalePolicy,
    AutoscalerState,
    BudgetCap,
    PhaseSignals,
    ScaleDecision,
    Static,
    TargetMakespan,
)
from repro.mapreduce.job import Job, JobFlow, JobFlowStep, JobFlowError
from repro.mapreduce.emr import S3Store, ElasticMapReduce
from repro.mapreduce.faults import (
    FaultPolicy,
    NodeFailurePolicy,
    StragglerPolicy,
    FaultyEngine,
    TaskFailedError,
)

__all__ = [
    "KeyValue",
    "MapTaskResult",
    "JobSpec",
    "RecordBatch",
    "Counters",
    "MapReduceEngine",
    "stable_hash",
    "data_plane_enabled",
    "resolve_data_plane",
    "ExecutorError",
    "SerialExecutor",
    "ParallelExecutor",
    "SharedArray",
    "effective_n_jobs",
    "resolve_executor",
    "default_executor",
    "SimulatedHDFS",
    "FileSplit",
    "ReplicaUnavailableError",
    "StorageError",
    "NoSuchKeyError",
    "TransientStorageError",
    "CorruptObjectError",
    "StorageDeadlineError",
    "StorageFaultPolicy",
    "ChaosStore",
    "RetryPolicy",
    "ResilientStore",
    "pack_envelope",
    "unpack_envelope",
    "NodeConfig",
    "EMR_NODE_CONFIG",
    "TABLE2_DEFAULTS",
    "SimulatedCluster",
    "TaskStats",
    "PhaseTask",
    "ScaleReport",
    "SpeculationConfig",
    "Autoscaler",
    "AutoscalePolicy",
    "AutoscalerState",
    "BudgetCap",
    "PhaseSignals",
    "ScaleDecision",
    "Static",
    "TargetMakespan",
    "Job",
    "JobFlow",
    "JobFlowStep",
    "JobFlowError",
    "S3Store",
    "ElasticMapReduce",
    "FaultPolicy",
    "NodeFailurePolicy",
    "StragglerPolicy",
    "FaultyEngine",
    "TaskFailedError",
]
