"""Simulated cluster: nodes, slots, and the makespan cost model.

The paper's elasticity result (Table 3) is a *scheduling* property: DASC's
buckets are independent work items, so doubling the node count roughly
halves the wall clock while memory per node and accuracy stay flat. This
module reproduces that mechanism: tasks carry abstract costs, nodes expose
map/reduce slots (Table 2: 4 map + 2 reduce per tasktracker), and a
longest-processing-time (LPT) list scheduler assigns tasks to slots. The
simulated makespan is the maximum finishing time over slots.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.observability import get_tracer

__all__ = [
    "NodeConfig",
    "EMR_NODE_CONFIG",
    "TABLE2_DEFAULTS",
    "TaskStats",
    "PhaseTask",
    "ScaleReport",
    "SpeculationConfig",
    "SimulatedCluster",
]


@dataclass(frozen=True)
class NodeConfig:
    """Per-node resources, mirroring the paper's Table 2 Hadoop settings."""

    map_slots: int = 4  # "Maximum map tasks in tasktracker"
    reduce_slots: int = 2  # "Maximum reduce tasks in tasktracker"
    memory_mb: int = 1700  # EMR instance memory (Section 5.1)
    jobtracker_heap_mb: int = 768
    namenode_heap_mb: int = 256
    tasktracker_heap_mb: int = 512
    datanode_heap_mb: int = 256
    replication: int = 3

    def __post_init__(self):
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ValueError("nodes need at least one map and one reduce slot")


#: Table 2 verbatim: the Elastic MapReduce cluster configuration.
TABLE2_DEFAULTS = NodeConfig()

#: Alias used by the EMR service layer.
EMR_NODE_CONFIG = TABLE2_DEFAULTS


@dataclass
class TaskStats:
    """Scheduling outcome of one phase on the simulated cluster."""

    n_tasks: int
    total_cost: float
    makespan: float
    per_slot_cost: list[float] = field(default_factory=list)
    n_local_tasks: int = 0  # tasks that ran on a node holding their data
    # -- fault/speculation accounting (zero when the phase ran clean) --------
    n_node_failures: int = 0  # nodes preempted during the phase
    n_tasks_lost: int = 0  # in-flight attempts killed with their node
    n_map_outputs_lost: int = 0  # completed map outputs lost with their node
    speculative_launched: int = 0  # backup attempts started for stragglers
    speculative_won: int = 0  # backups that beat the original attempt
    wasted_cost: float = 0.0  # work charged to the clock but thrown away
    real_elapsed: float = 0.0  # measured wall-clock of the phase's compute
    # Node (not slot) that produced each task's surviving output, indexed by
    # the task's position in the submitted task list — what lets the trace
    # analysis plane join `mr.map_task`/`mr.reduce_task` spans to nodes.
    assigned_nodes: list[int] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """total_cost / (slots * makespan) in (0, 1]; 1.0 = perfectly balanced."""
        if self.makespan == 0 or not self.per_slot_cost:
            return 1.0
        return self.total_cost / (len(self.per_slot_cost) * self.makespan)

    @property
    def locality_rate(self) -> float:
        """Fraction of tasks that achieved data locality (1.0 when untracked)."""
        if self.n_tasks == 0:
            return 1.0
        return self.n_local_tasks / self.n_tasks


@dataclass(frozen=True)
class PhaseTask:
    """One task entering :meth:`SimulatedCluster.simulate_phase`.

    ``cost`` is the nominal work a healthy attempt charges; ``slowdown``
    inflates the attempt's *runtime* (a straggling container / sick node)
    without changing the work a re-execution or backup would need.
    """

    cost: float
    slowdown: float = 1.0
    preferred_nodes: tuple = ()

    def __post_init__(self):
        if self.cost < 0:
            raise ValueError("task costs must be non-negative")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")


@dataclass(frozen=True)
class SpeculationConfig:
    """Hadoop-style speculative execution knobs.

    A backup attempt launches for any task whose runtime exceeds
    ``lag_threshold`` times the phase's median task runtime, once the median
    runtime has elapsed (the point where the JobTracker can tell the task is
    lagging its peers). First finisher wins; the loser is killed and its
    burned slot time stays on the clock.
    """

    lag_threshold: float = 1.5

    def __post_init__(self):
        if self.lag_threshold <= 1.0:
            raise ValueError(f"lag_threshold must be > 1, got {self.lag_threshold}")


@dataclass(frozen=True)
class ScaleReport:
    """Outcome of one elastic resize of a :class:`SimulatedCluster`.

    ``cold_start`` is the provisioning latency a scale-up charges to the
    flow's simulated makespan (nodes boot in parallel, so it is flat per
    scale-up event, not per node). ``drain_cost`` is the re-replication
    time a decommission drain charges, proportional to the block copies
    moved off the retiring nodes.
    """

    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()
    cold_start: float = 0.0
    drain_cost: float = 0.0
    blocks_moved: int = 0

    @property
    def overhead(self) -> float:
        """Total simulated latency this resize charges to the makespan."""
        return self.cold_start + self.drain_cost


@dataclass
class _Attempt:
    """One execution attempt of a task on a slot (internal bookkeeping)."""

    task: int
    slot: int
    start: float
    end: float
    charge: float
    completes: bool  # whether this attempt currently produces the task's output


class SimulatedCluster:
    """A pool of identical nodes executing task lists phase by phase.

    Parameters
    ----------
    n_nodes:
        Cluster size (the paper sweeps 16 / 32 / 64 on EMR; the lab cluster
        has 5).
    node:
        Per-node slot/heap configuration (default Table 2).
    """

    def __init__(self, n_nodes: int, *, node: NodeConfig = TABLE2_DEFAULTS):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.node = node

    @property
    def map_slots(self) -> int:
        """Total concurrent map tasks the cluster sustains."""
        return self.n_nodes * self.node.map_slots

    @property
    def reduce_slots(self) -> int:
        """Total concurrent reduce tasks the cluster sustains."""
        return self.n_nodes * self.node.reduce_slots

    # -- elasticity ----------------------------------------------------------

    def add_nodes(self, count: int, *, cold_start: float = 0.0) -> ScaleReport:
        """Join ``count`` fresh nodes (ids continue the contiguous range).

        ``cold_start`` is the provisioning latency the scale-up charges to
        the simulated makespan — nodes boot in parallel, so the charge is
        flat per scale-up event. Scheduling decisions made after this call
        see the enlarged slot pool; completed phases are unaffected.
        """
        if count < 1:
            raise ValueError(f"must add at least one node, got {count}")
        if cold_start < 0:
            raise ValueError(f"cold_start must be >= 0, got {cold_start}")
        added = tuple(range(self.n_nodes, self.n_nodes + int(count)))
        self.n_nodes += int(count)
        return ScaleReport(added=added, cold_start=float(cold_start))

    def decommission_nodes(
        self, count: int, *, fs=None, drain_cost_per_block: float = 0.0
    ) -> ScaleReport:
        """Drain and remove the ``count`` highest-numbered nodes.

        The drain protocol runs *between* phases, when no task attempts are
        in flight on the simulated timeline: each retiring node's HDFS
        blocks are re-replicated onto the surviving nodes (via
        ``fs.decommission_nodes`` when a :class:`SimulatedHDFS` is passed)
        before the node leaves, so no split loses all its replicas. The
        re-replication time — ``drain_cost_per_block`` per block copy moved
        — is returned for the caller to charge to the makespan. A node
        killed mid-drain (a :class:`NodeFailurePolicy` kill racing the
        drain) stops serving as a copy *source*, but the blocks already
        re-replicated survive; the filesystem falls back to the remaining
        live replicas for the rest.
        """
        if count < 1:
            raise ValueError(f"must decommission at least one node, got {count}")
        if count >= self.n_nodes:
            raise ValueError(
                f"cannot decommission {count} of {self.n_nodes} nodes: "
                "at least one node must survive"
            )
        if drain_cost_per_block < 0:
            raise ValueError(f"drain_cost_per_block must be >= 0, got {drain_cost_per_block}")
        removed = tuple(range(self.n_nodes - int(count), self.n_nodes))
        blocks_moved = 0
        if fs is not None:
            blocks_moved = fs.decommission_nodes(*removed)
        self.n_nodes -= int(count)
        return ScaleReport(
            removed=removed,
            drain_cost=blocks_moved * float(drain_cost_per_block),
            blocks_moved=blocks_moved,
        )

    def resize(
        self,
        n_nodes: int,
        *,
        fs=None,
        cold_start: float = 0.0,
        drain_cost_per_block: float = 0.0,
    ) -> ScaleReport:
        """Scale the cluster to ``n_nodes``, growing or draining as needed."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if n_nodes > self.n_nodes:
            return self.add_nodes(n_nodes - self.n_nodes, cold_start=cold_start)
        if n_nodes < self.n_nodes:
            return self.decommission_nodes(
                self.n_nodes - n_nodes, fs=fs, drain_cost_per_block=drain_cost_per_block
            )
        return ScaleReport()

    def _emit_phase_event(self, phase: str, stats: "TaskStats") -> None:
        """Attribute the phase's simulated makespan per node in the trace.

        One ``cluster.phase`` event per scheduled phase with the per-node
        cost vector (slot loads folded by owning node) — the raw material
        for the Table-3 makespan attribution in ``trace report``. The event
        also carries the scheduling attribution the trace-analysis plane
        needs: ``max_slot_cost`` (busy time of the most loaded slot — the
        phase's critical path, equal to the makespan on gap-free schedules
        and at most the makespan when faults introduce idle gaps),
        ``n_slots``, and ``task_nodes`` (the node that produced each task's
        surviving output, in task-submission order).
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        per_node = [0.0] * self.n_nodes
        if stats.per_slot_cost:
            slots_per_node = max(1, len(stats.per_slot_cost) // self.n_nodes)
            for slot, cost in enumerate(stats.per_slot_cost):
                per_node[min(slot // slots_per_node, self.n_nodes - 1)] += cost
        tracer.event(
            "cluster.phase",
            phase=phase,
            n_nodes=self.n_nodes,
            n_slots=len(stats.per_slot_cost),
            n_tasks=stats.n_tasks,
            makespan=stats.makespan,
            total_cost=stats.total_cost,
            max_slot_cost=max(stats.per_slot_cost, default=0.0),
            utilization=stats.utilization,
            locality_rate=stats.locality_rate,
            per_node_cost=[round(c, 9) for c in per_node],
            task_nodes=list(stats.assigned_nodes),
            n_node_failures=stats.n_node_failures,
            n_tasks_lost=stats.n_tasks_lost,
            n_map_outputs_lost=stats.n_map_outputs_lost,
            speculative_launched=stats.speculative_launched,
            speculative_won=stats.speculative_won,
            wasted_cost=stats.wasted_cost,
        )

    def schedule(self, costs, *, phase: str = "map") -> TaskStats:
        """LPT-schedule tasks of the given ``costs`` onto the phase's slots.

        Returns the simulated makespan: tasks sorted by decreasing cost are
        greedily placed on the currently least-loaded slot (a 4/3-optimal
        makespan heuristic, and a good model of Hadoop's greedy task
        assignment with speculative balancing).
        """
        if phase not in ("map", "reduce"):
            raise ValueError(f"phase must be 'map' or 'reduce', got {phase!r}")
        costs = [float(c) for c in costs]
        if any(c < 0 for c in costs):
            raise ValueError("task costs must be non-negative")
        per_node = self.node.map_slots if phase == "map" else self.node.reduce_slots
        n_slots = self.n_nodes * per_node
        loads = [0.0] * n_slots
        assigned = [0] * len(costs)
        if costs:
            heap = [(0.0, s) for s in range(n_slots)]
            heapq.heapify(heap)
            for i in sorted(range(len(costs)), key=lambda j: (-costs[j], j)):
                load, slot = heapq.heappop(heap)
                load += costs[i]
                loads[slot] = load
                assigned[i] = slot // per_node
                heapq.heappush(heap, (load, slot))
        stats = TaskStats(
            n_tasks=len(costs),
            total_cost=sum(costs),
            makespan=max(loads) if loads else 0.0,
            per_slot_cost=loads,
            n_local_tasks=len(costs),  # no placement info: all count as local
            assigned_nodes=assigned,
        )
        self._emit_phase_event(phase, stats)
        return stats

    def schedule_with_locality(
        self,
        tasks,
        *,
        phase: str = "map",
        remote_penalty: float = 0.25,
    ) -> TaskStats:
        """LPT scheduling that prefers nodes holding the task's data.

        ``tasks`` is a list of ``(cost, preferred_nodes)`` where
        ``preferred_nodes`` is an iterable of node ids (empty = any node).
        A task placed off its replicas pays ``remote_penalty`` extra cost
        (the network read), exactly the tradeoff Hadoop's scheduler makes.
        A data-local slot is chosen whenever it is no later than the best
        remote slot *including* that penalty.
        """
        if phase not in ("map", "reduce"):
            raise ValueError(f"phase must be 'map' or 'reduce', got {phase!r}")
        if remote_penalty < 0:
            raise ValueError(f"remote_penalty must be >= 0, got {remote_penalty}")
        per_node = self.node.map_slots if phase == "map" else self.node.reduce_slots
        n_slots = self.n_nodes * per_node
        loads = [0.0] * n_slots
        n_local = 0
        total_cost = 0.0
        parsed = []
        for cost, preferred in tasks:
            cost = float(cost)
            if cost < 0:
                raise ValueError("task costs must be non-negative")
            preferred = frozenset(int(p) % self.n_nodes for p in (preferred or ()))
            parsed.append((cost, preferred))
        assigned = [0] * len(parsed)
        for i in sorted(range(len(parsed)), key=lambda j: (-parsed[j][0], j)):
            cost, preferred = parsed[i]
            best_local = None
            best_remote = None
            for slot in range(n_slots):
                node = slot // per_node
                if preferred and node in preferred:
                    if best_local is None or loads[slot] < loads[best_local]:
                        best_local = slot
                else:
                    if best_remote is None or loads[slot] < loads[best_remote]:
                        best_remote = slot
            remote_cost = cost * (1.0 + remote_penalty) if preferred else cost
            use_local = best_local is not None and (
                best_remote is None or loads[best_local] + cost <= loads[best_remote] + remote_cost
            )
            if use_local:
                loads[best_local] += cost
                total_cost += cost
                n_local += 1
                assigned[i] = best_local // per_node
            else:
                loads[best_remote] += remote_cost
                total_cost += remote_cost
                assigned[i] = best_remote // per_node
                if not preferred:
                    n_local += 1  # no placement constraint: counts as local
        stats = TaskStats(
            n_tasks=len(parsed),
            total_cost=total_cost,
            makespan=max(loads) if loads else 0.0,
            per_slot_cost=loads,
            n_local_tasks=n_local,
            assigned_nodes=assigned,
        )
        self._emit_phase_event(phase, stats)
        return stats

    # -- fault-aware phase simulation ---------------------------------------

    def simulate_phase(
        self,
        tasks,
        *,
        phase: str = "map",
        node_failures=(),
        speculation: SpeculationConfig | None = None,
        remote_penalty: float = 0.25,
    ) -> TaskStats:
        """Run one phase under node preemption, stragglers, and speculation.

        ``tasks`` is a list of :class:`PhaseTask` (or ``(cost, slowdown,
        preferred_nodes)`` tuples). ``node_failures`` is a list of
        ``(node_id, time_fraction)`` kills: the node is preempted at
        ``time_fraction`` of the phase's fault-free makespan, taking down
        its in-flight attempts and — Hadoop map-output semantics — any map
        outputs it was holding; reduce outputs are already on the DFS and
        survive. Lost work is re-placed on the surviving nodes and
        re-charged to the clock. ``speculation`` races stragglers with a
        backup attempt at nominal speed; first finisher wins.

        Because task *results* are computed deterministically by the engine,
        everything here is pure cost/latency accounting — the invariant the
        fault-tolerance tests assert is that outputs never change, only the
        makespan and the fault counters do.
        """
        if phase not in ("map", "reduce"):
            raise ValueError(f"phase must be 'map' or 'reduce', got {phase!r}")
        if remote_penalty < 0:
            raise ValueError(f"remote_penalty must be >= 0, got {remote_penalty}")
        per_node = self.node.map_slots if phase == "map" else self.node.reduce_slots
        n_slots = self.n_nodes * per_node
        parsed: list[PhaseTask] = []
        for t in tasks:
            if not isinstance(t, PhaseTask):
                t = PhaseTask(*t)
            parsed.append(
                PhaseTask(
                    cost=float(t.cost),
                    slowdown=float(t.slowdown),
                    preferred_nodes=tuple(int(p) % self.n_nodes for p in (t.preferred_nodes or ())),
                )
            )
        n_tasks = len(parsed)
        tracer = get_tracer()
        stats = TaskStats(n_tasks=n_tasks, total_cost=0.0, makespan=0.0)
        free = [0.0] * n_slots
        slot_charge = [0.0] * n_slots
        attempts: list[_Attempt] = []
        completion = [0.0] * n_tasks

        def node_of(slot: int) -> int:
            return slot // per_node

        def charge(a: _Attempt, amount: float) -> None:
            a.charge = amount
            slot_charge[a.slot] += amount

        durations = [t.cost * t.slowdown for t in parsed]
        median = sorted(durations)[n_tasks // 2] if n_tasks else 0.0

        # -- pass 1: LPT placement (locality-aware) + speculative backups ----
        n_local = 0
        order = sorted(range(n_tasks), key=lambda i: (-durations[i], i))
        for i in order:
            task = parsed[i]
            preferred = frozenset(task.preferred_nodes)
            best_local = best_remote = None
            for slot in range(n_slots):
                if preferred and node_of(slot) in preferred:
                    if best_local is None or free[slot] < free[best_local]:
                        best_local = slot
                else:
                    if best_remote is None or free[slot] < free[best_remote]:
                        best_remote = slot
            run_cost = task.cost * (1.0 + remote_penalty) if preferred else task.cost
            use_local = best_local is not None and (
                best_remote is None
                or free[best_local] + task.cost * task.slowdown
                <= free[best_remote] + run_cost * task.slowdown
            )
            if use_local or not preferred:
                n_local += 1
            slot = best_local if use_local else best_remote
            eff_cost = task.cost if use_local else run_cost
            dur = eff_cost * task.slowdown
            a = _Attempt(task=i, slot=slot, start=free[slot], end=free[slot] + dur,
                         charge=0.0, completes=True)
            charge(a, eff_cost)
            free[slot] = a.end
            attempts.append(a)
            completion[i] = a.end

            if (
                speculation is not None
                and median > 0
                and dur > speculation.lag_threshold * median
                and task.slowdown > 1.0
            ):
                # The task is visibly lagging once the median runtime has
                # elapsed: launch a backup on the least-loaded slot of
                # another node, running at nominal speed.
                detect = a.start + median
                backup_slot = None
                for slot2 in range(n_slots):
                    if node_of(slot2) == node_of(a.slot):
                        continue
                    if backup_slot is None or free[slot2] < free[backup_slot]:
                        backup_slot = slot2
                if backup_slot is None:
                    continue  # single-node cluster: nowhere to speculate
                b_start = max(free[backup_slot], detect)
                b_end = b_start + task.cost
                if b_start >= a.end:
                    continue  # original finishes before the backup could start
                stats.speculative_launched += 1
                if b_end < a.end:
                    # Backup wins; the original is killed at the backup's finish.
                    stats.speculative_won += 1
                    b = _Attempt(task=i, slot=backup_slot, start=b_start, end=b_end,
                                 charge=0.0, completes=True)
                    charge(b, task.cost)
                    free[backup_slot] = b_end
                    attempts.append(b)
                    a.completes = False
                    burned = max(0.0, b_end - a.start)
                    slot_charge[a.slot] += burned - a.charge
                    stats.wasted_cost += burned
                    a.charge = burned
                    a.end = b_end
                    free[a.slot] = b_end
                    completion[i] = b_end
                    if tracer.enabled:
                        tracer.event(
                            "fault.speculation",
                            phase=phase, task=i, won=True,
                            slowdown=task.slowdown, wasted_cost=burned,
                        )
                else:
                    # Backup loses; it is killed when the original finishes.
                    burned = a.end - b_start
                    b = _Attempt(task=i, slot=backup_slot, start=b_start, end=a.end,
                                 charge=0.0, completes=False)
                    charge(b, burned)
                    stats.wasted_cost += burned
                    free[backup_slot] = a.end
                    attempts.append(b)
                    if tracer.enabled:
                        tracer.event(
                            "fault.speculation",
                            phase=phase, task=i, won=False,
                            slowdown=task.slowdown, wasted_cost=burned,
                        )

        # -- pass 2: node preemption, time-ordered --------------------------
        dead: set[int] = set()
        base_span = max(completion) if n_tasks else 0.0
        kills = sorted(
            ((int(node) % self.n_nodes, float(frac)) for node, frac in node_failures),
            key=lambda kv: kv[1],
        )
        for node, frac in kills:
            if not 0.0 < frac <= 1.0:
                raise ValueError(f"kill time fraction must be in (0, 1], got {frac}")
            if node in dead:
                continue
            if len(dead) + 1 >= self.n_nodes:
                break  # never preempt the last surviving node
            t_kill = frac * base_span
            dead.add(node)
            stats.n_node_failures += 1
            wasted_before = stats.wasted_cost
            tasks_lost_before = stats.n_tasks_lost
            outputs_lost_before = stats.n_map_outputs_lost
            lost: list[int] = []
            for a in attempts:
                if node_of(a.slot) != node:
                    continue
                if a.end > t_kill:
                    # In-flight (or queued) when the node went away.
                    burned = max(0.0, t_kill - a.start)
                    slot_charge[a.slot] += burned - a.charge
                    stats.wasted_cost += burned
                    a.charge = burned
                    a.end = min(a.end, max(a.start, t_kill))
                    if a.completes:
                        a.completes = False
                        lost.append(a.task)
                        stats.n_tasks_lost += 1
                elif a.completes and phase == "map":
                    # Completed, but its map output lived on the dead node.
                    a.completes = False
                    lost.append(a.task)
                    stats.n_map_outputs_lost += 1
                    stats.wasted_cost += a.charge
            alive_slots = [s for s in range(n_slots) if node_of(s) not in dead]
            for i in sorted(set(lost), key=lambda j: (-parsed[j].cost, j)):
                task = parsed[i]
                preferred = frozenset(task.preferred_nodes) - dead
                slot = min(alive_slots, key=lambda s: (max(free[s], t_kill), s))
                re_cost = (
                    task.cost
                    if not preferred or node_of(slot) in preferred
                    else task.cost * (1.0 + remote_penalty)
                )
                start = max(free[slot], t_kill)
                a = _Attempt(task=i, slot=slot, start=start, end=start + re_cost,
                             charge=0.0, completes=True)
                charge(a, re_cost)
                free[slot] = a.end
                attempts.append(a)
                completion[i] = a.end
            if tracer.enabled:
                tracer.event(
                    "fault.node_failure",
                    phase=phase,
                    node=node,
                    kill_time=t_kill,
                    tasks_lost=stats.n_tasks_lost - tasks_lost_before,
                    map_outputs_lost=stats.n_map_outputs_lost - outputs_lost_before,
                    wasted_cost=stats.wasted_cost - wasted_before,
                )

        stats.total_cost = sum(slot_charge)
        stats.makespan = max(completion) if n_tasks else 0.0
        stats.per_slot_cost = slot_charge
        stats.n_local_tasks = n_local
        # The surviving (completing) attempt determines which node each
        # task's output came from — speculation wins and post-kill
        # re-placements override the original placement.
        assigned = [0] * n_tasks
        for a in attempts:
            if a.completes:
                assigned[a.task] = node_of(a.slot)
        stats.assigned_nodes = assigned
        self._emit_phase_event(phase, stats)
        return stats
