"""Simulated cluster: nodes, slots, and the makespan cost model.

The paper's elasticity result (Table 3) is a *scheduling* property: DASC's
buckets are independent work items, so doubling the node count roughly
halves the wall clock while memory per node and accuracy stay flat. This
module reproduces that mechanism: tasks carry abstract costs, nodes expose
map/reduce slots (Table 2: 4 map + 2 reduce per tasktracker), and a
longest-processing-time (LPT) list scheduler assigns tasks to slots. The
simulated makespan is the maximum finishing time over slots.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["NodeConfig", "EMR_NODE_CONFIG", "TABLE2_DEFAULTS", "TaskStats", "SimulatedCluster"]


@dataclass(frozen=True)
class NodeConfig:
    """Per-node resources, mirroring the paper's Table 2 Hadoop settings."""

    map_slots: int = 4  # "Maximum map tasks in tasktracker"
    reduce_slots: int = 2  # "Maximum reduce tasks in tasktracker"
    memory_mb: int = 1700  # EMR instance memory (Section 5.1)
    jobtracker_heap_mb: int = 768
    namenode_heap_mb: int = 256
    tasktracker_heap_mb: int = 512
    datanode_heap_mb: int = 256
    replication: int = 3

    def __post_init__(self):
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ValueError("nodes need at least one map and one reduce slot")


#: Table 2 verbatim: the Elastic MapReduce cluster configuration.
TABLE2_DEFAULTS = NodeConfig()

#: Alias used by the EMR service layer.
EMR_NODE_CONFIG = TABLE2_DEFAULTS


@dataclass
class TaskStats:
    """Scheduling outcome of one phase on the simulated cluster."""

    n_tasks: int
    total_cost: float
    makespan: float
    per_slot_cost: list[float] = field(default_factory=list)
    n_local_tasks: int = 0  # tasks that ran on a node holding their data

    @property
    def utilization(self) -> float:
        """total_cost / (slots * makespan) in (0, 1]; 1.0 = perfectly balanced."""
        if self.makespan == 0 or not self.per_slot_cost:
            return 1.0
        return self.total_cost / (len(self.per_slot_cost) * self.makespan)

    @property
    def locality_rate(self) -> float:
        """Fraction of tasks that achieved data locality (1.0 when untracked)."""
        if self.n_tasks == 0:
            return 1.0
        return self.n_local_tasks / self.n_tasks


class SimulatedCluster:
    """A pool of identical nodes executing task lists phase by phase.

    Parameters
    ----------
    n_nodes:
        Cluster size (the paper sweeps 16 / 32 / 64 on EMR; the lab cluster
        has 5).
    node:
        Per-node slot/heap configuration (default Table 2).
    """

    def __init__(self, n_nodes: int, *, node: NodeConfig = TABLE2_DEFAULTS):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.node = node

    @property
    def map_slots(self) -> int:
        """Total concurrent map tasks the cluster sustains."""
        return self.n_nodes * self.node.map_slots

    @property
    def reduce_slots(self) -> int:
        """Total concurrent reduce tasks the cluster sustains."""
        return self.n_nodes * self.node.reduce_slots

    def schedule(self, costs, *, phase: str = "map") -> TaskStats:
        """LPT-schedule tasks of the given ``costs`` onto the phase's slots.

        Returns the simulated makespan: tasks sorted by decreasing cost are
        greedily placed on the currently least-loaded slot (a 4/3-optimal
        makespan heuristic, and a good model of Hadoop's greedy task
        assignment with speculative balancing).
        """
        if phase not in ("map", "reduce"):
            raise ValueError(f"phase must be 'map' or 'reduce', got {phase!r}")
        costs = [float(c) for c in costs]
        if any(c < 0 for c in costs):
            raise ValueError("task costs must be non-negative")
        n_slots = self.map_slots if phase == "map" else self.reduce_slots
        loads = [0.0] * n_slots
        if costs:
            heap = [(0.0, s) for s in range(n_slots)]
            heapq.heapify(heap)
            for cost in sorted(costs, reverse=True):
                load, slot = heapq.heappop(heap)
                load += cost
                loads[slot] = load
                heapq.heappush(heap, (load, slot))
        return TaskStats(
            n_tasks=len(costs),
            total_cost=sum(costs),
            makespan=max(loads) if loads else 0.0,
            per_slot_cost=loads,
            n_local_tasks=len(costs),  # no placement info: all count as local
        )

    def schedule_with_locality(
        self,
        tasks,
        *,
        phase: str = "map",
        remote_penalty: float = 0.25,
    ) -> TaskStats:
        """LPT scheduling that prefers nodes holding the task's data.

        ``tasks`` is a list of ``(cost, preferred_nodes)`` where
        ``preferred_nodes`` is an iterable of node ids (empty = any node).
        A task placed off its replicas pays ``remote_penalty`` extra cost
        (the network read), exactly the tradeoff Hadoop's scheduler makes.
        A data-local slot is chosen whenever it is no later than the best
        remote slot *including* that penalty.
        """
        if phase not in ("map", "reduce"):
            raise ValueError(f"phase must be 'map' or 'reduce', got {phase!r}")
        if remote_penalty < 0:
            raise ValueError(f"remote_penalty must be >= 0, got {remote_penalty}")
        per_node = self.node.map_slots if phase == "map" else self.node.reduce_slots
        n_slots = self.n_nodes * per_node
        loads = [0.0] * n_slots
        n_local = 0
        total_cost = 0.0
        parsed = []
        for cost, preferred in tasks:
            cost = float(cost)
            if cost < 0:
                raise ValueError("task costs must be non-negative")
            preferred = frozenset(int(p) % self.n_nodes for p in (preferred or ()))
            parsed.append((cost, preferred))
        for cost, preferred in sorted(parsed, key=lambda t: -t[0]):
            best_local = None
            best_remote = None
            for slot in range(n_slots):
                node = slot // per_node
                if preferred and node in preferred:
                    if best_local is None or loads[slot] < loads[best_local]:
                        best_local = slot
                else:
                    if best_remote is None or loads[slot] < loads[best_remote]:
                        best_remote = slot
            remote_cost = cost * (1.0 + remote_penalty) if preferred else cost
            use_local = best_local is not None and (
                best_remote is None or loads[best_local] + cost <= loads[best_remote] + remote_cost
            )
            if use_local:
                loads[best_local] += cost
                total_cost += cost
                n_local += 1
            else:
                loads[best_remote] += remote_cost
                total_cost += remote_cost
                if not preferred:
                    n_local += 1  # no placement constraint: counts as local
        return TaskStats(
            n_tasks=len(parsed),
            total_cost=total_cost,
            makespan=max(loads) if loads else 0.0,
            per_slot_cost=loads,
            n_local_tasks=n_local,
        )
