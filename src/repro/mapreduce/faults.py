"""Fault injection: task failures, node preemption, stragglers, speculation.

Hadoop's reliability story — the reason the paper can run 78-hour jobs on
rented nodes — has three mechanisms, all modelled here against the
simulated engine:

* **task re-execution** — any failed task attempt is simply re-run (same
  input split, same deterministic function) up to ``mapred.map.max.attempts``
  times: :class:`FaultPolicy`;
* **node-failure recovery** — a preempted node (spot instance reclaim) loses
  its in-flight attempts *and* the map outputs it held, which the scheduler
  re-places on surviving nodes and re-charges to the clock:
  :class:`NodeFailurePolicy`;
* **speculative execution** — tasks lagging the phase median (sick nodes,
  hot disks) are raced by a backup attempt; first finisher wins:
  :class:`StragglerPolicy`.

:class:`FaultyEngine` combines all three on top of
:class:`~repro.mapreduce.engine.MapReduceEngine`. Because tasks are
deterministic functions of their input splits, *outputs never change* under
any failure schedule that stays below the attempt cap — only the simulated
makespan and the ``faults`` counter group do. The chaos test-suite asserts
exactly this equivalence.

The *storage* plane has the same treatment in
:mod:`repro.mapreduce.storage`: :class:`StorageFaultPolicy` /
:class:`ChaosStore` inject throttling, torn writes, bit flips, and read
outages in front of any object store, and the hardened
:class:`~repro.mapreduce.storage.ResilientStore` client absorbs every
survivable schedule. Both are re-exported here so one import covers the
full chaos vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.cluster import PhaseTask, SimulatedCluster, SpeculationConfig
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import MapReduceEngine, MapTaskResult, TaskContext
from repro.mapreduce.storage import ChaosStore, StorageFaultPolicy
from repro.mapreduce.types import JobSpec
from repro.observability import get_tracer
from repro.utils.rng import as_rng

__all__ = [
    "FaultPolicy",
    "NodeFailurePolicy",
    "StragglerPolicy",
    "FaultyEngine",
    "TaskFailedError",
    "StorageFaultPolicy",
    "ChaosStore",
]


class TaskFailedError(RuntimeError):
    """Raised when a task exhausts its attempts.

    The engine attaches the job's partial :class:`Counters` as a
    ``counters`` attribute before the error leaves ``run()``.
    """


@dataclass
class FaultPolicy:
    """Deterministic per-attempt task-failure schedule.

    Parameters
    ----------
    failure_rate:
        Probability that any given task *attempt* fails.
    max_attempts:
        Attempts per task before the job is failed (Hadoop default 4).
    seed:
        Randomness for the failure draws (deterministic per engine run).
    """

    failure_rate: float = 0.0
    max_attempts: int = 4
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {self.failure_rate}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def make_oracle(self):
        """A fresh callable ``() -> bool`` deciding whether an attempt fails."""
        rng = as_rng(self.seed)
        rate = self.failure_rate

        def attempt_fails() -> bool:
            return bool(rng.random() < rate) if rate > 0 else False

        return attempt_fails


@dataclass
class NodeFailurePolicy:
    """Deterministic node-preemption schedule (spot-instance reclaims).

    Parameters
    ----------
    rate:
        Per-phase probability that each node is preempted during the phase.
    kills:
        Explicit schedule entries ``(phase_index, node_id, time_fraction)``
        — the node dies at ``time_fraction`` of that phase's fault-free
        makespan. Phase indices count every scheduled phase of the engine
        (job 0 map = 0, job 0 reduce = 1, job 1 map = 2, ...).
    min_survivors:
        Nodes that must stay alive; random draws are trimmed to respect it
        (the simulator additionally refuses to kill the last node).
    seed:
        Randomness for the preemption draws.
    """

    rate: float = 0.0
    kills: tuple = ()
    min_survivors: int = 1
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        if self.min_survivors < 1:
            raise ValueError(f"min_survivors must be >= 1, got {self.min_survivors}")
        for entry in self.kills:
            if len(entry) != 3:
                raise ValueError(f"kills entries are (phase, node, fraction), got {entry!r}")

    def make_oracle(self):
        """A fresh callable ``(phase_index, n_nodes) -> [(node, fraction)]``."""
        rng = as_rng(self.seed)

        def draw(phase_index: int, n_nodes: int) -> list[tuple[int, float]]:
            out = [
                (int(node) % n_nodes, float(frac))
                for phase, node, frac in self.kills
                if int(phase) == phase_index
            ]
            if self.rate > 0:
                for node in range(n_nodes):
                    if rng.random() < self.rate:
                        out.append((node, float(min(max(rng.random(), 1e-9), 1.0))))
            max_kills = max(0, n_nodes - self.min_survivors)
            return out[:max_kills]

        return draw


@dataclass
class StragglerPolicy:
    """Deterministic straggler (slow-task) injection + speculation knobs.

    Parameters
    ----------
    rate:
        Probability that any given task runs slowed-down.
    slowdown:
        ``(low, high)`` multiplier range for a straggling task's runtime.
    speculation:
        Launch Hadoop-style backup attempts for lagging tasks.
    lag_threshold:
        Runtime multiple of the phase median that marks a task as lagging.
    seed:
        Randomness for the slowdown draws.
    """

    rate: float = 0.0
    slowdown: tuple = (2.0, 6.0)
    speculation: bool = True
    lag_threshold: float = 1.5
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        low, high = self.slowdown
        if not 1.0 <= low <= high:
            raise ValueError(f"slowdown range must satisfy 1 <= low <= high, got {self.slowdown}")

    def make_oracle(self):
        """A fresh callable ``() -> float`` drawing a task's slowdown factor."""
        rng = as_rng(self.seed)
        low, high = self.slowdown

        def draw() -> float:
            if self.rate > 0 and rng.random() < self.rate:
                return float(low + (high - low) * rng.random())
            return 1.0

        return draw

    def speculation_config(self) -> SpeculationConfig | None:
        return SpeculationConfig(lag_threshold=self.lag_threshold) if self.speculation else None


class FaultyEngine(MapReduceEngine):
    """MapReduce engine with task, node, and straggler fault injection.

    Because tasks are deterministic functions of their input split, re-
    execution yields byte-identical results, so any job's *output* under a
    FaultyEngine equals its output under the plain engine — only the cost
    accounting (attempts, simulated time, ``faults`` counters) differs.

    Parameters
    ----------
    cluster:
        The simulated cluster to schedule on.
    policy:
        Per-attempt task failures (:class:`FaultPolicy`).
    node_policy:
        Whole-node preemptions (:class:`NodeFailurePolicy`).
    straggler_policy:
        Slow tasks and speculative backups (:class:`StragglerPolicy`).
    """

    def __init__(
        self,
        cluster: SimulatedCluster | None = None,
        *,
        policy: FaultPolicy | None = None,
        node_policy: NodeFailurePolicy | None = None,
        straggler_policy: StragglerPolicy | None = None,
        executor=None,
    ):
        # The executor is accepted for interface parity but task attempts
        # always run in-process: retries mutate scratch counters and the
        # per-attempt fault oracles draw from shared sequential RNG state,
        # both inherently single-process. The base engine's override guard
        # keeps this class on the serial path automatically.
        super().__init__(cluster, executor=executor)
        self.policy = policy if policy is not None else FaultPolicy()
        self.node_policy = node_policy if node_policy is not None else NodeFailurePolicy()
        self.straggler_policy = (
            straggler_policy if straggler_policy is not None else StragglerPolicy()
        )
        self._attempt_fails = self.policy.make_oracle()
        self._draw_kills = self.node_policy.make_oracle()
        self._draw_slowdown = self.straggler_policy.make_oracle()
        self._phase_index = 0

    # -- task attempts -------------------------------------------------------

    def _run_map_task(self, job: JobSpec, records, ctx: TaskContext) -> MapTaskResult:
        tracer = get_tracer()
        wasted_cost = 0.0
        for attempt in range(1, self.policy.max_attempts + 1):
            # Attempts run against scratch counters so retries cannot inflate
            # the job's real record counters: only the winning attempt's
            # deltas are merged, and only the faults group grows on failures.
            trial = TaskContext(job=job, counters=Counters(), task_id=ctx.task_id)
            result = super()._run_map_task(job, records, trial)
            if not self._attempt_fails():
                ctx.counters.merge(trial.counters)
                result.cost += wasted_cost  # lost attempts still burned slots
                if attempt > 1:
                    ctx.counters.increment("faults", "map_retries", attempt - 1)
                return result
            # Attempt failed after doing the work: discard output, retry.
            wasted_cost += result.cost
            ctx.counters.increment("faults", "map_failures")
            if tracer.enabled:
                tracer.event(
                    "fault.map_retry",
                    task=ctx.task_id, attempt=attempt, wasted_cost=result.cost,
                )
        tracer.event(
            "fault.task_exhausted",
            task=ctx.task_id, attempts=self.policy.max_attempts, wasted_cost=wasted_cost,
        )
        raise TaskFailedError(
            f"map task {ctx.task_id} failed {self.policy.max_attempts} attempts"
        )

    def _run_reduce_task(self, job: JobSpec, records, ctx: TaskContext):
        tracer = get_tracer()
        wasted_cost = 0.0
        for attempt in range(1, self.policy.max_attempts + 1):
            trial = TaskContext(job=job, counters=Counters(), task_id=ctx.task_id)
            out, cost = super()._run_reduce_task(job, records, trial)
            if not self._attempt_fails():
                ctx.counters.merge(trial.counters)
                if attempt > 1:
                    ctx.counters.increment("faults", "reduce_retries", attempt - 1)
                return out, cost + wasted_cost
            wasted_cost += cost
            ctx.counters.increment("faults", "reduce_failures")
            if tracer.enabled:
                tracer.event(
                    "fault.reduce_retry",
                    task=ctx.task_id, attempt=attempt, wasted_cost=cost,
                )
        tracer.event(
            "fault.task_exhausted",
            task=ctx.task_id, attempts=self.policy.max_attempts, wasted_cost=wasted_cost,
        )
        raise TaskFailedError(
            f"reduce task {ctx.task_id} failed {self.policy.max_attempts} attempts"
        )

    # -- phase scheduling ----------------------------------------------------

    def _simulate(self, tasks: list[PhaseTask], phase: str, counters: Counters):
        phase_index = self._phase_index
        self._phase_index += 1
        kills = self._draw_kills(phase_index, self.cluster.n_nodes)
        stats = self.cluster.simulate_phase(
            tasks,
            phase=phase,
            node_failures=kills,
            speculation=self.straggler_policy.speculation_config(),
        )
        if stats.n_node_failures:
            counters.increment("faults", "node_failures", stats.n_node_failures)
        if stats.n_tasks_lost:
            counters.increment("faults", "tasks_lost_to_node_failure", stats.n_tasks_lost)
        if stats.n_map_outputs_lost:
            counters.increment("faults", "map_outputs_lost", stats.n_map_outputs_lost)
        if stats.speculative_launched:
            counters.increment("faults", "speculative_launched", stats.speculative_launched)
        if stats.speculative_won:
            counters.increment("faults", "speculative_won", stats.speculative_won)
        return stats

    def _schedule_map_phase(self, map_results, placements, counters: Counters):
        tasks = [
            PhaseTask(cost=r.cost, slowdown=self._draw_slowdown(), preferred_nodes=tuple(p))
            for r, p in zip(map_results, placements)
        ]
        return self._simulate(tasks, "map", counters)

    def _schedule_reduce_phase(self, reduce_costs, counters: Counters):
        tasks = [PhaseTask(cost=float(c), slowdown=self._draw_slowdown()) for c in reduce_costs]
        return self._simulate(tasks, "reduce", counters)
