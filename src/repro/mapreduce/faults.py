"""Fault injection and task re-execution.

Hadoop's reliability story — the reason the paper can run 78-hour jobs on
rented nodes — is that any failed task is simply re-executed (same input
split, same deterministic function), up to ``mapred.map.max.attempts``
times. This module adds that behaviour to the simulated engine:

* :class:`FaultPolicy` — deterministic pseudo-random task failures with a
  configurable rate and per-task attempt cap,
* :class:`FaultyEngine` — a :class:`~repro.mapreduce.engine.MapReduceEngine`
  that consults the policy before each task attempt, re-executes failures,
  charges every attempt's cost to the simulated clock, and counts attempts
  in the job counters.

Failures are injected *between* task attempts (the task's work is lost and
redone), which models the dominant Hadoop failure mode — lost containers /
preempted spot nodes — without modelling partial output corruption (Hadoop
discards partial task output atomically, so it is invisible to jobs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import MapReduceEngine, MapTaskResult, TaskContext
from repro.mapreduce.types import JobSpec
from repro.utils.rng import as_rng

__all__ = ["FaultPolicy", "FaultyEngine", "TaskFailedError"]


class TaskFailedError(RuntimeError):
    """Raised when a task exhausts its attempts."""


@dataclass
class FaultPolicy:
    """Deterministic failure schedule.

    Parameters
    ----------
    failure_rate:
        Probability that any given task *attempt* fails.
    max_attempts:
        Attempts per task before the job is failed (Hadoop default 4).
    seed:
        Randomness for the failure draws (deterministic per engine run).
    """

    failure_rate: float = 0.0
    max_attempts: int = 4
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(f"failure_rate must be in [0, 1), got {self.failure_rate}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def make_oracle(self):
        """A fresh callable ``() -> bool`` deciding whether an attempt fails."""
        rng = as_rng(self.seed)
        rate = self.failure_rate

        def attempt_fails() -> bool:
            return bool(rng.random() < rate) if rate > 0 else False

        return attempt_fails


class FaultyEngine(MapReduceEngine):
    """MapReduce engine with task-failure injection and re-execution.

    Because tasks are deterministic functions of their input split, re-
    execution yields byte-identical results, so any job's *output* under a
    FaultyEngine equals its output under the plain engine — only the cost
    accounting (attempts, simulated time) differs. The test-suite asserts
    exactly this equivalence.
    """

    def __init__(self, cluster: SimulatedCluster | None = None, *, policy: FaultPolicy | None = None):
        super().__init__(cluster)
        self.policy = policy if policy is not None else FaultPolicy()
        self._attempt_fails = self.policy.make_oracle()

    def _run_map_task(self, job: JobSpec, records, ctx: TaskContext) -> MapTaskResult:
        wasted_cost = 0.0
        for attempt in range(1, self.policy.max_attempts + 1):
            result = super()._run_map_task(job, records, ctx)
            if not self._attempt_fails():
                result.cost += wasted_cost  # lost attempts still burned slots
                if attempt > 1:
                    ctx.counters.increment("faults", "map_retries", attempt - 1)
                return result
            # Attempt failed after doing the work: discard output, retry.
            wasted_cost += result.cost
            ctx.counters.increment("faults", "map_failures")
        raise TaskFailedError(
            f"map task {ctx.task_id} failed {self.policy.max_attempts} attempts"
        )

    def _run_reduce_task(self, job: JobSpec, records, ctx: TaskContext):
        wasted_cost = 0.0
        for attempt in range(1, self.policy.max_attempts + 1):
            out, cost = super()._run_reduce_task(job, records, ctx)
            if not self._attempt_fails():
                if attempt > 1:
                    ctx.counters.increment("faults", "reduce_retries", attempt - 1)
                return out, cost + wasted_cost
            wasted_cost += cost
            ctx.counters.increment("faults", "reduce_failures")
        raise TaskFailedError(
            f"reduce task {ctx.task_id} failed {self.policy.max_attempts} attempts"
        )
