"""Core MapReduce data types.

A *mapper* is a callable ``(key, value, context) -> iterable[(k2, v2)]``; a
*reducer* is ``(key, values, context) -> iterable[(k3, v3)]``. ``context``
exposes Hadoop-style counters. A :class:`JobSpec` bundles the callables with
shuffle policy (partitioner, comparator, combiner) — enough surface to
express the paper's Algorithms 1 and 2 idiomatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = ["KeyValue", "MapTaskResult", "JobSpec"]


@dataclass(frozen=True)
class KeyValue:
    """One keyed record flowing through a MapReduce stage."""

    key: Any
    value: Any

    def as_tuple(self) -> tuple:
        return (self.key, self.value)


@dataclass
class MapTaskResult:
    """Output of one map task: emitted records plus cost accounting."""

    records: list[tuple]
    n_input_records: int
    cost: float  # abstract work units consumed (drives the simulated clock)


@dataclass
class JobSpec:
    """A single MapReduce job definition.

    Parameters
    ----------
    name:
        Human-readable job name (shows up in counters and logs).
    mapper:
        ``(key, value, context) -> iterable[(k, v)]``.
    reducer:
        ``(key, values, context) -> iterable[(k, v)]``. ``None`` makes the
        job map-only (identity shuffle, records pass through).
    combiner:
        Optional map-side pre-reducer with the reducer signature.
    partitioner:
        ``(key, n_partitions) -> int``; default hash partitioning.
    n_reducers:
        Number of reduce partitions.
    sort_keys:
        Sort each partition's keys before reducing (Hadoop semantics).
    map_cost / reduce_cost:
        Optional cost models ``(key, value) -> float`` and
        ``(key, values) -> float`` feeding the simulated clock; default cost
        is one unit per record.
    """

    name: str
    mapper: Callable[[Any, Any, Any], Iterable[tuple]]
    reducer: Callable[[Any, Any, Any], Iterable[tuple]] | None = None
    combiner: Callable[[Any, Any, Any], Iterable[tuple]] | None = None
    partitioner: Callable[[Any, int], int] | None = None
    n_reducers: int = 1
    sort_keys: bool = True
    map_cost: Callable[[Any, Any], float] | None = None
    reduce_cost: Callable[[Any, Any], float] | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.n_reducers < 1:
            raise ValueError(f"n_reducers must be >= 1, got {self.n_reducers}")
