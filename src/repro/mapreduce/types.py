"""Core MapReduce data types.

A *mapper* is a callable ``(key, value, context) -> iterable[(k2, v2)]``; a
*reducer* is ``(key, values, context) -> iterable[(k3, v3)]``. ``context``
exposes Hadoop-style counters. A :class:`JobSpec` bundles the callables with
shuffle policy (partitioner, comparator, combiner) — enough surface to
express the paper's Algorithms 1 and 2 idiomatically.

Batched data plane
------------------
:class:`RecordBatch` is the columnar twin of a list of ``(key, value)``
tuples: one 1-D ``keys`` array plus aligned value columns (a single array
whose leading axis is the record axis, or a tuple of such columns — row
``i``'s value is then a tuple). A JobSpec may additionally carry
``batch_mapper`` / ``batch_reducer`` / ``batch_partitioner`` callables that
consume and emit whole batches; the engine uses them when every input split
is (convertible to) a batch and falls back to the record-at-a-time
callables otherwise. The record path stays the semantic reference: a
batched operator must emit exactly the records its per-record twin would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

__all__ = ["KeyValue", "RecordBatch", "MapTaskResult", "JobSpec"]


@dataclass(frozen=True)
class KeyValue:
    """One keyed record flowing through a MapReduce stage."""

    key: Any
    value: Any

    def as_tuple(self) -> tuple:
        return (self.key, self.value)


def _check_columns(values, n: int) -> None:
    if isinstance(values, tuple):
        for col in values:
            _check_columns(col, n)
        return
    if not isinstance(values, np.ndarray):
        raise TypeError(
            f"value columns must be numpy arrays or tuples of them, got {type(values).__name__}"
        )
    if values.ndim < 1 or values.shape[0] != n:
        raise ValueError(
            f"value column of shape {values.shape} does not align with {n} keys"
        )


def _take_columns(values, indices):
    if isinstance(values, tuple):
        return tuple(_take_columns(col, indices) for col in values)
    return values[indices]


def _row_bytes(column) -> int:
    """What one row of this column costs under ``approx_bytes``.

    A 1-D column's row is a numpy scalar (``nbytes`` = itemsize); a k-D
    column's row is an array; a tuple of columns yields a tuple row with the
    list/tuple per-slot overhead. Matches the record path exactly for 8-byte
    dtypes (the engine's scalar estimate is one machine word).
    """
    if isinstance(column, tuple):
        return 8 * len(column) + sum(_row_bytes(col) for col in column)
    n_inner = 1
    for s in column.shape[1:]:
        n_inner *= int(s)
    return int(column.dtype.itemsize) * n_inner


def _iter_rows(values):
    if isinstance(values, tuple):
        return zip(*(_iter_rows(col) for col in values))
    return iter(values)


def _build_column(items: list):
    """Infer one column from a list of per-record objects (or raise).

    Conservative by design: anything ambiguous (mixed types, ragged arrays,
    object dtypes, non-8-byte scalars) raises so the engine falls back to
    the record path instead of silently changing record semantics.
    """
    first = items[0]
    if isinstance(first, tuple):
        width = len(first)
        if any(not isinstance(it, tuple) or len(it) != width for it in items):
            raise TypeError("mixed tuple shapes")
        return tuple(_build_column([it[i] for it in items]) for i in range(width))
    if isinstance(first, np.ndarray):
        if any(
            not isinstance(it, np.ndarray)
            or it.shape != first.shape
            or it.dtype != first.dtype
            for it in items
        ):
            raise TypeError("mixed array shapes or dtypes")
        return np.stack(items)
    first_type = type(first)
    if any(type(it) is not first_type for it in items):
        raise TypeError("mixed scalar types")
    column = np.asarray(items)
    # Only 8-byte numeric columns keep approx_bytes identical to the
    # record path (scalars count one machine word there).
    if column.dtype.kind not in "iuf" or column.dtype.itemsize != 8:
        raise TypeError(f"unsupported column dtype {column.dtype}")
    return column


class RecordBatch:
    """A columnar slab of keyed records.

    Parameters
    ----------
    keys:
        (n,) array — record ``i``'s key is ``keys[i]`` (a numpy scalar).
    values:
        Either one array whose leading axis is the record axis (row ``i`` is
        the value), or a tuple of such columns (row ``i``'s value is the
        tuple of per-column rows). Nested tuples mirror nested record
        values.

    Batches are treated as immutable; slicing and :meth:`take` return
    views/copies without touching the originals. ``nbytes`` reports the
    *record-equivalent* size — what ``approx_bytes`` would charge for
    ``to_records()`` — so shuffle-volume and task byte attributes stay
    bit-identical between the two data planes.
    """

    __slots__ = ("keys", "values")

    def __init__(self, keys, values):
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
        _check_columns(values, keys.shape[0])
        self.keys = keys
        self.values = values

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def __getitem__(self, item) -> "RecordBatch":
        if not isinstance(item, slice):
            raise TypeError("RecordBatch supports slice indexing only; use take()")
        return RecordBatch(self.keys[item], _take_columns(self.values, item))

    def take(self, indices) -> "RecordBatch":
        """A new batch holding rows ``indices`` (fancy indexing, copies)."""
        indices = np.asarray(indices)
        n = len(self)
        # Bounds-check up front: a zero-column batch has no value arrays to
        # catch a bad index, and the error should name the batch, not leak
        # from whichever column happened to be indexed first.
        if indices.size and indices.dtype.kind in "iu" and (
            int(indices.min()) < -n or int(indices.max()) >= n
        ):
            raise IndexError(
                f"take indices out of range for RecordBatch of {n} row(s)"
            )
        return RecordBatch(self.keys[indices], _take_columns(self.values, indices))

    @property
    def nbytes(self) -> int:
        """Record-equivalent ``approx_bytes`` estimate of this batch."""
        n = len(self)
        return 8 * n + n * (16 + _row_bytes(self.keys) + _row_bytes(self.values))

    def to_records(self) -> list[tuple]:
        """Materialise the equivalent list of ``(key, value)`` tuples."""
        if isinstance(self.values, tuple) and not self.values:
            # zip(*()) is the empty iterator, which would silently drop
            # every key of a zero-column batch; each row's value is ().
            return [(key, ()) for key in self.keys]
        return list(zip(self.keys, _iter_rows(self.values)))

    @classmethod
    def from_records(cls, records) -> "RecordBatch | None":
        """Build a batch from ``(key, value)`` tuples, or ``None``.

        Returns ``None`` whenever the records do not admit an unambiguous
        columnar layout (empty input, non-pair records, mixed types, ragged
        arrays) — the engine then keeps the job on the record path.
        """
        records = list(records)
        if not records:
            return None
        if any(not isinstance(r, tuple) or len(r) != 2 for r in records):
            return None
        try:
            keys = _build_column([r[0] for r in records])
            values = _build_column([r[1] for r in records])
        except TypeError:
            return None
        if isinstance(keys, tuple) or keys.ndim != 1:
            return None
        return cls(keys, values)

    @classmethod
    def concat(cls, batches: list["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches row-wise (they must share column structure)."""
        if not batches:
            raise ValueError("cannot concatenate zero batches")
        if len(batches) == 1:
            return batches[0]

        def cat(cols):
            if isinstance(cols[0], tuple):
                width = len(cols[0])
                if any(not isinstance(c, tuple) or len(c) != width for c in cols):
                    raise TypeError("batches have mismatched value structure")
                return tuple(cat([c[i] for c in cols]) for i in range(width))
            return np.concatenate(cols)

        return cls(
            np.concatenate([b.keys for b in batches]),
            cat([b.values for b in batches]),
        )

    def __repr__(self) -> str:
        return f"RecordBatch(n={len(self)}, keys={self.keys.dtype})"


@dataclass
class MapTaskResult:
    """Output of one map task: emitted records plus cost accounting.

    ``records`` is a list of tuples on the record path and a
    :class:`RecordBatch` on the batched path (both support ``len``).
    """

    records: list[tuple] | RecordBatch
    n_input_records: int
    cost: float  # abstract work units consumed (drives the simulated clock)


@dataclass
class JobSpec:
    """A single MapReduce job definition.

    Parameters
    ----------
    name:
        Human-readable job name (shows up in counters and logs).
    mapper:
        ``(key, value, context) -> iterable[(k, v)]``.
    reducer:
        ``(key, values, context) -> iterable[(k, v)]``. ``None`` makes the
        job map-only (identity shuffle, records pass through).
    combiner:
        Optional map-side pre-reducer with the reducer signature.
    partitioner:
        ``(key, n_partitions) -> int``; default hash partitioning.
    n_reducers:
        Number of reduce partitions.
    sort_keys:
        Sort each partition's keys before reducing (Hadoop semantics).
    map_cost / reduce_cost:
        Optional cost models ``(key, value) -> float`` and
        ``(key, values) -> float`` feeding the simulated clock; default cost
        is one unit per record. For the batched path, ``map_cost`` must
        expose ``batch_cost(batch) -> float`` (summing what the per-record
        calls would) and ``reduce_cost`` is called once per key group with
        the group's :class:`RecordBatch` (it may only rely on ``len`` and
        the key — which is all the shipped cost models use).
    batch_mapper:
        Optional ``(RecordBatch, context) -> RecordBatch`` twin of
        ``mapper``; must emit exactly the records the per-record mapper
        would, in the same order.
    batch_reducer:
        Optional ``(key, group: RecordBatch, context) -> RecordBatch`` twin
        of ``reducer``, called once per key group.
    batch_partitioner:
        Optional vectorized ``(keys: ndarray, n_partitions) -> ndarray``
        twin of ``partitioner``. Required for batched execution when
        ``n_reducers > 1``: the engine will not guess that a scalar
        partitioner is type-insensitive.
    """

    name: str
    mapper: Callable[[Any, Any, Any], Iterable[tuple]]
    reducer: Callable[[Any, Any, Any], Iterable[tuple]] | None = None
    combiner: Callable[[Any, Any, Any], Iterable[tuple]] | None = None
    partitioner: Callable[[Any, int], int] | None = None
    n_reducers: int = 1
    sort_keys: bool = True
    map_cost: Callable[[Any, Any], float] | None = None
    reduce_cost: Callable[[Any, Any], float] | None = None
    params: dict = field(default_factory=dict)
    batch_mapper: Callable[[RecordBatch, Any], RecordBatch] | None = None
    batch_reducer: Callable[[Any, RecordBatch, Any], RecordBatch] | None = None
    batch_partitioner: Callable[[np.ndarray, int], np.ndarray] | None = None

    def __post_init__(self):
        if self.n_reducers < 1:
            raise ValueError(f"n_reducers must be >= 1, got {self.n_reducers}")
        if self.batch_reducer is not None and self.reducer is None:
            raise ValueError("batch_reducer requires a reducer (the semantic reference)")
