"""Simulated HDFS: files as record lists, split into blocks, replicated.

The engine reads its input as :class:`FileSplit` objects — the unit of map
parallelism, exactly as in Hadoop. Replication places each split on
``replication`` distinct nodes round-robin (Table 2's DFS replication ratio
is 3), and the scheduler can ask where a split lives to account for data
locality.

Datanodes can be marked dead (:meth:`SimulatedHDFS.mark_dead`): reads then
fail over to the surviving replicas of each split — new writes avoid dead
nodes — and only when *every* replica of some split is gone does a read
surface a structured :class:`ReplicaUnavailableError`, never a silent
wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapreduce.storage import StorageError
from repro.mapreduce.types import RecordBatch

__all__ = ["FileSplit", "SimulatedHDFS", "ReplicaUnavailableError"]


class ReplicaUnavailableError(StorageError):
    """Every replica of a split lives on a dead datanode.

    Carries the path, split index, and the (dead) placement nodes so the
    operator can see exactly which failures compounded.
    """

    def __init__(self, path: str, split_index: int, placements: tuple):
        super().__init__(
            f"all replicas of {path!r} split {split_index} are on dead nodes "
            f"{sorted(placements)}"
        )
        self.path = path
        self.split_index = split_index
        self.placements = tuple(placements)


@dataclass(frozen=True)
class FileSplit:
    """One input split: a contiguous slice of a file's records.

    ``preferred_nodes`` carries the replica placements so a locality-aware
    scheduler can run the map task where its data lives (empty = anywhere).
    """

    path: str
    index: int
    records: tuple | RecordBatch  # columnar files split into batch views
    preferred_nodes: tuple = ()

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class _StoredFile:
    records: list
    split_size: int
    placements: dict[int, tuple[int, ...]] = field(default_factory=dict)  # split -> node ids


class SimulatedHDFS:
    """An in-memory distributed filesystem.

    Parameters
    ----------
    n_nodes:
        Cluster size used for block placement.
    replication:
        Copies per split (Table 2 uses 3); clipped to ``n_nodes``.
    default_split_size:
        Records per split when a write does not specify one.
    """

    def __init__(self, n_nodes: int = 1, *, replication: int = 3, default_split_size: int = 1024):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if default_split_size < 1:
            raise ValueError(f"default_split_size must be >= 1, got {default_split_size}")
        self.n_nodes = int(n_nodes)
        self._requested_replication = int(replication)
        self.replication = min(int(replication), self.n_nodes)
        self.default_split_size = int(default_split_size)
        self._files: dict[str, _StoredFile] = {}
        self._next_node = 0
        self._dead: set[int] = set()

    # -- datanode liveness -------------------------------------------------

    @property
    def dead_nodes(self) -> frozenset:
        """Datanodes currently marked dead."""
        return frozenset(self._dead)

    def mark_dead(self, *nodes: int) -> None:
        """Mark datanodes dead: reads fail over to surviving replicas and
        new writes avoid them. At least one node must stay alive."""
        dead = self._dead | {int(n) % self.n_nodes for n in nodes}
        if len(dead) >= self.n_nodes:
            raise ValueError("cannot mark every datanode dead")
        self._dead = dead

    def mark_alive(self, *nodes: int) -> None:
        """Bring datanodes back (idempotent); their replicas become readable
        again — simulated blocks survive a temporary outage."""
        self._dead -= {int(n) % self.n_nodes for n in nodes}

    def _live_replicas(self, placements: tuple) -> tuple:
        return tuple(n for n in placements if n not in self._dead)

    # -- elasticity ----------------------------------------------------------

    def add_nodes(self, count: int) -> tuple[int, ...]:
        """Join ``count`` fresh, empty datanodes (ids continue the range).

        Existing placements are untouched; subsequent writes spread over
        the enlarged pool, and the effective replication factor recovers
        toward the requested one if it had been clipped by a small cluster.
        """
        if count < 1:
            raise ValueError(f"must add at least one datanode, got {count}")
        added = tuple(range(self.n_nodes, self.n_nodes + int(count)))
        self.n_nodes += int(count)
        self.replication = min(self._requested_replication, self.n_nodes)
        return added

    def decommission_nodes(self, *nodes: int) -> int:
        """Drain and remove datanodes; returns the block copies re-replicated.

        ``nodes`` must be the highest-numbered datanodes so the surviving
        id space stays contiguous (the autoscaler always retires from the
        top). Every split with a replica on a retiring node gets a fresh
        copy on a surviving *live* node before the retirees leave — the
        drain protocol — so no split loses all its replicas to a planned
        scale-down. A retiring node that is already dead (a kill racing
        the drain) cannot serve as a copy source; its splits re-replicate
        from their surviving live replicas instead, and only a split with
        no live holder at all raises :class:`ReplicaUnavailableError`.
        """
        removing = {int(n) for n in nodes}
        if not removing:
            return 0
        if any(n < 0 or n >= self.n_nodes for n in removing):
            raise ValueError(f"unknown datanodes {sorted(removing)} (cluster has {self.n_nodes})")
        n_after = self.n_nodes - len(removing)
        if n_after < 1:
            raise ValueError("cannot decommission every datanode")
        if removing != set(range(n_after, self.n_nodes)):
            raise ValueError(
                f"decommission retires the highest-numbered datanodes; "
                f"expected {sorted(range(n_after, self.n_nodes))}, got {sorted(removing)}"
            )
        targets = [n for n in range(n_after) if n not in self._dead]
        if not targets:
            raise ValueError("no live datanodes left to receive drained blocks")
        moved = 0
        for path, stored in sorted(self._files.items()):
            for s in sorted(stored.placements):
                placements = stored.placements[s]
                keep = [n for n in placements if n not in removing]
                deficit = len(placements) - len(keep)
                if deficit == 0:
                    continue
                if not self._live_replicas(placements):
                    # Every holder (draining or not) is dead: the drain can
                    # copy from nothing — surface the loss, never hide it.
                    raise ReplicaUnavailableError(path, s, placements)
                for target in targets:
                    if deficit == 0:
                        break
                    if target in keep:
                        continue
                    keep.append(target)
                    moved += 1
                    deficit -= 1
                # Fewer surviving nodes than the replication factor: the
                # split keeps one copy per distinct survivor (degraded but
                # safe, same clipping as writes on a small cluster).
                stored.placements[s] = tuple(keep)
        self._dead -= removing
        self.n_nodes = n_after
        self.replication = min(self._requested_replication, self.n_nodes)
        self._next_node %= self.n_nodes
        return moved

    # -- writes ------------------------------------------------------------

    def write(self, path: str, records, *, split_size: int | None = None, overwrite: bool = False) -> None:
        """Store ``records`` under ``path``, splitting and placing blocks.

        Files are immutable (Hadoop semantics) unless ``overwrite`` is set —
        the escape hatch job-flow recovery uses to re-materialise a step's
        output when resuming after a driver crash.
        """
        if path in self._files:
            if not overwrite:
                raise FileExistsError(f"{path!r} already exists (HDFS files are immutable)")
            del self._files[path]
        size = split_size or self.default_split_size
        if size < 1:
            raise ValueError(f"split_size must be >= 1, got {size}")
        # Columnar files are stored as-is (batches are treated as immutable);
        # record files are materialised into an owned list.
        if not isinstance(records, RecordBatch):
            records = list(records)
        stored = _StoredFile(records=records, split_size=size)
        n_splits = max(1, -(-len(stored.records) // size))
        live = [n for n in range(self.n_nodes) if n not in self._dead]
        replication = min(self.replication, len(live))
        for s in range(n_splits):
            nodes = tuple(
                live[(self._next_node + r) % len(live)] for r in range(replication)
            )
            stored.placements[s] = nodes
            self._next_node = (self._next_node + 1) % self.n_nodes
        self._files[path] = stored

    def delete(self, path: str) -> None:
        """Remove a file (KeyError if absent)."""
        del self._files[path]

    # -- reads -------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """Whether ``path`` is stored."""
        return path in self._files

    def list_files(self) -> list[str]:
        """All stored paths, sorted."""
        return sorted(self._files)

    def read(self, path: str) -> list:
        """All records of a file, in write order.

        Each split is served by any *live* replica; a split whose replicas
        are all on dead nodes raises :class:`ReplicaUnavailableError`.
        """
        stored = self._files[path]
        for s in sorted(stored.placements):
            if not self._live_replicas(stored.placements[s]):
                raise ReplicaUnavailableError(path, s, stored.placements[s])
        if isinstance(stored.records, RecordBatch):
            return stored.records
        return list(stored.records)

    def splits(self, path: str) -> list[FileSplit]:
        """The file's input splits (the unit of map parallelism).

        ``preferred_nodes`` fails over to the surviving replicas of each
        split when placement nodes are dead; a split with no live replica
        raises :class:`ReplicaUnavailableError`.
        """
        stored = self._files[path]
        size = stored.split_size
        out = []
        for s in sorted(stored.placements):
            live = self._live_replicas(stored.placements[s])
            if not live:
                raise ReplicaUnavailableError(path, s, stored.placements[s])
            if isinstance(stored.records, RecordBatch):
                chunk = stored.records[s * size : (s + 1) * size]  # column views
            else:
                chunk = tuple(stored.records[s * size : (s + 1) * size])
            out.append(
                FileSplit(
                    path=path, index=s, records=chunk,
                    preferred_nodes=live,
                )
            )
        return out

    def locations(self, path: str, split_index: int) -> tuple[int, ...]:
        """Node ids holding a *live* replica of the given split (all
        placements when no datanode is marked dead)."""
        placements = self._files[path].placements[split_index]
        live = self._live_replicas(placements)
        return live if live else placements
