"""Hadoop-style counters: grouped named tallies visible to tasks and drivers."""

from __future__ import annotations

from collections import defaultdict

__all__ = ["Counters"]


def _int_dict() -> defaultdict:
    """Module-level inner-dict factory (lambdas would break pickling)."""
    return defaultdict(int)


class Counters:
    """Nested ``group -> name -> int`` counters with Hadoop-like semantics."""

    def __init__(self):
        self._data: dict[str, dict[str, int]] = defaultdict(_int_dict)

    def __getstate__(self) -> dict:
        # Plain dicts only: counters cross process boundaries in worker
        # task results, and nested defaultdicts don't pickle.
        return {"data": self.as_dict()}

    def __setstate__(self, state: dict) -> None:
        self._data = defaultdict(_int_dict)
        for group, names in state["data"].items():
            for name, amount in names.items():
                self._data[group][name] = amount

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``group:name``."""
        self._data[group][name] += amount

    def value(self, group: str, name: str) -> int:
        """Current value (0 if never incremented)."""
        return self._data.get(group, {}).get(name, 0)

    def group(self, group: str) -> dict[str, int]:
        """Snapshot of one group."""
        return dict(self._data.get(group, {}))

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one.

        Zero-amount entries are skipped: they carry no information, and
        copying them would materialise empty groups in the destination
        (``value()`` already reports 0 for anything never incremented).
        """
        for group, names in other._data.items():
            for name, amount in names.items():
                if amount != 0:
                    self._data[group][name] += amount

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Full snapshot."""
        return {g: dict(n) for g, n in self._data.items()}

    @classmethod
    def from_dict(cls, data: dict) -> "Counters":
        """Rebuild counters from an :meth:`as_dict` snapshot (checkpoints).

        Zero-amount entries are dropped so a snapshot → restore round-trip
        does not resurrect groups that only ever held empty tallies.
        """
        out = cls()
        for group, names in data.items():
            for name, amount in names.items():
                if amount != 0:
                    out.increment(group, name, amount)
        return out

    def copy(self) -> "Counters":
        """An independent snapshot of the current state."""
        return Counters.from_dict(self.as_dict())

    def diff(self, baseline: "Counters") -> "Counters":
        """Counters accumulated since ``baseline`` (a before-snapshot).

        Returns a new :class:`Counters` holding ``self - baseline`` with
        zero deltas omitted — what the trace sink attaches to a task span
        as that task's own counter contribution.
        """
        out = Counters()
        for group, names in self._data.items():
            for name, amount in names.items():
                delta = amount - baseline.value(group, name)
                if delta != 0:
                    out.increment(group, name, delta)
        return out

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"
