"""Jobs and job flows (the EMR processing-step abstraction of Section 5.1).

A :class:`Job` binds a JobSpec to input/output paths on a filesystem; a
:class:`JobFlow` is the EMR notion of an ordered list of steps executed on a
provisioned cluster ("a collection of processing steps that EMR runs on a
specified dataset using a set of Amazon EC2 instances").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.mapreduce.engine import JobResult, MapReduceEngine
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.types import JobSpec

__all__ = ["Job", "JobFlowStep", "JobFlow"]


@dataclass
class Job:
    """A JobSpec bound to filesystem input/output paths."""

    spec: JobSpec
    input_path: str
    output_path: str

    def run(self, engine: MapReduceEngine, fs: SimulatedHDFS) -> JobResult:
        """Read splits from ``input_path``, run, write output to ``output_path``."""
        splits = fs.splits(self.input_path)
        result = engine.run(self.spec, splits)
        fs.write(self.output_path, result.output)
        return result


@dataclass
class JobFlowStep:
    """One step of a job flow: either a MapReduce job or a driver callable."""

    name: str
    job: Job | None = None
    action: Callable[["JobFlow"], object] | None = None

    def __post_init__(self):
        if (self.job is None) == (self.action is None):
            raise ValueError("exactly one of job/action must be provided")


@dataclass
class JobFlow:
    """An ordered list of steps over a shared engine + filesystem.

    Attributes
    ----------
    results:
        Per-step outcome: :class:`JobResult` for job steps, the action's
        return value for action steps.
    makespan:
        Total simulated wall-clock across all executed job steps.
    """

    engine: MapReduceEngine
    fs: SimulatedHDFS
    steps: list[JobFlowStep] = field(default_factory=list)
    results: list = field(default_factory=list)

    def add_job(self, spec: JobSpec, input_path: str, output_path: str) -> "JobFlow":
        """Append a MapReduce step."""
        self.steps.append(JobFlowStep(name=spec.name, job=Job(spec, input_path, output_path)))
        return self

    def add_action(self, name: str, action: Callable[["JobFlow"], object]) -> "JobFlow":
        """Append a driver-side step (e.g. a merge running between jobs)."""
        self.steps.append(JobFlowStep(name=name, action=action))
        return self

    def run(self) -> list:
        """Execute all steps in order; stores and returns per-step results."""
        self.results = []
        for step in self.steps:
            if step.job is not None:
                self.results.append(step.job.run(self.engine, self.fs))
            else:
                self.results.append(step.action(self))
        return self.results

    @property
    def makespan(self) -> float:
        """Sum of simulated makespans over completed job steps."""
        return sum(r.makespan for r in self.results if isinstance(r, JobResult))
