"""Jobs and job flows (the EMR processing-step abstraction of Section 5.1).

A :class:`Job` binds a JobSpec to input/output paths on a filesystem; a
:class:`JobFlow` is the EMR notion of an ordered list of steps executed on a
provisioned cluster ("a collection of processing steps that EMR runs on a
specified dataset using a set of Amazon EC2 instances").

Job flows are the unit of *driver-crash recovery*: when a checkpoint store
is attached, every completed MapReduce step persists its output (plus its
counters and scheduling stats), and ``run(resume=True)`` replays the flow
restoring completed job steps from their checkpoints instead of re-executing
them. Driver-side action steps are deterministic and cheap, so they re-run
on resume. A step whose tasks exhaust their retry budget surfaces as a
structured :class:`JobFlowError` carrying the failed step and its partial
counters.

Checkpoint I/O goes through the hardened
:class:`~repro.mapreduce.storage.ResilientStore` client (a raw store passed
as ``checkpoint_store`` is wrapped automatically): every checkpoint is a
checksummed envelope written atomically, transient storage faults retry
with seeded backoff, and a checkpoint found torn or corrupted on resume is
*quarantined* (moved to ``<key>.corrupt``) and its step deterministically
re-executed — earlier steps still restore from their own good checkpoints,
so a damaged last checkpoint costs exactly one step of recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import JobResult, MapReduceEngine
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.storage import CorruptObjectError, ResilientStore
from repro.mapreduce.types import JobSpec
from repro.observability import get_tracer

__all__ = ["Job", "JobFlowStep", "JobFlow", "JobFlowError"]


class JobFlowError(RuntimeError):
    """A job-flow step failed beyond its retry budget.

    Attributes
    ----------
    step_name / step_index:
        Which step died.
    counters:
        Partial counter state of the failed job (``None`` when the failure
        happened outside a counter scope), including the ``faults`` group
        with the attempt history.
    """

    def __init__(self, message: str, *, step_name: str, step_index: int, counters=None):
        super().__init__(message)
        self.step_name = step_name
        self.step_index = step_index
        self.counters = counters


@dataclass
class Job:
    """A JobSpec bound to filesystem input/output paths."""

    spec: JobSpec
    input_path: str
    output_path: str

    def run(self, engine: MapReduceEngine, fs: SimulatedHDFS, *, overwrite: bool = False) -> JobResult:
        """Read splits from ``input_path``, run, write output to ``output_path``.

        A job that ran on the batched data plane writes its columnar output
        so the next stage's splits stay columnar; checkpoints (and the
        record path) keep the materialised record list.
        """
        splits = fs.splits(self.input_path)
        result = engine.run(self.spec, splits)
        out = result.output_batch if result.output_batch is not None else result.output
        fs.write(self.output_path, out, overwrite=overwrite)
        return result


@dataclass
class JobFlowStep:
    """One step of a job flow: either a MapReduce job or a driver callable."""

    name: str
    job: Job | None = None
    action: Callable[["JobFlow"], object] | None = None

    def __post_init__(self):
        if (self.job is None) == (self.action is None):
            raise ValueError("exactly one of job/action must be provided")


@dataclass
class JobFlow:
    """An ordered list of steps over a shared engine + filesystem.

    Attributes
    ----------
    results:
        Per-step outcome: :class:`JobResult` for job steps, the action's
        return value for action steps.
    checkpoint_store:
        Optional S3-like object store (``put/get/exists``); when set, each
        completed job step's output is persisted so the flow can be resumed
        after a driver crash. A raw store is wrapped in a
        :class:`~repro.mapreduce.storage.ResilientStore` (checksummed
        envelopes, atomic writes, seeded retries); pass a pre-built
        resilient client to control its retry policy.
    checkpoint_prefix:
        Key prefix for this flow's checkpoints in the store.
    restored_steps:
        Indices of steps restored from checkpoints by the last ``run``.
    autoscaler:
        Optional :class:`~repro.mapreduce.autoscale.Autoscaler`: consulted
        between the map/reduce phases of every job step and after every
        step, its resize decisions are checkpointed alongside the flow so
        a crashed driver resumes by replaying the identical scaling
        schedule.
    makespan:
        Total simulated wall-clock across all executed job steps (restored
        steps contribute their originally recorded makespan), plus any
        cold-start/drain latency the autoscaler charged.
    """

    engine: MapReduceEngine
    fs: SimulatedHDFS
    steps: list[JobFlowStep] = field(default_factory=list)
    results: list = field(default_factory=list)
    checkpoint_store: object | None = None
    checkpoint_prefix: str = "checkpoints"
    restored_steps: list[int] = field(default_factory=list)
    autoscaler: object | None = None

    def add_job(self, spec: JobSpec, input_path: str, output_path: str) -> "JobFlow":
        """Append a MapReduce step."""
        self.steps.append(JobFlowStep(name=spec.name, job=Job(spec, input_path, output_path)))
        return self

    def add_action(self, name: str, action: Callable[["JobFlow"], object]) -> "JobFlow":
        """Append a driver-side step (e.g. a merge running between jobs)."""
        self.steps.append(JobFlowStep(name=name, action=action))
        return self

    def remove_steps_named(self, *names: str) -> None:
        """Drop steps by name (used by resumable drivers to re-append
        dynamically generated downstream steps idempotently)."""
        self.steps[:] = [s for s in self.steps if s.name not in names]

    def run(self, *, resume: bool = False, max_steps: int | None = None) -> list:
        """Execute all steps in order; stores and returns per-step results.

        Parameters
        ----------
        resume:
            Restore completed job steps from the checkpoint store instead of
            re-executing them (driver-crash recovery). Action steps re-run —
            they are deterministic driver code.
        max_steps:
            Stop after this many steps, leaving the flow incomplete — the
            hook chaos tests use to simulate a driver crash mid-flow.
        """
        tracer = get_tracer()
        self.results = []
        self.restored_steps = []
        if self.autoscaler is not None:
            self.autoscaler.bind(self, resume=resume)
        executed = 0
        i = 0
        with tracer.span("jobflow.run", resume=resume) as flow_span:
            flow_span.set("executor", self.engine.executor.describe())
            while i < len(self.steps):
                if max_steps is not None and executed >= max_steps:
                    break
                step = self.steps[i]
                if self.autoscaler is not None:
                    self.autoscaler.begin_step(i)
                if step.job is not None:
                    self.results.append(self._run_job_step(step, i, resume))
                else:
                    with tracer.span("jobflow.action", step=step.name, index=i):
                        self.results.append(step.action(self))
                if self.autoscaler is not None:
                    self.autoscaler.after_step(i, step.name, self.results[-1])
                executed += 1
                i += 1
            flow_span.set("n_steps", len(self.steps))
            flow_span.set("executed", executed)
            flow_span.set("restored", list(self.restored_steps))
            flow_span.set("makespan", self.makespan)
        return self.results

    @property
    def makespan(self) -> float:
        """Sum of simulated makespans over completed job steps, plus any
        autoscaling overhead (cold starts, decommission drains)."""
        total = sum(r.makespan for r in self.results if isinstance(r, JobResult))
        if self.autoscaler is not None:
            total += self.autoscaler.overhead
        return total

    # -- internals -----------------------------------------------------------

    def _checkpoint_key(self, index: int) -> str:
        return f"{self.checkpoint_prefix}/step-{index:03d}"

    def _checkpoint_client(self) -> ResilientStore | None:
        """The hardened client over ``checkpoint_store`` (cached per store)."""
        store = self.checkpoint_store
        if store is None:
            return None
        if isinstance(store, ResilientStore):
            return store
        cached = getattr(self, "_ckpt_client", None)
        if cached is None or cached.inner is not store:
            cached = ResilientStore(store)
            self._ckpt_client = cached
        return cached

    def _run_job_step(self, step: JobFlowStep, index: int, resume: bool) -> JobResult:
        tracer = get_tracer()
        key = self._checkpoint_key(index)
        store = self._checkpoint_client()
        with tracer.span("jobflow.step", step=step.name, index=index) as step_span:
            reexecuting_corrupt = False
            if resume and store is not None and store.exists(key):
                try:
                    payload = store.get(key)
                except CorruptObjectError as exc:
                    # The checkpoint is torn or bit-flipped (the client
                    # already emitted storage.corruption): move it aside for
                    # post-mortem and fall back to re-executing the step
                    # (earlier steps already restored from good checkpoints).
                    quarantine_key = store.quarantine(key)
                    reexecuting_corrupt = True
                    step_span.set("checkpoint_quarantined", quarantine_key)
                    step_span.set("corrupt_reason", exc.reason)
                else:
                    if self.autoscaler is not None:
                        # The step's phases never re-run, so its between-
                        # phase decisions replay from the log — before the
                        # restore write, mirroring the original run's order
                        # (the resize preceded the step's output placement).
                        self.autoscaler.replay_step(index)
                    result = self._restore(step, payload)
                    self.restored_steps.append(index)
                    step_span.set("from_checkpoint", True)
                    tracer.event(
                        "jobflow.restore",
                        step=step.name, index=index, key=key, n_records=len(result.output),
                    )
                    return result
            try:
                # On resume the output may already exist from the crashed run;
                # Hadoop semantics are delete-then-rerun.
                result = step.job.run(self.engine, self.fs, overwrite=resume)
            except Exception as exc:
                raise JobFlowError(
                    f"job flow step {index} ({step.name!r}) failed: {exc}",
                    step_name=step.name,
                    step_index=index,
                    counters=getattr(exc, "counters", None),
                ) from exc
            if reexecuting_corrupt:
                # The recomputation charged to recover from the damaged
                # checkpoint, itemized in the fault ledger as wasted cost.
                tracer.event(
                    "fault.checkpoint_reexecuted",
                    step=step.name, index=index, key=key, wasted_cost=result.makespan,
                )
            if store is not None:
                store.put(
                    key,
                    {
                        "step_name": step.name,
                        "output": list(result.output),
                        "counters": result.counters.as_dict(),
                        "map_stats": result.map_stats,
                        "reduce_stats": result.reduce_stats,
                    },
                )
                tracer.event(
                    "jobflow.checkpoint",
                    step=step.name, index=index, key=key, n_records=len(result.output),
                )
            step_span.set("makespan", result.makespan)
        return result

    def _restore(self, step: JobFlowStep, payload: dict) -> JobResult:
        """Re-materialise a completed step from its checkpoint."""
        output = list(payload["output"])
        self.fs.write(step.job.output_path, output, overwrite=True)
        return JobResult(
            job_name=step.name,
            output=output,
            counters=Counters.from_dict(payload["counters"]),
            map_stats=payload["map_stats"],
            reduce_stats=payload["reduce_stats"],
            from_checkpoint=True,
        )
