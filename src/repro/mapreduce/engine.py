"""The MapReduce engine: map -> combine -> partition -> sort -> reduce.

Executes a :class:`~repro.mapreduce.types.JobSpec` over input splits with
full Hadoop semantics (per-split map tasks, optional combiner, hash
partitioning, per-partition key sort, one reduce call per key) while
tracking, for every task, an abstract *cost* that the simulated cluster
turns into a makespan. Execution is deterministic; *where* tasks run is the
engine's executor backend:

* the default :class:`~repro.mapreduce.executor.SerialExecutor` runs every
  task in-process (the historical behavior);
* a :class:`~repro.mapreduce.executor.ParallelExecutor` fans independent
  map tasks and per-partition reduce tasks out across worker processes and
  collects the results **in task order**, so outputs, shuffle partitioning
  and counter totals are bit-identical to a serial run — only the real
  wall-clock changes. Jobs whose callables cannot cross a process boundary
  (closures, lambdas) stay on the serial path automatically.

Task bodies are pure module-level functions (:func:`execute_map_task`,
:func:`execute_reduce_task`) so both backends — and the fault-injecting
engine's retries — run literally the same code.
"""

from __future__ import annotations

import time
import zlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.mapreduce.cluster import SimulatedCluster, TaskStats
from repro.mapreduce.counters import Counters
from repro.mapreduce.executor import default_executor, is_picklable
from repro.mapreduce.hdfs import FileSplit
from repro.mapreduce.types import JobSpec, MapTaskResult
from repro.observability import get_tracer
from repro.observability.metrics import time_buckets

__all__ = [
    "TaskContext",
    "JobResult",
    "MapReduceEngine",
    "stable_hash",
    "approx_bytes",
    "execute_map_task",
    "execute_reduce_task",
]


def approx_bytes(obj) -> int:
    """Cheap recursive estimate of a payload's in-memory size.

    Exact byte accounting would mean pickling every record; traced runs only
    need enough fidelity to attribute shuffle volume and data skew, so numpy
    buffers count their ``nbytes``, strings/bytes their length, containers
    recurse with a small per-slot overhead, and scalars count one machine
    word. Only computed when tracing is enabled.
    """
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 * len(obj) + sum(approx_bytes(v) for v in obj)
    if isinstance(obj, dict):
        return sum(approx_bytes(k) + approx_bytes(v) + 16 for k, v in obj.items())
    return 8


def _validation_enabled() -> bool:
    """Whether the engine should self-check counter conservation.

    The substrate has no per-job config object, so only the global
    ``REPRO_VALIDATE`` switch applies here (lazy import: repro.verify sits
    above the substrate in the layering).
    """
    from repro.verify.invariants import validation_enabled

    return validation_enabled()


@dataclass
class TaskContext:
    """What a running task sees: its job parameters and shared counters."""

    job: JobSpec
    counters: Counters
    task_id: str = ""

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Bump a counter from inside a mapper/reducer."""
        self.counters.increment(group, name, amount)


@dataclass
class JobResult:
    """Everything a driver needs from a finished job."""

    job_name: str
    output: list[tuple]  # reduce output records (or map output for map-only jobs)
    counters: Counters
    map_stats: TaskStats
    reduce_stats: TaskStats
    partitions: dict[int, list[tuple]] = field(default_factory=dict)
    from_checkpoint: bool = False  # restored by job-flow recovery, not re-executed

    @property
    def makespan(self) -> float:
        """Simulated wall-clock: map phase + reduce phase (reduce waits for all maps)."""
        return self.map_stats.makespan + self.reduce_stats.makespan


def stable_hash(key: Any) -> int:
    """A process-independent hash for shuffle partitioning.

    Python's builtin ``hash`` is salted per process for ``str``/``bytes``
    (PYTHONHASHSEED), so hash partitioning with it shuffles string-keyed
    jobs differently across runs. CRC32 over a canonical ``(type, repr)``
    encoding is stable across processes, platforms, and hash seeds —
    matching Hadoop, whose HashPartitioner is deterministic.
    """
    data = f"{type(key).__name__}:{key!r}".encode("utf-8", "backslashreplace")
    return zlib.crc32(data)


def _default_partitioner(key: Any, n_partitions: int) -> int:
    return stable_hash(key) % n_partitions


def _sort_key(item: tuple) -> tuple:
    key = item[0]
    # Keys of mixed types sort by (type name, repr) to stay deterministic.
    return (type(key).__name__, repr(key))


# -- pure task bodies --------------------------------------------------------
#
# Module-level so that (a) worker processes can import them by reference and
# (b) serial, parallel, and fault-retried execution share one code path.


def _combine_records(job: JobSpec, records: list[tuple], ctx: TaskContext) -> list[tuple]:
    grouped: dict[Any, list] = defaultdict(list)
    for key, value in records:
        grouped[key].append(value)
    out: list[tuple] = []
    for key in grouped:
        out.extend(tuple(r) for r in job.combiner(key, grouped[key], ctx))
    ctx.counters.increment("combine", "output_records", len(out))
    return out


def execute_map_task(job: JobSpec, records, ctx: TaskContext) -> MapTaskResult:
    """Run one map task (mapper over every record, then the combiner)."""
    emitted: list[tuple] = []
    cost = 0.0
    n_in = 0
    for record in records:
        key, value = record if isinstance(record, tuple) and len(record) == 2 else (None, record)
        n_in += 1
        for out in job.mapper(key, value, ctx):
            emitted.append(tuple(out))
        cost += job.map_cost(key, value) if job.map_cost else 1.0
    ctx.counters.increment("map", "input_records", n_in)
    ctx.counters.increment("map", "output_records", len(emitted))
    if job.combiner is not None:
        emitted = _combine_records(job, emitted, ctx)
    return MapTaskResult(records=emitted, n_input_records=n_in, cost=cost)


def execute_reduce_task(job: JobSpec, records: list[tuple], ctx: TaskContext):
    """Run one reduce task (one reducer call per key, in first-seen key order)."""
    grouped: dict[Any, list] = defaultdict(list)
    order: list = []
    for key, value in records:
        if key not in grouped:
            order.append(key)
        grouped[key].append(value)
    out: list[tuple] = []
    cost = 0.0
    for key in order:
        values = grouped[key]
        for rec in job.reducer(key, values, ctx):
            out.append(tuple(rec))
        cost += job.reduce_cost(key, values) if job.reduce_cost else float(len(values))
    ctx.counters.increment("reduce", "input_groups", len(order))
    ctx.counters.increment("reduce", "output_records", len(out))
    return out, cost


def _map_task_worker(payload):
    """Process-pool entry point for one map task.

    Returns ``(status, value, counters, elapsed)`` instead of raising so the
    parent can merge partial counters in task order before surfacing an
    error — matching the serial engine's partial-state semantics exactly.
    """
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    job, records, task_id = payload
    counters = Counters()
    ctx = TaskContext(job=job, counters=counters, task_id=task_id)
    start = time.perf_counter()
    try:
        result = execute_map_task(job, records, ctx)
    except Exception as exc:  # surfaced (with counters) by the parent
        return ("error", exc, counters, time.perf_counter() - start)
    return ("ok", result, counters, time.perf_counter() - start)


def _reduce_task_worker(payload):
    """Process-pool entry point for one reduce task (same contract as map)."""
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    job, records, task_id = payload
    counters = Counters()
    ctx = TaskContext(job=job, counters=counters, task_id=task_id)
    start = time.perf_counter()
    try:
        out, cost = execute_reduce_task(job, records, ctx)
    except Exception as exc:
        return ("error", exc, counters, time.perf_counter() - start)
    return ("ok", (out, cost), counters, time.perf_counter() - start)


class MapReduceEngine:
    """Runs JobSpecs on a :class:`SimulatedCluster`.

    Parameters
    ----------
    cluster:
        The simulated cluster providing slots (default: one single-slot-ish
        node, i.e. serial semantics).
    executor:
        Execution backend for task compute. Default:
        :func:`~repro.mapreduce.executor.default_executor` — serial unless
        ``REPRO_N_JOBS`` asks for workers. The simulated *makespan* is
        unaffected by the backend; only real wall-clock is.
    """

    def __init__(self, cluster: SimulatedCluster | None = None, *, executor=None):
        self.cluster = cluster if cluster is not None else SimulatedCluster(1)
        self.executor = executor if executor is not None else default_executor()

    # -- public API ----------------------------------------------------------

    def run(self, job: JobSpec, splits: list[FileSplit] | list[list[tuple]]) -> JobResult:
        """Execute ``job`` over ``splits`` and return outputs + statistics.

        ``splits`` may be HDFS :class:`FileSplit` objects or plain lists of
        ``(key, value)`` tuples (each list = one map task).
        """
        tracer = get_tracer()
        with tracer.span("mr.job", job=job.name, n_splits=len(splits)) as job_span:
            result = self._run_job(job, splits, tracer, job_span)
            job_span.set("makespan", result.makespan)
            job_span.set("n_output_records", len(result.output))
        return result

    def _parallel_tasks_enabled(self, job: JobSpec) -> bool:
        """Whether this job's tasks may run on the parallel backend.

        Requires a parallel executor, un-overridden task hooks (the fault
        engine's per-attempt retries are inherently in-process), and a
        picklable job spec. Anything else silently stays serial — behavior,
        not performance, is the contract.
        """
        if not getattr(self.executor, "parallel", False):
            return False
        if type(self)._run_map_task is not MapReduceEngine._run_map_task:
            return False
        if type(self)._run_reduce_task is not MapReduceEngine._run_reduce_task:
            return False
        return is_picklable(job)

    def _run_job(self, job: JobSpec, splits, tracer, job_span) -> JobResult:
        counters = Counters()
        parallel = self._parallel_tasks_enabled(job)
        if tracer.enabled:
            job_span.set("executor", self.executor.describe() if parallel else "serial")

        # -- map phase -------------------------------------------------------
        split_records = []
        placements = []
        for split in splits:
            if isinstance(split, FileSplit):
                split_records.append(split.records)
                placements.append(split.preferred_nodes)
            else:
                split_records.append(split)
                placements.append(())
        validate = _validation_enabled()
        phase_start = time.perf_counter()
        if parallel:
            map_results = self._map_phase_parallel(job, split_records, counters, tracer)
        else:
            map_results = self._map_phase_serial(job, split_records, counters, tracer)
        map_wall = time.perf_counter() - phase_start
        with tracer.span("mr.schedule", phase="map"):
            map_stats = self._schedule_map_phase(map_results, placements, counters)
        map_stats.real_elapsed = map_wall
        counters.increment("job", "map_tasks", len(map_results))
        if validate:
            # Counter conservation: retries and parallel fan-out must tally
            # each input record exactly once (the bit-identity contract).
            from repro.verify.invariants import check_counter_equals

            check_counter_equals(
                counters, "map", "input_records",
                sum(len(records) for records in split_records),
                stage=f"mr.job:{job.name}",
            )

        if job.reducer is None:
            output = [rec for r in map_results for rec in r.records]
            return JobResult(
                job_name=job.name,
                output=output,
                counters=counters,
                map_stats=map_stats,
                reduce_stats=TaskStats(n_tasks=0, total_cost=0.0, makespan=0.0),
            )

        # -- shuffle + reduce phase -----------------------------------------
        with tracer.span("mr.shuffle") as shuffle_span:
            partitions = self._shuffle(job, map_results, counters)
            shuffle_span.set("n_partitions", len(partitions))
            shuffle_span.set("n_records", counters.value("shuffle", "records"))
            if tracer.enabled:
                # Per-partition volumes, in sorted-partition (= reduce task)
                # order: the raw material for skew attribution in the report.
                ordered = sorted(partitions)
                shuffle_span.set(
                    "partition_records", [len(partitions[p]) for p in ordered]
                )
                shuffle_span.set(
                    "bytes", sum(approx_bytes(partitions[p]) for p in ordered)
                )
        phase_start = time.perf_counter()
        if parallel:
            output, partition_outputs, reduce_costs = self._reduce_phase_parallel(
                job, partitions, counters, tracer
            )
        else:
            output, partition_outputs, reduce_costs = self._reduce_phase_serial(
                job, partitions, counters, tracer
            )
        reduce_wall = time.perf_counter() - phase_start
        with tracer.span("mr.schedule", phase="reduce"):
            reduce_stats = self._schedule_reduce_phase(reduce_costs, counters)
        reduce_stats.real_elapsed = reduce_wall
        counters.increment("job", "reduce_tasks", len(reduce_costs))
        if validate:
            from repro.verify.invariants import check_counter_equals

            check_counter_equals(
                counters, "reduce", "output_records", len(output),
                stage=f"mr.job:{job.name}",
            )
        return JobResult(
            job_name=job.name,
            output=output,
            counters=counters,
            map_stats=map_stats,
            reduce_stats=reduce_stats,
            partitions=partition_outputs,
        )

    # -- phase drivers (serial / parallel) -----------------------------------

    def _map_phase_serial(self, job, split_records, counters, tracer):
        map_results = []
        try:
            for i, records in enumerate(split_records):
                ctx = TaskContext(job=job, counters=counters, task_id=f"map-{i}")
                with tracer.span("mr.map_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    start = time.perf_counter()
                    result = self._run_map_task(job, records, ctx)
                    if tracer.enabled:
                        elapsed = time.perf_counter() - start
                        task_span.set("cost", result.cost)
                        task_span.set("n_input_records", result.n_input_records)
                        task_span.set("n_output_records", len(result.records))
                        task_span.set("bytes_in", approx_bytes(records))
                        task_span.set("bytes_out", approx_bytes(result.records))
                        task_span.set("counters", counters.diff(before).as_dict())
                        tracer.metrics.histogram(
                            "mr.task_seconds", time_buckets()
                        ).observe(elapsed)
                map_results.append(result)
        except Exception as exc:
            # Let structured error handling upstream (JobFlowError) report
            # the partial counter state of the failed job.
            exc.counters = counters
            raise
        return map_results

    def _map_phase_parallel(self, job, split_records, counters, tracer):
        payloads = [
            (job, records, f"map-{i}") for i, records in enumerate(split_records)
        ]
        outcomes = self.executor.map_ordered(_map_task_worker, payloads)
        map_results = []
        for i, (status, value, task_counters, elapsed) in enumerate(outcomes):
            # Merge in task order: identical totals to the serial shared-
            # counter path, and on error the merged prefix (plus the failing
            # task's partial increments) matches serial partial state.
            counters.merge(task_counters)
            if status == "error":
                value.counters = counters
                raise value
            with tracer.span("mr.map_task", task=f"map-{i}") as task_span:
                if tracer.enabled:
                    task_span.set("cost", value.cost)
                    task_span.set("n_input_records", value.n_input_records)
                    task_span.set("n_output_records", len(value.records))
                    task_span.set("bytes_in", approx_bytes(split_records[i]))
                    task_span.set("bytes_out", approx_bytes(value.records))
                    task_span.set("counters", task_counters.as_dict())
                    task_span.set("worker_time", elapsed)
                    tracer.metrics.histogram(
                        "mr.task_seconds", time_buckets()
                    ).observe(elapsed)
            map_results.append(value)
        return map_results

    def _reduce_phase_serial(self, job, partitions, counters, tracer):
        output: list[tuple] = []
        reduce_costs = []
        partition_outputs: dict[int, list[tuple]] = {}
        try:
            for p in sorted(partitions):
                ctx = TaskContext(job=job, counters=counters, task_id=f"reduce-{p}")
                with tracer.span("mr.reduce_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    start = time.perf_counter()
                    part_out, cost = self._run_reduce_task(job, partitions[p], ctx)
                    if tracer.enabled:
                        elapsed = time.perf_counter() - start
                        task_span.set("cost", cost)
                        task_span.set("n_input_records", len(partitions[p]))
                        task_span.set("n_output_records", len(part_out))
                        task_span.set("bytes_in", approx_bytes(partitions[p]))
                        task_span.set("bytes_out", approx_bytes(part_out))
                        task_span.set("counters", counters.diff(before).as_dict())
                        tracer.metrics.histogram(
                            "mr.task_seconds", time_buckets()
                        ).observe(elapsed)
                partition_outputs[p] = part_out
                output.extend(part_out)
                reduce_costs.append(cost)
        except Exception as exc:
            exc.counters = counters
            raise
        return output, partition_outputs, reduce_costs

    def _reduce_phase_parallel(self, job, partitions, counters, tracer):
        order = sorted(partitions)
        payloads = [(job, partitions[p], f"reduce-{p}") for p in order]
        outcomes = self.executor.map_ordered(_reduce_task_worker, payloads)
        output: list[tuple] = []
        reduce_costs = []
        partition_outputs: dict[int, list[tuple]] = {}
        for p, (status, value, task_counters, elapsed) in zip(order, outcomes):
            counters.merge(task_counters)
            if status == "error":
                value.counters = counters
                raise value
            part_out, cost = value
            with tracer.span("mr.reduce_task", task=f"reduce-{p}") as task_span:
                if tracer.enabled:
                    task_span.set("cost", cost)
                    task_span.set("n_input_records", len(partitions[p]))
                    task_span.set("n_output_records", len(part_out))
                    task_span.set("bytes_in", approx_bytes(partitions[p]))
                    task_span.set("bytes_out", approx_bytes(part_out))
                    task_span.set("counters", task_counters.as_dict())
                    task_span.set("worker_time", elapsed)
                    tracer.metrics.histogram(
                        "mr.task_seconds", time_buckets()
                    ).observe(elapsed)
            partition_outputs[p] = part_out
            output.extend(part_out)
            reduce_costs.append(cost)
        return output, partition_outputs, reduce_costs

    # -- scheduling hooks (overridden by the fault-injecting engine) ---------

    def _schedule_map_phase(self, map_results, placements, counters: Counters) -> TaskStats:
        """Place the executed map tasks' costs on the simulated cluster."""
        if any(placements):
            # HDFS splits carry replica locations: schedule data-locally.
            return self.cluster.schedule_with_locality(
                [(r.cost, p) for r, p in zip(map_results, placements)], phase="map"
            )
        return self.cluster.schedule([r.cost for r in map_results], phase="map")

    def _schedule_reduce_phase(self, reduce_costs, counters: Counters) -> TaskStats:
        """Place the executed reduce tasks' costs on the simulated cluster."""
        return self.cluster.schedule(reduce_costs, phase="reduce")

    # -- task hooks (overridden by the fault-injecting engine) ---------------

    def _run_map_task(self, job: JobSpec, records, ctx: TaskContext) -> MapTaskResult:
        return execute_map_task(job, records, ctx)

    def _combine(self, job: JobSpec, records: list[tuple], ctx: TaskContext) -> list[tuple]:
        return _combine_records(job, records, ctx)

    def _shuffle(self, job: JobSpec, map_results: list[MapTaskResult], counters: Counters):
        partitioner = job.partitioner or _default_partitioner
        partitions: dict[int, list[tuple]] = defaultdict(list)
        n_shuffled = 0
        for result in map_results:
            for record in result.records:
                p = partitioner(record[0], job.n_reducers)
                if not 0 <= p < job.n_reducers:
                    raise ValueError(f"partitioner returned {p}, valid range [0, {job.n_reducers})")
                partitions[p].append(record)
                n_shuffled += 1
        counters.increment("shuffle", "records", n_shuffled)
        if job.sort_keys:
            for p in partitions:
                partitions[p].sort(key=_sort_key)
        return partitions

    def _run_reduce_task(self, job: JobSpec, records: list[tuple], ctx: TaskContext):
        return execute_reduce_task(job, records, ctx)
