"""The MapReduce engine: map -> combine -> partition -> sort -> reduce.

Executes a :class:`~repro.mapreduce.types.JobSpec` over input splits with
full Hadoop semantics (per-split map tasks, optional combiner, hash
partitioning, per-partition key sort, one reduce call per key) while
tracking, for every task, an abstract *cost* that the simulated cluster
turns into a makespan. Execution itself is deterministic and in-process —
the distribution being simulated is the scheduling, not the arithmetic.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.mapreduce.cluster import SimulatedCluster, TaskStats
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import FileSplit
from repro.mapreduce.types import JobSpec, MapTaskResult
from repro.observability import get_tracer

__all__ = ["TaskContext", "JobResult", "MapReduceEngine", "stable_hash"]


@dataclass
class TaskContext:
    """What a running task sees: its job parameters and shared counters."""

    job: JobSpec
    counters: Counters
    task_id: str = ""

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Bump a counter from inside a mapper/reducer."""
        self.counters.increment(group, name, amount)


@dataclass
class JobResult:
    """Everything a driver needs from a finished job."""

    job_name: str
    output: list[tuple]  # reduce output records (or map output for map-only jobs)
    counters: Counters
    map_stats: TaskStats
    reduce_stats: TaskStats
    partitions: dict[int, list[tuple]] = field(default_factory=dict)
    from_checkpoint: bool = False  # restored by job-flow recovery, not re-executed

    @property
    def makespan(self) -> float:
        """Simulated wall-clock: map phase + reduce phase (reduce waits for all maps)."""
        return self.map_stats.makespan + self.reduce_stats.makespan


def stable_hash(key: Any) -> int:
    """A process-independent hash for shuffle partitioning.

    Python's builtin ``hash`` is salted per process for ``str``/``bytes``
    (PYTHONHASHSEED), so hash partitioning with it shuffles string-keyed
    jobs differently across runs. CRC32 over a canonical ``(type, repr)``
    encoding is stable across processes, platforms, and hash seeds —
    matching Hadoop, whose HashPartitioner is deterministic.
    """
    data = f"{type(key).__name__}:{key!r}".encode("utf-8", "backslashreplace")
    return zlib.crc32(data)


def _default_partitioner(key: Any, n_partitions: int) -> int:
    return stable_hash(key) % n_partitions


def _sort_key(item: tuple) -> tuple:
    key = item[0]
    # Keys of mixed types sort by (type name, repr) to stay deterministic.
    return (type(key).__name__, repr(key))


class MapReduceEngine:
    """Runs JobSpecs on a :class:`SimulatedCluster`.

    Parameters
    ----------
    cluster:
        The simulated cluster providing slots (default: one single-slot-ish
        node, i.e. serial semantics).
    """

    def __init__(self, cluster: SimulatedCluster | None = None):
        self.cluster = cluster if cluster is not None else SimulatedCluster(1)

    # -- public API ----------------------------------------------------------

    def run(self, job: JobSpec, splits: list[FileSplit] | list[list[tuple]]) -> JobResult:
        """Execute ``job`` over ``splits`` and return outputs + statistics.

        ``splits`` may be HDFS :class:`FileSplit` objects or plain lists of
        ``(key, value)`` tuples (each list = one map task).
        """
        tracer = get_tracer()
        with tracer.span("mr.job", job=job.name, n_splits=len(splits)) as job_span:
            result = self._run_job(job, splits, tracer)
            job_span.set("makespan", result.makespan)
            job_span.set("n_output_records", len(result.output))
        return result

    def _run_job(self, job: JobSpec, splits, tracer) -> JobResult:
        counters = Counters()
        map_results = []
        placements = []
        try:
            for i, split in enumerate(splits):
                if isinstance(split, FileSplit):
                    records = split.records
                    placements.append(split.preferred_nodes)
                else:
                    records = split
                    placements.append(())
                ctx = TaskContext(job=job, counters=counters, task_id=f"map-{i}")
                with tracer.span("mr.map_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    result = self._run_map_task(job, records, ctx)
                    if tracer.enabled:
                        task_span.set("cost", result.cost)
                        task_span.set("n_input_records", result.n_input_records)
                        task_span.set("n_output_records", len(result.records))
                        task_span.set("counters", counters.diff(before).as_dict())
                map_results.append(result)
        except Exception as exc:
            # Let structured error handling upstream (JobFlowError) report
            # the partial counter state of the failed job.
            exc.counters = counters
            raise
        with tracer.span("mr.schedule", phase="map"):
            map_stats = self._schedule_map_phase(map_results, placements, counters)
        counters.increment("job", "map_tasks", len(map_results))

        if job.reducer is None:
            output = [rec for r in map_results for rec in r.records]
            return JobResult(
                job_name=job.name,
                output=output,
                counters=counters,
                map_stats=map_stats,
                reduce_stats=TaskStats(n_tasks=0, total_cost=0.0, makespan=0.0),
            )

        with tracer.span("mr.shuffle") as shuffle_span:
            partitions = self._shuffle(job, map_results, counters)
            shuffle_span.set("n_partitions", len(partitions))
            shuffle_span.set("n_records", counters.value("shuffle", "records"))
        output: list[tuple] = []
        reduce_costs = []
        partition_outputs: dict[int, list[tuple]] = {}
        try:
            for p in sorted(partitions):
                ctx = TaskContext(job=job, counters=counters, task_id=f"reduce-{p}")
                with tracer.span("mr.reduce_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    part_out, cost = self._run_reduce_task(job, partitions[p], ctx)
                    if tracer.enabled:
                        task_span.set("cost", cost)
                        task_span.set("n_input_records", len(partitions[p]))
                        task_span.set("n_output_records", len(part_out))
                        task_span.set("counters", counters.diff(before).as_dict())
                partition_outputs[p] = part_out
                output.extend(part_out)
                reduce_costs.append(cost)
        except Exception as exc:
            exc.counters = counters
            raise
        with tracer.span("mr.schedule", phase="reduce"):
            reduce_stats = self._schedule_reduce_phase(reduce_costs, counters)
        counters.increment("job", "reduce_tasks", len(reduce_costs))
        return JobResult(
            job_name=job.name,
            output=output,
            counters=counters,
            map_stats=map_stats,
            reduce_stats=reduce_stats,
            partitions=partition_outputs,
        )

    # -- scheduling hooks (overridden by the fault-injecting engine) ---------

    def _schedule_map_phase(self, map_results, placements, counters: Counters) -> TaskStats:
        """Place the executed map tasks' costs on the simulated cluster."""
        if any(placements):
            # HDFS splits carry replica locations: schedule data-locally.
            return self.cluster.schedule_with_locality(
                [(r.cost, p) for r, p in zip(map_results, placements)], phase="map"
            )
        return self.cluster.schedule([r.cost for r in map_results], phase="map")

    def _schedule_reduce_phase(self, reduce_costs, counters: Counters) -> TaskStats:
        """Place the executed reduce tasks' costs on the simulated cluster."""
        return self.cluster.schedule(reduce_costs, phase="reduce")

    # -- phases ----------------------------------------------------------------

    def _run_map_task(self, job: JobSpec, records, ctx: TaskContext) -> MapTaskResult:
        emitted: list[tuple] = []
        cost = 0.0
        n_in = 0
        for record in records:
            key, value = record if isinstance(record, tuple) and len(record) == 2 else (None, record)
            n_in += 1
            for out in job.mapper(key, value, ctx):
                emitted.append(tuple(out))
            cost += job.map_cost(key, value) if job.map_cost else 1.0
        ctx.counters.increment("map", "input_records", n_in)
        ctx.counters.increment("map", "output_records", len(emitted))
        if job.combiner is not None:
            emitted = self._combine(job, emitted, ctx)
        return MapTaskResult(records=emitted, n_input_records=n_in, cost=cost)

    def _combine(self, job: JobSpec, records: list[tuple], ctx: TaskContext) -> list[tuple]:
        grouped: dict[Any, list] = defaultdict(list)
        for key, value in records:
            grouped[key].append(value)
        out: list[tuple] = []
        for key in grouped:
            out.extend(tuple(r) for r in job.combiner(key, grouped[key], ctx))
        ctx.counters.increment("combine", "output_records", len(out))
        return out

    def _shuffle(self, job: JobSpec, map_results: list[MapTaskResult], counters: Counters):
        partitioner = job.partitioner or _default_partitioner
        partitions: dict[int, list[tuple]] = defaultdict(list)
        n_shuffled = 0
        for result in map_results:
            for record in result.records:
                p = partitioner(record[0], job.n_reducers)
                if not 0 <= p < job.n_reducers:
                    raise ValueError(f"partitioner returned {p}, valid range [0, {job.n_reducers})")
                partitions[p].append(record)
                n_shuffled += 1
        counters.increment("shuffle", "records", n_shuffled)
        if job.sort_keys:
            for p in partitions:
                partitions[p].sort(key=_sort_key)
        return partitions

    def _run_reduce_task(self, job: JobSpec, records: list[tuple], ctx: TaskContext):
        grouped: dict[Any, list] = defaultdict(list)
        order: list = []
        for key, value in records:
            if key not in grouped:
                order.append(key)
            grouped[key].append(value)
        out: list[tuple] = []
        cost = 0.0
        for key in order:
            values = grouped[key]
            for rec in job.reducer(key, values, ctx):
                out.append(tuple(rec))
            cost += job.reduce_cost(key, values) if job.reduce_cost else float(len(values))
        ctx.counters.increment("reduce", "input_groups", len(order))
        ctx.counters.increment("reduce", "output_records", len(out))
        return out, cost
