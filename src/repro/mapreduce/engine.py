"""The MapReduce engine: map -> combine -> partition -> sort -> reduce.

Executes a :class:`~repro.mapreduce.types.JobSpec` over input splits with
full Hadoop semantics (per-split map tasks, optional combiner, hash
partitioning, per-partition key sort, one reduce call per key) while
tracking, for every task, an abstract *cost* that the simulated cluster
turns into a makespan. Execution is deterministic; *where* tasks run is the
engine's executor backend:

* the default :class:`~repro.mapreduce.executor.SerialExecutor` runs every
  task in-process (the historical behavior);
* a :class:`~repro.mapreduce.executor.ParallelExecutor` fans independent
  map tasks and per-partition reduce tasks out across worker processes and
  collects the results **in task order**, so outputs, shuffle partitioning
  and counter totals are bit-identical to a serial run — only the real
  wall-clock changes. Jobs whose callables cannot cross a process boundary
  (closures, lambdas) stay on the serial path automatically.

Task bodies are pure module-level functions (:func:`execute_map_task`,
:func:`execute_reduce_task`) so both backends — and the fault-injecting
engine's retries — run literally the same code.
"""

from __future__ import annotations

import os
import time
import zlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.mapreduce.cluster import SimulatedCluster, TaskStats
from repro.mapreduce.counters import Counters
from repro.mapreduce.executor import default_executor, is_picklable, load_batch, ship_batch
from repro.mapreduce.hdfs import FileSplit
from repro.mapreduce.types import JobSpec, MapTaskResult, RecordBatch
from repro.observability import get_tracer
from repro.observability.metrics import time_buckets

__all__ = [
    "TaskContext",
    "JobResult",
    "MapReduceEngine",
    "stable_hash",
    "approx_bytes",
    "execute_map_task",
    "execute_reduce_task",
    "execute_batch_map_task",
    "execute_batch_reduce_task",
    "DATA_PLANE_ENV",
    "data_plane_enabled",
    "resolve_data_plane",
]

#: Environment variable selecting the data plane ("record" disables batching).
DATA_PLANE_ENV = "REPRO_DATA_PLANE"


def data_plane_enabled() -> bool:
    """Whether batched execution is allowed (``REPRO_DATA_PLANE`` kill switch)."""
    return os.environ.get(DATA_PLANE_ENV, "").strip().lower() != "record"


def resolve_data_plane(mode: str | None = None) -> str:
    """Resolve a data-plane choice: explicit value > environment > batched."""
    if mode is None:
        raw = os.environ.get(DATA_PLANE_ENV, "").strip().lower()
        mode = raw if raw else "batched"
    if mode not in ("batched", "record"):
        raise ValueError(f"data plane must be 'batched' or 'record', got {mode!r}")
    return mode


def approx_bytes(obj) -> int:
    """Cheap recursive estimate of a payload's in-memory size.

    Exact byte accounting would mean pickling every record; traced runs only
    need enough fidelity to attribute shuffle volume and data skew, so numpy
    buffers count their ``nbytes``, strings/bytes their length, containers
    recurse with a small per-slot overhead, and scalars count one machine
    word. Only computed when tracing is enabled.
    """
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 * len(obj) + sum(approx_bytes(v) for v in obj)
    if isinstance(obj, dict):
        # Per-slot overhead charged like list/tuple (one word per stored
        # pointer, two pointers per entry), separate from the recursion.
        return 16 * len(obj) + sum(approx_bytes(k) + approx_bytes(v) for k, v in obj.items())
    return 8


def _validation_enabled() -> bool:
    """Whether the engine should self-check counter conservation.

    The substrate has no per-job config object, so only the global
    ``REPRO_VALIDATE`` switch applies here (lazy import: repro.verify sits
    above the substrate in the layering).
    """
    from repro.verify.invariants import validation_enabled

    return validation_enabled()


@dataclass
class TaskContext:
    """What a running task sees: its job parameters and shared counters."""

    job: JobSpec
    counters: Counters
    task_id: str = ""

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Bump a counter from inside a mapper/reducer."""
        self.counters.increment(group, name, amount)


@dataclass
class JobResult:
    """Everything a driver needs from a finished job."""

    job_name: str
    output: list[tuple]  # reduce output records (or map output for map-only jobs)
    counters: Counters
    map_stats: TaskStats
    reduce_stats: TaskStats
    partitions: dict[int, list[tuple]] = field(default_factory=dict)
    from_checkpoint: bool = False  # restored by job-flow recovery, not re-executed
    #: Columnar twin of ``output`` when the job ran on the batched path
    #: (None otherwise); downstream stages read it to stay columnar.
    output_batch: RecordBatch | None = None

    @property
    def makespan(self) -> float:
        """Simulated wall-clock: map phase + reduce phase (reduce waits for all maps)."""
        return self.map_stats.makespan + self.reduce_stats.makespan


def stable_hash(key: Any) -> int:
    """A process-independent hash for shuffle partitioning.

    Python's builtin ``hash`` is salted per process for ``str``/``bytes``
    (PYTHONHASHSEED), so hash partitioning with it shuffles string-keyed
    jobs differently across runs. CRC32 over a canonical ``(type, repr)``
    encoding is stable across processes, platforms, and hash seeds —
    matching Hadoop, whose HashPartitioner is deterministic.
    """
    data = f"{type(key).__name__}:{key!r}".encode("utf-8", "backslashreplace")
    return zlib.crc32(data)


def _default_partitioner(key: Any, n_partitions: int) -> int:
    return stable_hash(key) % n_partitions


def _sort_key(item: tuple) -> tuple:
    key = item[0]
    # Keys of mixed types sort by (type name, repr) to stay deterministic.
    return (type(key).__name__, repr(key))


# -- pure task bodies --------------------------------------------------------
#
# Module-level so that (a) worker processes can import them by reference and
# (b) serial, parallel, and fault-retried execution share one code path.


def _combine_records(job: JobSpec, records: list[tuple], ctx: TaskContext) -> list[tuple]:
    grouped: dict[Any, list] = defaultdict(list)
    for key, value in records:
        grouped[key].append(value)
    out: list[tuple] = []
    for key in grouped:
        out.extend(tuple(r) for r in job.combiner(key, grouped[key], ctx))
    ctx.counters.increment("combine", "output_records", len(out))
    return out


def execute_map_task(job: JobSpec, records, ctx: TaskContext) -> MapTaskResult:
    """Run one map task (mapper over every record, then the combiner)."""
    emitted: list[tuple] = []
    cost = 0.0
    n_in = 0
    for record in records:
        key, value = record if isinstance(record, tuple) and len(record) == 2 else (None, record)
        n_in += 1
        for out in job.mapper(key, value, ctx):
            emitted.append(tuple(out))
        cost += job.map_cost(key, value) if job.map_cost else 1.0
    ctx.counters.increment("map", "input_records", n_in)
    ctx.counters.increment("map", "output_records", len(emitted))
    if job.combiner is not None:
        emitted = _combine_records(job, emitted, ctx)
    return MapTaskResult(records=emitted, n_input_records=n_in, cost=cost)


def execute_reduce_task(job: JobSpec, records: list[tuple], ctx: TaskContext):
    """Run one reduce task (one reducer call per key, in first-seen key order)."""
    grouped: dict[Any, list] = defaultdict(list)
    order: list = []
    for key, value in records:
        if key not in grouped:
            order.append(key)
        grouped[key].append(value)
    out: list[tuple] = []
    cost = 0.0
    for key in order:
        values = grouped[key]
        for rec in job.reducer(key, values, ctx):
            out.append(tuple(rec))
        cost += job.reduce_cost(key, values) if job.reduce_cost else float(len(values))
    ctx.counters.increment("reduce", "input_groups", len(order))
    ctx.counters.increment("reduce", "output_records", len(out))
    return out, cost


def _map_task_worker(payload):
    """Process-pool entry point for one map task.

    Returns ``(status, value, counters, elapsed)`` instead of raising so the
    parent can merge partial counters in task order before surfacing an
    error — matching the serial engine's partial-state semantics exactly.
    """
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    job, records, task_id = payload
    counters = Counters()
    ctx = TaskContext(job=job, counters=counters, task_id=task_id)
    start = time.perf_counter()
    try:
        result = execute_map_task(job, records, ctx)
    except Exception as exc:  # surfaced (with counters) by the parent
        return ("error", exc, counters, time.perf_counter() - start)
    return ("ok", result, counters, time.perf_counter() - start)


def _reduce_task_worker(payload):
    """Process-pool entry point for one reduce task (same contract as map)."""
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    job, records, task_id = payload
    counters = Counters()
    ctx = TaskContext(job=job, counters=counters, task_id=task_id)
    start = time.perf_counter()
    try:
        out, cost = execute_reduce_task(job, records, ctx)
    except Exception as exc:
        return ("error", exc, counters, time.perf_counter() - start)
    return ("ok", (out, cost), counters, time.perf_counter() - start)


# -- batched task bodies -----------------------------------------------------
#
# The columnar twins of execute_map_task / execute_reduce_task. The contract
# is bit-identity with the record path: same counter totals, same costs (in
# the same floating-point summation order), same emitted records.


def _batch_map_cost(job: JobSpec, batch: RecordBatch) -> float:
    if job.map_cost is None:
        return float(len(batch))
    # _batched_enabled only admits cost models exposing the vectorized hook.
    return float(job.map_cost.batch_cost(batch))


def execute_batch_map_task(job: JobSpec, batch: RecordBatch, ctx: TaskContext) -> MapTaskResult:
    """Run one batched map task (one ``batch_mapper`` call per split)."""
    out = job.batch_mapper(batch, ctx)
    if not isinstance(out, RecordBatch):
        raise TypeError(
            f"batch_mapper must return a RecordBatch, got {type(out).__name__}"
        )
    cost = _batch_map_cost(job, batch)
    ctx.counters.increment("map", "input_records", len(batch))
    ctx.counters.increment("map", "output_records", len(out))
    return MapTaskResult(records=out, n_input_records=len(batch), cost=cost)


def execute_batch_reduce_task(job: JobSpec, batch: RecordBatch, ctx: TaskContext):
    """Run one batched reduce task (one ``batch_reducer`` call per key group).

    Groups are formed with one ``np.unique`` + stable argsort pass and
    visited in first-seen key order — the record path's grouping semantics —
    so reducer call order, cost summation order, and output order all match.
    """
    keys = batch.keys
    uniq, first_idx, inv = np.unique(keys, return_index=True, return_inverse=True)
    order = np.argsort(inv, kind="stable")
    starts = np.searchsorted(inv[order], np.arange(uniq.shape[0]))
    ends = np.append(starts[1:], keys.shape[0])
    rank = np.argsort(first_idx, kind="stable")
    out_batches: list[RecordBatch] = []
    cost = 0.0
    n_out = 0
    for u in rank.tolist():
        group = batch.take(order[starts[u] : ends[u]])
        key = uniq[u]
        result = job.batch_reducer(key, group, ctx)
        if not isinstance(result, RecordBatch):
            raise TypeError(
                f"batch_reducer must return a RecordBatch, got {type(result).__name__}"
            )
        if len(result):
            out_batches.append(result)
        n_out += len(result)
        cost += job.reduce_cost(key, group) if job.reduce_cost else float(len(group))
    ctx.counters.increment("reduce", "input_groups", int(uniq.shape[0]))
    ctx.counters.increment("reduce", "output_records", n_out)
    out = RecordBatch.concat(out_batches) if out_batches else None
    return out, cost


def _batch_map_task_worker(payload):
    """Process-pool entry point for one batched map task."""
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    job, shipped, task_id = payload
    counters = Counters()
    ctx = TaskContext(job=job, counters=counters, task_id=task_id)
    start = time.perf_counter()
    try:
        batch = load_batch(shipped)
        result = execute_batch_map_task(job, batch, ctx)
    except Exception as exc:
        return ("error", exc, counters, time.perf_counter() - start)
    return ("ok", result, counters, time.perf_counter() - start)


def _batch_reduce_task_worker(payload):
    """Process-pool entry point for one batched reduce task."""
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    job, shipped, task_id = payload
    counters = Counters()
    ctx = TaskContext(job=job, counters=counters, task_id=task_id)
    start = time.perf_counter()
    try:
        batch = load_batch(shipped)
        out, cost = execute_batch_reduce_task(job, batch, ctx)
    except Exception as exc:
        return ("error", exc, counters, time.perf_counter() - start)
    return ("ok", (out, cost), counters, time.perf_counter() - start)


class MapReduceEngine:
    """Runs JobSpecs on a :class:`SimulatedCluster`.

    Parameters
    ----------
    cluster:
        The simulated cluster providing slots (default: one single-slot-ish
        node, i.e. serial semantics).
    executor:
        Execution backend for task compute. Default:
        :func:`~repro.mapreduce.executor.default_executor` — serial unless
        ``REPRO_N_JOBS`` asks for workers. The simulated *makespan* is
        unaffected by the backend; only real wall-clock is.
    """

    def __init__(self, cluster: SimulatedCluster | None = None, *, executor=None, autoscaler=None):
        self.cluster = cluster if cluster is not None else SimulatedCluster(1)
        self.executor = executor if executor is not None else default_executor()
        # Between-phase resize hook (see repro.mapreduce.autoscale); a bound
        # JobFlow installs its autoscaler here for the duration of a run.
        self.autoscaler = autoscaler

    # -- public API ----------------------------------------------------------

    def run(self, job: JobSpec, splits: list[FileSplit] | list[list[tuple]]) -> JobResult:
        """Execute ``job`` over ``splits`` and return outputs + statistics.

        ``splits`` may be HDFS :class:`FileSplit` objects or plain lists of
        ``(key, value)`` tuples (each list = one map task).
        """
        tracer = get_tracer()
        with tracer.span("mr.job", job=job.name, n_splits=len(splits)) as job_span:
            result = self._run_job(job, splits, tracer, job_span)
            job_span.set("makespan", result.makespan)
            job_span.set("n_output_records", len(result.output))
        return result

    def _parallel_tasks_enabled(self, job: JobSpec) -> bool:
        """Whether this job's tasks may run on the parallel backend.

        Requires a parallel executor, un-overridden task hooks (the fault
        engine's per-attempt retries are inherently in-process), and a
        picklable job spec. Anything else silently stays serial — behavior,
        not performance, is the contract.
        """
        if not getattr(self.executor, "parallel", False):
            return False
        if type(self)._run_map_task is not MapReduceEngine._run_map_task:
            return False
        if type(self)._run_reduce_task is not MapReduceEngine._run_reduce_task:
            return False
        return is_picklable(job)

    def _batched_enabled(self, job: JobSpec) -> bool:
        """Whether this job may run on the batched columnar path.

        Requires batched twins for every record-path hook the job uses, an
        un-subclassed engine core (the fault engine's per-attempt retries
        and any test double override the record hooks, so they fall back to
        the record path cleanly), a vectorizable cost model, and the
        ``REPRO_DATA_PLANE`` switch not forcing "record". Falling back is
        silent: behavior, not performance, is the contract.
        """
        if job.batch_mapper is None or not data_plane_enabled():
            return False
        if job.combiner is not None:
            return False
        if job.reducer is not None:
            if job.batch_reducer is None:
                return False
            if job.n_reducers > 1 and job.batch_partitioner is None:
                return False
        if job.map_cost is not None and not hasattr(job.map_cost, "batch_cost"):
            return False
        cls = type(self)
        for hook in ("_run_map_task", "_run_reduce_task", "_shuffle", "_combine"):
            if getattr(cls, hook) is not getattr(MapReduceEngine, hook):
                return False
        return True

    @staticmethod
    def _as_batches(split_records) -> list[RecordBatch] | None:
        """Every split as a RecordBatch, or ``None`` (→ record path)."""
        batches = []
        for records in split_records:
            if isinstance(records, RecordBatch):
                batches.append(records)
                continue
            batch = RecordBatch.from_records(records)
            if batch is None:
                return None
            batches.append(batch)
        return batches

    def _run_job(self, job: JobSpec, splits, tracer, job_span) -> JobResult:
        parallel = self._parallel_tasks_enabled(job)
        if tracer.enabled:
            job_span.set("executor", self.executor.describe() if parallel else "serial")

        # -- map phase -------------------------------------------------------
        split_records = []
        placements = []
        for split in splits:
            if isinstance(split, FileSplit):
                split_records.append(split.records)
                placements.append(split.preferred_nodes)
            else:
                split_records.append(split)
                placements.append(())
        batches = self._as_batches(split_records) if self._batched_enabled(job) else None
        if tracer.enabled:
            job_span.set("data_plane", "batched" if batches is not None else "record")
        if batches is not None:
            return self._run_job_batched(job, batches, placements, tracer, parallel)
        # Columnar splits run through the record path whenever the job (or
        # the engine subclass) cannot take the batched one.
        split_records = [
            r.to_records() if isinstance(r, RecordBatch) else r for r in split_records
        ]
        counters = Counters()
        validate = _validation_enabled()
        phase_start = time.perf_counter()
        if parallel:
            map_results = self._map_phase_parallel(job, split_records, counters, tracer)
        else:
            map_results = self._map_phase_serial(job, split_records, counters, tracer)
        map_wall = time.perf_counter() - phase_start
        with tracer.span("mr.schedule", phase="map"):
            map_stats = self._schedule_map_phase(map_results, placements, counters)
        map_stats.real_elapsed = map_wall
        counters.increment("job", "map_tasks", len(map_results))
        if validate:
            # Counter conservation: retries and parallel fan-out must tally
            # each input record exactly once (the bit-identity contract).
            from repro.verify.invariants import check_counter_equals

            check_counter_equals(
                counters, "map", "input_records",
                sum(len(records) for records in split_records),
                stage=f"mr.job:{job.name}",
            )

        if job.reducer is None:
            output = [rec for r in map_results for rec in r.records]
            return JobResult(
                job_name=job.name,
                output=output,
                counters=counters,
                map_stats=map_stats,
                reduce_stats=TaskStats(n_tasks=0, total_cost=0.0, makespan=0.0),
            )

        # -- shuffle + reduce phase -----------------------------------------
        with tracer.span("mr.shuffle") as shuffle_span:
            partitions = self._shuffle(job, map_results, counters)
            shuffle_span.set("n_partitions", len(partitions))
            shuffle_span.set("n_records", counters.value("shuffle", "records"))
            if tracer.enabled:
                # Per-partition volumes, in sorted-partition (= reduce task)
                # order: the raw material for skew attribution in the report.
                ordered = sorted(partitions)
                shuffle_span.set(
                    "partition_records", [len(partitions[p]) for p in ordered]
                )
                shuffle_span.set(
                    "bytes", sum(approx_bytes(partitions[p]) for p in ordered)
                )
        phase_start = time.perf_counter()
        if parallel:
            output, partition_outputs, reduce_costs = self._reduce_phase_parallel(
                job, partitions, counters, tracer
            )
        else:
            output, partition_outputs, reduce_costs = self._reduce_phase_serial(
                job, partitions, counters, tracer
            )
        reduce_wall = time.perf_counter() - phase_start
        # Between-phase decision point: the map phase is scheduled and the
        # reduce queue is known, but the reduce phase is not yet placed —
        # resizing here changes the reduce schedule (makespan only; task
        # results are already computed, so outputs stay bit-identical).
        if self.autoscaler is not None:
            self.autoscaler.between_phases(job.name, map_stats, reduce_costs)
        with tracer.span("mr.schedule", phase="reduce"):
            reduce_stats = self._schedule_reduce_phase(reduce_costs, counters)
        reduce_stats.real_elapsed = reduce_wall
        counters.increment("job", "reduce_tasks", len(reduce_costs))
        if validate:
            from repro.verify.invariants import check_counter_equals

            check_counter_equals(
                counters, "reduce", "output_records", len(output),
                stage=f"mr.job:{job.name}",
            )
        return JobResult(
            job_name=job.name,
            output=output,
            counters=counters,
            map_stats=map_stats,
            reduce_stats=reduce_stats,
            partitions=partition_outputs,
        )

    # -- batched columnar path ----------------------------------------------

    def _run_job_batched(self, job, batches, placements, tracer, parallel) -> JobResult:
        """The columnar twin of the record-path body of :meth:`_run_job`.

        Phase structure, span names/attributes, counter totals, scheduling
        inputs, and byte accounting all mirror the record path bit for bit;
        only the per-record Python loops are replaced by array passes.
        """
        counters = Counters()
        validate = _validation_enabled()
        phase_start = time.perf_counter()
        if parallel:
            map_results = self._batch_map_phase_parallel(job, batches, counters, tracer)
        else:
            map_results = self._batch_map_phase_serial(job, batches, counters, tracer)
        map_wall = time.perf_counter() - phase_start
        with tracer.span("mr.schedule", phase="map"):
            map_stats = self._schedule_map_phase(map_results, placements, counters)
        map_stats.real_elapsed = map_wall
        counters.increment("job", "map_tasks", len(map_results))
        if validate:
            from repro.verify.invariants import check_counter_equals

            check_counter_equals(
                counters, "map", "input_records",
                sum(len(batch) for batch in batches),
                stage=f"mr.job:{job.name}",
            )

        if job.reducer is None:
            out_batches = [r.records for r in map_results if len(r.records)]
            output_batch = RecordBatch.concat(out_batches) if out_batches else None
            output = output_batch.to_records() if output_batch is not None else []
            return JobResult(
                job_name=job.name,
                output=output,
                counters=counters,
                map_stats=map_stats,
                reduce_stats=TaskStats(n_tasks=0, total_cost=0.0, makespan=0.0),
                output_batch=output_batch,
            )

        # -- shuffle + reduce phase -----------------------------------------
        with tracer.span("mr.shuffle") as shuffle_span:
            partitions = self._shuffle_batched(job, map_results, counters)
            shuffle_span.set("n_partitions", len(partitions))
            shuffle_span.set("n_records", counters.value("shuffle", "records"))
            if tracer.enabled:
                ordered = sorted(partitions)
                shuffle_span.set(
                    "partition_records", [len(partitions[p]) for p in ordered]
                )
                shuffle_span.set(
                    "bytes", sum(approx_bytes(partitions[p]) for p in ordered)
                )
        phase_start = time.perf_counter()
        if parallel:
            output, partition_outputs, reduce_costs, output_batch = (
                self._batch_reduce_phase_parallel(job, partitions, counters, tracer)
            )
        else:
            output, partition_outputs, reduce_costs, output_batch = (
                self._batch_reduce_phase_serial(job, partitions, counters, tracer)
            )
        reduce_wall = time.perf_counter() - phase_start
        # Same between-phase decision point as the record path — identical
        # scheduling inputs keep the two data planes' makespans bit-identical.
        if self.autoscaler is not None:
            self.autoscaler.between_phases(job.name, map_stats, reduce_costs)
        with tracer.span("mr.schedule", phase="reduce"):
            reduce_stats = self._schedule_reduce_phase(reduce_costs, counters)
        reduce_stats.real_elapsed = reduce_wall
        counters.increment("job", "reduce_tasks", len(reduce_costs))
        if validate:
            from repro.verify.invariants import check_counter_equals

            check_counter_equals(
                counters, "reduce", "output_records", len(output),
                stage=f"mr.job:{job.name}",
            )
        return JobResult(
            job_name=job.name,
            output=output,
            counters=counters,
            map_stats=map_stats,
            reduce_stats=reduce_stats,
            partitions=partition_outputs,
            output_batch=output_batch,
        )

    def _shuffle_batched(self, job: JobSpec, map_results, counters: Counters):
        """Vectorized shuffle: one partition-id pass + argsort grouping.

        Reproduces the record shuffle exactly: same partition membership
        (via ``batch_partitioner``), same record order within a partition
        (map-task emission order, then — under ``sort_keys`` — a stable
        sort by the key's decimal string, which orders identically to the
        record path's ``repr``-based comparator for uniform numeric keys).
        """
        out_batches = [r.records for r in map_results if len(r.records)]
        if not out_batches:
            counters.increment("shuffle", "records", 0)
            return {}
        merged = RecordBatch.concat(out_batches)
        n = len(merged)
        if job.n_reducers == 1:
            pids = np.zeros(n, dtype=np.int64)
        else:
            pids = np.asarray(job.batch_partitioner(merged.keys, job.n_reducers))
            bad = (pids < 0) | (pids >= job.n_reducers)
            if bad.any():
                p = int(pids[np.argmax(bad)])
                raise ValueError(
                    f"partitioner returned {p}, valid range [0, {job.n_reducers})"
                )
        counters.increment("shuffle", "records", n)
        order = np.argsort(pids, kind="stable")
        sorted_pids = pids[order]
        present = np.unique(sorted_pids)
        starts = np.searchsorted(sorted_pids, present, side="left")
        ends = np.searchsorted(sorted_pids, present, side="right")
        partitions: dict[int, RecordBatch] = {}
        for p, s, e in zip(present.tolist(), starts.tolist(), ends.tolist()):
            part = merged.take(order[s:e])
            if job.sort_keys:
                part = part.take(np.argsort(part.keys.astype(str), kind="stable"))
            partitions[int(p)] = part
        return partitions

    def _batch_map_phase_serial(self, job, batches, counters, tracer):
        map_results = []
        try:
            for i, batch in enumerate(batches):
                ctx = TaskContext(job=job, counters=counters, task_id=f"map-{i}")
                with tracer.span("mr.map_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    start = time.perf_counter()
                    result = execute_batch_map_task(job, batch, ctx)
                    if tracer.enabled:
                        elapsed = time.perf_counter() - start
                        task_span.set("cost", result.cost)
                        task_span.set("n_input_records", result.n_input_records)
                        task_span.set("n_output_records", len(result.records))
                        task_span.set("bytes_in", approx_bytes(batch))
                        task_span.set("bytes_out", approx_bytes(result.records))
                        task_span.set("counters", counters.diff(before).as_dict())
                        tracer.metrics.histogram(
                            "mr.task_seconds", time_buckets()
                        ).observe(elapsed)
                map_results.append(result)
        except Exception as exc:
            exc.counters = counters
            raise
        return map_results

    def _batch_map_phase_parallel(self, job, batches, counters, tracer):
        payloads = []
        owners = []
        for i, batch in enumerate(batches):
            shipped, own = ship_batch(batch)
            owners.extend(own)
            payloads.append((job, shipped, f"map-{i}"))
        try:
            outcomes = self.executor.map_ordered(_batch_map_task_worker, payloads)
        finally:
            for handle in owners:
                handle.unlink()
        map_results = []
        for i, (status, value, task_counters, elapsed) in enumerate(outcomes):
            counters.merge(task_counters)
            if status == "error":
                value.counters = counters
                raise value
            with tracer.span("mr.map_task", task=f"map-{i}") as task_span:
                if tracer.enabled:
                    task_span.set("cost", value.cost)
                    task_span.set("n_input_records", value.n_input_records)
                    task_span.set("n_output_records", len(value.records))
                    task_span.set("bytes_in", approx_bytes(batches[i]))
                    task_span.set("bytes_out", approx_bytes(value.records))
                    task_span.set("counters", task_counters.as_dict())
                    task_span.set("worker_time", elapsed)
                    tracer.metrics.histogram(
                        "mr.task_seconds", time_buckets()
                    ).observe(elapsed)
            map_results.append(value)
        return map_results

    def _batch_reduce_phase_serial(self, job, partitions, counters, tracer):
        output: list[tuple] = []
        reduce_costs = []
        partition_outputs: dict[int, list[tuple]] = {}
        part_batches: list[RecordBatch] = []
        try:
            for p in sorted(partitions):
                ctx = TaskContext(job=job, counters=counters, task_id=f"reduce-{p}")
                with tracer.span("mr.reduce_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    start = time.perf_counter()
                    part_out, cost = execute_batch_reduce_task(job, partitions[p], ctx)
                    if tracer.enabled:
                        elapsed = time.perf_counter() - start
                        task_span.set("cost", cost)
                        task_span.set("n_input_records", len(partitions[p]))
                        task_span.set("n_output_records", len(part_out) if part_out else 0)
                        task_span.set("bytes_in", approx_bytes(partitions[p]))
                        task_span.set("bytes_out", approx_bytes(part_out) if part_out else 0)
                        task_span.set("counters", counters.diff(before).as_dict())
                        tracer.metrics.histogram(
                            "mr.task_seconds", time_buckets()
                        ).observe(elapsed)
                part_records = part_out.to_records() if part_out is not None else []
                if part_out is not None:
                    part_batches.append(part_out)
                partition_outputs[p] = part_records
                output.extend(part_records)
                reduce_costs.append(cost)
        except Exception as exc:
            exc.counters = counters
            raise
        output_batch = RecordBatch.concat(part_batches) if part_batches else None
        return output, partition_outputs, reduce_costs, output_batch

    def _batch_reduce_phase_parallel(self, job, partitions, counters, tracer):
        order = sorted(partitions)
        payloads = []
        owners = []
        for p in order:
            shipped, own = ship_batch(partitions[p])
            owners.extend(own)
            payloads.append((job, shipped, f"reduce-{p}"))
        try:
            outcomes = self.executor.map_ordered(_batch_reduce_task_worker, payloads)
        finally:
            for handle in owners:
                handle.unlink()
        output: list[tuple] = []
        reduce_costs = []
        partition_outputs: dict[int, list[tuple]] = {}
        part_batches: list[RecordBatch] = []
        for p, (status, value, task_counters, elapsed) in zip(order, outcomes):
            counters.merge(task_counters)
            if status == "error":
                value.counters = counters
                raise value
            part_out, cost = value
            with tracer.span("mr.reduce_task", task=f"reduce-{p}") as task_span:
                if tracer.enabled:
                    task_span.set("cost", cost)
                    task_span.set("n_input_records", len(partitions[p]))
                    task_span.set("n_output_records", len(part_out) if part_out else 0)
                    task_span.set("bytes_in", approx_bytes(partitions[p]))
                    task_span.set("bytes_out", approx_bytes(part_out) if part_out else 0)
                    task_span.set("counters", task_counters.as_dict())
                    task_span.set("worker_time", elapsed)
                    tracer.metrics.histogram(
                        "mr.task_seconds", time_buckets()
                    ).observe(elapsed)
            part_records = part_out.to_records() if part_out is not None else []
            if part_out is not None:
                part_batches.append(part_out)
            partition_outputs[p] = part_records
            output.extend(part_records)
            reduce_costs.append(cost)
        output_batch = RecordBatch.concat(part_batches) if part_batches else None
        return output, partition_outputs, reduce_costs, output_batch

    # -- phase drivers (serial / parallel) -----------------------------------

    def _map_phase_serial(self, job, split_records, counters, tracer):
        map_results = []
        try:
            for i, records in enumerate(split_records):
                ctx = TaskContext(job=job, counters=counters, task_id=f"map-{i}")
                with tracer.span("mr.map_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    start = time.perf_counter()
                    result = self._run_map_task(job, records, ctx)
                    if tracer.enabled:
                        elapsed = time.perf_counter() - start
                        task_span.set("cost", result.cost)
                        task_span.set("n_input_records", result.n_input_records)
                        task_span.set("n_output_records", len(result.records))
                        task_span.set("bytes_in", approx_bytes(records))
                        task_span.set("bytes_out", approx_bytes(result.records))
                        task_span.set("counters", counters.diff(before).as_dict())
                        tracer.metrics.histogram(
                            "mr.task_seconds", time_buckets()
                        ).observe(elapsed)
                map_results.append(result)
        except Exception as exc:
            # Let structured error handling upstream (JobFlowError) report
            # the partial counter state of the failed job.
            exc.counters = counters
            raise
        return map_results

    def _map_phase_parallel(self, job, split_records, counters, tracer):
        payloads = [
            (job, records, f"map-{i}") for i, records in enumerate(split_records)
        ]
        outcomes = self.executor.map_ordered(_map_task_worker, payloads)
        map_results = []
        for i, (status, value, task_counters, elapsed) in enumerate(outcomes):
            # Merge in task order: identical totals to the serial shared-
            # counter path, and on error the merged prefix (plus the failing
            # task's partial increments) matches serial partial state.
            counters.merge(task_counters)
            if status == "error":
                value.counters = counters
                raise value
            with tracer.span("mr.map_task", task=f"map-{i}") as task_span:
                if tracer.enabled:
                    task_span.set("cost", value.cost)
                    task_span.set("n_input_records", value.n_input_records)
                    task_span.set("n_output_records", len(value.records))
                    task_span.set("bytes_in", approx_bytes(split_records[i]))
                    task_span.set("bytes_out", approx_bytes(value.records))
                    task_span.set("counters", task_counters.as_dict())
                    task_span.set("worker_time", elapsed)
                    tracer.metrics.histogram(
                        "mr.task_seconds", time_buckets()
                    ).observe(elapsed)
            map_results.append(value)
        return map_results

    def _reduce_phase_serial(self, job, partitions, counters, tracer):
        output: list[tuple] = []
        reduce_costs = []
        partition_outputs: dict[int, list[tuple]] = {}
        try:
            for p in sorted(partitions):
                ctx = TaskContext(job=job, counters=counters, task_id=f"reduce-{p}")
                with tracer.span("mr.reduce_task", task=ctx.task_id) as task_span:
                    before = counters.copy() if tracer.enabled else None
                    start = time.perf_counter()
                    part_out, cost = self._run_reduce_task(job, partitions[p], ctx)
                    if tracer.enabled:
                        elapsed = time.perf_counter() - start
                        task_span.set("cost", cost)
                        task_span.set("n_input_records", len(partitions[p]))
                        task_span.set("n_output_records", len(part_out))
                        task_span.set("bytes_in", approx_bytes(partitions[p]))
                        task_span.set("bytes_out", approx_bytes(part_out))
                        task_span.set("counters", counters.diff(before).as_dict())
                        tracer.metrics.histogram(
                            "mr.task_seconds", time_buckets()
                        ).observe(elapsed)
                partition_outputs[p] = part_out
                output.extend(part_out)
                reduce_costs.append(cost)
        except Exception as exc:
            exc.counters = counters
            raise
        return output, partition_outputs, reduce_costs

    def _reduce_phase_parallel(self, job, partitions, counters, tracer):
        order = sorted(partitions)
        payloads = [(job, partitions[p], f"reduce-{p}") for p in order]
        outcomes = self.executor.map_ordered(_reduce_task_worker, payloads)
        output: list[tuple] = []
        reduce_costs = []
        partition_outputs: dict[int, list[tuple]] = {}
        for p, (status, value, task_counters, elapsed) in zip(order, outcomes):
            counters.merge(task_counters)
            if status == "error":
                value.counters = counters
                raise value
            part_out, cost = value
            with tracer.span("mr.reduce_task", task=f"reduce-{p}") as task_span:
                if tracer.enabled:
                    task_span.set("cost", cost)
                    task_span.set("n_input_records", len(partitions[p]))
                    task_span.set("n_output_records", len(part_out))
                    task_span.set("bytes_in", approx_bytes(partitions[p]))
                    task_span.set("bytes_out", approx_bytes(part_out))
                    task_span.set("counters", task_counters.as_dict())
                    task_span.set("worker_time", elapsed)
                    tracer.metrics.histogram(
                        "mr.task_seconds", time_buckets()
                    ).observe(elapsed)
            partition_outputs[p] = part_out
            output.extend(part_out)
            reduce_costs.append(cost)
        return output, partition_outputs, reduce_costs

    # -- scheduling hooks (overridden by the fault-injecting engine) ---------

    def _schedule_map_phase(self, map_results, placements, counters: Counters) -> TaskStats:
        """Place the executed map tasks' costs on the simulated cluster."""
        if any(placements):
            # HDFS splits carry replica locations: schedule data-locally.
            return self.cluster.schedule_with_locality(
                [(r.cost, p) for r, p in zip(map_results, placements)], phase="map"
            )
        return self.cluster.schedule([r.cost for r in map_results], phase="map")

    def _schedule_reduce_phase(self, reduce_costs, counters: Counters) -> TaskStats:
        """Place the executed reduce tasks' costs on the simulated cluster."""
        return self.cluster.schedule(reduce_costs, phase="reduce")

    # -- task hooks (overridden by the fault-injecting engine) ---------------

    def _run_map_task(self, job: JobSpec, records, ctx: TaskContext) -> MapTaskResult:
        return execute_map_task(job, records, ctx)

    def _combine(self, job: JobSpec, records: list[tuple], ctx: TaskContext) -> list[tuple]:
        return _combine_records(job, records, ctx)

    def _shuffle(self, job: JobSpec, map_results: list[MapTaskResult], counters: Counters):
        partitioner = job.partitioner or _default_partitioner
        partitions: dict[int, list[tuple]] = defaultdict(list)
        n_shuffled = 0
        for result in map_results:
            for record in result.records:
                p = partitioner(record[0], job.n_reducers)
                if not 0 <= p < job.n_reducers:
                    raise ValueError(f"partitioner returned {p}, valid range [0, {job.n_reducers})")
                partitions[p].append(record)
                n_shuffled += 1
        counters.increment("shuffle", "records", n_shuffled)
        if job.sort_keys:
            for p in partitions:
                partitions[p].sort(key=_sort_key)
        return partitions

    def _run_reduce_task(self, job: JobSpec, records: list[tuple], ctx: TaskContext):
        return execute_reduce_task(job, records, ctx)
