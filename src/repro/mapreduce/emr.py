"""Elastic-MapReduce-like service: S3-like storage + on-demand clusters.

Mirrors the paper's Section 5.1 workflow: upload inputs to S3, request a
job flow on a chosen number of EC2 instances, run the steps, collect the
results from S3, terminate the flow. Provisioning here is instant (the
elasticity *effect* — makespan scaling with node count — is what the
simulated cluster reproduces; EMR's spin-up latency is orthogonal to the
paper's Table 3, which reports processing time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.cluster import EMR_NODE_CONFIG, NodeConfig, SimulatedCluster
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.hdfs import SimulatedHDFS
from repro.mapreduce.job import JobFlow
from repro.mapreduce.storage import ResilientStore, RetryPolicy, S3Store

__all__ = ["S3Store", "ElasticMapReduce"]


@dataclass
class _ProvisionedFlow:
    flow_id: str
    flow: JobFlow
    n_nodes: int
    terminated: bool = False


class ElasticMapReduce:
    """The EMR front-end: provision job flows against shared S3 storage.

    Parameters
    ----------
    node_config:
        Per-node resources of provisioned clusters (Table 2 defaults).
    executor:
        Task-compute backend shared by provisioned engines (``None``: each
        engine resolves from ``REPRO_N_JOBS``).
    store:
        The raw object store backing the service (``None``: a fresh
        :class:`S3Store`). Pass a
        :class:`~repro.mapreduce.storage.ChaosStore` to run the whole
        storage plane under an injected fault schedule.
    retry:
        Backoff/deadline policy for :attr:`storage`, the hardened
        :class:`~repro.mapreduce.storage.ResilientStore` client every
        driver artifact and job-flow checkpoint goes through.
    """

    def __init__(
        self,
        *,
        node_config: NodeConfig = EMR_NODE_CONFIG,
        executor=None,
        store=None,
        retry: RetryPolicy | None = None,
    ):
        self.s3 = store if store is not None else S3Store()
        self.storage = ResilientStore.wrap(self.s3, retry=retry)
        self.node_config = node_config
        self.executor = executor  # None: each engine resolves from REPRO_N_JOBS
        self._flows: dict[str, _ProvisionedFlow] = {}
        self._next_id = 0

    def create_job_flow(
        self, n_nodes: int, *, split_size: int = 1024, checkpoint: bool = True, autoscaler=None
    ) -> tuple[str, JobFlow]:
        """Provision a cluster of ``n_nodes`` and return (flow_id, JobFlow).

        With ``checkpoint`` on (the default), completed job steps persist
        their outputs to S3 under ``{flow_id}/checkpoints/`` so the flow can
        be resumed after a driver crash via :meth:`resume_job_flow`. An
        ``autoscaler`` (:class:`~repro.mapreduce.autoscale.Autoscaler`)
        makes the provisioned size elastic: it resizes the cluster between
        phases and steps, with its decisions checkpointed next to the
        flow's so resume replays the same scaling schedule.
        """
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        cluster = SimulatedCluster(n_nodes, node=self.node_config)
        flow_id = f"j-{self._next_id:06d}"
        flow = JobFlow(
            engine=MapReduceEngine(cluster, executor=self.executor),
            fs=SimulatedHDFS(
                n_nodes, replication=self.node_config.replication, default_split_size=split_size
            ),
            checkpoint_store=self.storage if checkpoint else None,
            checkpoint_prefix=f"{flow_id}/checkpoints",
            autoscaler=autoscaler,
        )
        self._next_id += 1
        self._flows[flow_id] = _ProvisionedFlow(flow_id=flow_id, flow=flow, n_nodes=n_nodes)
        return flow_id, flow

    def run_job_flow(self, flow_id: str, *, max_steps: int | None = None) -> list:
        """Execute the steps of a provisioned flow.

        ``max_steps`` stops the driver loop early, leaving the flow
        incomplete — the chaos tests use it to simulate a driver crash
        between steps.
        """
        entry = self._flow(flow_id)
        if entry.terminated:
            raise RuntimeError(f"job flow {flow_id} is terminated")
        return entry.flow.run(max_steps=max_steps)

    def resume_job_flow(self, flow_id: str) -> list:
        """Restart an interrupted flow from its last completed checkpoint.

        Completed job steps are restored from S3 instead of re-executed;
        driver-side action steps re-run (they are deterministic). The flow
        must still be provisioned and not terminated.
        """
        entry = self._flow(flow_id)
        if entry.terminated:
            raise RuntimeError(f"job flow {flow_id} is terminated")
        return entry.flow.run(resume=True)

    def terminate(self, flow_id: str) -> None:
        """Release the flow's cluster (idempotent)."""
        self._flow(flow_id).terminated = True

    def flow_status(self, flow_id: str) -> dict:
        """Status snapshot: node count, steps, completion, makespan."""
        entry = self._flow(flow_id)
        return {
            "flow_id": entry.flow_id,
            "n_nodes": entry.n_nodes,
            "n_nodes_current": entry.flow.engine.cluster.n_nodes,
            "n_steps": len(entry.flow.steps),
            "completed_steps": len(entry.flow.results),
            "restored_steps": list(entry.flow.restored_steps),
            "terminated": entry.terminated,
            "makespan": entry.flow.makespan,
        }

    def _flow(self, flow_id: str) -> _ProvisionedFlow:
        try:
            return self._flows[flow_id]
        except KeyError:
            raise KeyError(f"unknown job flow {flow_id!r}") from None
