"""p-stable-distribution LSH (the E2LSH family of Datar et al.).

One of the families the paper surveys (Section 3.2). Each hash is
``floor((a . x + b) / w)`` with ``a`` drawn from a p-stable distribution
(Gaussian for the Euclidean / p = 2 case) and ``b`` uniform in ``[0, w)``.
Unlike the binary families this produces integer hashes; we reduce each to
one bit (parity) when a binary signature is requested so that it composes
with the same packed-signature bucketing machinery.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.hamming import pack_bits
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d, check_positive

__all__ = ["StableDistributionHasher"]


class StableDistributionHasher:
    """M-function p-stable LSH for Euclidean distance.

    Parameters
    ----------
    n_hashes:
        Number of hash functions M.
    bucket_width:
        The quantisation width ``w``; larger widths collide more aggressively.
    seed:
        Randomness for the projection vectors and offsets.
    """

    def __init__(self, n_hashes: int, *, bucket_width: float = 1.0, seed=None):
        if n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
        check_positive(bucket_width, name="bucket_width")
        self.n_hashes = int(n_hashes)
        self.bucket_width = float(bucket_width)
        self._rng = as_rng(seed)
        self._a: np.ndarray | None = None
        self._b: np.ndarray | None = None

    def fit(self, X) -> "StableDistributionHasher":
        """Draw Gaussian projection vectors and uniform offsets."""
        X = check_2d(X)
        d = X.shape[1]
        self._a = self._rng.standard_normal((d, self.n_hashes))
        self._b = self._rng.uniform(0.0, self.bucket_width, size=self.n_hashes)
        return self

    def hash_integers(self, X) -> np.ndarray:
        """(n, M) integer hash values ``floor((a.x + b)/w)``."""
        if self._a is None:
            raise RuntimeError("hasher is not fitted; call fit() first")
        X = check_2d(X)
        return np.floor((X @ self._a + self._b) / self.bucket_width).astype(np.int64)

    def hash_bits(self, X) -> np.ndarray:
        """(n, M) 0/1 bits: parity of each integer hash."""
        return (self.hash_integers(X) & 1).astype(np.uint8)

    def hash(self, X) -> np.ndarray:
        """Packed uint64 signatures from the parity bits."""
        return pack_bits(self.hash_bits(X))

    def fit_hash(self, X) -> np.ndarray:
        """Convenience: fit then hash the same data."""
        return self.fit(X).hash(X)
