"""k-d tree — the splitting principle behind the paper's threshold rule.

Section 3.3 derives the hash hyperplane/threshold selection from the k-d
tree: every node splits space with an axis-parallel hyperplane. This module
implements a complete k-d tree (build, nearest neighbour, range query) both
as a substrate in its own right and to validate that the hashing rule's
splits behave like k-d tree splits (tests compare the two).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_2d

__all__ = ["KDNode", "KDTree"]


@dataclass
class KDNode:
    """One k-d tree node: a splitting (dimension, value) and its subtrees."""

    index: int  # index of the pivot point in the original data
    dimension: int  # splitting axis
    value: float  # splitting threshold (pivot's coordinate on the axis)
    left: "KDNode | None" = None
    right: "KDNode | None" = None


class KDTree:
    """Median-split k-d tree over an (n, d) point set.

    The splitting axis cycles through dimensions ranked by span (widest
    first), mirroring the paper's preference for high-span dimensions; the
    split value is the median point, giving a balanced tree of depth
    O(log n).
    """

    def __init__(self, X):
        self.X = check_2d(X)
        n, d = self.X.shape
        spans = self.X.max(axis=0) - self.X.min(axis=0)
        self._axis_order = np.argsort(spans)[::-1]
        self.root = self._build(np.arange(n), depth=0)

    # -- construction --------------------------------------------------------

    def _build(self, indices: np.ndarray, depth: int) -> KDNode | None:
        if indices.size == 0:
            return None
        axis = int(self._axis_order[depth % self.X.shape[1]])
        order = indices[np.argsort(self.X[indices, axis], kind="stable")]
        mid = order.size // 2
        pivot = int(order[mid])
        node = KDNode(index=pivot, dimension=axis, value=float(self.X[pivot, axis]))
        node.left = self._build(order[:mid], depth + 1)
        node.right = self._build(order[mid + 1 :], depth + 1)
        return node

    # -- queries ---------------------------------------------------------------

    def nearest(self, query) -> tuple[int, float]:
        """Index and Euclidean distance of the nearest stored point to ``query``."""
        q = np.asarray(query, dtype=np.float64).ravel()
        if q.shape[0] != self.X.shape[1]:
            raise ValueError(f"query has {q.shape[0]} dims, tree has {self.X.shape[1]}")
        best = [-1, np.inf]

        def visit(node: KDNode | None) -> None:
            if node is None:
                return
            dist = float(np.linalg.norm(self.X[node.index] - q))
            if dist < best[1]:
                best[0], best[1] = node.index, dist
            diff = q[node.dimension] - node.value
            near, far = (node.left, node.right) if diff <= 0 else (node.right, node.left)
            visit(near)
            if abs(diff) < best[1]:
                visit(far)

        visit(self.root)
        return best[0], best[1]

    def range_query(self, lo, hi) -> list[int]:
        """Indices of all points inside the axis-aligned box [lo, hi]."""
        lo = np.asarray(lo, dtype=np.float64).ravel()
        hi = np.asarray(hi, dtype=np.float64).ravel()
        if lo.shape != hi.shape or lo.shape[0] != self.X.shape[1]:
            raise ValueError("box bounds must match the tree dimensionality")
        out: list[int] = []

        def visit(node: KDNode | None) -> None:
            if node is None:
                return
            point = self.X[node.index]
            if np.all(point >= lo) and np.all(point <= hi):
                out.append(node.index)
            if lo[node.dimension] <= node.value:
                visit(node.left)
            if hi[node.dimension] >= node.value:
                visit(node.right)

        visit(self.root)
        return sorted(out)

    def depth(self) -> int:
        """Height of the tree (0 for a single node)."""

        def height(node: KDNode | None) -> int:
            if node is None:
                return -1
            return 1 + max(height(node.left), height(node.right))

        return height(self.root)

    def __len__(self) -> int:
        return self.X.shape[0]
