"""Signed random projection (Charikar) and data-dependent rotation hashing.

The classic random-hyperplane family [Charikar '02] is the general-purpose
member of the random-projection class the paper evaluates: bit j is the sign
of a dot product with a random Gaussian direction, and the collision
probability of two vectors is ``1 - theta/pi`` per bit.

:class:`PCARotationHasher` is the "data-dependent hashing function (e.g.,
spectral hashing)" the paper mentions (Section 5.1) as the remedy for very
skewed data distributions: project on principal directions and threshold at
the median, which yields balanced buckets by construction.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.hamming import pack_bits
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = ["SignedRandomProjectionHasher", "PCARotationHasher"]


class SignedRandomProjectionHasher:
    """M-bit signed-random-projection LSH (random hyperplanes through a pivot).

    Parameters
    ----------
    n_bits:
        Signature length M.
    center:
        If True (default), hyperplanes pass through the data mean instead of
        the origin, which avoids the degenerate all-ones signatures that
        arise for data confined to the positive orthant (e.g. tf-idf vectors).
    seed:
        Randomness for the projection directions.
    """

    def __init__(self, n_bits: int, *, center: bool = True, seed=None):
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = int(n_bits)
        self.center = bool(center)
        self._rng = as_rng(seed)
        self._directions: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, X) -> "SignedRandomProjectionHasher":
        """Draw the M Gaussian directions (and the pivot, if centring)."""
        X = check_2d(X)
        d = X.shape[1]
        self._directions = self._rng.standard_normal((d, self.n_bits))
        self._mean = X.mean(axis=0) if self.center else np.zeros(d)
        return self

    def hash_bits(self, X) -> np.ndarray:
        """(n, M) 0/1 bits: sign of the projection on each direction."""
        if self._directions is None:
            raise RuntimeError("hasher is not fitted; call fit() first")
        X = check_2d(X)
        projections = (X - self._mean) @ self._directions
        return (projections > 0).astype(np.uint8)

    def hash(self, X) -> np.ndarray:
        """Packed uint64 signatures."""
        return pack_bits(self.hash_bits(X))

    def fit_hash(self, X) -> np.ndarray:
        """Convenience: fit then hash the same data."""
        return self.fit(X).hash(X)


class PCARotationHasher:
    """Spectral-hashing-flavoured data-dependent bits: PCA directions + median split.

    Each bit thresholds the projection onto a principal component at its
    median, so each bit splits the data exactly in half and the resulting
    bucket histogram is far more balanced than LSH on skewed data. Bits
    beyond the data rank reuse components cyclically with sign flips.
    """

    def __init__(self, n_bits: int, *, seed=None):
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = int(n_bits)
        self._rng = as_rng(seed)
        self._components: np.ndarray | None = None
        self._medians: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, X) -> "PCARotationHasher":
        """Compute principal directions and per-bit median thresholds."""
        X = check_2d(X)
        self._mean = X.mean(axis=0)
        centered = X - self._mean
        # Economy SVD: right singular vectors are the principal directions.
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        rank = vt.shape[0]
        idx = np.arange(self.n_bits) % rank
        signs = np.where((np.arange(self.n_bits) // rank) % 2 == 0, 1.0, -1.0)
        self._components = (vt[idx].T * signs)  # (d, M)
        projections = centered @ self._components
        self._medians = np.median(projections, axis=0)
        return self

    def hash_bits(self, X) -> np.ndarray:
        """(n, M) 0/1 bits: projection above its fitted median."""
        if self._components is None:
            raise RuntimeError("hasher is not fitted; call fit() first")
        X = check_2d(X)
        projections = (X - self._mean) @ self._components
        return (projections > self._medians).astype(np.uint8)

    def hash(self, X) -> np.ndarray:
        """Packed uint64 signatures."""
        return pack_bits(self.hash_bits(X))

    def fit_hash(self, X) -> np.ndarray:
        """Convenience: fit then hash the same data."""
        return self.fit(X).hash(X)
