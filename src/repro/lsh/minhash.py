"""Min-wise independent permutation hashing (MinHash).

The third LSH family the paper surveys (via Chum et al.'s near-duplicate
image detection). MinHash targets Jaccard similarity over *sets*; for dense
vectors we interpret the support (indices of non-zero / above-threshold
features) as the set, which matches how tf-idf document vectors degrade to
term sets. Each of the M hash functions is a random permutation of the
universe, approximated by the usual universal-hash trick
``h(x) = (a * x + b) mod p``.
"""

from __future__ import annotations

import numpy as np

from repro.lsh.hamming import pack_bits
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = ["MinHasher"]

_MERSENNE_PRIME = (1 << 61) - 1


class MinHasher:
    """M-function MinHash over vector supports.

    Parameters
    ----------
    n_hashes:
        Number of min-wise hash functions M.
    activity_threshold:
        A feature belongs to a vector's set when its value is strictly above
        this threshold (0.0 keeps the classic non-zero support).
    seed:
        Randomness for the permutation parameters.
    """

    def __init__(self, n_hashes: int, *, activity_threshold: float = 0.0, seed=None):
        if n_hashes < 1:
            raise ValueError(f"n_hashes must be >= 1, got {n_hashes}")
        self.n_hashes = int(n_hashes)
        self.activity_threshold = float(activity_threshold)
        rng = as_rng(seed)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=self.n_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=self.n_hashes, dtype=np.int64)

    def _permuted(self, universe: np.ndarray) -> np.ndarray:
        """(U, M) permuted ranks of each universe element under each hash."""
        u = universe.astype(object)  # exact Python ints: (a*x+b) exceeds 64 bits
        out = np.empty((len(universe), self.n_hashes), dtype=np.int64)
        for j in range(self.n_hashes):
            a = int(self._a[j])
            b = int(self._b[j])
            out[:, j] = [(a * int(x) + b) % _MERSENNE_PRIME for x in u]
        return out

    def hash_values(self, X) -> np.ndarray:
        """(n, M) MinHash values; empty supports get the sentinel prime value."""
        X = check_2d(X)
        n, d = X.shape
        ranks = self._permuted(np.arange(d))  # (d, M)
        active = X > self.activity_threshold  # (n, d)
        values = np.full((n, self.n_hashes), _MERSENNE_PRIME, dtype=np.int64)
        for i in range(n):
            support = np.nonzero(active[i])[0]
            if support.size:
                values[i] = ranks[support].min(axis=0)
        return values

    def hash_bits(self, X) -> np.ndarray:
        """(n, M) 0/1 bits: parity of each MinHash value."""
        return (self.hash_values(X) & 1).astype(np.uint8)

    def hash(self, X) -> np.ndarray:
        """Packed uint64 signatures from the parity bits."""
        return pack_bits(self.hash_bits(X))

    def fit(self, X) -> "MinHasher":
        """No data-dependent state; present for interface parity."""
        check_2d(X)
        return self

    def fit_hash(self, X) -> np.ndarray:
        """Convenience: fit then hash the same data."""
        return self.fit(X).hash(X)

    @staticmethod
    def jaccard_estimate(values_a: np.ndarray, values_b: np.ndarray) -> float:
        """Estimate Jaccard similarity as the fraction of agreeing MinHashes."""
        a = np.asarray(values_a)
        b = np.asarray(values_b)
        if a.shape != b.shape:
            raise ValueError("signature shapes differ")
        return float(np.mean(a == b))
