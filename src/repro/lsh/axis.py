"""The paper's axis-parallel random-projection LSH family (Section 3.2 / 4.2).

Each of the M hash bits compares one input dimension against a threshold:

* the dimension ("hyperplane") is drawn with probability proportional to its
  numerical span (Eq. 4), so widely dispersed dimensions — the ones that
  carry cluster structure — are preferred;
* the threshold is the k-d-tree-style splitting value of Eq. (5): build a
  20-bin histogram of the dimension, find the least-populated bin, and place
  the threshold at that bin's lower edge (a density valley, so near-by points
  rarely straddle it).

The paper's Algorithm 1 sets the bit to 1 when the feature value is *below*
the threshold; the polarity is irrelevant to bucketing (it relabels buckets),
and we follow Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lsh.hamming import pack_bits
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = [
    "dimension_spans",
    "span_selection_probabilities",
    "histogram_valley_threshold",
    "AxisParallelHasher",
]

#: Number of histogram bins used by the paper's threshold rule (Eq. 5).
N_BINS = 20


def dimension_spans(X: np.ndarray) -> np.ndarray:
    """Numerical span (max - min) of each dimension (the paper's ``span[i]``)."""
    X = check_2d(X)
    return X.max(axis=0) - X.min(axis=0)


def span_selection_probabilities(spans: np.ndarray) -> np.ndarray:
    """Eq. (4): probability of picking each dimension, proportional to its span.

    Degenerate data where every dimension has zero span falls back to uniform
    selection so the hasher still produces (all-equal) signatures.
    """
    spans = np.asarray(spans, dtype=np.float64)
    if spans.ndim != 1:
        raise ValueError(f"spans must be 1-D, got shape {spans.shape}")
    if (spans < 0).any():
        raise ValueError("spans must be non-negative")
    total = spans.sum()
    if total == 0:
        return np.full(spans.shape[0], 1.0 / spans.shape[0])
    return spans / total


def histogram_valley_threshold(values: np.ndarray, n_bins: int = N_BINS) -> float:
    """Eq. (5): threshold at the lower edge of the least-populated histogram bin.

    ``threshold = min + s * span / n_bins`` where ``s`` is the index of the
    bin with the smallest count. Ties go to the lowest such bin, matching a
    left-to-right minimum scan. A zero-span dimension returns its constant
    value (every point then lands on the same side).

    When the least-populated bin is bin 0, its lower edge *is* the column
    minimum, so the resulting bit (``x <= min``) would be constant for every
    point except the exact minima — silently wasting one of the M signature
    bits. In that case the threshold falls back to the least-populated bin
    with an interior (non-degenerate) lower edge.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("values must be non-empty")
    lo = values.min()
    hi = values.max()
    span = hi - lo
    if span == 0:
        return float(lo)
    counts, _ = np.histogram(values, bins=n_bins, range=(lo, hi))
    s = int(np.argmin(counts))
    if s == 0 and n_bins > 1:
        s = 1 + int(np.argmin(counts[1:]))
    return float(lo + s * span / n_bins)


@dataclass(frozen=True)
class _FittedParams:
    """Per-bit hash parameters learned from the data."""

    dimensions: np.ndarray  # (M,) int — hyperplane (dimension index) per bit
    thresholds: np.ndarray  # (M,) float — split threshold per bit


class AxisParallelHasher:
    """M-bit axis-parallel LSH with span-weighted dimension selection.

    Parameters
    ----------
    n_bits:
        M, the signature length. The DASC default is
        ``floor(log2(N) / 2) - 1`` (Section 5.4), computed by
        :func:`repro.core.config.default_n_bits`.
    dimension_policy:
        ``"span_weighted"`` (Eq. 4, the paper's rule), ``"top_span"``
        (Section 4.2's deterministic variant: the M largest-span dimensions),
        or ``"uniform"`` (ablation baseline).
    threshold_policy:
        ``"histogram_valley"`` (Eq. 5, the paper's rule) or ``"median"``
        (ablation baseline: balanced splits).
    n_bins:
        Histogram bins for the valley rule (paper uses 20).
    seed:
        Randomness for dimension selection.
    """

    def __init__(
        self,
        n_bits: int,
        *,
        dimension_policy: str = "span_weighted",
        threshold_policy: str = "histogram_valley",
        n_bins: int = N_BINS,
        seed=None,
    ):
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        if dimension_policy not in ("span_weighted", "top_span", "uniform"):
            raise ValueError(f"unknown dimension_policy {dimension_policy!r}")
        if threshold_policy not in ("histogram_valley", "median"):
            raise ValueError(f"unknown threshold_policy {threshold_policy!r}")
        self.n_bits = int(n_bits)
        self.dimension_policy = dimension_policy
        self.threshold_policy = threshold_policy
        self.n_bins = int(n_bins)
        self._rng = as_rng(seed)
        self._params: _FittedParams | None = None

    # -- fitting -----------------------------------------------------------

    def fit(self, X) -> "AxisParallelHasher":
        """Learn the per-bit (dimension, threshold) pairs from the data."""
        X = check_2d(X)
        dims = self._select_dimensions(X)
        thresholds = np.empty(self.n_bits, dtype=np.float64)
        for j, dim in enumerate(dims):
            col = X[:, dim]
            if self.threshold_policy == "histogram_valley":
                thresholds[j] = histogram_valley_threshold(col, self.n_bins)
            else:
                thresholds[j] = float(np.median(col))
        self._params = _FittedParams(dimensions=dims, thresholds=thresholds)
        return self

    def _select_dimensions(self, X: np.ndarray) -> np.ndarray:
        d = X.shape[1]
        spans = dimension_spans(X)
        if self.dimension_policy == "top_span":
            # Section 4.2: rank dimensions by span, take the top M
            # (cycling when M > d so every bit still gets a dimension).
            order = np.argsort(spans)[::-1]
            reps = int(np.ceil(self.n_bits / d))
            return np.tile(order, reps)[: self.n_bits].astype(np.int64)
        if self.dimension_policy == "uniform":
            probs = np.full(d, 1.0 / d)
        else:
            probs = span_selection_probabilities(spans)
        return self._rng.choice(d, size=self.n_bits, p=probs).astype(np.int64)

    # -- hashing -----------------------------------------------------------

    @property
    def dimensions_(self) -> np.ndarray:
        """Fitted hyperplane (dimension index) per bit."""
        self._require_fitted()
        return self._params.dimensions

    @property
    def thresholds_(self) -> np.ndarray:
        """Fitted threshold per bit."""
        self._require_fitted()
        return self._params.thresholds

    def hash_bits(self, X) -> np.ndarray:
        """Return the (n, M) 0/1 bit matrix for ``X``.

        Algorithm 1's rule: bit = 1 when ``x[dim] <= threshold``, else 0.
        """
        self._require_fitted()
        X = check_2d(X)
        cols = X[:, self._params.dimensions]  # (n, M)
        return (cols <= self._params.thresholds).astype(np.uint8)

    def hash(self, X) -> np.ndarray:
        """Return packed uint64 signatures for ``X``."""
        return pack_bits(self.hash_bits(X))

    def fit_hash(self, X) -> np.ndarray:
        """Convenience: :meth:`fit` then :meth:`hash` on the same data."""
        return self.fit(X).hash(X)

    def _require_fitted(self) -> None:
        if self._params is None:
            raise RuntimeError("hasher is not fitted; call fit() first")
