"""Locality-sensitive hashing substrate.

The paper (Section 3.2) "studied various LSH families, including random
projection, stable distributions, and Min-Wise Independent Permutations" and
settled on an axis-parallel random-projection family whose hyperplanes and
thresholds follow a k-d-tree splitting rule. All of those families are
implemented here, plus the packed-bit signature machinery (Hamming distance,
the Eq.-6 one-bit-difference trick) that the bucketing stage builds on.
"""

from repro.lsh.hamming import (
    pack_bits,
    unpack_bits,
    hamming_distance,
    popcount,
    differs_in_at_most_one_bit,
    signature_strings,
)
from repro.lsh.axis import AxisParallelHasher, dimension_spans, histogram_valley_threshold
from repro.lsh.random_projection import SignedRandomProjectionHasher, PCARotationHasher
from repro.lsh.stable import StableDistributionHasher
from repro.lsh.minhash import MinHasher
from repro.lsh.kdtree import KDTree
from repro.lsh.index import LSHIndex, banding_collision_probability

__all__ = [
    "pack_bits",
    "unpack_bits",
    "hamming_distance",
    "popcount",
    "differs_in_at_most_one_bit",
    "signature_strings",
    "AxisParallelHasher",
    "dimension_spans",
    "histogram_valley_threshold",
    "SignedRandomProjectionHasher",
    "PCARotationHasher",
    "StableDistributionHasher",
    "MinHasher",
    "KDTree",
    "LSHIndex",
    "banding_collision_probability",
]
