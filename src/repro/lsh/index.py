"""A banded LSH index for near-duplicate retrieval.

The paper's MinHash citation (Chum et al.) uses LSH the classic way: split
an M-value signature into ``b`` bands of ``r`` rows; two items are
candidates if *any* band matches exactly. The collision probability of a
pair with per-row agreement probability ``s`` is ``1 - (1 - s^r)^b`` — the
S-curve that makes banding a tunable similarity threshold.

Works with any of the package's hash families (anything exposing
``hash_values``/``hash_bits``-style per-function outputs), and underpins a
near-duplicate detector used by the text pipeline tests.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["banding_collision_probability", "LSHIndex"]


def banding_collision_probability(similarity: float, n_bands: int, rows_per_band: int) -> float:
    """``1 - (1 - s^r)^b``: probability that at least one band matches."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be in [0, 1], got {similarity}")
    if n_bands < 1 or rows_per_band < 1:
        raise ValueError("n_bands and rows_per_band must be >= 1")
    return 1.0 - (1.0 - similarity**rows_per_band) ** n_bands


class LSHIndex:
    """Banded index over per-function hash values.

    Parameters
    ----------
    n_bands / rows_per_band:
        The banding layout; the hash matrix must provide
        ``n_bands * rows_per_band`` values per item.

    Usage
    -----
    >>> index = LSHIndex(n_bands=8, rows_per_band=4)
    >>> index.add(hash_matrix)           # (n_items, 32) integer hash values
    >>> index.candidates(0)              # items sharing >= 1 band with item 0
    >>> index.candidate_pairs()          # all candidate pairs
    """

    def __init__(self, n_bands: int, rows_per_band: int):
        if n_bands < 1 or rows_per_band < 1:
            raise ValueError("n_bands and rows_per_band must be >= 1")
        self.n_bands = int(n_bands)
        self.rows_per_band = int(rows_per_band)
        self._buckets: list[dict] = [defaultdict(list) for _ in range(self.n_bands)]
        self._n_items = 0

    @property
    def n_hashes(self) -> int:
        """Hash values required per item."""
        return self.n_bands * self.rows_per_band

    def add(self, hash_values) -> None:
        """Insert items given their (n_items, n_hashes) hash-value matrix."""
        H = np.asarray(hash_values)
        if H.ndim != 2 or H.shape[1] != self.n_hashes:
            raise ValueError(
                f"hash matrix must be (n, {self.n_hashes}), got {H.shape}"
            )
        r = self.rows_per_band
        for row in H:
            item = self._n_items
            for band in range(self.n_bands):
                key = tuple(row[band * r : (band + 1) * r].tolist())
                self._buckets[band][key].append(item)
            self._n_items += 1

    def __len__(self) -> int:
        return self._n_items

    def candidates(self, item: int) -> set[int]:
        """Items sharing at least one band with ``item`` (itself excluded)."""
        if not 0 <= item < self._n_items:
            raise IndexError(f"item {item} out of range [0, {self._n_items})")
        out: set[int] = set()
        for band in range(self.n_bands):
            for key, members in self._buckets[band].items():
                if item in members:
                    out.update(members)
        out.discard(item)
        return out

    def candidate_pairs(self) -> set[tuple[int, int]]:
        """All (i < j) pairs sharing at least one band."""
        pairs: set[tuple[int, int]] = set()
        for band in range(self.n_bands):
            for members in self._buckets[band].values():
                if len(members) < 2:
                    continue
                for a in range(len(members)):
                    for b in range(a + 1, len(members)):
                        i, j = members[a], members[b]
                        pairs.add((min(i, j), max(i, j)))
        return pairs
