"""Packed binary signatures and Hamming-distance primitives.

Signatures are M-bit binary strings (M <= 64 in every configuration the paper
uses: M = floor(log2 N / 2) - 1, so even N = 2^128 would fit). We pack each
signature into one ``uint64`` so that

* bucket grouping is a single :func:`numpy.unique` over integers, and
* the paper's Eq. (6) merge test ``(A ^ B) & ((A ^ B) - 1) == 0`` — true
  exactly when two signatures differ in at most one bit — is a vectorised
  O(1) integer operation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "popcount",
    "hamming_distance",
    "differs_in_at_most_one_bit",
    "signature_strings",
]

MAX_BITS = 64


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(n, M)`` 0/1 array into ``n`` uint64 signatures.

    Bit ``j`` of the signature is the j-th column, so bit 0 is the first hash
    function's output. M must be at most 64.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"bits must be 2-D, got shape {bits.shape}")
    n, m = bits.shape
    if m == 0 or m > MAX_BITS:
        raise ValueError(f"number of bits must be in [1, {MAX_BITS}], got {m}")
    if not np.isin(bits, (0, 1)).all():
        raise ValueError("bits must contain only 0 and 1")
    weights = (np.uint64(1) << np.arange(m, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)


def unpack_bits(signatures: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand uint64 signatures to an (n, M) 0/1 array."""
    if n_bits <= 0 or n_bits > MAX_BITS:
        raise ValueError(f"n_bits must be in [1, {MAX_BITS}], got {n_bits}")
    sigs = np.asarray(signatures, dtype=np.uint64).reshape(-1, 1)
    shifts = np.arange(n_bits, dtype=np.uint64)
    return ((sigs >> shifts) & np.uint64(1)).astype(np.uint8)


#: NumPy >= 2.0 exposes the hardware popcount instruction directly.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_swar(values: np.ndarray) -> np.ndarray:
    """Vectorised SWAR popcount (fallback when ``np.bitwise_count`` is absent)."""
    v = np.asarray(values, dtype=np.uint64).copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    v -= (v >> np.uint64(1)) & m1
    v = (v & m2) + ((v >> np.uint64(2)) & m2)
    v = (v + (v >> np.uint64(4))) & m4
    with np.errstate(over="ignore"):  # SWAR relies on modular uint64 multiply
        return ((v * h01) >> np.uint64(56)).astype(np.int64)


def popcount(values: np.ndarray) -> np.ndarray:
    """Number of set bits per uint64.

    Uses ``np.bitwise_count`` (a single hardware instruction per lane on
    NumPy >= 2.0) when available, falling back to the pure-ufunc SWAR
    sequence otherwise; the two agree exactly on every uint64.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(np.asarray(values, dtype=np.uint64)).astype(np.int64)
    return _popcount_swar(values)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise Hamming distance between packed signatures (broadcasting)."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    return popcount(np.bitwise_xor(a, b))


def differs_in_at_most_one_bit(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The paper's Eq. (6) merge predicate, vectorised.

    ``ANS = (A xor B) & (A xor B - 1)`` is zero iff ``A xor B`` has at most one
    set bit, i.e. the signatures agree in at least ``M - 1`` positions. The
    paper uses this with ``P = M - 1`` to decide which buckets to merge in O(1).
    """
    x = np.bitwise_xor(np.asarray(a, dtype=np.uint64), np.asarray(b, dtype=np.uint64))
    # x - 1 underflows to 2^64 - 1 when x == 0; the AND is then 0, so the
    # identical-signature case is correctly reported as mergeable.
    with np.errstate(over="ignore"):
        return (x & (x - np.uint64(1))) == np.uint64(0)


def signature_strings(signatures: np.ndarray, n_bits: int) -> list[str]:
    """Render packed signatures as M-character '0'/'1' strings (bit 0 first).

    Matches the string signature built by the paper's Algorithm 1 mapper,
    which appends one character per hash function.
    """
    bits = unpack_bits(signatures, n_bits)
    return ["".join("1" if b else "0" for b in row) for row in bits]
