"""Frobenius norm and the approximation-quality ratio (Eqs. 22-24, Figure 5).

``Fnorm(A) = sqrt(sum |a_ij|^2)``, invariant under unitary transforms, so it
equals the root-sum-of-squares of singular values (Eq. 24). The paper's
Figure-5 metric is ``Fnorm(approx) / Fnorm(full)``: closer to 1 means the
block-diagonal approximation keeps more of the Gram matrix's spectral mass.
For any entry-subset approximation of a real matrix the ratio is in [0, 1].
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.approx_kernel import ApproximateKernel

__all__ = ["frobenius_norm", "fnorm_ratio"]


def frobenius_norm(A) -> float:
    """Eq. (22) for dense arrays, sparse matrices, or ApproximateKernel objects."""
    if isinstance(A, ApproximateKernel):
        return A.frobenius_norm()
    if sp.issparse(A):
        return float(np.sqrt(A.multiply(A).sum()))
    A = np.asarray(A, dtype=np.float64)
    return float(np.sqrt(np.einsum("ij,ij->", A, A))) if A.ndim == 2 else float(np.linalg.norm(A))


def fnorm_ratio(approx, full) -> float:
    """``Fnorm(approx) / Fnorm(full)`` (Figure 5's y-axis).

    Raises on a zero-norm full matrix (the ratio is undefined).
    """
    denom = frobenius_norm(full)
    if denom == 0:
        raise ValueError("full matrix has zero Frobenius norm")
    return frobenius_norm(approx) / denom
