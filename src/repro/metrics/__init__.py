"""Evaluation metrics used in the paper's Section 5.3.

* :func:`clustering_accuracy` — fraction of correctly clustered points after
  optimally matching predicted clusters to ground-truth classes,
* :func:`davies_bouldin_index` — Eq. (20),
* :func:`average_squared_error` — Eq. (21),
* :func:`frobenius_norm` / :func:`fnorm_ratio` — Eqs. (22)-(24),
* :func:`normalized_mutual_info` — a matching-free accuracy complement.
"""

from repro.metrics.accuracy import clustering_accuracy, contingency_matrix, hungarian_match
from repro.metrics.dbi import davies_bouldin_index
from repro.metrics.ase import average_squared_error
from repro.metrics.fnorm import frobenius_norm, fnorm_ratio
from repro.metrics.nmi import normalized_mutual_info

__all__ = [
    "clustering_accuracy",
    "contingency_matrix",
    "hungarian_match",
    "davies_bouldin_index",
    "average_squared_error",
    "frobenius_norm",
    "fnorm_ratio",
    "normalized_mutual_info",
]
