"""Normalized mutual information between two labelings.

Not a paper metric, but the standard matching-free complement to Hungarian
accuracy; used by the extension benches to confirm metric-independent
orderings. NMI = I(T; P) / sqrt(H(T) H(P)), in [0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.metrics.accuracy import contingency_matrix

__all__ = ["normalized_mutual_info"]


def normalized_mutual_info(labels_true, labels_pred) -> float:
    """NMI with sqrt normalisation; 1.0 iff the labelings are relabellings.

    Degenerate single-cluster labelings have zero entropy; NMI is defined as
    1.0 when both sides are single-cluster and identical in structure
    (I = H = 0), else 0.0.
    """
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    pij = table / n
    pi = pij.sum(axis=1)
    pj = pij.sum(axis=0)

    def entropy(p):
        nz = p[p > 0]
        return float(-(nz * np.log(nz)).sum())

    ht, hp = entropy(pi), entropy(pj)
    outer = pi[:, None] * pj[None, :]
    nz = pij > 0
    mi = float((pij[nz] * np.log(pij[nz] / outer[nz])).sum())
    if ht == 0.0 and hp == 0.0:
        return 1.0
    if ht == 0.0 or hp == 0.0:
        return 0.0
    return max(0.0, min(1.0, mi / np.sqrt(ht * hp)))
