"""Average squared error (Eq. 21) — the classic k-means criterion.

``ASE = (1/N) sum_k e_k^2`` with ``e_k^2`` the sum of squared Euclidean
distances between each member of cluster k and its centroid. Lower values
mean tighter clusters.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_labels

__all__ = ["average_squared_error"]


def average_squared_error(X, labels) -> float:
    """Eq. (21): mean within-cluster squared distance to the centroid."""
    X = check_2d(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    total = 0.0
    for lab in np.unique(labels):
        members = X[labels == lab]
        centroid = members.mean(axis=0)
        total += float(((members - centroid) ** 2).sum())
    return total / X.shape[0]
