"""Davies-Bouldin index (Eq. 20) — lower is better.

``DBI = (1/C) sum_i max_{j != i} (sigma_i + sigma_j) / d(c_i, c_j)`` where
``c_x`` is the centroid of cluster x, ``sigma_x`` the average distance of
its members to the centroid, and ``d`` the centroid distance.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.matrix import pairwise_sq_distances
from repro.utils.validation import check_2d, check_labels

__all__ = ["davies_bouldin_index"]


def davies_bouldin_index(X, labels) -> float:
    """Eq. (20) on the raw feature vectors.

    Empty clusters are impossible (labels define membership); single-point
    clusters have sigma 0. Requires at least two distinct clusters.
    Coincident centroids (zero separation) make the ratio infinite, which is
    reported faithfully rather than masked.
    """
    X = check_2d(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    unique = np.unique(labels)
    c = unique.shape[0]
    if c < 2:
        raise ValueError("DBI requires at least two clusters")

    centroids = np.empty((c, X.shape[1]))
    scatters = np.empty(c)
    for i, lab in enumerate(unique):
        members = X[labels == lab]
        centroids[i] = members.mean(axis=0)
        scatters[i] = np.mean(np.linalg.norm(members - centroids[i], axis=1))

    sep = np.sqrt(pairwise_sq_distances(centroids))
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = (scatters[:, None] + scatters[None, :]) / sep
    np.fill_diagonal(ratio, -np.inf)
    ratio = np.where(np.isnan(ratio), np.inf, ratio)  # 0/0: coincident tight clusters
    return float(np.mean(ratio.max(axis=1)))
