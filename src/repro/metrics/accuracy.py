"""Clustering accuracy against ground truth (Figure 3 / Table 3 metric).

The paper measures "the ratio of correctly clustered points to the total
number of points" relative to Wikipedia's categorisation. Because cluster
ids are arbitrary, predicted clusters must first be matched to ground-truth
classes; the standard optimal matching maximises the total overlap via the
Hungarian algorithm on the contingency matrix (rectangular shapes allowed —
DASC can emit more clusters than there are classes, and unmatched clusters
simply contribute no correct points).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.utils.validation import check_labels

__all__ = ["contingency_matrix", "hungarian_match", "clustering_accuracy"]


def contingency_matrix(labels_true, labels_pred) -> np.ndarray:
    """(n_classes, n_clusters) count matrix of co-occurring assignments."""
    t = check_labels(labels_true, name="labels_true")
    p = check_labels(labels_pred, n_samples=t.shape[0], name="labels_pred")
    _, t_idx = np.unique(t, return_inverse=True)
    _, p_idx = np.unique(p, return_inverse=True)
    n_classes = t_idx.max() + 1
    n_clusters = p_idx.max() + 1
    table = np.zeros((n_classes, n_clusters), dtype=np.int64)
    np.add.at(table, (t_idx, p_idx), 1)
    return table


def hungarian_match(labels_true, labels_pred) -> tuple[np.ndarray, np.ndarray]:
    """Optimal class<->cluster matching maximising total overlap.

    Returns ``(row_ind, col_ind)`` into the contingency matrix; only
    ``min(n_classes, n_clusters)`` pairs are produced.
    """
    table = contingency_matrix(labels_true, labels_pred)
    rows, cols = linear_sum_assignment(-table)
    return rows, cols


def clustering_accuracy(labels_true, labels_pred) -> float:
    """Fraction of points in optimally matched (class, cluster) pairs.

    1.0 iff the prediction is a relabelling of the ground truth. Splitting a
    class across several clusters loses the mass of all but the matched one.
    """
    table = contingency_matrix(labels_true, labels_pred)
    rows, cols = linear_sum_assignment(-table)
    return float(table[rows, cols].sum() / table.sum())
