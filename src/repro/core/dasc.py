"""The DASC estimator — the paper's full pipeline in one object.

``DASC(...).fit(X)`` runs:

1. LSH signatures (Section 3.2, Eqs. 4-5),
2. bucket grouping + Eq.-6 merging + small-bucket folding,
3. per-bucket Gaussian Gram blocks (Eq. 1, Algorithm 2),
4. per-bucket NJW spectral clustering (Eq. 2 Laplacian, top-K_i
   eigenvectors, row-normalized embedding, K-means),

and exposes the combined labels plus per-stage time and exact Gram-memory
accounting (the quantities of Figures 5 and 6 and Table 3).

Spectral clustering is just the demonstration payload: :meth:`transform`
exposes the approximate kernel itself, so any kernel method can consume it
(see ``examples/kernel_pca_approx.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import allocate_clusters, choose_k_eigengap
from repro.core.approx_kernel import ApproximateKernel, build_approximate_kernel
from repro.core.buckets import Buckets, fold_small_buckets, group_by_signature, merge_buckets
from repro.core.config import DASCConfig
from repro.core.refine import merge_clusters_to_k
from repro.core.signatures import compute_signatures
from repro.kernels.bandwidth import mean_knn_heuristic, median_heuristic
from repro.kernels.functions import GaussianKernel, Kernel
from repro.observability import get_tracer
from repro.spectral.embedding import spectral_embedding
from repro.spectral.kmeans import KMeans
from repro.utils.memory import MemoryLedger
from repro.utils.rng import as_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_2d
from repro.verify.invariants import (
    check_buckets,
    check_gram_block,
    check_labels_range,
    validation_enabled,
)

__all__ = ["DASC"]


def _cluster_block_pure(
    block: np.ndarray,
    k_i: int,
    eig_seed: int | None,
    km_seed: int | None,
    eig_backend: str,
    kmeans_n_init: int,
    validate: bool = False,
) -> np.ndarray:
    """Spectral-cluster one Gram block into ``k_i`` local labels.

    Module-level and parameterised by explicit seeds so the serial loop and
    the process-pool workers run literally the same function on the same
    inputs — the basis of the parallel backend's bit-identity guarantee.
    ``validate`` carries the invariant-checking flag across the process
    boundary (workers check the Eq.-2 spectrum and embedding row norms).
    """
    n_i = block.shape[0]
    if k_i >= n_i:
        return np.arange(n_i, dtype=np.int64)[:n_i] % max(k_i, 1)
    if k_i == 1:
        return np.zeros(n_i, dtype=np.int64)
    embedding = spectral_embedding(
        block, k_i, backend=eig_backend, seed=eig_seed, validate=validate
    )
    km = KMeans(k_i, n_init=kmeans_n_init, seed=km_seed)
    return km.fit_predict(embedding)


def _cluster_block_worker(payload) -> np.ndarray:
    """Process-pool entry point wrapping :func:`_cluster_block_pure`."""
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    return _cluster_block_pure(*payload)


class DASC:
    """Distributed Approximate Spectral Clustering.

    Parameters
    ----------
    n_clusters:
        Total number of clusters K (``None``: the paper's Eq.-15 default).
    config:
        A full :class:`repro.core.config.DASCConfig`; keyword arguments
        below override individual fields for convenience.
    kernel:
        Kernel object; default Gaussian with ``config.sigma`` (or the median
        heuristic when that is ``None``).

    Attributes (after :meth:`fit`)
    ------------------------------
    labels_ : (n,) global cluster assignments in ``[0, n_clusters_)``
    n_clusters_ : actual number of clusters produced
    buckets_ : the final :class:`~repro.core.buckets.Buckets` partition
    approx_kernel_ : the block-diagonal :class:`ApproximateKernel`
    signatures_ : (n,) packed uint64 signatures
    n_bits_ : resolved signature length M
    sigma_ : resolved Gaussian bandwidth
    stopwatch_ : per-stage wall time (hash/bucket/kernel/spectral)
    memory_ : Gram-storage ledger (the Figure-6(b) quantity)
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        config: DASCConfig | None = None,
        kernel: Kernel | None = None,
        **overrides,
    ):
        cfg = config if config is not None else DASCConfig()
        if n_clusters is not None:
            cfg.n_clusters = n_clusters
        for key, value in overrides.items():
            if not hasattr(cfg, key):
                raise TypeError(f"unknown DASC option {key!r}")
            setattr(cfg, key, value)
        self.config = cfg
        self._kernel_override = kernel

        self.labels_: np.ndarray | None = None
        self.n_clusters_: int | None = None
        self.buckets_: Buckets | None = None
        self.approx_kernel_: ApproximateKernel | None = None
        self.signatures_: np.ndarray | None = None
        self.n_bits_: int | None = None
        self.sigma_: float | None = None
        self.kernel_: Kernel | None = None
        self.cluster_allocation_: np.ndarray | None = None
        self.stopwatch_ = Stopwatch()
        self.memory_ = MemoryLedger()

    # -- pipeline stages, individually callable for the MapReduce driver ----

    def _validate_active(self) -> bool:
        """Whether the invariant layer is on (config override or REPRO_VALIDATE)."""
        return validation_enabled(self.config.validate)

    def _resolve_executor(self):
        """The execution backend ``config.n_jobs`` asks for."""
        from repro.mapreduce.executor import resolve_executor

        return resolve_executor(self.config.n_jobs)

    def _resolve_kernel(self, X: np.ndarray) -> Kernel:
        if self._kernel_override is not None:
            self.sigma_ = getattr(self._kernel_override, "sigma", None)
            return self._kernel_override
        sigma = self.config.sigma
        if sigma is None:
            if self.config.allocation == "eigengap":
                # The eigengap reads cluster counts off the affinity
                # spectrum, which needs a locality-scale bandwidth; the
                # global median fuses nearby clusters into one eigenvalue.
                sigma = mean_knn_heuristic(X, seed=self.config.seed)
            else:
                sigma = median_heuristic(X, seed=self.config.seed)
        self.sigma_ = float(sigma)
        return GaussianKernel(self.sigma_)

    def partition(self, X) -> Buckets:
        """Stages 1-2: hash, group, merge, fold. Returns the final buckets."""
        X = check_2d(X)
        tracer = get_tracer()
        with self.stopwatch_.lap("hash"), tracer.span("dasc.hash") as span:
            signatures, n_bits, hasher = compute_signatures(X, self.config)
            span.set("n_points", X.shape[0])
            span.set("n_bits", n_bits)
        self.signatures_ = signatures
        self.n_bits_ = n_bits
        self.hasher_ = hasher
        with self.stopwatch_.lap("bucket"), tracer.span("dasc.bucket") as span:
            buckets = group_by_signature(signatures, n_bits)
            span.set("n_raw_buckets", buckets.n_buckets)
            p = self.config.resolve_min_shared_bits(n_bits)
            buckets = merge_buckets(buckets, p, strategy=self.config.merge_strategy)
            buckets = fold_small_buckets(buckets, self.config.min_bucket_size)
            span.set("n_buckets", buckets.n_buckets)
        if self._validate_active():
            check_buckets(
                buckets, X.shape[0], point_signatures=signatures, stage="dasc.bucket"
            )
        if tracer.enabled:
            hist = tracer.metrics.histogram("dasc.bucket_size")
            for size in buckets.sizes:
                hist.observe(int(size))
        self.buckets_ = buckets
        return buckets

    def transform(self, X) -> ApproximateKernel:
        """Stages 1-3: the approximate kernel matrix (algorithm-independent API)."""
        X = check_2d(X)
        tracer = get_tracer()
        buckets = self.partition(X)
        kernel = self._resolve_kernel(X)
        self.kernel_ = kernel
        with self.stopwatch_.lap("kernel"), tracer.span("dasc.kernel") as span:
            approx = build_approximate_kernel(
                X,
                buckets,
                kernel,
                zero_diagonal=self.config.zero_diagonal,
                executor=self._resolve_executor(),
            )
            span.set("n_blocks", approx.n_blocks)
            span.set("gram_bytes", approx.nbytes)
        if self._validate_active():
            unit_range = getattr(kernel, "unit_range", False)
            for b, block in enumerate(approx.blocks):
                check_gram_block(
                    block,
                    zero_diagonal=self.config.zero_diagonal,
                    unit_range=unit_range,
                    stage="dasc.kernel",
                    bucket_id=b,
                )
        if tracer.enabled:
            tracer.metrics.gauge("dasc.sigma").set(self.sigma_)
            tracer.metrics.gauge("dasc.gram_bytes").set(approx.nbytes)
            hist = tracer.metrics.histogram("dasc.kernel_block_bytes")
            for block in approx.blocks:
                hist.observe(block.shape[0] * block.shape[0] * 4)
        self.memory_.charge("gram_blocks", approx.nbytes)
        self.approx_kernel_ = approx
        return approx

    def fit(self, X) -> "DASC":
        """Run the full DASC pipeline and populate ``labels_``."""
        X = check_2d(X)
        tracer = get_tracer()
        with tracer.span("dasc.fit", n_points=X.shape[0]) as fit_span:
            self._fit_traced(X, tracer, fit_span)
        return self

    def _fit_traced(self, X, tracer, fit_span) -> None:
        n = X.shape[0]
        k_total = self.config.resolve_n_clusters(n)
        approx = self.transform(X)
        buckets = self.buckets_

        sizes = buckets.sizes
        if self.config.allocation == "eigengap":
            # Data-driven K_i: read each bucket's cluster count off its own
            # Gram block's spectrum (extension beyond the paper).
            allocation = np.array(
                [
                    choose_k_eigengap(block, min(k_total, block.shape[0]))
                    for block in approx.blocks
                ],
                dtype=np.int64,
            )
            # The eigengap can under-estimate (e.g. a large sigma fuses the
            # spectrum); take the elementwise max with the proportional
            # split so the union offers at least K clusters, then let the
            # refine step merge any surplus back down.
            if allocation.sum() < k_total:
                proportional = allocate_clusters(sizes, k_total, policy="proportional")
                allocation = np.maximum(allocation, proportional)
        else:
            allocation = allocate_clusters(sizes, k_total, policy=self.config.allocation)
        self.cluster_allocation_ = allocation

        labels = np.full(n, -1, dtype=np.int64)
        seed_rng = as_rng(self.config.seed)
        executor = self._resolve_executor()
        # Seeds are pre-drawn in the exact order the serial loop consumed
        # them (only blocks that reach the eigensolver draw, eig before
        # K-means, bucket order), so any backend sees identical seeds.
        payloads = []
        for b, block in enumerate(approx.blocks):
            k_i = int(allocation[b])
            if k_i < block.shape[0] and k_i > 1:
                eig_seed = int(seed_rng.integers(2**31))
                km_seed = int(seed_rng.integers(2**31))
            else:
                eig_seed = km_seed = None
            payloads.append(
                (
                    block, k_i, eig_seed, km_seed,
                    self.config.eig_backend, self.config.kmeans_n_init,
                    self._validate_active(),
                )
            )
        offset = 0
        with self.stopwatch_.lap("spectral"), tracer.span("dasc.spectral") as span:
            if executor.parallel and len(payloads) > 1:
                block_labels = executor.map_ordered(_cluster_block_worker, payloads)
            else:
                block_labels = [_cluster_block_worker(p) for p in payloads]
            for b, (idx, local) in enumerate(zip(approx.bucket_indices, block_labels)):
                labels[idx] = offset + local
                offset += int(allocation[b])
            span.set("n_blocks", approx.n_blocks)
            span.set("n_local_clusters", offset)
            span.set("executor", executor.describe())
        if (labels < 0).any():
            raise RuntimeError(
                f"{int((labels < 0).sum())} points were never assigned a bucket cluster"
            )
        if self.config.refine_to_k and offset > k_total:
            # Stitch cross-bucket fragments: merge the per-bucket cluster
            # union down to the requested K (extension beyond the paper).
            with self.stopwatch_.lap("refine"), tracer.span("dasc.refine") as span:
                labels = merge_clusters_to_k(X, labels, k_total)
                span.set("merged_from", offset)
                span.set("merged_to", k_total)
            offset = k_total
        if self._validate_active():
            check_labels_range(labels, offset, stage="dasc.labels")
        fit_span.set("n_clusters", offset)
        fit_span.set("n_buckets", buckets.n_buckets)
        self.labels_ = labels
        self.n_clusters_ = offset

    def fit_predict(self, X) -> np.ndarray:
        """Fit and return the global labels."""
        return self.fit(X).labels_

    def export_model(self, X):
        """Freeze the fitted clustering into a servable ``DASCModel``.

        ``X`` must be the matrix :meth:`fit` saw (verified by re-hashing):
        the stored Gram blocks are replayed through the spectral stage with
        the exact seed draws of the fit, capturing each bucket's Nyström
        artifacts, so a training point re-presented to the exported model
        routes by exact signature and reproduces its fit label.
        """
        from repro.serving.model import assemble_model, attach_global_labels, fit_bucket_model

        if self.labels_ is None or self.approx_kernel_ is None:
            raise RuntimeError("fit the estimator before export_model()")
        X = check_2d(X)
        if X.shape[0] != self.labels_.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows, the fit saw {self.labels_.shape[0]}"
            )
        if not np.array_equal(self.hasher_.hash(X), self.signatures_):
            raise ValueError(
                "X does not hash to the fitted signatures; pass the training matrix fit() saw"
            )
        approx = self.approx_kernel_
        seed_rng = as_rng(self.config.seed)
        bucket_models = []
        for b, (idx, block) in enumerate(zip(approx.bucket_indices, approx.blocks)):
            k_i = int(self.cluster_allocation_[b])
            # Same draw condition and order as _fit_traced, so the replay
            # consumes the seed stream exactly as the fit did.
            if k_i < block.shape[0] and k_i > 1:
                eig_seed = int(seed_rng.integers(2**31))
                km_seed = int(seed_rng.integers(2**31))
            else:
                eig_seed = km_seed = None
            bm, local = fit_bucket_model(
                block,
                X[idx],
                k_i,
                eig_seed,
                km_seed,
                eig_backend=self.config.eig_backend,
                kmeans_n_init=self.config.kmeans_n_init,
            )
            bucket_models.append(attach_global_labels(bm, local, self.labels_[idx]))
        # Merged buckets keep only their leader's signature, so the routing
        # table is built from the per-point signatures: every signature seen
        # in training maps to the final bucket its points ended up in.
        unique_sigs, first = np.unique(self.signatures_, return_index=True)
        table = dict(
            zip(unique_sigs.tolist(), self.buckets_.assignments[first].tolist())
        )
        return assemble_model(
            hasher=self.hasher_,
            kernel=self.kernel_,
            zero_diagonal=self.config.zero_diagonal,
            bucket_models=bucket_models,
            table=table,
            labels=self.labels_,
            X=X,
            n_clusters=self.n_clusters_,
            meta={
                "source": "dasc",
                "n_train": int(X.shape[0]),
                "seed": self.config.seed,
                "sigma": self.sigma_,
                "n_bits": self.n_bits_,
            },
        )

    # -- internals ----------------------------------------------------------

    def _cluster_block(self, block: np.ndarray, k_i: int, seed_rng: np.random.Generator) -> np.ndarray:
        """Spectral-cluster one bucket's Gram block into ``k_i`` local labels."""
        n_i = block.shape[0]
        if k_i >= n_i or k_i == 1:
            eig_seed = km_seed = None
        else:
            eig_seed = int(seed_rng.integers(2**31))
            km_seed = int(seed_rng.integers(2**31))
        return _cluster_block_pure(
            block, k_i, eig_seed, km_seed, self.config.eig_backend,
            self.config.kmeans_n_init, self._validate_active(),
        )
