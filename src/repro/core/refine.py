"""Cluster-count refinement: merge per-bucket clusters down to a global K.

DASC clusters each bucket independently, so the union can hold more
clusters than the requested K — either by construction (the ``"fixed"`` and
``"eigengap"`` allocation policies) or because a true cluster was split
across buckets, leaving two half-clusters with nearly coincident centroids.
This module stitches such fragments back together: greedy agglomerative
merging of cluster centroids under Ward's criterion (the pair whose merge
raises the total within-cluster sum of squares the least), which is exactly
the right objective for the ASE/DBI metrics the paper evaluates.

This is an extension beyond the paper (which leaves the per-bucket label
union as the final answer); ``DASCConfig.refine_to_k`` switches it off.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d, check_labels

__all__ = ["merge_clusters_to_k"]


def merge_clusters_to_k(X, labels, n_clusters: int) -> np.ndarray:
    """Agglomerate clusters in ``labels`` down to ``n_clusters``.

    Repeatedly merges the pair of clusters with the smallest Ward cost
    ``(n_a n_b / (n_a + n_b)) ||c_a - c_b||^2`` until only ``n_clusters``
    remain, then relabels to a compact ``[0, n_clusters)`` range. A labeling
    that already has <= ``n_clusters`` clusters is returned compacted but
    otherwise unchanged.
    """
    X = check_2d(X)
    labels = check_labels(labels, n_samples=X.shape[0])
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")

    unique, compact = np.unique(labels, return_inverse=True)
    c = unique.shape[0]
    if c <= n_clusters:
        return compact.astype(np.int64)

    # Per-cluster sufficient statistics.
    counts = np.bincount(compact).astype(np.float64)
    sums = np.zeros((c, X.shape[1]))
    np.add.at(sums, compact, X)
    centroids = sums / counts[:, None]
    alive = np.ones(c, dtype=bool)
    parent = np.arange(c)

    def ward_costs(i: int) -> np.ndarray:
        """Ward merge cost of cluster i against every alive cluster."""
        diff = centroids - centroids[i]
        d2 = np.einsum("ij,ij->i", diff, diff)
        w = counts * counts[i] / (counts + counts[i])
        cost = w * d2
        cost[~alive] = np.inf
        cost[i] = np.inf
        return cost

    n_alive = c
    while n_alive > n_clusters:
        # Find the globally cheapest merge (O(C^2) per step; C is the
        # cluster count, small relative to N).
        best = (np.inf, -1, -1)
        alive_idx = np.nonzero(alive)[0]
        for i in alive_idx:
            cost = ward_costs(i)
            j = int(np.argmin(cost))
            if cost[j] < best[0]:
                best = (float(cost[j]), i, j)
        _, i, j = best
        # Merge j into i.
        total = counts[i] + counts[j]
        centroids[i] = (counts[i] * centroids[i] + counts[j] * centroids[j]) / total
        counts[i] = total
        alive[j] = False
        parent[j] = i
        n_alive -= 1

    # Resolve merge chains and compact the surviving ids.
    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    roots = np.array([find(x) for x in range(c)])
    survivors, final = np.unique(roots, return_inverse=True)
    if survivors.shape[0] != n_clusters:
        raise RuntimeError(
            f"cluster merge left {survivors.shape[0]} clusters, expected {n_clusters}"
        )
    return final[compact].astype(np.int64)
