"""Incremental (split-by-split) DASC.

Section 5.1: "the partitioning step allows our DASC algorithm to process
very large scale data sets, because the data partitions (or splits) are
incrementally processed, split by split" and "[d]istributed datasets can be
thought of [as] huge datasets with splits stored on different machines,
where the output hashes represent the keys that are used to exchange
datapoints between different nodes."

:class:`StreamingDASC` realises that mode of operation: hash parameters are
fitted once on a sample (or the first chunk), then arbitrarily many chunks
are absorbed one at a time — each chunk's points are hashed and appended to
their buckets, and nothing larger than a bucket is ever materialised. The
final clustering runs per bucket on demand. Peak memory is O(max bucket^2)
instead of O(N^2), independent of how many chunks streamed through.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.config import DASCConfig
from repro.core.refine import merge_clusters_to_k
from repro.core.signatures import make_hasher
from repro.kernels.bandwidth import median_heuristic
from repro.kernels.functions import GaussianKernel
from repro.kernels.matrix import gram_matrix
from repro.observability import get_tracer
from repro.spectral.embedding import spectral_embedding
from repro.spectral.kmeans import KMeans
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = ["StreamingDASC"]


class StreamingDASC:
    """DASC over a stream of data chunks.

    Parameters
    ----------
    n_clusters:
        Global cluster budget K (``None``: Eq. 15 from the total absorbed).
    config:
        Standard :class:`DASCConfig`; ``n_bits`` is resolved against the
        *calibration sample*, so fix it explicitly when the stream is far
        larger than the sample.

    Usage
    -----
    >>> sd = StreamingDASC(n_clusters=8, config=DASCConfig(n_bits=6, seed=0))
    >>> sd.calibrate(first_chunk)
    >>> for chunk in chunks:
    ...     sd.partial_fit(chunk)
    >>> labels = sd.finalize()   # aligned with absorption order
    """

    def __init__(self, n_clusters: int | None = None, *, config: DASCConfig | None = None):
        self.config = config if config is not None else DASCConfig()
        if n_clusters is not None:
            self.config.n_clusters = n_clusters
        self._hasher = None
        self._sigma: float | None = None
        self._bucket_points: dict[int, list[np.ndarray]] = defaultdict(list)
        self._bucket_order: dict[int, list[int]] = defaultdict(list)
        self._n_seen = 0
        self.labels_: np.ndarray | None = None
        self.n_clusters_: int | None = None

    # -- stream lifecycle -----------------------------------------------------

    def calibrate(self, sample) -> "StreamingDASC":
        """Fit hash parameters and the kernel bandwidth on a sample.

        Must run before :meth:`partial_fit`; the sample itself is *not*
        absorbed (pass it to :meth:`partial_fit` too if it is stream data).
        """
        sample = check_2d(sample)
        with get_tracer().span("streaming.calibrate", n_sample=sample.shape[0]) as span:
            n_bits = self.config.resolve_n_bits(sample.shape[0])
            self._hasher = make_hasher(self.config, n_bits)
            self._hasher.fit(sample)
            self._n_bits = n_bits
            sigma = self.config.sigma
            if sigma is None:
                sigma = median_heuristic(sample, seed=self.config.seed)
            self._sigma = float(sigma)
            span.set("n_bits", n_bits)
            span.set("sigma", self._sigma)
        return self

    def partial_fit(self, chunk) -> "StreamingDASC":
        """Absorb one chunk: hash its points into the bucket store."""
        if self._hasher is None:
            raise RuntimeError("call calibrate() before partial_fit()")
        chunk = check_2d(chunk)
        with get_tracer().span("streaming.absorb_chunk", n_points=chunk.shape[0]) as span:
            signatures = self._hasher.hash(chunk)
            for row, sig in zip(chunk, signatures):
                key = int(sig)
                self._bucket_points[key].append(row)
                self._bucket_order[key].append(self._n_seen)
                self._n_seen += 1
            span.set("n_absorbed", self._n_seen)
            span.set("n_buckets", len(self._bucket_points))
        return self

    @property
    def n_absorbed(self) -> int:
        """Points absorbed so far."""
        return self._n_seen

    @property
    def n_buckets(self) -> int:
        """Occupied buckets so far."""
        return len(self._bucket_points)

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of the occupied buckets (descending)."""
        return np.sort([len(v) for v in self._bucket_points.values()])[::-1].astype(np.int64)

    def peak_block_bytes(self) -> int:
        """Largest single Gram block the finalize step will allocate."""
        if not self._bucket_points:
            return 0
        largest = max(len(v) for v in self._bucket_points.values())
        return largest * largest * 4

    # -- finalisation -----------------------------------------------------------

    def finalize(self) -> np.ndarray:
        """Cluster every bucket and return labels in absorption order.

        Small buckets (below ``config.min_bucket_size``) are merged into
        one residual group and clustered together, mirroring the batch
        pipeline's folding without needing the full signature table.
        """
        if self._n_seen == 0:
            raise RuntimeError("no data absorbed; call partial_fit() first")
        tracer = get_tracer()
        with tracer.span(
            "streaming.finalize", n_absorbed=self._n_seen, n_buckets=len(self._bucket_points)
        ) as span:
            if tracer.enabled:
                hist = tracer.metrics.histogram("streaming.bucket_size")
                for pts in self._bucket_points.values():
                    hist.observe(len(pts))
                tracer.metrics.gauge("streaming.peak_block_bytes").set(self.peak_block_bytes())
            labels = self._finalize_impl()
            span.set("n_clusters", self.n_clusters_)
        return labels

    def _finalize_impl(self) -> np.ndarray:
        k_total = self.config.resolve_n_clusters(self._n_seen)
        kernel = GaussianKernel(self._sigma)
        seed_rng = as_rng(self.config.seed)

        # Assemble per-bucket arrays; sweep small buckets into a residual.
        groups: list[tuple[np.ndarray, list[int]]] = []
        residual_pts: list[np.ndarray] = []
        residual_idx: list[int] = []
        for key in sorted(self._bucket_points):
            pts = self._bucket_points[key]
            idx = self._bucket_order[key]
            if len(pts) < self.config.min_bucket_size:
                residual_pts.extend(pts)
                residual_idx.extend(idx)
            else:
                groups.append((np.asarray(pts), idx))
        if residual_pts:
            groups.append((np.asarray(residual_pts), residual_idx))

        sizes = np.array([g[0].shape[0] for g in groups], dtype=np.int64)
        from repro.core.allocation import allocate_clusters, choose_k_eigengap

        policy = "proportional" if self.config.allocation == "eigengap" else self.config.allocation
        ks = allocate_clusters(sizes, k_total, policy=policy)

        labels = np.full(self._n_seen, -1, dtype=np.int64)
        offset = 0
        for (X_b, idx), k_floor in zip(groups, ks):
            n_b = X_b.shape[0]
            k_i = int(k_floor)
            S = None
            if n_b > 1:
                S = gram_matrix(X_b, kernel, zero_diagonal=self.config.zero_diagonal)
                if self.config.allocation == "eigengap":
                    # Data-driven K_i with the proportional share as a floor
                    # (mirrors the batch estimator's under-allocation guard).
                    k_i = max(k_i, choose_k_eigengap(S, min(k_total, n_b)))
            local = self._cluster_block_from_gram(X_b, S, k_i, seed_rng)
            labels[np.asarray(idx)] = offset + local
            offset += k_i
        if (labels < 0).any():
            raise RuntimeError(
                f"{int((labels < 0).sum())} points were never assigned a bucket cluster"
            )
        if self.config.refine_to_k and offset > k_total:
            all_points = np.concatenate([g[0] for g in groups])
            all_idx = np.concatenate([np.asarray(g[1]) for g in groups])
            order = np.argsort(all_idx)
            labels = merge_clusters_to_k(all_points[order], labels, k_total)
            offset = k_total
        self.labels_ = labels
        self.n_clusters_ = offset
        return labels

    def _cluster_block_from_gram(self, X_b, S, k_i, seed_rng) -> np.ndarray:
        n_b = X_b.shape[0]
        if k_i >= n_b:
            return np.arange(n_b, dtype=np.int64)
        if k_i == 1:
            return np.zeros(n_b, dtype=np.int64)
        eig_seed = int(seed_rng.integers(2**31))
        Y = spectral_embedding(S, k_i, backend=self.config.eig_backend, seed=eig_seed)
        return KMeans(k_i, n_init=self.config.kmeans_n_init, seed=int(seed_rng.integers(2**31))).fit_predict(Y)
