"""Incremental (split-by-split) DASC.

Section 5.1: "the partitioning step allows our DASC algorithm to process
very large scale data sets, because the data partitions (or splits) are
incrementally processed, split by split" and "[d]istributed datasets can be
thought of [as] huge datasets with splits stored on different machines,
where the output hashes represent the keys that are used to exchange
datapoints between different nodes."

:class:`StreamingDASC` realises that mode of operation: hash parameters are
fitted once on a sample (or the first chunk), then arbitrarily many chunks
are absorbed one at a time — each chunk's points are hashed and appended to
their buckets, and nothing larger than a bucket is ever materialised. The
final clustering runs per bucket on demand. Peak memory is O(max bucket^2)
instead of O(N^2), independent of how many chunks streamed through.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.config import DASCConfig
from repro.core.refine import merge_clusters_to_k
from repro.core.signatures import make_hasher
from repro.kernels.bandwidth import median_heuristic
from repro.kernels.functions import GaussianKernel
from repro.kernels.matrix import gram_matrix
from repro.observability import get_tracer
from repro.spectral.embedding import spectral_embedding
from repro.spectral.kmeans import KMeans
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d

__all__ = ["StreamingDASC"]


class StreamingDASC:
    """DASC over a stream of data chunks.

    Parameters
    ----------
    n_clusters:
        Global cluster budget K (``None``: Eq. 15 from the total absorbed).
    config:
        Standard :class:`DASCConfig`; ``n_bits`` is resolved against the
        *calibration sample*, so fix it explicitly when the stream is far
        larger than the sample.

    Usage
    -----
    >>> sd = StreamingDASC(n_clusters=8, config=DASCConfig(n_bits=6, seed=0))
    >>> sd.calibrate(first_chunk)
    >>> for chunk in chunks:
    ...     sd.partial_fit(chunk)
    >>> labels = sd.finalize()   # aligned with absorption order
    """

    def __init__(self, n_clusters: int | None = None, *, config: DASCConfig | None = None):
        self.config = config if config is not None else DASCConfig()
        if n_clusters is not None:
            self.config.n_clusters = n_clusters
        self._hasher = None
        self._sigma: float | None = None
        # Per raw signature: a list of 2-D chunk slices (points) and a
        # matching list of 1-D absorption-index arrays. Concatenated they
        # give the bucket's points in absorption order.
        self._bucket_points: dict[int, list[np.ndarray]] = defaultdict(list)
        self._bucket_order: dict[int, list[np.ndarray]] = defaultdict(list)
        self._n_seen = 0
        self.labels_: np.ndarray | None = None
        self.n_clusters_: int | None = None

    # -- stream lifecycle -----------------------------------------------------

    def calibrate(self, sample) -> "StreamingDASC":
        """Fit hash parameters and the kernel bandwidth on a sample.

        Must run before :meth:`partial_fit`; the sample itself is *not*
        absorbed (pass it to :meth:`partial_fit` too if it is stream data).
        """
        sample = check_2d(sample)
        with get_tracer().span("streaming.calibrate", n_sample=sample.shape[0]) as span:
            n_bits = self.config.resolve_n_bits(sample.shape[0])
            self._hasher = make_hasher(self.config, n_bits)
            self._hasher.fit(sample)
            self._n_bits = n_bits
            sigma = self.config.sigma
            if sigma is None:
                sigma = median_heuristic(sample, seed=self.config.seed)
            self._sigma = float(sigma)
            span.set("n_bits", n_bits)
            span.set("sigma", self._sigma)
        return self

    def partial_fit(self, chunk) -> "StreamingDASC":
        """Absorb one chunk: hash its points into the bucket store."""
        if self._hasher is None:
            raise RuntimeError("call calibrate() before partial_fit()")
        chunk = check_2d(chunk)
        with get_tracer().span("streaming.absorb_chunk", n_points=chunk.shape[0]) as span:
            signatures = self._hasher.hash(chunk)
            # One stable argsort groups the chunk by signature; each bucket
            # receives a single 2-D slice whose rows keep chunk order — the
            # same per-bucket point order the per-row append produced, at
            # O(n log n) instead of n dict/list operations.
            order = np.argsort(signatures, kind="stable")
            unique, starts = np.unique(signatures[order], return_index=True)
            bounds = np.append(starts, signatures.shape[0])
            for key, lo, hi in zip(unique.tolist(), starts.tolist(), bounds[1:].tolist()):
                rows = order[lo:hi]
                self._bucket_points[key].append(chunk[rows])
                self._bucket_order[key].append(self._n_seen + rows)
            self._n_seen += chunk.shape[0]
            span.set("n_absorbed", self._n_seen)
            span.set("n_buckets", len(self._bucket_points))
        return self

    @property
    def n_absorbed(self) -> int:
        """Points absorbed so far."""
        return self._n_seen

    @property
    def n_buckets(self) -> int:
        """Occupied buckets so far."""
        return len(self._bucket_points)

    def _bucket_size(self, key: int) -> int:
        return sum(c.shape[0] for c in self._bucket_points[key])

    def bucket_sizes(self) -> np.ndarray:
        """Sizes of the occupied buckets (descending)."""
        return np.sort([self._bucket_size(k) for k in self._bucket_points])[::-1].astype(np.int64)

    def peak_block_bytes(self) -> int:
        """Largest single Gram block the finalize step will allocate."""
        if not self._bucket_points:
            return 0
        largest = max(self._bucket_size(k) for k in self._bucket_points)
        return largest * largest * 4

    # -- finalisation -----------------------------------------------------------

    def finalize(self) -> np.ndarray:
        """Cluster every bucket and return labels in absorption order.

        Small buckets (below ``config.min_bucket_size``) are merged into
        one residual group and clustered together, mirroring the batch
        pipeline's folding without needing the full signature table.
        """
        if self._n_seen == 0:
            raise RuntimeError("no data absorbed; call partial_fit() first")
        tracer = get_tracer()
        with tracer.span(
            "streaming.finalize", n_absorbed=self._n_seen, n_buckets=len(self._bucket_points)
        ) as span:
            if tracer.enabled:
                hist = tracer.metrics.histogram("streaming.bucket_size")
                for key in self._bucket_points:
                    hist.observe(self._bucket_size(key))
                tracer.metrics.gauge("streaming.peak_block_bytes").set(self.peak_block_bytes())
            labels = self._finalize_impl()
            span.set("n_clusters", self.n_clusters_)
        return labels

    def _assemble_groups(self):
        """``(groups, table)`` — the deterministic finalize work list.

        ``groups`` holds ``(points, absorption_indices)`` per surviving
        bucket (raw-signature order, small buckets swept into one trailing
        residual group); ``table`` maps every occupied raw signature to its
        group index, which is what the serving plane routes against.
        """
        groups: list[tuple[np.ndarray, np.ndarray]] = []
        table: dict[int, int] = {}
        residual_pts: list[np.ndarray] = []
        residual_idx: list[np.ndarray] = []
        residual_keys: list[int] = []
        for key in sorted(self._bucket_points):
            chunks = self._bucket_points[key]
            if self._bucket_size(key) < self.config.min_bucket_size:
                residual_pts.extend(chunks)
                residual_idx.extend(self._bucket_order[key])
                residual_keys.append(key)
            else:
                table[key] = len(groups)
                groups.append((np.vstack(chunks), np.concatenate(self._bucket_order[key])))
        if residual_pts:
            for key in residual_keys:
                table[key] = len(groups)
            groups.append((np.vstack(residual_pts), np.concatenate(residual_idx)))
        return groups, table

    def _block_plan(self, groups, k_total):
        """Yield ``(X_b, idx, S, k_i)`` per group.

        This is the exact Gram block and cluster budget the finalize loop
        consumes; :meth:`export_model` replays the same plan so its
        captured artifacts see bit-identical inputs.
        """
        kernel = GaussianKernel(self._sigma)
        sizes = np.array([g[0].shape[0] for g in groups], dtype=np.int64)
        from repro.core.allocation import allocate_clusters, choose_k_eigengap

        policy = "proportional" if self.config.allocation == "eigengap" else self.config.allocation
        ks = allocate_clusters(sizes, k_total, policy=policy)
        for (X_b, idx), k_floor in zip(groups, ks):
            n_b = X_b.shape[0]
            k_i = int(k_floor)
            S = None
            if n_b > 1:
                S = gram_matrix(X_b, kernel, zero_diagonal=self.config.zero_diagonal)
                if self.config.allocation == "eigengap":
                    # Data-driven K_i with the proportional share as a floor
                    # (mirrors the batch estimator's under-allocation guard).
                    k_i = max(k_i, choose_k_eigengap(S, min(k_total, n_b)))
            yield X_b, idx, S, k_i

    def _finalize_impl(self) -> np.ndarray:
        k_total = self.config.resolve_n_clusters(self._n_seen)
        seed_rng = as_rng(self.config.seed)
        groups, _ = self._assemble_groups()

        labels = np.full(self._n_seen, -1, dtype=np.int64)
        offset = 0
        for X_b, idx, S, k_i in self._block_plan(groups, k_total):
            local = self._cluster_block_from_gram(X_b, S, k_i, seed_rng)
            labels[idx] = offset + local
            offset += k_i
        if (labels < 0).any():
            raise RuntimeError(
                f"{int((labels < 0).sum())} points were never assigned a bucket cluster"
            )
        if self.config.refine_to_k and offset > k_total:
            all_points = np.concatenate([g[0] for g in groups])
            all_idx = np.concatenate([g[1] for g in groups])
            order = np.argsort(all_idx)
            labels = merge_clusters_to_k(all_points[order], labels, k_total)
            offset = k_total
        self.labels_ = labels
        self.n_clusters_ = offset
        return labels

    def _cluster_block_from_gram(self, X_b, S, k_i, seed_rng) -> np.ndarray:
        n_b = X_b.shape[0]
        if k_i >= n_b:
            return np.arange(n_b, dtype=np.int64)
        if k_i == 1:
            return np.zeros(n_b, dtype=np.int64)
        eig_seed = int(seed_rng.integers(2**31))
        Y = spectral_embedding(S, k_i, backend=self.config.eig_backend, seed=eig_seed)
        return KMeans(k_i, n_init=self.config.kmeans_n_init, seed=int(seed_rng.integers(2**31))).fit_predict(Y)

    # -- serving export ---------------------------------------------------------

    def export_model(self):
        """Freeze the finalized clustering into a servable ``DASCModel``.

        Replays the finalize plan — same group assembly, Gram blocks, and
        seed-draw order — capturing each block's spectral artifacts, so a
        training point re-presented to the exported model routes by exact
        signature to its group and reproduces its finalize label.
        """
        from repro.serving.model import assemble_model, attach_global_labels, fit_bucket_model

        if self.labels_ is None:
            raise RuntimeError("call finalize() before export_model()")
        k_total = self.config.resolve_n_clusters(self._n_seen)
        seed_rng = as_rng(self.config.seed)
        groups, table = self._assemble_groups()
        bucket_models = []
        for X_b, idx, S, k_i in self._block_plan(groups, k_total):
            # Same draw condition as _cluster_block_from_gram, so the replay
            # consumes the seed stream in exactly the finalize order.
            if k_i < X_b.shape[0] and k_i != 1:
                eig_seed = int(seed_rng.integers(2**31))
                km_seed = int(seed_rng.integers(2**31))
            else:
                eig_seed = km_seed = None
            bm, local = fit_bucket_model(
                S,
                X_b,
                k_i,
                eig_seed,
                km_seed,
                eig_backend=self.config.eig_backend,
                kmeans_n_init=self.config.kmeans_n_init,
            )
            bucket_models.append(attach_global_labels(bm, local, self.labels_[idx]))
        all_points = np.concatenate([g[0] for g in groups])
        all_idx = np.concatenate([g[1] for g in groups])
        order = np.argsort(all_idx)
        return assemble_model(
            hasher=self._hasher,
            kernel=GaussianKernel(self._sigma),
            zero_diagonal=self.config.zero_diagonal,
            bucket_models=bucket_models,
            table=table,
            labels=self.labels_,
            X=all_points[order],
            n_clusters=self.n_clusters_,
            meta={
                "source": "streaming",
                "n_train": int(self._n_seen),
                "seed": self.config.seed,
                "sigma": self._sigma,
                "n_bits": self._n_bits,
            },
        )
