"""Signature generation — step 1 of DASC.

A thin dispatch layer over :mod:`repro.lsh`: builds the configured hash
family and produces one packed ``uint64`` signature per point.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DASCConfig
from repro.lsh.axis import AxisParallelHasher
from repro.lsh.minhash import MinHasher
from repro.lsh.random_projection import PCARotationHasher, SignedRandomProjectionHasher
from repro.lsh.stable import StableDistributionHasher
from repro.utils.validation import check_2d

__all__ = ["make_hasher", "compute_signatures"]


def make_hasher(config: DASCConfig, n_bits: int):
    """Instantiate the LSH family named by ``config.hasher``."""
    seed = config.seed
    name = config.hasher.lower()
    if name == "axis":
        return AxisParallelHasher(
            n_bits,
            dimension_policy=config.dimension_policy,
            threshold_policy=config.threshold_policy,
            seed=seed,
        )
    if name == "signed_rp":
        return SignedRandomProjectionHasher(n_bits, seed=seed)
    if name == "pca":
        return PCARotationHasher(n_bits, seed=seed)
    if name == "stable":
        return StableDistributionHasher(n_bits, seed=seed, **config.extra.get("stable", {}))
    if name == "minhash":
        return MinHasher(n_bits, seed=seed, **config.extra.get("minhash", {}))
    raise ValueError(f"unknown hasher {config.hasher!r}")


def compute_signatures(X, config: DASCConfig) -> tuple[np.ndarray, int, object]:
    """Fit the configured hasher on ``X`` and return packed signatures.

    Returns
    -------
    (signatures, n_bits, hasher) — ``signatures`` is (n,) uint64, ``n_bits``
    the resolved M, ``hasher`` the fitted hash object (reusable on new data).
    """
    X = check_2d(X)
    n_bits = config.resolve_n_bits(X.shape[0])
    hasher = make_hasher(config, n_bits)
    signatures = hasher.fit_hash(X)
    return signatures, n_bits, hasher
