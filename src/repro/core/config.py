"""DASC configuration and the paper's parameter defaults.

Section 5.4 fixes the defaults used throughout the evaluation:

* ``M = floor(log2(N) / 2) - 1`` signature bits,
* ``P = M - 1`` — merge buckets whose signatures share at least M-1 bits,
  i.e. differ in at most one bit, testable with the O(1) Eq.-6 trick.

Section 4.2 / Table 1 fit the cluster count of the Wikipedia corpus as
``K = 17 (log2 N - 9)`` (Eq. 15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["default_n_bits", "default_n_clusters", "DASCConfig"]


def default_n_bits(n_samples: int) -> int:
    """The paper's M: ``floor(log2(N) / 2) - 1``, clamped to [1, 64]."""
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    m = math.floor(math.log2(n_samples) / 2) - 1
    return max(1, min(64, m))


def default_n_clusters(n_samples: int) -> int:
    """Eq. (15): the Wikipedia category-count fit ``K = 17 (log2 N - 9)``.

    Clamped below by 1 (the fit goes non-positive for N <= 512).
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    return max(1, round(17 * (math.log2(n_samples) - 9)))


@dataclass
class DASCConfig:
    """All tunables of the DASC pipeline.

    Parameters
    ----------
    n_clusters:
        Total clusters K (``None``: Eq. 15 from the data size).
    n_bits:
        Signature length M (``None``: the Section-5.4 default from N).
    min_shared_bits:
        P. Buckets merge when signatures share >= P bits. ``None`` means the
        paper's ``P = M - 1``. Setting ``P = M`` disables merging.
    merge_strategy:
        ``"star"`` (greedy largest-first, no chains; the default) or
        ``"transitive"`` (union-find closure; the literal Section-3.3
        reading, which can collapse dense signature sets into one bucket).
        See :func:`repro.core.buckets.merge_buckets`.
    hasher:
        LSH family: ``"axis"`` (the paper's), ``"signed_rp"``, ``"pca"``,
        ``"stable"``, ``"minhash"``.
    dimension_policy / threshold_policy:
        Passed to :class:`repro.lsh.axis.AxisParallelHasher`.
    sigma:
        Gaussian bandwidth of Eq. (1). ``None`` resolves to the median
        pairwise-distance heuristic, except under the ``"eigengap"``
        allocation, where the mean k-NN distance is used instead (the
        eigengap needs a locality-scale bandwidth).
    allocation:
        Per-bucket cluster allocation: ``"proportional"`` (K_i ∝ N_i),
        ``"sqrt"`` (K_i ∝ sqrt(N_i); favours small buckets), ``"fixed"``
        (every bucket gets ``min(K, N_i)`` clusters), or ``"eigengap"``
        (data-driven K_i from each bucket's Laplacian spectrum; an
        extension beyond the paper).
    min_bucket_size:
        Buckets smaller than this are folded into their nearest (by
        signature Hamming distance) large bucket before clustering, so
        singleton buckets don't each consume a cluster.
    refine_to_k:
        When the per-bucket label union exceeds the requested K (the
        ``"fixed"``/``"eigengap"`` policies, or clusters split across
        buckets), agglomeratively merge clusters back down to K with
        :func:`repro.core.refine.merge_clusters_to_k` (extension beyond
        the paper).
    eig_backend:
        ``"dense"``, ``"lanczos"``, or ``"arpack"``.
    zero_diagonal:
        Algorithm 2's zero-self-similarity convention.
    seed:
        Master seed for hashing, eigensolvers, and K-means.
    n_jobs:
        Worker processes for the per-bucket kernel + spectral stage.
        ``None`` defers to the ``REPRO_N_JOBS`` environment variable
        (unset: serial); ``-1`` uses all visible cores. Results are
        bit-identical to serial for any value — buckets are independent
        sub-problems and labels merge in bucket order.
    validate:
        Run the :mod:`repro.verify.invariants` checks at every stage
        boundary (bucket partition, Gram blocks, Laplacian spectrum,
        embedding rows, final labels), raising a structured
        ``InvariantViolation`` on the first broken contract. ``None``
        (the default) defers to the ``REPRO_VALIDATE`` environment
        variable; ``True``/``False`` force it per estimator.
    """

    n_clusters: int | None = None
    n_bits: int | None = None
    min_shared_bits: int | None = None
    merge_strategy: str = "star"
    hasher: str = "axis"
    dimension_policy: str = "span_weighted"
    threshold_policy: str = "histogram_valley"
    sigma: float | None = None
    allocation: str = "proportional"
    min_bucket_size: int = 2
    refine_to_k: bool = True
    eig_backend: str = "dense"
    zero_diagonal: bool = True
    kmeans_n_init: int = 4
    seed: int | None = 0
    n_jobs: int | None = None
    validate: bool | None = None
    extra: dict = field(default_factory=dict)

    def resolve_n_bits(self, n_samples: int) -> int:
        """M for this run (explicit value or the paper's default)."""
        if self.n_bits is not None:
            if not 1 <= self.n_bits <= 64:
                raise ValueError(f"n_bits must be in [1, 64], got {self.n_bits}")
            return self.n_bits
        return default_n_bits(n_samples)

    def resolve_n_clusters(self, n_samples: int) -> int:
        """K for this run (explicit value or the Eq.-15 default)."""
        if self.n_clusters is not None:
            if self.n_clusters < 1:
                raise ValueError(f"n_clusters must be >= 1, got {self.n_clusters}")
            return self.n_clusters
        return default_n_clusters(n_samples)

    def resolve_min_shared_bits(self, n_bits: int) -> int:
        """P for this run; the paper's default is M - 1."""
        if self.min_shared_bits is not None:
            if not 0 <= self.min_shared_bits <= n_bits:
                raise ValueError(
                    f"min_shared_bits must be in [0, {n_bits}], got {self.min_shared_bits}"
                )
            return self.min_shared_bits
        return max(n_bits - 1, 0)
