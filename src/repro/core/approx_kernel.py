"""Approximate kernel matrix — step 3 of DASC.

The approximation computes Eq.-(1) similarities only *within* buckets. Under
a bucket-sorted point order the result is block diagonal: one dense
``N_i x N_i`` Gram block per bucket, ``sum N_i^2`` entries total instead of
``N^2``. This module assembles those blocks, tracks their exact memory
footprint (Figure 6(b) / Eq. 12 accounting), and can materialise the
equivalent full-size matrix or its Frobenius norm for the Figure-5 metric —
without ever allocating N x N when only the norm is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.buckets import Buckets
from repro.kernels.functions import Kernel
from repro.kernels.matrix import gram_matrix_auto
from repro.utils.memory import block_diagonal_bytes
from repro.utils.validation import check_2d

__all__ = ["ApproximateKernel", "build_approximate_kernel"]


@dataclass
class ApproximateKernel:
    """A block-diagonal approximation of the Gram matrix.

    Attributes
    ----------
    blocks:
        One dense Gram matrix per bucket (bucket id order).
    bucket_indices:
        Point indices (into the original data) for each block, same order.
    n_samples:
        N, the full matrix dimension.
    """

    blocks: list[np.ndarray] = field(default_factory=list)
    bucket_indices: list[np.ndarray] = field(default_factory=list)
    n_samples: int = 0

    @property
    def n_blocks(self) -> int:
        """Number of buckets B."""
        return len(self.blocks)

    @property
    def block_sizes(self) -> np.ndarray:
        """(B,) sizes N_i of each block."""
        return np.array([b.shape[0] for b in self.blocks], dtype=np.int64)

    @property
    def nbytes(self) -> int:
        """Exact storage of the approximation (single precision, Eq. 12)."""
        return block_diagonal_bytes(self.block_sizes)

    @property
    def stored_entries(self) -> int:
        """``sum N_i^2`` — the entry count the approximation keeps."""
        return int((self.block_sizes.astype(np.int64) ** 2).sum())

    def frobenius_norm(self) -> float:
        """Frobenius norm of the approximation, from the blocks directly."""
        total = 0.0
        for block in self.blocks:
            total += float(np.einsum("ij,ij->", block, block))
        return float(np.sqrt(total))

    def to_dense(self) -> np.ndarray:
        """Materialise the full N x N approximate matrix (testing/small N only)."""
        K = np.zeros((self.n_samples, self.n_samples))
        for idx, block in zip(self.bucket_indices, self.blocks):
            K[np.ix_(idx, idx)] = block
        return K

    def to_sparse(self) -> sp.csr_matrix:
        """The approximate matrix as CSR (useful for sparse downstream solvers)."""
        rows, cols, vals = [], [], []
        for idx, block in zip(self.bucket_indices, self.blocks):
            grid_r, grid_c = np.meshgrid(idx, idx, indexing="ij")
            rows.append(grid_r.ravel())
            cols.append(grid_c.ravel())
            vals.append(block.ravel())
        if not rows:
            return sp.csr_matrix((self.n_samples, self.n_samples))
        return sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self.n_samples, self.n_samples),
        )


def _bucket_block_worker(payload):
    """Process-pool entry point: compute one bucket's Gram block.

    The dataset arrives as a :class:`~repro.mapreduce.executor.SharedArray`
    handle (a few bytes per task); only the bucket's rows are copied out of
    the shared segment. The same function runs in-process on the serial
    path, so both backends execute identical arithmetic.
    """
    from repro.mapreduce.executor import _null_child_tracer

    _null_child_tracer()
    shared, idx, kernel, zero_diagonal = payload
    X = shared.asarray()
    block = gram_matrix_auto(X[idx], kernel, zero_diagonal=zero_diagonal)
    shared.close()
    return block


def build_approximate_kernel(
    X, buckets: Buckets, kernel: Kernel, *, zero_diagonal: bool = True, executor=None
) -> ApproximateKernel:
    """Compute the per-bucket Gram blocks (Algorithm 2, all reducers).

    ``zero_diagonal`` follows Algorithm 2, which writes 0 on each block's
    diagonal (zero self-affinity). With a parallel ``executor`` the blocks
    are computed across worker processes (dataset broadcast once through
    shared memory) and collected in bucket order — bit-identical to the
    serial result.
    """
    X = check_2d(X)
    if buckets.assignments.shape[0] != X.shape[0]:
        raise ValueError(
            f"buckets cover {buckets.assignments.shape[0]} points, data has {X.shape[0]}"
        )
    approx = ApproximateKernel(n_samples=X.shape[0])
    members = list(buckets.iter_members())
    if executor is not None and getattr(executor, "parallel", False) and len(members) > 1:
        from repro.mapreduce.executor import SharedArray, is_picklable

        if is_picklable(kernel):
            with SharedArray.create(X) as shared:
                payloads = [(shared, idx, kernel, zero_diagonal) for _, idx in members]
                blocks = executor.map_ordered(_bucket_block_worker, payloads)
            approx.blocks.extend(blocks)
            approx.bucket_indices.extend(idx for _, idx in members)
            return approx
    for _, idx in members:
        approx.blocks.append(
            _bucket_block_worker((_LocalArray(X), idx, kernel, zero_diagonal))
        )
        approx.bucket_indices.append(idx)
    return approx


class _LocalArray:
    """Duck-typed stand-in for SharedArray on the serial path (no copy)."""

    __slots__ = ("_array",)

    def __init__(self, array: np.ndarray):
        self._array = array

    def asarray(self) -> np.ndarray:
        return self._array

    def close(self) -> None:
        pass
