"""Per-bucket cluster allocation.

DASC clusters each bucket independently into K_i clusters with
``sum K_i = K`` (the global cluster count). The paper does not pin the
allocation rule down, so three natural policies are provided and ablated:

* ``"proportional"`` — K_i ∝ N_i (largest-remainder rounding). Matches the
  uniform-bucket analysis of Section 4.1 where K_i = K / B.
* ``"sqrt"`` — K_i ∝ sqrt(N_i); gives small buckets more resolution.
* ``"fixed"`` — every bucket gets ``min(K, N_i)`` clusters (no global
  budget; yields >= K total clusters).
* ``"eigengap"`` (an extension beyond the paper) — K_i is read off the
  bucket's own normalized-Laplacian spectrum via the eigengap heuristic
  (:func:`choose_k_eigengap`), so buckets that captured several true
  clusters receive several, independent of their point count.

Every policy guarantees ``1 <= K_i <= N_i`` for non-empty buckets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["allocate_clusters", "choose_k_eigengap"]


def choose_k_eigengap(affinity: np.ndarray, k_max: int) -> int:
    """Eigengap heuristic: K = position of the largest gap in the spectrum.

    The normalized affinity ``D^{-1/2} S D^{-1/2}`` of a graph with K
    well-separated clusters has K eigenvalues near 1 followed by a drop;
    the index of the largest consecutive gap among the top ``k_max + 1``
    eigenvalues estimates K.
    """
    from repro.spectral.laplacian import normalized_laplacian

    n = affinity.shape[0]
    if n <= 2:
        return 1
    k_max = max(1, min(k_max, n - 1))
    L = normalized_laplacian(affinity)
    eigs = np.sort(np.linalg.eigvalsh(L))[::-1][: k_max + 1]
    gaps = eigs[:-1] - eigs[1:]
    return int(np.argmax(gaps)) + 1


def allocate_clusters(bucket_sizes, n_clusters: int, *, policy: str = "proportional") -> np.ndarray:
    """Split a global budget of ``n_clusters`` across buckets.

    Parameters
    ----------
    bucket_sizes:
        (B,) sizes N_i; all must be >= 1.
    n_clusters:
        Global K.
    policy:
        ``"proportional"``, ``"sqrt"``, or ``"fixed"``.

    Returns
    -------
    (B,) int K_i with ``1 <= K_i <= N_i``; for the budgeted policies
    ``sum K_i == min(max(K, B), sum N_i)`` — every bucket needs at least one
    cluster and no bucket can host more clusters than points.
    """
    sizes = np.asarray(bucket_sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise ValueError(f"bucket_sizes must be a non-empty vector, got shape {sizes.shape}")
    if (sizes < 1).any():
        raise ValueError("all buckets must be non-empty")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")

    if policy == "fixed":
        return np.minimum(n_clusters, sizes)
    if policy == "proportional":
        weights = sizes.astype(np.float64)
    elif policy == "sqrt":
        weights = np.sqrt(sizes.astype(np.float64))
    else:
        raise ValueError(f"unknown policy {policy!r}")

    b = sizes.shape[0]
    budget = min(max(n_clusters, b), int(sizes.sum()))
    # Start from the floor of the fractional share, clamped to [1, N_i].
    shares = weights / weights.sum() * budget
    alloc = np.clip(np.floor(shares).astype(np.int64), 1, sizes)
    # Largest-remainder distribution of the leftover budget.
    remainder = budget - int(alloc.sum())
    if remainder > 0:
        frac = shares - np.floor(shares)
        order = np.argsort(frac, kind="stable")[::-1]
        for idx in np.tile(order, int(np.ceil(remainder / b)) + 1):
            if remainder == 0:
                break
            if alloc[idx] < sizes[idx]:
                alloc[idx] += 1
                remainder -= 1
    elif remainder < 0:
        # Floors exceeded the budget (many 1-clamps); shave the largest allocs.
        order = np.argsort(alloc, kind="stable")[::-1]
        for idx in np.tile(order, b):
            if remainder == 0:
                break
            if alloc[idx] > 1:
                alloc[idx] -= 1
                remainder += 1
    return alloc
