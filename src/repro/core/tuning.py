"""Choosing the approximation level (the paper's accuracy/resource knob).

The abstract promises that "the level of approximation can be controlled to
tradeoff some accuracy of the results with the required computing
resources". The knob is M (more bits → more buckets → smaller kernel,
larger approximation error). This module turns the promise into an API:

* :func:`approximation_profile` — sweep M on a subsample and measure, for
  each value, the bucket count, the kept-kernel fraction and the Frobenius
  ratio (the Figure-5 quantities);
* :func:`choose_n_bits` — the largest M (maximal savings) whose sampled
  Frobenius ratio still meets a target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DASCConfig
from repro.kernels.bandwidth import median_heuristic
from repro.kernels.functions import GaussianKernel
from repro.kernels.matrix import gram_matrix
from repro.metrics.fnorm import fnorm_ratio
from repro.observability import get_logger
from repro.utils.rng import as_rng
from repro.utils.validation import check_2d, check_probability

__all__ = ["ProfileEntry", "approximation_profile", "choose_n_bits"]

log = get_logger(__name__)


@dataclass(frozen=True)
class ProfileEntry:
    """One row of an approximation profile."""

    n_bits: int
    n_buckets: int
    kept_fraction: float  # stored kernel entries / N^2
    fnorm_ratio: float  # Figure 5's quality measure


def approximation_profile(
    X,
    bit_values=(2, 4, 6, 8, 10),
    *,
    config: DASCConfig | None = None,
    max_samples: int = 1024,
    seed=0,
) -> list[ProfileEntry]:
    """Measure the cost/quality tradeoff of each candidate M on a subsample.

    The subsample keeps the profiling O(max_samples^2) regardless of N; the
    resulting curve is the sampled version of Figure 5.
    """
    from repro.core.dasc import DASC

    X = check_2d(X)
    rng = as_rng(seed)
    n_original = X.shape[0]
    if X.shape[0] > max_samples:
        X = X[rng.choice(X.shape[0], size=max_samples, replace=False)]
        log.debug("profiling on %d of %d points", X.shape[0], n_original)
    base = config if config is not None else DASCConfig()
    sigma = base.sigma if base.sigma is not None else median_heuristic(X, seed=seed)
    full = gram_matrix(X, GaussianKernel(sigma), zero_diagonal=base.zero_diagonal)

    profile = []
    for n_bits in bit_values:
        if not 1 <= n_bits <= 64:
            raise ValueError(f"bit values must be in [1, 64], got {n_bits}")
        dasc = DASC(
            config=DASCConfig(
                n_bits=int(n_bits),
                sigma=sigma,
                min_bucket_size=base.min_bucket_size,
                merge_strategy=base.merge_strategy,
                hasher=base.hasher,
                dimension_policy=base.dimension_policy,
                threshold_policy=base.threshold_policy,
                zero_diagonal=base.zero_diagonal,
                seed=base.seed,
            )
        )
        approx = dasc.transform(X)
        entry = ProfileEntry(
            n_bits=int(n_bits),
            n_buckets=approx.n_blocks,
            kept_fraction=approx.stored_entries / X.shape[0] ** 2,
            fnorm_ratio=fnorm_ratio(approx, full),
        )
        log.debug(
            "M=%d: %d buckets, kept %.3f of kernel, fnorm ratio %.3f",
            entry.n_bits, entry.n_buckets, entry.kept_fraction, entry.fnorm_ratio,
        )
        profile.append(entry)
    return profile


def choose_n_bits(
    X,
    *,
    target_fnorm_ratio: float = 0.9,
    bit_values=(2, 4, 6, 8, 10),
    config: DASCConfig | None = None,
    max_samples: int = 1024,
    seed=0,
) -> int:
    """Largest M whose sampled Fnorm ratio stays above the target.

    Falls back to the smallest candidate when even it misses the target
    (the caller asked for more fidelity than any bucketing provides; the
    smallest M is then the least-bad choice).
    """
    check_probability(target_fnorm_ratio, name="target_fnorm_ratio")
    profile = approximation_profile(
        X, bit_values, config=config, max_samples=max_samples, seed=seed
    )
    feasible = [e for e in profile if e.fnorm_ratio >= target_fnorm_ratio]
    if not feasible:
        chosen = min(e.n_bits for e in profile)
        log.warning(
            "no candidate M reaches fnorm ratio %.3f; falling back to M=%d",
            target_fnorm_ratio, chosen,
        )
        return chosen
    chosen = max(e.n_bits for e in feasible)
    log.info("chose M=%d (target fnorm ratio %.3f)", chosen, target_fnorm_ratio)
    return chosen
