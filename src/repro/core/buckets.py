"""Bucket grouping and merging — step 2 of DASC.

Points with identical signatures fall into the same bucket. Buckets whose
signatures share at least ``P`` of the ``M`` bits are then merged (Section
3.3); with the paper's ``P = M - 1`` the test is the Eq.-6 bit trick
``(A ^ B) & (A ^ B - 1) == 0``. Merging is transitive (chains of one-bit
neighbours coalesce), implemented as union-find over the unique signatures —
the pairwise O(T^2) comparison of the paper, with T = #unique signatures.

Small buckets (below ``min_bucket_size``) are folded into their nearest
surviving bucket by signature Hamming distance, so stragglers don't produce
degenerate one-point spectral problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lsh.hamming import hamming_distance

__all__ = ["Buckets", "group_by_signature", "merge_buckets"]


@dataclass
class Buckets:
    """A partition of point indices into hashing buckets.

    Attributes
    ----------
    assignments:
        (n,) int — bucket id per point, ids in ``[0, n_buckets)``.
    signatures:
        (n_buckets,) uint64 — a representative signature per bucket.
    n_bits:
        Signature length M.
    """

    assignments: np.ndarray
    signatures: np.ndarray
    n_bits: int

    def __post_init__(self):
        # Buckets are immutable by convention (every merge/fold builds a new
        # instance) and `sizes`/`members` cache off the stored arrays, so a
        # post-construction mutation would silently serve stale members.
        # Freeze both arrays up front: writes raise instead of corrupting.
        self.assignments = np.asarray(self.assignments)
        self.signatures = np.asarray(self.signatures, dtype=np.uint64)
        self.assignments.setflags(write=False)
        self.signatures.setflags(write=False)

    @property
    def n_buckets(self) -> int:
        """Number of buckets B."""
        return int(self.signatures.shape[0])

    @property
    def sizes(self) -> np.ndarray:
        """(B,) bucket sizes N_i; sums to the number of points.

        Computed once and cached (buckets are immutable by convention —
        every merge/fold builds a new :class:`Buckets`); the cached array
        is marked read-only so a caller cannot silently corrupt it.
        """
        cached = self.__dict__.get("_sizes_cache")
        if cached is None:
            cached = np.bincount(self.assignments, minlength=self.n_buckets)
            cached.setflags(write=False)
            self.__dict__["_sizes_cache"] = cached
        return cached

    def _member_index(self):
        """Cached ``(order, boundaries)`` pair: one stable argsort shared by
        every member lookup instead of an O(n) scan per bucket."""
        cached = self.__dict__.get("_member_index_cache")
        if cached is None:
            order = np.argsort(self.assignments, kind="stable")
            boundaries = np.searchsorted(
                self.assignments[order], np.arange(self.n_buckets + 1)
            )
            order.setflags(write=False)
            cached = (order, boundaries)
            self.__dict__["_member_index_cache"] = cached
        return cached

    def members(self, bucket_id: int) -> np.ndarray:
        """Point indices belonging to ``bucket_id``, in input order."""
        if not 0 <= bucket_id < self.n_buckets:
            raise IndexError(f"bucket_id {bucket_id} out of range [0, {self.n_buckets})")
        order, boundaries = self._member_index()
        # Stable sort keeps equal keys in input order, so the slice is
        # ascending — identical to the nonzero scan it replaces.
        return order[boundaries[bucket_id] : boundaries[bucket_id + 1]]

    def iter_members(self):
        """Yield ``(bucket_id, indices)`` for every bucket."""
        order, boundaries = self._member_index()
        for b in range(self.n_buckets):
            yield b, order[boundaries[b] : boundaries[b + 1]]


def group_by_signature(signatures: np.ndarray, n_bits: int) -> Buckets:
    """Bucket points by exact signature equality (one bucket per unique value)."""
    signatures = np.asarray(signatures, dtype=np.uint64)
    if signatures.ndim != 1:
        raise ValueError(f"signatures must be 1-D, got shape {signatures.shape}")
    unique, assignments = np.unique(signatures, return_inverse=True)
    return Buckets(assignments=assignments.astype(np.int64), signatures=unique, n_bits=n_bits)


class _UnionFind:
    """Union-find with path compression over ``n`` elements."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def _merge_groups(buckets: Buckets, groups: np.ndarray) -> Buckets:
    """Re-label buckets according to a group id per original bucket.

    Group ids are themselves bucket indices (the star leader / union-find
    root / fold target), so each merged bucket's representative signature is
    its leader's signature.
    """
    unique_groups, compact = np.unique(groups, return_inverse=True)
    return Buckets(
        assignments=compact[buckets.assignments],
        signatures=buckets.signatures[unique_groups],
        n_bits=buckets.n_bits,
    )


def merge_buckets(buckets: Buckets, min_shared_bits: int, *, strategy: str = "star") -> Buckets:
    """Merge buckets whose signatures share at least ``min_shared_bits`` bits.

    ``min_shared_bits = M`` is a no-op; ``M - 1`` is the paper's default and
    uses the Eq.-6 one-bit test. Both strategies run the paper's pairwise
    O(T^2) comparison over the T unique signatures; they differ in how the
    pairwise merge relation is closed into a partition:

    * ``"star"`` (default) — greedy, largest bucket first (ties broken by
      lowest bucket id, i.e. lowest signature): each leader absorbs its
      still-unmerged near-duplicate signatures, and absorbed buckets do
      not recruit further. No chains, so two well-separated
      clusters never glue together through a trail of noise signatures;
      this preserves the parallelism (B stays large) that the paper's
      Section 4.1 analysis and Figure 5 bucket counts assume.
    * ``"transitive"`` — union-find closure of the pairwise relation (the
      literal reading of Section 3.3). On data whose occupied signatures
      are dense in the hypercube this can collapse everything into one
      bucket, which is the worst case discussed in Section 4.1.
    """
    m = buckets.n_bits
    if not 0 <= min_shared_bits <= m:
        raise ValueError(f"min_shared_bits must be in [0, {m}], got {min_shared_bits}")
    if strategy not in ("star", "transitive"):
        raise ValueError(f"unknown merge strategy {strategy!r}")
    if min_shared_bits == m or buckets.n_buckets <= 1:
        return buckets
    max_diff = m - min_shared_bits
    sigs = buckets.signatures

    if strategy == "transitive":
        uf = _UnionFind(buckets.n_buckets)
        # One vectorized XOR/popcount sweep per row block (instead of a
        # Python-level pair loop) discovers all mergeable pairs; the block
        # bounds the (block x T) distance temporary. Union order does not
        # matter: _UnionFind parents max roots to min roots, so each
        # component's label is its minimum member either way.
        n = buckets.n_buckets
        block = max(1, (1 << 22) // n)
        for start in range(0, n - 1, block):
            stop = min(start + block, n - 1)
            dist = hamming_distance(sigs[start:stop, None], sigs[None, :])
            ii, jj = np.nonzero(dist <= max_diff)
            ii += start
            for i, j in zip(ii.tolist(), jj.tolist()):
                if i < j:
                    uf.union(i, j)
        groups = np.array([uf.find(b) for b in range(buckets.n_buckets)], dtype=np.int64)
        return _merge_groups(buckets, groups)

    # Star merge: visit buckets largest-first; unclaimed buckets become
    # leaders and claim their unclaimed near-duplicates. Sorting the
    # *negated* sizes keeps the stable sort's lowest-id-first order within
    # each tie — reversing an ascending stable sort would visit equal-size
    # buckets highest-id-first instead.
    sizes = buckets.sizes
    order = np.argsort(-sizes, kind="stable")
    groups = np.full(buckets.n_buckets, -1, dtype=np.int64)
    for b in order:
        if groups[b] != -1:
            continue
        groups[b] = b
        dist = hamming_distance(sigs[b], sigs)
        near = np.nonzero((dist <= max_diff) & (groups == -1))[0]
        groups[near] = b
    return _merge_groups(buckets, groups)


def fold_small_buckets(buckets: Buckets, min_size: int) -> Buckets:
    """Fold buckets smaller than ``min_size`` into their Hamming-nearest big bucket.

    If every bucket is small, all points collapse into a single bucket (the
    worst case the paper's Section 4.1 discusses). Ties go to the
    lowest-signature neighbour for determinism.
    """
    if min_size <= 1 or buckets.n_buckets <= 1:
        return buckets
    sizes = buckets.sizes
    big = np.nonzero(sizes >= min_size)[0]
    if big.size == 0:
        groups = np.zeros(buckets.n_buckets, dtype=np.int64)
        return _merge_groups(buckets, groups)
    if big.size == buckets.n_buckets:
        return buckets
    groups = np.arange(buckets.n_buckets, dtype=np.int64)
    big_sigs = buckets.signatures[big]
    small = np.nonzero(sizes < min_size)[0]
    # One broadcast popcount (small x big) + row-wise argmin; argmin takes
    # the first minimum, i.e. the lowest big signature (np.unique sorted
    # them), matching the documented tie rule.
    dist = hamming_distance(buckets.signatures[small][:, None], big_sigs[None, :])
    groups[small] = big[np.argmin(dist, axis=1)]
    return _merge_groups(buckets, groups)
