"""DASC core — the paper's contribution.

The pipeline (Section 3.1):

1. :mod:`repro.core.signatures` — M-bit LSH signatures per point,
2. :mod:`repro.core.buckets` — group identical signatures, merge buckets
   whose signatures differ in at most ``M - P`` bits (Eq. 6),
3. :mod:`repro.core.approx_kernel` — per-bucket Gram blocks (Eq. 1),
4. :class:`repro.core.dasc.DASC` — per-bucket spectral clustering on top.

:mod:`repro.core.config` holds the knobs and the paper's defaults
(``M = floor(log2 N / 2) - 1``, ``P = M - 1``); :mod:`repro.core.allocation`
decides how many clusters each bucket receives.
"""

from repro.core.config import DASCConfig, default_n_bits, default_n_clusters
from repro.core.signatures import compute_signatures, make_hasher
from repro.core.buckets import Buckets, group_by_signature, merge_buckets
from repro.core.approx_kernel import ApproximateKernel, build_approximate_kernel
from repro.core.allocation import allocate_clusters, choose_k_eigengap
from repro.core.refine import merge_clusters_to_k
from repro.core.streaming import StreamingDASC
from repro.core.tuning import approximation_profile, choose_n_bits
from repro.core.dasc import DASC

__all__ = [
    "DASCConfig",
    "default_n_bits",
    "default_n_clusters",
    "compute_signatures",
    "make_hasher",
    "Buckets",
    "group_by_signature",
    "merge_buckets",
    "ApproximateKernel",
    "build_approximate_kernel",
    "allocate_clusters",
    "choose_k_eigengap",
    "merge_clusters_to_k",
    "StreamingDASC",
    "approximation_profile",
    "choose_n_bits",
    "DASC",
]
