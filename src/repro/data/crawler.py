"""Simulated Wikipedia site + the paper's category-tree crawler.

Section 5.2 describes the acquisition: a crawler starts at the category
index page, follows sub-category links — distinguished in the HTML as
``CategoryTreeBullet`` (has its own sub-categories) vs
``CategoryTreeEmptyBullet`` (only leaf articles) — and downloads the leaf
documents. :class:`SyntheticWikipedia` serves a generated category tree as
HTML pages; :class:`Crawler` performs the recursive traversal and returns
the page texts and the recovered tree, ready for
:func:`repro.data.text.preprocess_document`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.wikipedia import Corpus, WikipediaCorpusConfig, generate_corpus
from repro.utils.rng import as_rng

__all__ = ["SyntheticWikipedia", "Crawler", "CrawlResult"]

INDEX_URL = "/wiki/Portal:Contents/Categories"


@dataclass
class _CategoryNode:
    name: str
    url: str
    children: list["_CategoryNode"] = field(default_factory=list)
    article_urls: list[str] = field(default_factory=list)

    @property
    def is_leaf_category(self) -> bool:
        return not self.children


class SyntheticWikipedia:
    """An in-memory web site: category pages + article pages as HTML strings.

    Built from a generated :class:`Corpus`: the corpus's categories are
    arranged into a tree of branching factor ``branching``, interior nodes
    become ``CategoryTreeBullet`` links and leaf categories become
    ``CategoryTreeEmptyBullet`` links whose pages list their article links.
    """

    def __init__(self, corpus: Corpus | None = None, *, branching: int = 4, seed=0, **corpus_overrides):
        if corpus is None:
            cfg = WikipediaCorpusConfig(seed=seed, **corpus_overrides)
            corpus = generate_corpus(cfg)
        self.corpus = corpus
        self.branching = max(2, int(branching))
        self._pages: dict[str, str] = {}
        self._article_category: dict[str, int] = {}
        self._build(as_rng(seed))

    # -- site construction -----------------------------------------------------

    def _build(self, rng) -> None:
        # Leaf category nodes, one per corpus category.
        leaves = [
            _CategoryNode(name=name, url=f"/wiki/Category:{i}")
            for i, name in enumerate(self.corpus.category_names)
        ]
        for doc in self.corpus.documents:
            url = f"/wiki/{doc.title}"
            leaves[doc.category_id].article_urls.append(url)
            self._article_category[url] = doc.category_id
            self._pages[url] = (
                f"<html><head><title>{doc.title}</title></head><body>"
                f"<h1>{doc.title}</h1><p>{doc.text}</p></body></html>"
            )
        # Stack leaves under interior nodes until a single root remains.
        level = leaves
        counter = 0
        while len(level) > 1:
            parents = []
            for start in range(0, len(level), self.branching):
                group = level[start : start + self.branching]
                parent = _CategoryNode(
                    name=f"Branch_{counter}", url=f"/wiki/Category:Branch_{counter}"
                )
                parent.children = group
                parents.append(parent)
                counter += 1
            level = parents
        self.root = level[0]
        self.root.url = INDEX_URL
        self._render_category_pages(self.root)

    def _render_category_pages(self, node: _CategoryNode) -> None:
        rows = []
        for child in node.children:
            bullet = "CategoryTreeEmptyBullet" if child.is_leaf_category else "CategoryTreeBullet"
            rows.append(f'<div class="{bullet}"><a href="{child.url}">{child.name}</a></div>')
        for url in node.article_urls:
            rows.append(f'<div class="ArticleLink"><a href="{url}">{url}</a></div>')
        self._pages[node.url] = "<html><body>" + "".join(rows) + "</body></html>"
        for child in node.children:
            self._render_category_pages(child)

    # -- serving -----------------------------------------------------------------

    def fetch(self, url: str) -> str:
        """Return the HTML of a page (KeyError for a broken link)."""
        return self._pages[url]

    def category_of(self, article_url: str) -> int:
        """Ground-truth category of an article page."""
        return self._article_category[article_url]


@dataclass
class CrawlResult:
    """What the crawler recovered from the site."""

    article_html: dict[str, str]  # article url -> raw HTML
    category_urls: list[str]  # every category page visited, in visit order
    tree_edges: list[tuple[str, str]]  # (parent url, child url)

    @property
    def n_documents(self) -> int:
        return len(self.article_html)


class Crawler:
    """The recursive category-tree crawler of Section 5.2."""

    def __init__(self, site: SyntheticWikipedia):
        self.site = site

    def crawl(self, start_url: str = INDEX_URL, *, max_pages: int | None = None) -> CrawlResult:
        """Depth-first traversal from ``start_url``; leaf articles are downloaded."""
        result = CrawlResult(article_html={}, category_urls=[], tree_edges=[])
        self._visit(start_url, result, max_pages)
        return result

    def _visit(self, url: str, result: CrawlResult, max_pages: int | None) -> None:
        if max_pages is not None and result.n_documents >= max_pages:
            return
        html = self.site.fetch(url)
        result.category_urls.append(url)
        for kind, target in self._parse_links(html):
            if max_pages is not None and result.n_documents >= max_pages:
                return
            if kind in ("CategoryTreeBullet", "CategoryTreeEmptyBullet"):
                result.tree_edges.append((url, target))
                self._visit(target, result, max_pages)
            else:  # article link
                result.article_html[target] = self.site.fetch(target)

    @staticmethod
    def _parse_links(html: str) -> list[tuple[str, str]]:
        """Extract (css-class, href) pairs from the generated page markup."""
        links = []
        pos = 0
        while True:
            start = html.find('<div class="', pos)
            if start == -1:
                break
            cls_start = start + len('<div class="')
            cls_end = html.find('"', cls_start)
            href_start = html.find('href="', cls_end) + len('href="')
            href_end = html.find('"', href_start)
            links.append((html[cls_start:cls_end], html[href_start:href_end]))
            pos = href_end
        return links
