"""The paper's text pipeline (Section 5.2), from scratch.

The Wikipedia documents were processed by: (i) stripping HTML tags, (ii)
lower-casing, (iii) removing punctuation, (iv) removing stop words, (v)
Porter-stemming all terms; followed by tf-idf ranking and top-F term
selection. This module implements every step: a regex-free HTML stripper,
a tokenizer, a stop-word list concatenated from common lists, the full
Porter (1980) stemming algorithm, and a tf-idf vectorizer with top-F
feature selection.
"""

from __future__ import annotations

import string
from collections import Counter

import numpy as np

__all__ = [
    "STOP_WORDS",
    "clean_html",
    "tokenize",
    "PorterStemmer",
    "preprocess_document",
    "TfIdfVectorizer",
]

#: Stop words: "concatenated from several lists to capture the majority of
#: the stop words" (Section 5.2). This is the classic SMART-ish core.
STOP_WORDS = frozenset(
    """a about above after again against all am an and any are as at be because
    been before being below between both but by can could did do does doing down
    during each few for from further had has have having he her here hers herself
    him himself his how i if in into is it its itself just me more most my myself
    no nor not now of off on once only or other our ours ourselves out over own
    same she should so some such than that the their theirs them themselves then
    there these they this those through to too under until up very was we were
    what when where which while who whom why will with you your yours yourself
    yourselves shall may might must would also however thus hence upon via per
    among amongst onto toward towards within without across behind beyond
    ever never always often sometimes rather quite much many one two three first
    second new old et al etc ie eg""".split()
)

_VOWELS = frozenset("aeiou")


def clean_html(html: str) -> str:
    """Strip HTML tags, keeping only text content (steps (i) of the pipeline).

    A small state machine (no regex backtracking): characters between ``<``
    and ``>`` are dropped; entities ``&...;`` are replaced by a space.
    """
    out: list[str] = []
    in_tag = False
    in_entity = False
    for ch in html:
        if in_tag:
            if ch == ">":
                in_tag = False
                out.append(" ")
            continue
        if in_entity:
            if ch == ";" or ch.isspace():
                in_entity = False
                out.append(" ")
            continue
        if ch == "<":
            in_tag = True
        elif ch == "&":
            in_entity = True
        else:
            out.append(ch)
    return "".join(out)


def tokenize(text: str) -> list[str]:
    """Lower-case, strip punctuation/digits, split on whitespace (steps ii-iii)."""
    table = str.maketrans(
        string.ascii_uppercase, string.ascii_lowercase, string.punctuation + string.digits
    )
    return [tok for tok in text.translate(table).split() if tok]


class PorterStemmer:
    """The Porter (1980) suffix-stripping algorithm, steps 1a through 5b.

    Follows the original paper's rules, including the m() measure over the
    [C](VC)^m[V] form, the *v*, *d, and *o conditions, and the standard
    special cases. Words of length <= 2 are returned unchanged.
    """

    # -- character classes ---------------------------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """m(): the number of VC sequences in [C](VC)^m[V]."""
        forms = []
        for i in range(len(stem)):
            forms.append("c" if cls._is_consonant(stem, i) else "v")
        collapsed = "".join(forms)
        # Collapse runs, then count "vc" transitions.
        runs = []
        for ch in collapsed:
            if not runs or runs[-1] != ch:
                runs.append(ch)
        return "".join(runs).count("vc")

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _double_consonant(cls, stem: str) -> bool:
        return (
            len(stem) >= 2
            and stem[-1] == stem[-2]
            and cls._is_consonant(stem, len(stem) - 1)
        )

    @classmethod
    def _cvc(cls, stem: str) -> bool:
        """*o: ends consonant-vowel-consonant, final consonant not w/x/y."""
        if len(stem) < 3:
            return False
        return (
            cls._is_consonant(stem, len(stem) - 3)
            and not cls._is_consonant(stem, len(stem) - 2)
            and cls._is_consonant(stem, len(stem) - 1)
            and stem[-1] not in "wxy"
        )

    # -- rule application ------------------------------------------------------

    def _replace(self, word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
        """Apply ``suffix -> replacement`` if m(stem) > min_measure; else None."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > min_measure:
            return stem + replacement
        return word  # suffix matched but condition failed: rule consumed, no change

    def stem(self, word: str) -> str:
        """Stem one lower-case word."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    def __call__(self, word: str) -> str:
        return self.stem(word)

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            return stem + "ee" if self._measure(stem) > 0 else word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = [
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
        ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
        ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
    ]

    def _step2(self, word: str) -> str:
        for suffix, repl in self._STEP2_RULES:
            result = self._replace(word, suffix, repl, 0)
            if result is not None:
                return result
        return word

    _STEP3_RULES = [
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    ]

    def _step3(self, word: str) -> str:
        for suffix, repl in self._STEP3_RULES:
            result = self._replace(word, suffix, repl, 0)
            if result is not None:
                return result
        return word

    _STEP4_SUFFIXES = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ]

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._cvc(stem)):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if self._measure(word) > 1 and self._double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word


_DEFAULT_STEMMER = PorterStemmer()


def preprocess_document(raw: str, *, is_html: bool = False, stemmer: PorterStemmer | None = None) -> list[str]:
    """The full Section-5.2 pipeline: (html ->) tokens -> stop-word filter -> stems."""
    stemmer = stemmer or _DEFAULT_STEMMER
    text = clean_html(raw) if is_html else raw
    return [stemmer.stem(tok) for tok in tokenize(text) if tok not in STOP_WORDS]


class TfIdfVectorizer:
    """tf-idf vectorizer with the paper's top-F term selection.

    The paper ranks terms by "dividing the total number of documents by the
    number of documents containing the term" (i.e. raw inverse document
    frequency) and keeps the first F terms; per-document weights are then
    tf * log(idf).

    Parameters
    ----------
    n_features:
        F, the number of retained terms (the paper settles on 11).
    min_df:
        Ignore terms appearing in fewer than this many documents (guards the
        idf ranking from hapax noise).
    sublinear_tf:
        Use ``1 + log(tf)`` instead of raw counts.

    Attributes (after :meth:`fit`)
    ------------------------------
    vocabulary_ : dict term -> column index (the selected F terms)
    idf_ : (F,) idf weights for the selected terms
    """

    def __init__(self, n_features: int = 11, *, min_df: int = 2, sublinear_tf: bool = True):
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        self.n_features = int(n_features)
        self.min_df = int(min_df)
        self.sublinear_tf = bool(sublinear_tf)
        self.vocabulary_: dict[str, int] | None = None
        self.idf_: np.ndarray | None = None

    def fit(self, token_lists: list[list[str]]) -> "TfIdfVectorizer":
        """Select the top-F terms by idf x collection frequency and fix idf weights."""
        if not token_lists:
            raise ValueError("token_lists must be non-empty")
        df: Counter = Counter()
        cf: Counter = Counter()
        for tokens in token_lists:
            cf.update(tokens)
            df.update(set(tokens))
        n_docs = len(token_lists)
        candidates = [t for t, d in df.items() if d >= self.min_df]
        if not candidates:
            raise ValueError("no term passes min_df; lower min_df or supply more documents")
        # Paper's ranking: idf = n_docs / df. Scoring by cf * log(1 + idf)
        # (a tf-idf score at corpus level) keeps informative mid-frequency
        # terms ahead of hapaxes that share the same maximal idf.
        scores = {t: cf[t] * np.log(1.0 + n_docs / df[t]) for t in candidates}
        ranked = sorted(candidates, key=lambda t: (-scores[t], t))
        selected = ranked[: self.n_features]
        self.vocabulary_ = {t: j for j, t in enumerate(selected)}
        self.idf_ = np.array([np.log(1.0 + n_docs / df[t]) for t in selected])
        return self

    def transform(self, token_lists: list[list[str]]) -> np.ndarray:
        """(n_docs, F) tf-idf matrix, rows scaled to [0, 1] max-normalisation."""
        if self.vocabulary_ is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        n = len(token_lists)
        f = len(self.vocabulary_)
        X = np.zeros((n, f))
        for i, tokens in enumerate(token_lists):
            counts = Counter(tokens)
            for term, c in counts.items():
                j = self.vocabulary_.get(term)
                if j is not None:
                    tf = 1.0 + np.log(c) if self.sublinear_tf else float(c)
                    X[i, j] = tf * self.idf_[j]
        peak = X.max()
        if peak > 0:
            X /= peak  # dataset normalisation into [0, 1] (Section 5.2)
        return X

    def fit_transform(self, token_lists: list[list[str]]) -> np.ndarray:
        """Fit on the corpus and return its matrix."""
        return self.fit(token_lists).transform(token_lists)
