"""Synthetic point-cloud generators.

``make_uniform`` reproduces the paper's synthetic dataset exactly: 64-dim
vectors with each coordinate uniform in [0, 1] ("dataset normalization is a
standard preprocessing step"). ``make_blobs`` adds controllable cluster
structure for accuracy-vs-ground-truth tests, and the ring/moon generators
provide the non-Gaussian shapes spectral clustering is known to handle and
K-means is not (the paper's Section 3.1 motivation).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["make_uniform", "make_blobs", "make_rings", "make_moons"]


def make_uniform(n_samples: int, n_features: int = 64, *, seed=None) -> np.ndarray:
    """The paper's synthetic dataset: (n, d) uniform in [0, 1]^d."""
    if n_samples < 1 or n_features < 1:
        raise ValueError("n_samples and n_features must be >= 1")
    return as_rng(seed).uniform(0.0, 1.0, size=(n_samples, n_features))


def make_blobs(
    n_samples: int,
    n_clusters: int = 8,
    n_features: int = 64,
    *,
    cluster_std: float = 0.04,
    box: tuple[float, float] = (0.0, 1.0),
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs with centers uniform in ``box``; clipped back into the box.

    Returns ``(X, labels)``; cluster sizes are as equal as possible
    (remainder spread over the first clusters).
    """
    if n_samples < n_clusters:
        raise ValueError(f"n_samples={n_samples} < n_clusters={n_clusters}")
    if cluster_std < 0:
        raise ValueError(f"cluster_std must be >= 0, got {cluster_std}")
    rng = as_rng(seed)
    lo, hi = box
    centers = rng.uniform(lo, hi, size=(n_clusters, n_features))
    base = n_samples // n_clusters
    sizes = np.full(n_clusters, base)
    sizes[: n_samples - base * n_clusters] += 1
    xs, ys = [], []
    for c in range(n_clusters):
        pts = centers[c] + rng.normal(0.0, cluster_std, size=(sizes[c], n_features))
        xs.append(np.clip(pts, lo, hi))
        ys.append(np.full(sizes[c], c, dtype=np.int64))
    X = np.vstack(xs)
    y = np.concatenate(ys)
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_rings(
    n_samples: int,
    n_rings: int = 2,
    *,
    noise: float = 0.02,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concentric 2-D rings (radii 1, 2, ...), scaled into [0, 1]^2."""
    if n_samples < n_rings:
        raise ValueError(f"n_samples={n_samples} < n_rings={n_rings}")
    rng = as_rng(seed)
    base = n_samples // n_rings
    sizes = np.full(n_rings, base)
    sizes[: n_samples - base * n_rings] += 1
    xs, ys = [], []
    for r in range(n_rings):
        angles = rng.uniform(0, 2 * np.pi, sizes[r])
        radius = (r + 1.0) + rng.normal(0, noise, sizes[r])
        xs.append(np.column_stack([radius * np.cos(angles), radius * np.sin(angles)]))
        ys.append(np.full(sizes[r], r, dtype=np.int64))
    X = np.vstack(xs)
    X = (X - X.min(axis=0)) / (X.max(axis=0) - X.min(axis=0))
    y = np.concatenate(ys)
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_moons(n_samples: int, *, noise: float = 0.04, seed=None) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-moons in [0, 1]^2."""
    if n_samples < 2:
        raise ValueError(f"n_samples must be >= 2, got {n_samples}")
    rng = as_rng(seed)
    n_a = n_samples // 2
    n_b = n_samples - n_a
    t_a = rng.uniform(0, np.pi, n_a)
    t_b = rng.uniform(0, np.pi, n_b)
    a = np.column_stack([np.cos(t_a), np.sin(t_a)])
    b = np.column_stack([1.0 - np.cos(t_b), 0.5 - np.sin(t_b)])
    X = np.vstack([a, b]) + rng.normal(0, noise, (n_samples, 2))
    X = (X - X.min(axis=0)) / (X.max(axis=0) - X.min(axis=0))
    y = np.concatenate([np.zeros(n_a, dtype=np.int64), np.ones(n_b, dtype=np.int64)])
    order = rng.permutation(n_samples)
    return X[order], y[order]
