"""Datasets: synthetic point clouds and the Wikipedia-like document corpus.

The paper evaluates on (a) synthetic 64-dimensional vectors with entries in
[0, 1] and (b) 3.55M crawled Wikipedia documents pushed through an
HTML-cleaning + stop-word + Porter-stemming + tf-idf pipeline. Both are
reproduced here; the Wikipedia corpus is synthetic (see DESIGN.md's
substitution table) but flows through the full text pipeline, including a
simulated category-tree crawl.
"""

from repro.data.synthetic import make_blobs, make_uniform, make_rings, make_moons
from repro.data.text import (
    STOP_WORDS,
    tokenize,
    clean_html,
    PorterStemmer,
    preprocess_document,
    TfIdfVectorizer,
)
from repro.data.wikipedia import (
    WikipediaCorpusConfig,
    Document,
    Corpus,
    generate_corpus,
    vectorize_corpus,
    make_wikipedia_dataset,
)
from repro.data.crawler import SyntheticWikipedia, Crawler
from repro.data.loaders import save_csv, load_csv, train_test_split

__all__ = [
    "make_blobs",
    "make_uniform",
    "make_rings",
    "make_moons",
    "STOP_WORDS",
    "tokenize",
    "clean_html",
    "PorterStemmer",
    "preprocess_document",
    "TfIdfVectorizer",
    "WikipediaCorpusConfig",
    "Document",
    "Corpus",
    "generate_corpus",
    "vectorize_corpus",
    "make_wikipedia_dataset",
    "SyntheticWikipedia",
    "Crawler",
    "save_csv",
    "load_csv",
    "train_test_split",
]
