"""Dataset persistence and splitting utilities.

Round-trips feature matrices (+ optional labels) through CSV — the exchange
format the CLI uses — and provides deterministic train/test splitting for
the classifier demos.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_2d, check_labels

__all__ = ["save_csv", "load_csv", "train_test_split"]


def save_csv(path, X, labels=None) -> None:
    """Write ``X`` (and an optional trailing label column) as CSV."""
    X = check_2d(X)
    if labels is not None:
        labels = check_labels(labels, n_samples=X.shape[0])
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        for i, row in enumerate(X):
            out = [repr(float(v)) for v in row]
            if labels is not None:
                out.append(int(labels[i]))
            writer.writerow(out)


def load_csv(path, *, label_column: int | None = None):
    """Read a CSV of numbers; returns ``(X, labels)`` (labels may be None).

    ``label_column`` is 0-based and may be negative (-1 = last column).
    """
    rows = []
    with open(path, newline="") as fh:
        for row in csv.reader(fh):
            if row:
                rows.append([float(v) for v in row])
    if not rows:
        raise ValueError(f"{Path(path)} is empty")
    data = np.array(rows)
    labels = None
    if label_column is not None:
        labels = data[:, label_column].astype(np.int64)
        data = np.delete(data, label_column % data.shape[1], axis=1)
    return data, labels


def train_test_split(X, y=None, *, test_fraction: float = 0.25, seed=0):
    """Deterministic shuffled split; returns ``(X_tr, X_te)`` or with labels.

    Guarantees at least one sample on each side for any 0 < fraction < 1.
    """
    X = check_2d(X)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to split")
    n_test = min(max(1, round(n * test_fraction)), n - 1)
    order = as_rng(seed).permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    if y is None:
        return X[train_idx], X[test_idx]
    y = check_labels(y, n_samples=n)
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
