"""Synthetic Wikipedia-like corpus (the paper's real-dataset substitute).

The paper crawled 3,550,567 documents in 579,144 categories and observed the
category-count scaling of Table 1, fitted as ``K = 17 (log2 N - 9)``
(Eq. 15). This generator reproduces that *structure* synthetically:

* a category tree (recursive sub-categories, like the crawl),
* ``K`` leaf categories following Eq. 15 for the requested corpus size,
* per-category topic mixtures over a shared pool of topic terms,
* documents whose summaries mix topic terms with Zipfian background
  vocabulary and stop words — so the Section-5.2 text pipeline (stop-word
  removal, stemming, tf-idf, top-F selection) has real work to do,
* ground-truth category labels for the Figure-3 accuracy metric.

``vectorize_corpus`` applies the full pipeline and returns (X, y) with
``F = 11`` features by default, matching the paper's choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import default_n_clusters
from repro.data.text import STOP_WORDS, TfIdfVectorizer, preprocess_document
from repro.utils.rng import as_rng

__all__ = [
    "WikipediaCorpusConfig",
    "Document",
    "Corpus",
    "generate_corpus",
    "vectorize_corpus",
    "make_wikipedia_dataset",
]

#: Table 1 verbatim: dataset size -> number of categories in the crawl.
TABLE1_CATEGORIES = {
    1024: 17, 2048: 31, 4096: 61, 8192: 96, 16384: 201, 32768: 330,
    65536: 587, 131072: 1225, 262144: 2825, 524288: 5535,
    1048576: 14237, 2097152: 42493,
}

_TOPIC_STEMS = [
    "politic", "histor", "scienc", "music", "sport", "art", "econom",
    "religion", "geograph", "technolog", "literatur", "biolog", "physic",
    "philosoph", "medicin", "militar", "film", "languag", "mathemat",
    "astronom", "architect", "chemistr", "educat", "law",
]


@dataclass(frozen=True)
class Document:
    """One corpus document: id, title, ground-truth category, raw text."""

    doc_id: int
    title: str
    category_id: int
    text: str


@dataclass
class Corpus:
    """A generated corpus plus its category metadata."""

    documents: list[Document]
    category_names: list[str]
    config: "WikipediaCorpusConfig"

    @property
    def n_documents(self) -> int:
        return len(self.documents)

    @property
    def n_categories(self) -> int:
        return len(self.category_names)

    def labels(self) -> np.ndarray:
        """(n,) ground-truth category ids in document order."""
        return np.array([d.category_id for d in self.documents], dtype=np.int64)


@dataclass
class WikipediaCorpusConfig:
    """Corpus generation knobs.

    Parameters
    ----------
    n_documents:
        Corpus size N.
    n_categories:
        K (``None``: the paper's Eq.-15 fit for N).
    n_topic_terms:
        Size of the shared topic-term pool; this is also the natural feature
        dimensionality (the paper's d = 11 terms per document).
    terms_per_category:
        How many topic terms a category emphasises.
    doc_length:
        Content terms per document summary.
    topic_weight:
        Fraction of content terms drawn from the category topic (the rest is
        Zipf background); controls cluster separability.
    background_vocab_size:
        Size of the Zipfian background vocabulary.
    stop_word_rate:
        Stop words injected per content term (exercises the filter).
    """

    n_documents: int = 1024
    n_categories: int | None = None
    n_topic_terms: int = 11
    terms_per_category: int = 3
    doc_length: int = 80
    topic_weight: float = 0.85
    background_vocab_size: int = 400
    stop_word_rate: float = 0.4
    seed: int | None = 0

    def resolve_n_categories(self) -> int:
        if self.n_categories is not None:
            if self.n_categories < 1:
                raise ValueError(f"n_categories must be >= 1, got {self.n_categories}")
            return self.n_categories
        return default_n_clusters(self.n_documents)


def _topic_vocabulary(n_terms: int) -> list[str]:
    """n distinct topic terms (stem pool, suffixed when the pool runs out)."""
    out = []
    i = 0
    while len(out) < n_terms:
        base = _TOPIC_STEMS[i % len(_TOPIC_STEMS)]
        suffix = i // len(_TOPIC_STEMS)
        out.append(base if suffix == 0 else f"{base}{'x' * suffix}")
        i += 1
    return out


def _background_vocabulary(size: int) -> list[str]:
    """Deterministic alphabetic pseudo-words for the Zipf background.

    Letters only: the tokenizer strips digits, so numeric suffixes would
    collapse every background word into one token.
    """
    letters = "bcdfghjklmnpqrstvwz"
    out = []
    for j in range(size):
        word = []
        value = j
        for _ in range(4):
            word.append(letters[value % len(letters)])
            value //= len(letters)
        out.append("zq" + "".join(word))  # zq- prefix avoids stop-word clashes
    return out


def generate_corpus(config: WikipediaCorpusConfig | None = None, **overrides) -> Corpus:
    """Generate a corpus under ``config`` (or default config + overrides)."""
    cfg = config if config is not None else WikipediaCorpusConfig()
    for key, value in overrides.items():
        if not hasattr(cfg, key):
            raise TypeError(f"unknown corpus option {key!r}")
        setattr(cfg, key, value)
    if cfg.n_documents < 1:
        raise ValueError(f"n_documents must be >= 1, got {cfg.n_documents}")
    if not 0.0 <= cfg.topic_weight <= 1.0:
        raise ValueError(f"topic_weight must be in [0, 1], got {cfg.topic_weight}")

    rng = as_rng(cfg.seed)
    k = min(cfg.resolve_n_categories(), cfg.n_documents)
    topic_vocab = _topic_vocabulary(cfg.n_topic_terms)
    background = _background_vocabulary(cfg.background_vocab_size)
    stop_list = sorted(STOP_WORDS)

    # Zipf background distribution (rank-1/r), normalised.
    ranks = np.arange(1, cfg.background_vocab_size + 1, dtype=np.float64)
    zipf = (1.0 / ranks) / (1.0 / ranks).sum()

    # Per-category topic mixture: a few emphasised terms with Dirichlet weights.
    t = min(cfg.terms_per_category, cfg.n_topic_terms)
    cat_terms = np.empty((k, t), dtype=np.int64)
    cat_weights = np.empty((k, t))
    names = []
    for c in range(k):
        cat_terms[c] = rng.choice(cfg.n_topic_terms, size=t, replace=False)
        cat_weights[c] = rng.dirichlet(np.full(t, 2.0))
        names.append("Category:" + "_".join(topic_vocab[j] for j in cat_terms[c]))

    # Category sizes: as equal as possible (the crawl's categories are
    # skewed, but balanced classes keep the accuracy metric interpretable).
    base = cfg.n_documents // k
    sizes = np.full(k, base, dtype=np.int64)
    sizes[: cfg.n_documents - base * k] += 1

    documents: list[Document] = []
    doc_id = 0
    for c in range(k):
        for _ in range(sizes[c]):
            n_topic = rng.binomial(cfg.doc_length, cfg.topic_weight)
            words = list(
                np.array(topic_vocab)[rng.choice(cat_terms[c], size=n_topic, p=cat_weights[c])]
            )
            n_bg = cfg.doc_length - n_topic
            if n_bg > 0:
                words.extend(np.array(background)[rng.choice(cfg.background_vocab_size, size=n_bg, p=zipf)])
            n_stop = rng.binomial(cfg.doc_length, cfg.stop_word_rate)
            if n_stop > 0:
                words.extend(np.array(stop_list)[rng.integers(0, len(stop_list), size=n_stop)])
            perm = rng.permutation(len(words))
            text = " ".join(words[i] for i in perm)
            documents.append(
                Document(doc_id=doc_id, title=f"Article_{doc_id}", category_id=c, text=text)
            )
            doc_id += 1
    order = rng.permutation(len(documents))
    documents = [documents[i] for i in order]
    return Corpus(documents=documents, category_names=names, config=cfg)


def vectorize_corpus(
    corpus: Corpus, *, n_features: int = 11, is_html: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Run the Section-5.2 pipeline on a corpus: returns ``(X, labels)``.

    Tokenises + stems each document, fits the tf-idf vectorizer with top-F
    selection, and returns the [0, 1]-normalised matrix with ground-truth
    category labels.
    """
    token_lists = [preprocess_document(d.text, is_html=is_html) for d in corpus.documents]
    X = TfIdfVectorizer(n_features=n_features).fit_transform(token_lists)
    return X, corpus.labels()


def make_wikipedia_dataset(
    n_documents: int,
    *,
    n_categories: int | None = None,
    n_features: int = 11,
    seed: int | None = 0,
    **config_overrides,
) -> tuple[np.ndarray, np.ndarray]:
    """One-call convenience: generate + vectorize. Returns ``(X, labels)``."""
    cfg = WikipediaCorpusConfig(
        n_documents=n_documents, n_categories=n_categories, seed=seed, **config_overrides
    )
    corpus = generate_corpus(cfg)
    return vectorize_corpus(corpus, n_features=n_features)
