"""repro — Distributed Approximate Spectral Clustering (DASC).

A full reproduction of Gao, Abd-Almageed & Hefeeda, "Distributed Approximate
Spectral Clustering for Large-Scale Datasets", HPDC 2012: the LSH-based
kernel-matrix approximation, the per-bucket spectral clustering built on it,
a MapReduce execution substrate with a simulated elastic cluster, the SC /
PSC / Nystrom baselines, the synthetic and Wikipedia-like datasets, and the
analytic cost and collision models behind the paper's figures.

Quickstart
----------
>>> from repro import DASC
>>> from repro.data import make_blobs
>>> X, y = make_blobs(n_samples=400, n_clusters=4, seed=0)
>>> labels = DASC(n_clusters=4, seed=0).fit_predict(X)
"""

from repro.core import DASC, DASCConfig, default_n_bits, default_n_clusters
from repro.spectral import SpectralClustering, KMeans
from repro.baselines import PSC, NystromSpectralClustering
from repro.serving import AssignmentService, DASCModel

__version__ = "1.0.0"

__all__ = [
    "DASC",
    "DASCConfig",
    "default_n_bits",
    "default_n_clusters",
    "SpectralClustering",
    "KMeans",
    "PSC",
    "NystromSpectralClustering",
    "AssignmentService",
    "DASCModel",
    "__version__",
]
