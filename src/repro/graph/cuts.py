"""Cut quality metrics: cut weight, normalized cut, conductance.

Spectral clustering approximately minimises the normalized cut; these exact
(combinatorial) evaluations let the tests check that spectral labelings
actually achieve low cuts, and give users a sigma-independent quality
signal.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_labels

__all__ = ["cut_weight", "normalized_cut", "conductance"]


def _dense(S) -> np.ndarray:
    A = S.toarray() if sp.issparse(S) else np.asarray(S, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"affinity must be square, got {A.shape}")
    return A


def cut_weight(S, labels) -> float:
    """Total weight of edges crossing between different clusters (each pair once)."""
    A = _dense(S)
    labels = check_labels(labels, n_samples=A.shape[0])
    diff = labels[:, None] != labels[None, :]
    return float(A[diff].sum() / 2.0)


def normalized_cut(S, labels) -> float:
    """``Ncut = sum_c cut(C, V \\ C) / vol(C)`` (Shi-Malik objective)."""
    A = _dense(S)
    labels = check_labels(labels, n_samples=A.shape[0])
    degrees = A.sum(axis=1)
    total = 0.0
    for c in np.unique(labels):
        inside = labels == c
        vol = float(degrees[inside].sum())
        if vol == 0:
            continue
        cut = float(A[np.ix_(inside, ~inside)].sum())
        total += cut / vol
    return total


def conductance(S, labels) -> float:
    """Worst-cluster conductance: max_c cut(C) / min(vol(C), vol(V\\C))."""
    A = _dense(S)
    labels = check_labels(labels, n_samples=A.shape[0])
    degrees = A.sum(axis=1)
    total_vol = float(degrees.sum())
    worst = 0.0
    for c in np.unique(labels):
        inside = labels == c
        vol = float(degrees[inside].sum())
        other = total_vol - vol
        denom = min(vol, other)
        if denom == 0:
            continue
        cut = float(A[np.ix_(inside, ~inside)].sum())
        worst = max(worst, cut / denom)
    return worst
