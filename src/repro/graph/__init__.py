"""Affinity-graph substrate.

Spectral clustering is graph partitioning in disguise: the kernel matrix is
a weighted graph, the Laplacian's spectrum encodes its cut structure, and
clustering quality is a cut quality. This package provides the graph-side
vocabulary — construction (k-NN / epsilon graphs), connectivity, and cut
metrics (normalized cut, conductance) — used by the test-suite to verify
the spectral stack from an independent angle and available to downstream
users for diagnostics (e.g. "did my sigma disconnect the graph?").
"""

from repro.graph.build import knn_graph, epsilon_graph
from repro.graph.components import connected_components, is_connected
from repro.graph.cuts import cut_weight, normalized_cut, conductance

__all__ = [
    "knn_graph",
    "epsilon_graph",
    "connected_components",
    "is_connected",
    "cut_weight",
    "normalized_cut",
    "conductance",
]
