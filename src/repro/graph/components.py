"""Graph connectivity: connected components via breadth-first search.

The multiplicity of the normalized Laplacian's eigenvalue 1 equals the
number of connected components; the tests use this module to verify the
spectral stack against an independent combinatorial computation.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import scipy.sparse as sp

__all__ = ["connected_components", "is_connected"]


def _adjacency(S) -> sp.csr_matrix:
    if sp.issparse(S):
        A = S.tocsr()
    else:
        A = sp.csr_matrix(np.asarray(S))
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"affinity must be square, got {A.shape}")
    return A


def connected_components(S) -> np.ndarray:
    """(n,) component id per vertex (0-based, in first-visit order).

    Edges are the non-zero entries of ``S`` (weights ignored); the graph is
    treated as undirected (either-direction edges connect).
    """
    A = _adjacency(S)
    A = (A + A.T).tocsr()
    n = A.shape[0]
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = current
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in A.indices[A.indptr[u] : A.indptr[u + 1]]:
                if labels[v] == -1:
                    labels[v] = current
                    queue.append(v)
        current += 1
    return labels


def is_connected(S) -> bool:
    """Whether the affinity graph is a single connected component."""
    labels = connected_components(S)
    return bool(labels.max() == 0) if labels.size else True
