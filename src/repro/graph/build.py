"""Affinity-graph construction: k-NN and epsilon-neighbourhood graphs."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels.functions import GaussianKernel, Kernel
from repro.kernels.matrix import pairwise_sq_distances
from repro.observability import get_logger
from repro.utils.validation import check_2d

__all__ = ["knn_graph", "epsilon_graph"]

log = get_logger(__name__)


def knn_graph(
    X,
    n_neighbors: int,
    *,
    kernel: Kernel | None = None,
    sigma: float = 1.0,
    symmetrize: str = "max",
    block_size: int = 1024,
) -> sp.csr_matrix:
    """Symmetric k-NN affinity graph (the PSC construction, standalone).

    Parameters
    ----------
    n_neighbors:
        Neighbours retained per vertex (clipped to n-1).
    kernel / sigma:
        Edge-weight kernel (default Gaussian).
    symmetrize:
        ``"max"`` keeps an edge if either endpoint selected it; ``"min"``
        (mutual k-NN) keeps it only if both did.
    block_size:
        Row-panel size bounding construction memory.
    """
    X = check_2d(X)
    if n_neighbors < 1:
        raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
    if symmetrize not in ("max", "min"):
        raise ValueError(f"symmetrize must be 'max' or 'min', got {symmetrize!r}")
    kern = kernel if kernel is not None else GaussianKernel(sigma)
    n = X.shape[0]
    t = min(n_neighbors, n - 1)
    rows, cols, vals = [], [], []
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        d2 = pairwise_sq_distances(X[start:stop], X)
        d2[np.arange(stop - start), np.arange(start, stop)] = np.inf
        nbr = np.argpartition(d2, t - 1, axis=1)[:, :t]
        sims = kern(X[start:stop], X)
        rows.append(np.repeat(np.arange(start, stop), t))
        cols.append(nbr.ravel())
        vals.append(sims[np.arange(stop - start).repeat(t), nbr.ravel()])
    S = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))), shape=(n, n)
    )
    G = (S.maximum(S.T) if symmetrize == "max" else S.minimum(S.T)).tocsr()
    log.debug(
        "knn_graph: n=%d t=%d symmetrize=%s -> %d edges", n, t, symmetrize, G.nnz
    )
    return G


def epsilon_graph(
    X, epsilon: float, *, kernel: Kernel | None = None, sigma: float = 1.0
) -> sp.csr_matrix:
    """Epsilon-neighbourhood graph: edges between points within distance epsilon."""
    X = check_2d(X)
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    kern = kernel if kernel is not None else GaussianKernel(sigma)
    d2 = pairwise_sq_distances(X)
    mask = d2 <= epsilon**2
    np.fill_diagonal(mask, False)
    K = kern(X)
    G = sp.csr_matrix(np.where(mask, K, 0.0))
    log.debug("epsilon_graph: n=%d epsilon=%g -> %d edges", X.shape[0], epsilon, G.nnz)
    return G
