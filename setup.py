"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools predates the bundled ``bdist_wheel`` (offline
boxes without the ``wheel`` package): ``python setup.py develop`` there,
``pip install -e .`` everywhere else.
"""

from setuptools import setup

setup()
