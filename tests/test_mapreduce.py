"""Tests for the MapReduce substrate: engine, HDFS, cluster, job flows, EMR."""

import numpy as np
import pytest

from repro.mapreduce import (
    Counters,
    ElasticMapReduce,
    JobFlow,
    JobSpec,
    MapReduceEngine,
    NodeConfig,
    S3Store,
    SimulatedCluster,
    SimulatedHDFS,
    TABLE2_DEFAULTS,
)


# -- word count: the canonical end-to-end job --------------------------------

def wc_mapper(key, value, ctx):
    for word in value.split():
        yield (word, 1)


def wc_reducer(key, values, ctx):
    yield (key, sum(values))


def make_wc_job(**kwargs):
    return JobSpec(name="wordcount", mapper=wc_mapper, reducer=wc_reducer, **kwargs)


class TestEngine:
    def test_wordcount(self):
        engine = MapReduceEngine()
        splits = [[(0, "a b a")], [(1, "b c")]]
        result = engine.run(make_wc_job(), splits)
        assert dict(result.output) == {"a": 2, "b": 2, "c": 1}

    def test_map_only_job(self):
        job = JobSpec(name="ident", mapper=lambda k, v, c: [(k, v * 2)])
        result = MapReduceEngine().run(job, [[(1, 10), (2, 20)]])
        assert sorted(result.output) == [(1, 20), (2, 40)]
        assert result.reduce_stats.n_tasks == 0

    def test_combiner_reduces_shuffle_volume(self):
        engine = MapReduceEngine()
        splits = [[(0, "a a a a")], [(1, "a a")]]
        plain = engine.run(make_wc_job(), splits)
        combined = engine.run(make_wc_job(combiner=wc_reducer), splits)
        assert dict(plain.output) == dict(combined.output) == {"a": 6}
        assert combined.counters.value("shuffle", "records") < plain.counters.value(
            "shuffle", "records"
        )

    def test_partitioner_routes_keys(self):
        job = make_wc_job(n_reducers=2, partitioner=lambda key, n: 0 if key < "m" else 1)
        result = MapReduceEngine().run(job, [[(0, "apple zebra apple")]])
        assert dict(result.partitions[0]) == {"apple": 2}
        assert dict(result.partitions[1]) == {"zebra": 1}

    def test_bad_partitioner_rejected(self):
        job = make_wc_job(n_reducers=2, partitioner=lambda key, n: 5)
        with pytest.raises(ValueError):
            MapReduceEngine().run(job, [[(0, "x")]])

    def test_keys_sorted_within_partition(self):
        job = make_wc_job()
        result = MapReduceEngine().run(job, [[(0, "c a b")]])
        assert [k for k, _ in result.output] == ["a", "b", "c"]

    def test_counters_track_records(self):
        result = MapReduceEngine().run(make_wc_job(), [[(0, "x y")], [(1, "z")]])
        assert result.counters.value("map", "input_records") == 2
        assert result.counters.value("map", "output_records") == 3
        assert result.counters.value("job", "map_tasks") == 2

    def test_cost_models_drive_stats(self):
        job = make_wc_job(
            map_cost=lambda k, v: 10.0,
            reduce_cost=lambda k, vs: 100.0,
        )
        result = MapReduceEngine().run(job, [[(0, "a")], [(1, "b")]])
        assert result.map_stats.total_cost == 20.0
        assert result.reduce_stats.total_cost == 200.0

    def test_context_counter_from_mapper(self):
        def mapper(k, v, ctx):
            ctx.increment("custom", "seen")
            yield (k, v)

        job = JobSpec(name="j", mapper=mapper, reducer=wc_reducer)
        result = MapReduceEngine().run(job, [[(0, 1), (1, 2)]])
        assert result.counters.value("custom", "seen") == 2


class TestCounters:
    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "n", 2)
        b.increment("g", "n", 3)
        b.increment("g", "m")
        a.merge(b)
        assert a.value("g", "n") == 5 and a.value("g", "m") == 1

    def test_missing_is_zero(self):
        assert Counters().value("no", "pe") == 0

    def test_group_snapshot(self):
        c = Counters()
        c.increment("g", "x")
        assert c.group("g") == {"x": 1}


class TestHDFS:
    def test_write_read_roundtrip(self):
        fs = SimulatedHDFS(4)
        fs.write("f", list(range(10)), split_size=3)
        assert fs.read("f") == list(range(10))

    def test_split_boundaries(self):
        fs = SimulatedHDFS(2)
        fs.write("f", list(range(10)), split_size=4)
        splits = fs.splits("f")
        assert [len(s) for s in splits] == [4, 4, 2]
        assert splits[1].records == (4, 5, 6, 7)

    def test_replication_places_distinct_nodes(self):
        fs = SimulatedHDFS(5, replication=3)
        fs.write("f", list(range(20)), split_size=5)
        for s in range(4):
            nodes = fs.locations("f", s)
            assert len(set(nodes)) == 3

    def test_replication_clipped_to_nodes(self):
        fs = SimulatedHDFS(2, replication=3)
        fs.write("f", [1], split_size=1)
        assert len(fs.locations("f", 0)) == 2

    def test_immutability(self):
        fs = SimulatedHDFS(1)
        fs.write("f", [1])
        with pytest.raises(FileExistsError):
            fs.write("f", [2])

    def test_delete_and_exists(self):
        fs = SimulatedHDFS(1)
        fs.write("f", [1])
        assert fs.exists("f")
        fs.delete("f")
        assert not fs.exists("f")

    def test_empty_file_has_one_split(self):
        fs = SimulatedHDFS(1)
        fs.write("f", [])
        assert len(fs.splits("f")) == 1


class TestSimulatedCluster:
    def test_table2_defaults(self):
        assert TABLE2_DEFAULTS.map_slots == 4
        assert TABLE2_DEFAULTS.reduce_slots == 2
        assert TABLE2_DEFAULTS.replication == 3
        assert TABLE2_DEFAULTS.jobtracker_heap_mb == 768
        assert TABLE2_DEFAULTS.namenode_heap_mb == 256
        assert TABLE2_DEFAULTS.tasktracker_heap_mb == 512
        assert TABLE2_DEFAULTS.datanode_heap_mb == 256

    def test_slot_totals(self):
        cluster = SimulatedCluster(16)
        assert cluster.map_slots == 64 and cluster.reduce_slots == 32

    def test_makespan_lower_bounds(self):
        cluster = SimulatedCluster(2)  # 4 reduce slots
        costs = [5.0, 3.0, 3.0, 3.0, 2.0, 2.0]
        stats = cluster.schedule(costs, phase="reduce")
        assert stats.makespan >= max(costs)
        assert stats.makespan >= sum(costs) / cluster.reduce_slots
        # LPT is within 4/3 of the optimum, which is itself >= both bounds.
        assert stats.makespan <= (4 / 3) * max(max(costs), sum(costs) / 4) + max(costs)

    def test_makespan_halves_with_doubled_nodes(self):
        costs = [1.0] * 512
        small = SimulatedCluster(8).schedule(costs, phase="reduce").makespan
        big = SimulatedCluster(16).schedule(costs, phase="reduce").makespan
        assert big == pytest.approx(small / 2)

    def test_single_huge_task_does_not_scale(self):
        costs = [100.0]
        a = SimulatedCluster(1).schedule(costs).makespan
        b = SimulatedCluster(64).schedule(costs).makespan
        assert a == b == 100.0

    def test_empty_schedule(self):
        stats = SimulatedCluster(2).schedule([])
        assert stats.makespan == 0.0 and stats.n_tasks == 0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCluster(1).schedule([-1.0])

    def test_utilization_bounds(self):
        stats = SimulatedCluster(2).schedule([1.0] * 100)
        assert 0.0 < stats.utilization <= 1.0


class TestJobFlowAndEMR:
    def test_flow_chains_jobs_through_fs(self):
        fs = SimulatedHDFS(2)
        fs.write("in", [(0, "a b"), (1, "a")], split_size=1)
        flow = JobFlow(engine=MapReduceEngine(SimulatedCluster(2)), fs=fs)
        flow.add_job(make_wc_job(), "in", "mid")
        # Second job: uppercase the words from the first job's output.
        job2 = JobSpec(name="upper", mapper=lambda k, v, c: [(k.upper(), v)])
        flow.add_job(job2, "mid", "out")
        flow.run()
        assert dict(fs.read("out")) == {"A": 2, "B": 1}
        assert flow.makespan > 0

    def test_action_steps_interleave(self):
        fs = SimulatedHDFS(1)
        fs.write("in", [(0, "x")])
        flow = JobFlow(engine=MapReduceEngine(), fs=fs)
        seen = []
        flow.add_action("probe", lambda fl: seen.append(fl.fs.exists("in")))
        flow.run()
        assert seen == [True]

    def test_s3_store(self):
        s3 = S3Store()
        s3.put("a/b", [1, 2])
        assert s3.get("a/b") == [1, 2]
        assert s3.list_keys("a/") == ["a/b"]
        s3.put("a/b", [3])  # overwrite allowed
        assert s3.get("a/b") == [3]
        s3.delete("a/b")
        assert not s3.exists("a/b")

    def test_emr_lifecycle(self):
        emr = ElasticMapReduce()
        flow_id, flow = emr.create_job_flow(4)
        flow.fs.write("in", [(0, "hello world")])
        flow.add_job(make_wc_job(), "in", "out")
        emr.run_job_flow(flow_id)
        status = emr.flow_status(flow_id)
        assert status["n_nodes"] == 4 and status["completed_steps"] == 1
        emr.terminate(flow_id)
        with pytest.raises(RuntimeError):
            emr.run_job_flow(flow_id)

    def test_emr_unknown_flow(self):
        with pytest.raises(KeyError):
            ElasticMapReduce().flow_status("j-nope")

    def test_node_config_validation(self):
        with pytest.raises(ValueError):
            NodeConfig(map_slots=0)


class TestEngineProperties:
    """Property tests: the engine agrees with a direct reference computation."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    words = st.lists(
        st.text(alphabet="abc", min_size=1, max_size=3), min_size=0, max_size=30
    )

    @given(words, st.integers(1, 5), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_wordcount_matches_counter(self, words, split_size, n_reducers):
        from collections import Counter

        records = [(i, w) for i, w in enumerate(words)]
        splits = [records[i : i + split_size] for i in range(0, len(records), split_size)] or [[]]
        job = make_wc_job(n_reducers=n_reducers)
        result = MapReduceEngine().run(job, splits)
        assert dict(result.output) == dict(Counter(words))

    @given(words, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_combiner_never_changes_output(self, words, split_size):
        records = [(i, w) for i, w in enumerate(words)]
        splits = [records[i : i + split_size] for i in range(0, len(records), split_size)] or [[]]
        plain = MapReduceEngine().run(make_wc_job(), splits)
        combined = MapReduceEngine().run(make_wc_job(combiner=wc_reducer), splits)
        assert dict(plain.output) == dict(combined.output)
