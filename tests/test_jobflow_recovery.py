"""Checkpointed job-flow recovery: crash, resume, structured failures."""

import numpy as np
import pytest

from repro.core import DASCConfig
from repro.dasc_mr import DistributedDASC
from repro.mapreduce import (
    ElasticMapReduce,
    FaultPolicy,
    FaultyEngine,
    JobFlowError,
    JobSpec,
    MapReduceEngine,
    SimulatedHDFS,
)
from repro.mapreduce.job import JobFlow


def double_mapper(key, value, ctx):
    yield (key, value * 2)


def sum_reducer(key, values, ctx):
    yield (key, sum(values))


def make_flow(store=None):
    flow = JobFlow(
        engine=MapReduceEngine(),
        fs=SimulatedHDFS(2),
        checkpoint_store=store,
        checkpoint_prefix="flows/test/checkpoints",
    )
    flow.fs.write("in", [(i, i) for i in range(10)], split_size=4)
    flow.add_job(JobSpec(name="double", mapper=double_mapper), "in", "mid")
    flow.add_job(JobSpec(name="sum", mapper=double_mapper, reducer=sum_reducer), "mid", "out")
    return flow


class TestJobFlowCheckpointing:
    def test_checkpoints_written_per_job_step(self):
        from repro.mapreduce import S3Store

        store = S3Store()
        flow = make_flow(store)
        flow.run()
        assert store.exists("flows/test/checkpoints/step-000")
        assert store.exists("flows/test/checkpoints/step-001")

    def test_max_steps_simulates_crash(self):
        from repro.mapreduce import S3Store

        store = S3Store()
        flow = make_flow(store)
        flow.run(max_steps=1)
        assert len(flow.results) == 1
        assert not flow.fs.exists("out")

    def test_resume_restores_completed_steps(self):
        from repro.mapreduce import S3Store

        store = S3Store()
        complete = make_flow(store=None)
        complete.run()
        expected = complete.fs.read("out")

        flow = make_flow(store)
        flow.run(max_steps=1)  # crash after step 0
        results = flow.run(resume=True)
        assert flow.restored_steps == [0]
        assert results[0].from_checkpoint
        assert not results[1].from_checkpoint
        assert flow.fs.read("out") == expected
        # The restored step reports its original counters and makespan.
        assert results[0].counters.value("job", "map_tasks") == 3
        assert results[0].makespan > 0

    def test_resume_without_checkpoints_reruns_everything(self):
        flow = make_flow(store=None)
        flow.run(max_steps=1)
        results = flow.run(resume=True)
        assert flow.restored_steps == []
        assert not results[0].from_checkpoint


class TestJobFlowError:
    def test_exhausted_retries_surface_structured_error(self):
        flow = make_flow()
        flow.engine = FaultyEngine(policy=FaultPolicy(failure_rate=0.99, max_attempts=1, seed=0))
        with pytest.raises(JobFlowError) as err:
            flow.run()
        assert err.value.step_index == 0
        assert err.value.step_name == "double"
        assert err.value.counters is not None
        assert err.value.counters.value("faults", "map_failures") > 0


class TestDistributedDASCResume:
    @pytest.mark.parametrize("crash_after", [1, 2])
    def test_resume_after_driver_crash(self, blobs_small, crash_after):
        """A crash between stages resumes from checkpoints with identical labels."""
        X, _ = blobs_small
        baseline = DistributedDASC(4, n_nodes=4, config=DASCConfig(seed=0)).run(X)

        emr = ElasticMapReduce()
        dasc = DistributedDASC(4, n_nodes=4, config=DASCConfig(seed=0), emr=emr)
        flow_id = dasc.submit(X)
        emr.run_job_flow(flow_id, max_steps=crash_after)  # driver dies mid-flow
        with pytest.raises(RuntimeError):
            dasc.collect(flow_id)  # incomplete flow is not collectable
        result = dasc.resume(flow_id)

        assert np.array_equal(result.labels, baseline.labels)
        # Stage 1 (the LSH pass) was restored, not redone.
        assert 0 in result.resumed_steps
        assert result.counters == baseline.counters
        assert result.makespan == pytest.approx(baseline.makespan)

    def test_resume_mahout_mode(self, blobs_small):
        X, _ = blobs_small
        baseline = DistributedDASC(
            4, n_nodes=4, config=DASCConfig(seed=0), spectral_mode="mahout"
        ).run(X)

        emr = ElasticMapReduce()
        dasc = DistributedDASC(
            4, n_nodes=4, config=DASCConfig(seed=0), emr=emr, spectral_mode="mahout"
        )
        flow_id = dasc.submit(X)
        emr.run_job_flow(flow_id, max_steps=1)
        result = dasc.resume(flow_id)
        assert np.array_equal(result.labels, baseline.labels)
        assert 0 in result.resumed_steps

    def test_unknown_flow_rejected(self, blobs_small):
        dasc = DistributedDASC(4, n_nodes=2)
        with pytest.raises(KeyError):
            dasc.collect("j-999999")
