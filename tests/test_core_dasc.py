"""Tests for the end-to-end DASC estimator."""

import numpy as np
import pytest

from repro.core import DASC, DASCConfig
from repro.kernels import GaussianKernel, gram_matrix
from repro.metrics import clustering_accuracy, fnorm_ratio
from repro.spectral import SpectralClustering


class TestFit:
    def test_recovers_blobs(self, blobs_small):
        X, y = blobs_small
        labels = DASC(4, seed=0).fit_predict(X)
        assert clustering_accuracy(y, labels) > 0.9

    def test_labels_cover_all_points(self, blobs_medium):
        X, _ = blobs_medium
        dasc = DASC(6, seed=0).fit(X)
        assert dasc.labels_.shape == (X.shape[0],)
        assert dasc.labels_.min() >= 0
        assert dasc.labels_.max() < dasc.n_clusters_

    def test_deterministic(self, blobs_small):
        X, _ = blobs_small
        a = DASC(4, seed=5).fit_predict(X)
        b = DASC(4, seed=5).fit_predict(X)
        assert np.array_equal(a, b)

    def test_nonfinite_input_rejected_with_column(self, blobs_small):
        X, _ = blobs_small
        X = X.copy()
        X[7, 3] = np.nan
        with pytest.raises(ValueError, match=r"non-finite.*column\(s\) \[3\]"):
            DASC(4, seed=0).fit(X)

    def test_inf_input_rejected(self, blobs_small):
        X, _ = blobs_small
        X = X.copy()
        X[0, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            DASC(4, seed=0).fit(X)

    def test_defaults_resolved_from_data(self, blobs_small):
        X, _ = blobs_small
        dasc = DASC(seed=0).fit(X)  # no explicit K or M
        assert dasc.n_bits_ == 3  # floor(log2(400)/2) - 1
        assert dasc.sigma_ > 0
        assert dasc.n_clusters_ >= 1

    def test_single_bucket_matches_exact_sc(self, blobs_small):
        """Approximation knob at the coarse end: DASC(B=1) == exact SC."""
        X, y = blobs_small
        dasc = DASC(4, sigma=0.3, min_bucket_size=10**6, seed=0)
        sc = SpectralClustering(4, sigma=0.3, seed=0)
        acc_d = clustering_accuracy(y, dasc.fit_predict(X))
        acc_s = clustering_accuracy(y, sc.fit_predict(X))
        assert dasc.buckets_.n_buckets == 1
        assert acc_d == pytest.approx(acc_s, abs=0.02)

    def test_memory_never_exceeds_full_matrix(self, blobs_medium):
        X, _ = blobs_medium
        dasc = DASC(6, seed=1).fit(X)
        assert dasc.approx_kernel_.nbytes <= 4 * X.shape[0] ** 2

    def test_stage_times_recorded(self, blobs_small):
        X, _ = blobs_small
        dasc = DASC(4, seed=0).fit(X)
        assert {"hash", "bucket", "kernel", "spectral"} <= set(dasc.stopwatch_.laps)

    def test_config_object_and_overrides(self, blobs_small):
        X, _ = blobs_small
        cfg = DASCConfig(n_bits=5, sigma=0.4, seed=2)
        dasc = DASC(4, config=cfg).fit(X)
        assert dasc.n_bits_ == 5 and dasc.sigma_ == 0.4

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            DASC(4, bogus_option=1)

    def test_custom_kernel(self, blobs_small):
        X, y = blobs_small
        dasc = DASC(4, kernel=GaussianKernel(0.3), seed=0)
        assert clustering_accuracy(y, dasc.fit_predict(X)) > 0.9

    @pytest.mark.parametrize("hasher", ["axis", "signed_rp", "pca", "stable"])
    def test_all_hash_families_run(self, blobs_small, hasher):
        X, y = blobs_small
        labels = DASC(4, hasher=hasher, seed=0).fit_predict(X)
        assert labels.shape == (X.shape[0],)

    @pytest.mark.parametrize("allocation", ["proportional", "sqrt", "fixed"])
    def test_allocation_policies_run(self, blobs_small, allocation):
        # 'fixed' intentionally produces more than K clusters (min(K, N_i)
        # per bucket), so Hungarian accuracy is the wrong yardstick there;
        # NMI tolerates refinements of the true partition.
        from repro.metrics import normalized_mutual_info

        X, y = blobs_small
        labels = DASC(4, allocation=allocation, seed=0).fit_predict(X)
        assert normalized_mutual_info(y, labels) > 0.7


class TestTransform:
    def test_transform_returns_block_kernel_without_clustering(self, blobs_small):
        X, _ = blobs_small
        dasc = DASC(seed=0, n_bits=4)
        approx = dasc.transform(X)
        assert approx.n_samples == X.shape[0]
        assert dasc.labels_ is None  # no clustering ran

    def test_transform_blocks_match_true_kernel(self, blobs_small):
        X, _ = blobs_small
        dasc = DASC(seed=0, sigma=0.3, n_bits=4)
        approx = dasc.transform(X)
        full = gram_matrix(X, GaussianKernel(0.3), zero_diagonal=True)
        dense = approx.to_dense()
        mask = dense != 0
        assert np.allclose(dense[mask], full[mask])

    def test_fnorm_ratio_reasonable_on_clustered_data(self, blobs_small):
        """Clustered data keeps most spectral mass inside buckets (Fig. 5)."""
        X, _ = blobs_small
        dasc = DASC(seed=0, sigma=0.3)
        approx = dasc.transform(X)
        full = gram_matrix(X, GaussianKernel(0.3), zero_diagonal=True)
        assert fnorm_ratio(approx, full) > 0.5


class TestPartition:
    def test_partition_only(self, blobs_small):
        X, _ = blobs_small
        dasc = DASC(seed=0)
        buckets = dasc.partition(X)
        assert buckets.sizes.sum() == X.shape[0]
        assert dasc.approx_kernel_ is None

    def test_min_bucket_size_enforced(self, blobs_medium):
        X, _ = blobs_medium
        dasc = DASC(6, min_bucket_size=20, n_bits=6, seed=0)
        buckets = dasc.partition(X)
        if buckets.n_buckets > 1:
            assert buckets.sizes.min() >= 20
