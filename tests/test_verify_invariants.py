"""The opt-in invariant layer: structured violations, env gating, pipeline hooks."""

import numpy as np
import pytest

from repro.core import DASC, DASCConfig
from repro.core.buckets import Buckets, group_by_signature
from repro.observability import InMemorySink, Tracer, use_tracer
from repro.verify import (
    InvariantViolation,
    check_buckets,
    check_counter_equals,
    check_eigenvalues,
    check_embedding,
    check_gram_block,
    check_labels_range,
    validation_enabled,
)


class TestGating:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert validation_enabled(True)
        assert not validation_enabled(False)
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert not validation_enabled(False)

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("no", False), ("off", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert validation_enabled() is expected

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert not validation_enabled()


class TestViolationStructure:
    def test_structured_fields(self):
        with pytest.raises(InvariantViolation) as err:
            check_counter_equals(_counters({"map": {"input_records": 3}}),
                                 "map", "input_records", 5, stage="mr.job:test")
        v = err.value
        assert v.invariant == "counters.conservation"
        assert v.stage == "mr.job:test"
        assert v.details["actual"] == 3 and v.details["expected"] == 5
        d = v.to_dict()
        assert d["invariant"] == "counters.conservation"
        assert "mr.job:test" in d["message"]

    def test_violation_emits_trace_event(self):
        sink = InMemorySink()
        with use_tracer(Tracer(sink)):
            with pytest.raises(InvariantViolation):
                check_eigenvalues(np.array([1.5]), stage="spectral.embedding")
        events = [r for r in sink.records if r.get("type") == "event"]
        assert any(r["name"] == "invariant.violation" for r in events)


class TestBucketChecks:
    def test_valid_partition_passes(self):
        sigs = np.array([3, 3, 5, 5, 9], dtype=np.uint64)
        buckets = group_by_signature(sigs, 4)
        check_buckets(buckets, 5, point_signatures=sigs)

    def test_wrong_point_count(self):
        buckets = group_by_signature(np.array([1, 2], dtype=np.uint64), 4)
        with pytest.raises(InvariantViolation, match="assignment"):
            check_buckets(buckets, 5)

    def test_nondense_ids(self):
        # Stored arrays are frozen, so the broken partition (bucket 1 left
        # empty) is built up front rather than mutated in.
        good = group_by_signature(np.array([1, 1, 2], dtype=np.uint64), 4)
        buckets = Buckets(
            assignments=np.zeros(3, dtype=np.int64),
            signatures=good.signatures,
            n_bits=good.n_bits,
        )
        with pytest.raises(InvariantViolation, match="no members"):
            check_buckets(buckets, 3)

    def test_out_of_range_ids(self):
        good = group_by_signature(np.array([1, 1, 2], dtype=np.uint64), 4)
        broken = np.array([7, 0, 1], dtype=np.int64)
        buckets = Buckets(assignments=broken, signatures=good.signatures, n_bits=good.n_bits)
        with pytest.raises(InvariantViolation, match="ids span"):
            check_buckets(buckets, 3)

    def test_representative_must_belong_to_a_member(self):
        sigs = np.array([1, 1, 2], dtype=np.uint64)
        good = group_by_signature(sigs, 4)
        bad_sigs = good.signatures.copy()
        bad_sigs[0] = 9  # representative no member holds
        buckets = Buckets(assignments=good.assignments, signatures=bad_sigs, n_bits=good.n_bits)
        with pytest.raises(InvariantViolation, match="representative"):
            check_buckets(buckets, 3, point_signatures=sigs)


class TestGramChecks:
    def _block(self, n=6, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 3))
        d2 = ((X[:, None] - X[None, :]) ** 2).sum(-1)
        K = np.exp(-d2)
        np.fill_diagonal(K, 0.0)
        return K

    def test_valid_block_passes(self):
        check_gram_block(self._block(), zero_diagonal=True, unit_range=True)

    def test_asymmetry_caught(self):
        K = self._block()
        K[0, 1] += 0.5
        with pytest.raises(InvariantViolation, match="K - K"):
            check_gram_block(K)

    def test_diagonal_convention(self):
        K = self._block()
        with pytest.raises(InvariantViolation, match="diagonal"):
            check_gram_block(K, zero_diagonal=False)

    def test_nonfinite_caught(self):
        K = self._block()
        K[2, 3] = K[3, 2] = np.nan
        with pytest.raises(InvariantViolation, match="non-finite"):
            check_gram_block(K)

    def test_range_only_for_unit_range_kernels(self):
        K = self._block() * 3.0  # values above 1
        check_gram_block(K, unit_range=False)  # linear-style kernels: no range rule
        with pytest.raises(InvariantViolation, match="expected \\[0, 1\\]"):
            check_gram_block(K, unit_range=True)


class TestSpectralChecks:
    def test_eigenvalues_in_range(self):
        check_eigenvalues(np.array([1.0, 0.3, -1.0]))
        with pytest.raises(InvariantViolation, match="eigenvalues span"):
            check_eigenvalues(np.array([1.01]))

    def test_embedding_rows(self):
        Y = np.array([[1.0, 0.0], [0.6, 0.8], [0.0, 0.0]])  # unit, unit, zero
        check_embedding(Y)
        with pytest.raises(InvariantViolation, match="unit-norm"):
            check_embedding(np.array([[0.5, 0.0]]))


class TestLabelChecks:
    def test_complete_in_range_passes(self):
        check_labels_range(np.array([0, 1, 2, 1]), 3)

    def test_unassigned_caught(self):
        with pytest.raises(InvariantViolation, match="never received"):
            check_labels_range(np.array([0, -1, 2]), 3)

    def test_out_of_range_caught(self):
        with pytest.raises(InvariantViolation, match="outside"):
            check_labels_range(np.array([0, 5]), 3)


class TestPipelineHooks:
    """The DASC pipeline runs green with validation armed and fails loudly on corruption."""

    def test_fit_green_with_validation(self, blobs_small):
        X, y = blobs_small
        model = DASC(4, config=DASCConfig(seed=0, validate=True))
        baseline = DASC(4, config=DASCConfig(seed=0, validate=False)).fit_predict(X)
        labels = model.fit_predict(X)
        # Validation must be observation-only: identical results either way.
        assert np.array_equal(labels, baseline)

    def test_env_flag_arms_fit(self, blobs_small, monkeypatch):
        X, _ = blobs_small
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        model = DASC(4, seed=0)
        assert model._validate_active()
        model.fit(X)  # green end to end

    def test_corrupted_gram_block_raises(self, blobs_small):
        X, _ = blobs_small

        from repro.kernels.functions import GaussianKernel

        class BrokenKernel(GaussianKernel):
            def compute(self, A, B):
                K = super().compute(A, B)
                if K.shape[0] == K.shape[1] and K.shape[0] > 1:
                    K[0, -1] += 0.7  # break symmetry
                return K

        model = DASC(4, config=DASCConfig(seed=0, validate=True), kernel=BrokenKernel(1.0))
        with pytest.raises(InvariantViolation):
            model.fit(X)

    def test_distributed_green_with_validation(self, blobs_small):
        from repro.dasc_mr import DistributedDASC

        X, _ = blobs_small
        base = DistributedDASC(4, n_nodes=4, config=DASCConfig(seed=0)).run(X)
        checked = DistributedDASC(
            4, n_nodes=4, config=DASCConfig(seed=0, validate=True)
        ).run(X)
        assert np.array_equal(base.labels, checked.labels)
        assert base.counters == checked.counters


def _counters(data):
    from repro.mapreduce.counters import Counters

    return Counters.from_dict(data)
