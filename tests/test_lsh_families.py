"""Tests for the other LSH families: signed RP, PCA rotation, p-stable, MinHash."""

import numpy as np
import pytest

from repro.lsh import (
    MinHasher,
    PCARotationHasher,
    SignedRandomProjectionHasher,
    StableDistributionHasher,
)


def _angular_pair(angle_rad: float, d: int = 8, seed: int = 0):
    """Two unit vectors at a given angle, embedded in d dims."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(d)
    a /= np.linalg.norm(a)
    b_perp = rng.standard_normal(d)
    b_perp -= (b_perp @ a) * a
    b_perp /= np.linalg.norm(b_perp)
    b = np.cos(angle_rad) * a + np.sin(angle_rad) * b_perp
    return a, b


class TestSignedRandomProjection:
    def test_shapes_and_determinism(self, blobs_small):
        X, _ = blobs_small
        h = SignedRandomProjectionHasher(8, seed=0)
        s1 = h.fit_hash(X)
        assert s1.shape == (X.shape[0],)
        s2 = SignedRandomProjectionHasher(8, seed=0).fit_hash(X)
        assert np.array_equal(s1, s2)

    def test_collision_rate_follows_angle(self):
        """Charikar: P(bit agrees) = 1 - theta/pi; closer pairs agree more."""
        m = 2048
        a, b = _angular_pair(np.pi / 8)
        c, d = _angular_pair(3 * np.pi / 4, seed=1)
        h = SignedRandomProjectionHasher(64, center=False, seed=2)
        # Estimate over many independent hashers to get tight rates.
        agree_close = agree_far = 0
        for seed in range(m // 64):
            h = SignedRandomProjectionHasher(64, center=False, seed=seed)
            h.fit(np.vstack([a, b, c, d]))
            bits = h.hash_bits(np.vstack([a, b, c, d]))
            agree_close += (bits[0] == bits[1]).sum()
            agree_far += (bits[2] == bits[3]).sum()
        p_close = agree_close / m
        p_far = agree_far / m
        assert abs(p_close - (1 - (np.pi / 8) / np.pi)) < 0.06
        assert abs(p_far - (1 - (3 * np.pi / 4) / np.pi)) < 0.06

    def test_centering_avoids_degenerate_signatures(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(5.0, 6.0, (200, 10))  # far from the origin
        centered = SignedRandomProjectionHasher(8, center=True, seed=0).fit_hash(X)
        uncentered = SignedRandomProjectionHasher(8, center=False, seed=0).fit_hash(X)
        assert len(np.unique(centered)) > len(np.unique(uncentered))

    def test_requires_fit(self, blobs_small):
        X, _ = blobs_small
        with pytest.raises(RuntimeError):
            SignedRandomProjectionHasher(4).hash(X)


class TestPCARotation:
    def test_bits_are_balanced(self, blobs_medium):
        """Median thresholds split every bit 50/50 — the skew remedy."""
        X, _ = blobs_medium
        bits = PCARotationHasher(6, seed=0).fit(X).hash_bits(X)
        means = bits.mean(axis=0)
        assert np.all(np.abs(means - 0.5) < 0.05)

    def test_buckets_more_balanced_than_axis_on_skewed_data(self):
        rng = np.random.default_rng(3)
        # Heavily skewed: exponential blob + tiny far cluster.
        X = np.vstack([rng.exponential(0.1, (950, 6)), 5.0 + rng.normal(0, 0.01, (50, 6))])
        pca_sigs = PCARotationHasher(5, seed=0).fit(X).hash(X)
        _, counts = np.unique(pca_sigs, return_counts=True)
        assert counts.max() < 0.6 * len(X)  # no bucket hoards the data

    def test_handles_more_bits_than_rank(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((50, 3))
        sigs = PCARotationHasher(10, seed=0).fit(X).hash(X)
        assert sigs.shape == (50,)


class TestStableDistribution:
    def test_integer_hashes_shift_with_width(self, uniform_small):
        X = uniform_small
        narrow = StableDistributionHasher(4, bucket_width=0.1, seed=0).fit(X)
        wide = StableDistributionHasher(4, bucket_width=100.0, seed=0).fit(X)
        assert len(np.unique(narrow.hash_integers(X)[:, 0])) > len(
            np.unique(wide.hash_integers(X)[:, 0])
        )

    def test_near_points_collide_more_than_far(self):
        rng = np.random.default_rng(1)
        base = rng.uniform(0, 1, (100, 8))
        near = base + rng.normal(0, 0.01, base.shape)
        far = rng.uniform(0, 1, (100, 8)) + 10
        h = StableDistributionHasher(16, bucket_width=1.0, seed=0).fit(base)
        same_near = (h.hash_integers(base) == h.hash_integers(near)).mean()
        same_far = (h.hash_integers(base) == h.hash_integers(far)).mean()
        assert same_near > same_far

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            StableDistributionHasher(4, bucket_width=0.0)


class TestMinHash:
    def test_jaccard_estimate_tracks_truth(self):
        d = 200
        rng = np.random.default_rng(0)
        a = np.zeros(d)
        b = np.zeros(d)
        a[:100] = 1.0
        b[50:150] = 1.0  # |A&B| = 50, |A|B| = 150 -> J = 1/3
        h = MinHasher(256, seed=0)
        va = h.hash_values(a.reshape(1, -1))[0]
        vb = h.hash_values(b.reshape(1, -1))[0]
        assert abs(MinHasher.jaccard_estimate(va, vb) - 1 / 3) < 0.1

    def test_identical_sets_always_collide(self):
        x = np.zeros((1, 50))
        x[0, [3, 7, 12]] = 1.0
        h = MinHasher(32, seed=1)
        assert MinHasher.jaccard_estimate(h.hash_values(x)[0], h.hash_values(x.copy())[0]) == 1.0

    def test_disjoint_sets_rarely_collide(self):
        a = np.zeros((1, 100))
        b = np.zeros((1, 100))
        a[0, :50] = 1.0
        b[0, 50:] = 1.0
        h = MinHasher(64, seed=2)
        est = MinHasher.jaccard_estimate(h.hash_values(a)[0], h.hash_values(b)[0])
        assert est < 0.1

    def test_empty_support_sentinel(self):
        h = MinHasher(4, seed=0)
        values = h.hash_values(np.zeros((1, 10)))
        assert (values[0] == values[0][0]).all()  # all-sentinel row

    def test_mismatched_signatures_raise(self):
        with pytest.raises(ValueError):
            MinHasher.jaccard_estimate(np.zeros(4), np.zeros(5))
