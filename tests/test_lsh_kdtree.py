"""Tests for the k-d tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh import KDTree


def brute_nearest(X, q):
    d = np.linalg.norm(X - q, axis=1)
    i = int(np.argmin(d))
    return i, float(d[i])


class TestKDTree:
    def test_len(self, uniform_small):
        assert len(KDTree(uniform_small)) == uniform_small.shape[0]

    def test_depth_is_logarithmic(self, uniform_small):
        tree = KDTree(uniform_small)
        n = len(tree)
        assert tree.depth() <= 2 * int(np.ceil(np.log2(n))) + 1

    @given(st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_nearest_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, (64, 4))
        tree = KDTree(X)
        q = rng.uniform(-0.2, 1.2, 4)
        idx, dist = tree.nearest(q)
        bidx, bdist = brute_nearest(X, q)
        assert dist == pytest.approx(bdist)
        # Ties allowed: distance must match even if the index differs.
        assert np.linalg.norm(X[idx] - q) == pytest.approx(bdist)

    def test_nearest_on_member_point(self, uniform_small):
        tree = KDTree(uniform_small)
        idx, dist = tree.nearest(uniform_small[17])
        assert dist == pytest.approx(0.0)
        assert np.allclose(uniform_small[idx], uniform_small[17])

    def test_nearest_dimension_mismatch(self, uniform_small):
        with pytest.raises(ValueError):
            KDTree(uniform_small).nearest(np.zeros(uniform_small.shape[1] + 1))

    @given(st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_range_query_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, (80, 3))
        tree = KDTree(X)
        lo = rng.uniform(0, 0.5, 3)
        hi = lo + rng.uniform(0.1, 0.5, 3)
        got = tree.range_query(lo, hi)
        expected = sorted(
            i for i in range(80) if np.all(X[i] >= lo) and np.all(X[i] <= hi)
        )
        assert got == expected

    def test_range_query_bad_bounds(self, uniform_small):
        tree = KDTree(uniform_small)
        with pytest.raises(ValueError):
            tree.range_query([0.0], [1.0, 1.0])

    def test_single_point_tree(self):
        tree = KDTree(np.array([[1.0, 2.0]]))
        idx, dist = tree.nearest([1.0, 2.0])
        assert idx == 0 and dist == 0.0
        assert tree.depth() == 0

    def test_duplicate_points(self):
        X = np.ones((10, 2))
        tree = KDTree(X)
        assert tree.range_query([0.5, 0.5], [1.5, 1.5]) == list(range(10))
