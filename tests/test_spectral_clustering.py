"""Tests for embedding, K-means, and the exact SpectralClustering estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectral import KMeans, SpectralClustering, kmeans_plus_plus_init, row_normalize, spectral_embedding
from repro.kernels import GaussianKernel
from repro.metrics import clustering_accuracy


class TestRowNormalize:
    def test_unit_rows(self, rng):
        Y = row_normalize(rng.standard_normal((20, 4)))
        assert np.allclose(np.linalg.norm(Y, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        Y = row_normalize(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert np.allclose(Y[0], 0.0)
        assert np.allclose(Y[1], [0.6, 0.8])


class TestSpectralEmbedding:
    def test_block_diagonal_affinity_separates(self):
        # Two disconnected cliques: embedding rows within a clique coincide.
        S = np.zeros((6, 6))
        S[:3, :3] = 1.0
        S[3:, 3:] = 1.0
        np.fill_diagonal(S, 0.0)
        Y = spectral_embedding(S, 2)
        within_a = np.linalg.norm(Y[0] - Y[1])
        across = np.linalg.norm(Y[0] - Y[4])
        assert within_a < 1e-8
        assert across > 0.5

    def test_shape(self, rng):
        S = rng.uniform(0, 1, (10, 10))
        S = (S + S.T) / 2
        assert spectral_embedding(S, 3).shape == (10, 3)


class TestKMeansPlusPlus:
    def test_centers_are_data_points(self, rng):
        X = rng.uniform(0, 1, (30, 3))
        centers = kmeans_plus_plus_init(X, 5, rng)
        for c in centers:
            assert any(np.allclose(c, x) for x in X)

    def test_spreads_over_separated_clusters(self, blobs_small, rng):
        X, y = blobs_small
        centers = kmeans_plus_plus_init(X, 4, rng)
        # Each chosen center should be near a distinct true cluster.
        from repro.kernels.matrix import pairwise_sq_distances
        d2 = pairwise_sq_distances(centers, centers)
        np.fill_diagonal(d2, np.inf)
        assert d2.min() > 0.01  # no two centers from the same tight blob

    def test_duplicate_points_handled(self):
        X = np.ones((10, 2))
        centers = kmeans_plus_plus_init(X, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.ones((3, 2)), 4, rng)


class TestKMeans:
    def test_recovers_separated_blobs(self, blobs_small):
        X, y = blobs_small
        labels = KMeans(4, seed=0).fit_predict(X)
        assert clustering_accuracy(y, labels) > 0.99

    def test_exact_cluster_count(self, blobs_small):
        X, _ = blobs_small
        labels = KMeans(4, seed=1).fit_predict(X)
        assert len(np.unique(labels)) == 4

    def test_inertia_consistent_with_labels(self, blobs_small):
        X, _ = blobs_small
        km = KMeans(4, seed=2).fit(X)
        manual = sum(
            ((X[km.labels_ == c] - km.cluster_centers_[c]) ** 2).sum() for c in range(4)
        )
        assert km.inertia_ == pytest.approx(manual)

    def test_more_restarts_never_worse(self, rng):
        X = rng.uniform(0, 1, (120, 6))
        one = KMeans(6, n_init=1, seed=5).fit(X).inertia_
        many = KMeans(6, n_init=8, seed=5).fit(X).inertia_
        assert many <= one + 1e-9

    def test_predict_matches_fit_labels(self, blobs_small):
        X, _ = blobs_small
        km = KMeans(4, seed=3).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.ones((3, 2)))

    def test_two_simultaneous_empty_clusters_reseed_distinct_points(self, monkeypatch):
        # Regression: when >=2 clusters go empty in the same Lloyd iteration,
        # each must be re-seeded on a *different* worst-served point. The old
        # code took argmax over the same stale distance vector for every
        # empty cluster, handing them all the same point — the later writes
        # overwrote the earlier labels and a cluster stayed empty.
        import repro.spectral.kmeans as km_mod

        X = np.array(
            [[0.0, 0.0], [0.0, 1.0], [100.0, 100.0], [101.0, 100.0], [50.0, 0.0], [0.0, 50.0]]
        )
        # Crafted init: clusters 2 and 3 are far from every point, so both
        # are empty after the first assignment step; the two worst-served
        # points ([50,0] and [0,50]) are the distinct re-seed targets.
        crafted = np.array([[0.0, 0.5], [100.5, 100.0], [-1000.0, 0.0], [0.0, -1000.0]])
        monkeypatch.setattr(
            km_mod, "kmeans_plus_plus_init", lambda X_, k, rng: crafted.copy()
        )
        km = KMeans(4, n_init=1, max_iter=1, seed=0).fit(X)
        assert len(np.unique(km.labels_)) == 4

    def test_k_equals_n(self):
        X = np.arange(8, dtype=float).reshape(4, 2)
        labels = KMeans(4, seed=0).fit_predict(X)
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_n_too_small(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.ones((3, 2)))

    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_labels_always_in_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, (40, 3))
        k = int(rng.integers(1, 6))
        labels = KMeans(k, seed=seed, n_init=1, max_iter=20).fit_predict(X)
        assert labels.min() >= 0 and labels.max() < k
        assert labels.shape == (40,)

    def test_seed_reproducibility(self, blobs_small):
        X, _ = blobs_small
        a = KMeans(4, seed=9).fit_predict(X)
        b = KMeans(4, seed=9).fit_predict(X)
        assert np.array_equal(a, b)


class TestSpectralClustering:
    def test_recovers_blobs(self, blobs_small):
        X, y = blobs_small
        labels = SpectralClustering(4, sigma=0.3, seed=0).fit_predict(X)
        assert clustering_accuracy(y, labels) > 0.99

    def test_memory_accounting_is_full_matrix(self, blobs_small):
        X, _ = blobs_small
        sc = SpectralClustering(4, sigma=0.3, seed=0).fit(X)
        assert sc.memory_.total == 4 * X.shape[0] ** 2

    def test_stage_times_recorded(self, blobs_small):
        X, _ = blobs_small
        sc = SpectralClustering(4, sigma=0.3, seed=0).fit(X)
        assert {"gram", "eigen", "kmeans"} <= set(sc.stopwatch_.laps)

    def test_custom_kernel(self, blobs_small):
        X, y = blobs_small
        labels = SpectralClustering(4, kernel=GaussianKernel(0.3), seed=0).fit_predict(X)
        assert clustering_accuracy(y, labels) > 0.99

    @pytest.mark.parametrize("backend", ["dense", "lanczos", "arpack"])
    def test_eig_backends_all_work(self, blobs_small, backend):
        X, y = blobs_small
        labels = SpectralClustering(4, sigma=0.3, eig_backend=backend, seed=0).fit_predict(X)
        assert clustering_accuracy(y, labels) > 0.95

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            SpectralClustering(5).fit(np.ones((3, 2)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SpectralClustering(0)
