"""Property-based checks: bucket operations always produce true partitions.

Randomized (but seeded, via hypothesis) signature sets exercise
``group_by_signature`` / ``merge_buckets`` / ``fold_small_buckets`` far off
the blob-shaped happy path: duplicate-heavy sets, dense hypercube corners,
single-signature sets. Two families of properties:

* every result is a valid :class:`Buckets` partition (delegated to the
  ``repro.verify`` invariant checks, which double-checks those too);
* ``merge_buckets`` and ``fold_small_buckets`` are idempotent — their
  output is a fixed point, because surviving representatives are pairwise
  non-mergeable (resp. all surviving buckets meet ``min_size``).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import fold_small_buckets, group_by_signature, merge_buckets
from repro.verify import check_buckets

N_BITS = 8

signature_lists = st.lists(
    st.integers(min_value=0, max_value=2**N_BITS - 1), min_size=1, max_size=64
)


def _buckets(raw):
    return group_by_signature(np.array(raw, dtype=np.uint64), N_BITS)


def _same(a, b) -> bool:
    return np.array_equal(a.assignments, b.assignments) and np.array_equal(
        a.signatures, b.signatures
    )


class TestPartitionProperties:
    @given(signature_lists)
    @settings(max_examples=80, deadline=None)
    def test_group_by_signature_is_partition(self, raw):
        sigs = np.array(raw, dtype=np.uint64)
        buckets = _buckets(raw)
        check_buckets(buckets, len(raw), point_signatures=sigs, stage="property")
        # grouping is exact: same signature <=> same bucket
        assert np.array_equal(buckets.signatures[buckets.assignments], sigs)

    @given(signature_lists, st.integers(0, N_BITS),
           st.sampled_from(["star", "transitive"]))
    @settings(max_examples=80, deadline=None)
    def test_merge_preserves_partition(self, raw, min_shared, strategy):
        sigs = np.array(raw, dtype=np.uint64)
        merged = merge_buckets(_buckets(raw), min_shared, strategy=strategy)
        check_buckets(merged, len(raw), point_signatures=sigs, stage="property")
        assert merged.n_buckets <= _buckets(raw).n_buckets

    @given(signature_lists, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_fold_preserves_partition(self, raw, min_size):
        sigs = np.array(raw, dtype=np.uint64)
        folded = fold_small_buckets(_buckets(raw), min_size)
        check_buckets(folded, len(raw), point_signatures=sigs, stage="property")

    @given(signature_lists, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_fold_enforces_min_size(self, raw, min_size):
        folded = fold_small_buckets(_buckets(raw), min_size)
        if folded.n_buckets > 1:
            assert int(folded.sizes.min()) >= min_size


class TestIdempotence:
    @given(signature_lists, st.integers(0, N_BITS),
           st.sampled_from(["star", "transitive"]))
    @settings(max_examples=80, deadline=None)
    def test_merge_is_idempotent(self, raw, min_shared, strategy):
        once = merge_buckets(_buckets(raw), min_shared, strategy=strategy)
        twice = merge_buckets(once, min_shared, strategy=strategy)
        assert _same(once, twice)

    @given(signature_lists, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_fold_is_idempotent(self, raw, min_size):
        once = fold_small_buckets(_buckets(raw), min_size)
        twice = fold_small_buckets(once, min_size)
        assert _same(once, twice)

    @given(signature_lists, st.integers(0, N_BITS), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_merge_then_fold_fixed_point(self, raw, min_shared, min_size):
        # the full partition() post-processing chain is itself a fixed point
        sigs = np.array(raw, dtype=np.uint64)
        once = fold_small_buckets(
            merge_buckets(_buckets(raw), min_shared, strategy="star"), min_size
        )
        twice = fold_small_buckets(
            merge_buckets(once, min_shared, strategy="star"), min_size
        )
        assert _same(once, twice)
        check_buckets(once, len(raw), point_signatures=sigs, stage="property")
