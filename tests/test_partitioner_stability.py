"""The default shuffle partitioner must not depend on PYTHONHASHSEED.

Python salts ``hash(str)`` per process, so ``hash(key) % n`` sends the same
key to different reducers in different runs — which breaks checkpoint/resume
(a restored map output must shuffle identically on replay) and made job
stats unreproducible across interpreter launches. The engine now partitions
with a CRC32 over a canonical encoding of the key.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.mapreduce.engine import _default_partitioner, stable_hash

SRC = Path(__file__).resolve().parent.parent / "src"

PROBE = """
from repro.mapreduce.engine import _default_partitioner
keys = ["alpha", "beta", (3, "gamma"), 42, b"delta", frozenset({1, 2})]
print([_default_partitioner(k, 7) for k in keys])
"""


def run_probe(hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=str(SRC))
    out = subprocess.run(
        [sys.executable, "-c", PROBE], env=env, capture_output=True, text=True, check=True
    )
    return out.stdout.strip()


@pytest.mark.slow
def test_partitions_stable_across_hash_seeds():
    results = {run_probe(seed) for seed in ("0", "1", "12345")}
    assert len(results) == 1, f"partitioner varies with PYTHONHASHSEED: {results}"


def test_partitions_match_in_process():
    keys = ["alpha", "beta", (3, "gamma"), 42, b"delta", frozenset({1, 2})]
    expected = str([_default_partitioner(k, 7) for k in keys])
    assert run_probe("0") == expected


def test_stable_hash_properties():
    assert stable_hash("key") == stable_hash("key")
    assert stable_hash("key") >= 0
    # Distinct types with equal reprs must not collide by construction.
    assert stable_hash("1") != stable_hash(1)
    # Partitions land in range and cover more than one reducer.
    parts = {_default_partitioner(f"point-{i}", 8) for i in range(100)}
    assert parts <= set(range(8))
    assert len(parts) > 1
