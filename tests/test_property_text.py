"""Property-based tests for the text pipeline."""

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import STOP_WORDS, PorterStemmer, TfIdfVectorizer, clean_html, preprocess_document, tokenize

words = st.text(alphabet="abcdefghij", min_size=1, max_size=8)
texts = st.text(
    alphabet=string.ascii_letters + string.digits + " .,!<>&;/\"'=", max_size=300
)


class TestCleanHtmlProperties:
    @given(texts)
    @settings(max_examples=100, deadline=None)
    def test_output_has_no_markup(self, text):
        cleaned = clean_html(text)
        assert "<" not in cleaned
        # '&' survives only when it never started an entity that got eaten;
        # our cleaner always eats from '&', so none remain.
        assert "&" not in cleaned

    @given(st.lists(words, min_size=0, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_plain_words_survive(self, tokens):
        text = " ".join(tokens)
        assert clean_html(text).split() == [t for t in text.split()]

    @given(st.lists(words, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_tag_wrapped_words_recovered(self, tokens):
        html = "".join(f"<b>{t}</b> " for t in tokens)
        assert clean_html(html).split() == tokens


class TestTokenizeProperties:
    @given(texts)
    @settings(max_examples=100, deadline=None)
    def test_tokens_are_lowercase_alpha(self, text):
        for tok in tokenize(text):
            assert tok == tok.lower()
            assert tok.isalpha()

    @given(texts)
    @settings(max_examples=60, deadline=None)
    def test_idempotent_on_own_output(self, text):
        once = tokenize(text)
        again = tokenize(" ".join(once))
        assert once == again


class TestStemmerProperties:
    @given(words)
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, word):
        s = PorterStemmer()
        assert s.stem(word) == s.stem(word)

    @given(words)
    @settings(max_examples=200, deadline=None)
    def test_output_stays_alpha_lowercase(self, word):
        out = PorterStemmer().stem(word)
        assert out.isalpha() or out == word
        assert out == out.lower()

    def test_inflection_families_collapse(self):
        """Different inflections of a word map to one stem (the property the
        tf-idf pipeline depends on)."""
        s = PorterStemmer()
        families = [
            ["connect", "connected", "connecting", "connection", "connections"],
            ["cluster", "clusters", "clustering", "clustered"],
        ]
        for family in families:
            stems = {s.stem(w) for w in family}
            assert len(stems) == 1, family


class TestPipelineProperties:
    @given(st.lists(words, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_no_stop_words_survive(self, tokens):
        text = " ".join(tokens) + " the and of is"
        out = preprocess_document(text)
        assert not (set(out) & STOP_WORDS & set(tokens + ["the", "and", "of", "is"]))

    @given(st.integers(1, 6), st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_tfidf_matrix_dimensions_and_range(self, n_features, seed):
        rng = np.random.default_rng(seed)
        vocab = [f"w{i}" for i in range(10)]
        docs = [
            [vocab[j] for j in rng.integers(0, 10, size=rng.integers(2, 15))]
            for _ in range(8)
        ]
        X = TfIdfVectorizer(n_features=n_features, min_df=1).fit_transform(docs)
        assert X.shape[0] == 8
        assert X.shape[1] <= n_features
        assert X.min() >= 0.0 and X.max() <= 1.0 + 1e-12
