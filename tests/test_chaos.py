"""Chaos tests: the output-equivalence invariant under injected failures.

The fault-tolerance layer's contract: under any failure schedule that stays
below the attempt cap — task failures, node preemptions, stragglers raced
by speculation — ``DistributedDASC.run`` produces labels byte-identical to
the fault-free run; only the simulated makespan and the ``faults`` counter
group may differ.
"""

import numpy as np
import pytest

from repro.core import DASCConfig
from repro.dasc_mr import DistributedDASC
from repro.mapreduce import ElasticMapReduce, FaultyEngine, ParallelExecutor
from repro.mapreduce.faults import FaultPolicy, NodeFailurePolicy, StragglerPolicy


class ChaosEMR(ElasticMapReduce):
    """EMR whose provisioned flows run on a fault-injecting engine."""

    def __init__(self, *, executor=None, **fault_kwargs):
        super().__init__(executor=executor)
        self._fault_kwargs = fault_kwargs

    def create_job_flow(self, n_nodes, *, split_size=1024, checkpoint=True):
        flow_id, flow = super().create_job_flow(
            n_nodes, split_size=split_size, checkpoint=checkpoint
        )
        flow.engine = FaultyEngine(
            flow.engine.cluster, executor=flow.engine.executor, **self._fault_kwargs
        )
        return flow_id, flow


def parallel_emr():
    """An EMR running real task compute on a strict (no-fallback) pool."""
    return ElasticMapReduce(executor=ParallelExecutor(2, fallback=False))


def run_dasc(X, mode="inline", emr=None):
    return DistributedDASC(
        4, n_nodes=4, config=DASCConfig(seed=0), emr=emr, spectral_mode=mode
    ).run(X)


def counters_without_faults(counters: dict) -> dict:
    return {
        stage: {g: dict(names) for g, names in groups.items() if g != "faults"}
        for stage, groups in counters.items()
    }


# Failure schedules swept by the equivalence test. Explicit node kills hit
# every phase of the inline pipeline (stage-1 map, stage-2 map, stage-2
# reduce); rate-based schedules exercise the random paths across seeds.
SCHEDULES = {
    "tasks-light": dict(policy=FaultPolicy(failure_rate=0.1, max_attempts=12, seed=1)),
    "tasks-heavy": dict(policy=FaultPolicy(failure_rate=0.3, max_attempts=16, seed=2)),
    "node-kill-every-phase": dict(
        node_policy=NodeFailurePolicy(kills=((0, 1, 0.5), (1, 2, 0.6), (2, 0, 0.4)))
    ),
    "node-kill-random": dict(node_policy=NodeFailurePolicy(rate=0.35, seed=3)),
    "stragglers-speculation": dict(
        straggler_policy=StragglerPolicy(rate=0.3, slowdown=(3.0, 8.0), seed=4)
    ),
    "everything-at-once": dict(
        policy=FaultPolicy(failure_rate=0.15, max_attempts=12, seed=5),
        node_policy=NodeFailurePolicy(kills=((0, 3, 0.5),), rate=0.2, seed=6),
        straggler_policy=StragglerPolicy(rate=0.25, slowdown=(2.0, 6.0), seed=7),
    ),
}


class TestChaosEquivalence:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    @pytest.mark.parametrize("seed_shift", [0, 10])
    def test_labels_identical_inline(self, blobs_small, schedule, seed_shift):
        X, _ = blobs_small
        baseline = run_dasc(X)
        kwargs = {
            key: type(policy)(**{**policy.__dict__, "seed": policy.seed + seed_shift})
            for key, policy in SCHEDULES[schedule].items()
        }
        chaotic = run_dasc(X, emr=ChaosEMR(**kwargs))
        assert np.array_equal(chaotic.labels, baseline.labels)
        assert chaotic.n_clusters == baseline.n_clusters
        assert chaotic.n_buckets == baseline.n_buckets
        assert chaotic.makespan >= baseline.makespan
        # Every counter except the faults group matches the clean run.
        assert counters_without_faults(chaotic.counters) == counters_without_faults(
            baseline.counters
        )

    @pytest.mark.parametrize("schedule", ["tasks-heavy", "everything-at-once"])
    def test_labels_identical_mahout(self, blobs_small, schedule):
        X, _ = blobs_small
        baseline = run_dasc(X, mode="mahout")
        chaotic = run_dasc(X, mode="mahout", emr=ChaosEMR(**SCHEDULES[schedule]))
        assert np.array_equal(chaotic.labels, baseline.labels)
        assert chaotic.makespan >= baseline.makespan

    def test_fault_counters_reported(self, blobs_small):
        X, _ = blobs_small
        result = run_dasc(X, emr=ChaosEMR(**SCHEDULES["node-kill-every-phase"]))
        total_kills = sum(
            stage.get("faults", {}).get("node_failures", 0)
            for stage in result.counters.values()
        )
        assert total_kills >= 2  # stage-1 and stage-2 phases each lost a node


class TestParallelEquivalence:
    """The executor satellite of the chaos contract: the process-pool
    backend must be bit-identical to serial — labels, reduce output order,
    and the *full* counter set (no faults-group carve-out needed, since a
    healthy parallel run injects nothing)."""

    @pytest.mark.parametrize("mode", ["inline", "mahout"])
    def test_clean_run_bit_identical(self, blobs_small, mode):
        X, _ = blobs_small
        baseline = run_dasc(X, mode=mode)
        parallel = run_dasc(X, mode=mode, emr=parallel_emr())
        assert np.array_equal(parallel.labels, baseline.labels)
        assert parallel.n_clusters == baseline.n_clusters
        assert parallel.n_buckets == baseline.n_buckets
        assert parallel.counters == baseline.counters
        assert parallel.makespan == baseline.makespan
        assert parallel.stage_makespans == baseline.stage_makespans

    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_chaos_schedules_identical_under_parallel_executor(self, blobs_small, schedule):
        """The full chaos suite with the parallel executor plumbed through:
        FaultyEngine keeps its task attempts in-process (retry semantics),
        and every schedule still converges to the serial baseline."""
        X, _ = blobs_small
        baseline = run_dasc(X)
        chaotic = run_dasc(
            X,
            emr=ChaosEMR(
                executor=ParallelExecutor(2, fallback=False), **SCHEDULES[schedule]
            ),
        )
        assert np.array_equal(chaotic.labels, baseline.labels)
        assert chaotic.n_clusters == baseline.n_clusters
        assert counters_without_faults(chaotic.counters) == counters_without_faults(
            baseline.counters
        )

    def test_parallel_reduce_partitions_identical(self, blobs_small):
        """Shuffle partitioning and per-partition reduce outputs match the
        serial engine record-for-record."""
        from repro.dasc_mr.stage1 import make_signature_job
        from repro.lsh.axis import AxisParallelHasher
        from repro.mapreduce import MapReduceEngine, SerialExecutor

        X, _ = blobs_small
        hasher = AxisParallelHasher(6, seed=0).fit(X)
        job = make_signature_job(hasher.dimensions_, hasher.thresholds_)
        splits = [[(i, X[i]) for i in range(s, min(s + 64, X.shape[0]))] for s in range(0, X.shape[0], 64)]
        serial = MapReduceEngine(executor=SerialExecutor()).run(job, splits)
        parallel = MapReduceEngine(executor=ParallelExecutor(2, fallback=False)).run(job, splits)
        assert len(parallel.output) == len(serial.output)
        for (ks, vs), (kp, vp) in zip(serial.output, parallel.output):
            assert ks == kp
            assert vs[0] == vp[0]
            assert np.array_equal(vs[1], vp[1])
        assert parallel.partitions.keys() == serial.partitions.keys()
        assert parallel.counters.as_dict() == serial.counters.as_dict()


class TestDriverDegradation:
    def test_duplicate_heavy_data_runs(self):
        """All-duplicate inputs must not produce sigma = 0 or crash."""
        X = np.zeros((60, 4))
        X[:5] += 1.0
        result = DistributedDASC(2, n_nodes=2, config=DASCConfig(seed=0)).run(X)
        assert result.labels.shape == (60,)
        assert (result.labels >= 0).all()

    def test_explicit_zero_sigma_clamped(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        cfg = DASCConfig(seed=0, sigma=0.0)
        result = DistributedDASC(2, n_nodes=2, config=cfg).run(X)
        assert (result.labels >= 0).all()

    def test_unlabelled_points_repaired(self, blobs_small):
        """Missing label records degrade to nearest-neighbour repair."""
        X, _ = blobs_small
        emr = ElasticMapReduce()
        dasc = DistributedDASC(4, n_nodes=4, config=DASCConfig(seed=0), emr=emr)
        flow_id = dasc.submit(X)
        emr.run_job_flow(flow_id)
        flow = dasc._pending[flow_id]["flow"]
        records = flow.fs.read("labels")
        flow.fs.write("labels", records[:-7], overwrite=True)
        baseline = DistributedDASC(4, n_nodes=4, config=DASCConfig(seed=0)).run(X)
        result = dasc.collect(flow_id)
        assert result.n_repaired == 7
        assert (result.labels >= 0).all()
        # Well-separated blobs: the nearest labelled neighbour sits in the
        # same cluster, so repair reconstructs the fault-free labels.
        assert np.array_equal(result.labels, baseline.labels)

    def test_all_labels_missing_raises(self, blobs_small):
        X, _ = blobs_small
        emr = ElasticMapReduce()
        dasc = DistributedDASC(4, n_nodes=2, config=DASCConfig(seed=0), emr=emr)
        flow_id = dasc.submit(X)
        emr.run_job_flow(flow_id)
        flow = dasc._pending[flow_id]["flow"]
        flow.fs.write("labels", [], overwrite=True)
        with pytest.raises(RuntimeError, match="no labels"):
            dasc.collect(flow_id)

    def test_lanczos_nonconvergence_falls_back_to_dense(self, monkeypatch):
        import repro.spectral.eigen as eigen_mod
        from repro.spectral.eigen import top_eigenvectors

        def broken(*args, **kwargs):
            raise RuntimeError("tridiagonal QL failed to converge at index 0")

        monkeypatch.setattr(eigen_mod, "lanczos_top_eigenpairs", broken)
        rng = np.random.default_rng(1)
        A = rng.normal(size=(12, 12))
        A = A + A.T
        vals, vecs = top_eigenvectors(A, 3, backend="lanczos", seed=0)
        ref_vals, _ = top_eigenvectors(A, 3, backend="dense")
        assert np.allclose(vals, ref_vals)
        assert vecs.shape == (12, 3)
