"""Tests for the command-line interface."""

import csv
import subprocess
import sys

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cluster_args(self):
        args = build_parser().parse_args(["cluster", "x.csv", "-k", "4", "-a", "sc"])
        assert args.command == "cluster"
        assert args.n_clusters == 4
        assert args.algorithm == "sc"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "x.csv", "-k", "2", "-a", "magic"])


class TestGenerateAndCluster:
    def test_generate_blobs_roundtrip(self, tmp_path):
        out = tmp_path / "blobs.csv"
        assert main(["generate", "blobs", "-n", "120", "-k", "3", "-d", "8",
                     "--seed", "1", "-o", str(out)]) == 0
        with open(out) as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == 120
        assert len(rows[0]) == 9  # 8 features + label

    def test_generate_uniform_has_no_label(self, tmp_path):
        out = tmp_path / "u.csv"
        main(["generate", "uniform", "-n", "10", "-d", "4", "-o", str(out)])
        with open(out) as fh:
            rows = list(csv.reader(fh))
        assert len(rows[0]) == 4

    @pytest.mark.parametrize("algorithm", ["dasc", "sc", "psc", "nyst"])
    def test_cluster_all_algorithms(self, tmp_path, capsys, algorithm):
        data = tmp_path / "data.csv"
        labels_out = tmp_path / "labels.csv"
        main(["generate", "blobs", "-n", "150", "-k", "3", "-d", "8",
              "--seed", "2", "-o", str(data)])
        code = main([
            "cluster", str(data), "-k", "3", "-a", algorithm,
            "--sigma", "0.3", "--label-column", "8", "-o", str(labels_out),
        ])
        assert code == 0
        with open(labels_out) as fh:
            labels = [int(r[0]) for r in csv.reader(fh)]
        assert len(labels) == 150
        assert set(labels) <= set(range(3))
        err = capsys.readouterr().err
        assert "accuracy:" in err
        assert float(err.split(":")[1]) > 0.9

    def test_cluster_empty_input(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["cluster", str(empty), "-k", "2"])

    def test_analyze_complexity(self, capsys):
        assert main(["analyze", "complexity", "-n", str(2**22)]) == 0
        out = capsys.readouterr().out
        assert "DASC time" in out and "SC time" in out

    def test_analyze_collision(self, capsys):
        assert main(["analyze", "collision", "-n", str(2**20), "-m", "10"]) == 0
        out = capsys.readouterr().out
        assert "collision probability" in out
        p = float(out.strip().rsplit("=", 1)[1])
        assert 0.0 < p < 1.0

    def test_chaos_args(self):
        args = build_parser().parse_args(["chaos", "-n", "200", "--corrupt-rate", "0.2"])
        assert args.command == "chaos"
        assert args.n_samples == 200
        assert args.corrupt_rate == 0.2
        assert args.max_attempts == 16  # generous default: the commit protocol
        # makes several chaos-visible requests per attempt

    def test_chaos_drill_passes_and_writes_trace(self, tmp_path, capsys):
        from repro.observability import fault_summary, read_trace

        trace = tmp_path / "chaos.jsonl"
        code = main(["chaos", "-n", "150", "-k", "3", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "FAIL" not in out
        assert "chaos_labels_identical" in out
        assert "corrupt_checkpoint_quarantined" in out
        assert "injected faults:" in out
        ledger = fault_summary(read_trace(str(trace)))
        assert ledger["by_kind"].get("storage.quarantine", 0) >= 1
        assert ledger["by_kind"].get("fault.checkpoint_reexecuted", 0) >= 1

    def test_serve_bench_args(self):
        args = build_parser().parse_args(["serve-bench", "-n", "200", "--p99-max", "0.01"])
        assert args.command == "serve-bench"
        assert args.n_samples == 200
        assert args.p99_max == 0.01
        assert args.batch_size == 256
        assert args.noise == 0.3  # enough jitter to exercise the near rung

    def test_serve_bench_drill_passes_and_writes_trace(self, tmp_path, capsys):
        from repro.observability import read_trace

        trace = tmp_path / "serve.jsonl"
        code = main([
            "serve-bench", "-n", "150", "-k", "3", "--n-queries", "300",
            "--trace", str(trace),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "FAIL" not in out
        assert "self_consistency" in out
        assert "corrupt_model_quarantined" in out
        assert "reload_after_quarantine" in out
        assert "latency/pt" in out and "throughput" in out
        assert "injected store faults" in out
        records = read_trace(str(trace))
        assert any(r.get("name") == "serving.batch" for r in records)

    def test_module_invocation(self, tmp_path):
        """python -m repro.cli works end to end."""
        data = tmp_path / "d.csv"
        main(["generate", "uniform", "-n", "30", "-d", "4", "-o", str(data)])
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "cluster", str(data), "-k", "2",
             "--sigma", "1.0"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert len(proc.stdout.strip().splitlines()) == 30
