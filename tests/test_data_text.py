"""Tests for the text pipeline: HTML stripping, tokenizing, Porter stemming, tf-idf."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import STOP_WORDS, PorterStemmer, TfIdfVectorizer, clean_html, preprocess_document, tokenize


class TestCleanHtml:
    def test_strips_tags(self):
        assert clean_html("<p>hello <b>world</b></p>").split() == ["hello", "world"]

    def test_strips_entities(self):
        assert clean_html("a&nbsp;b &amp; c").split() == ["a", "b", "c"]

    def test_plain_text_unchanged(self):
        assert clean_html("just words") == "just words"

    def test_nested_and_attributes(self):
        html = '<div class="x"><a href="/y">link text</a></div>'
        assert clean_html(html).split() == ["link", "text"]


class TestTokenize:
    def test_lowercases_and_strips_punct(self):
        assert tokenize("Hello, World! It's 2012.") == ["hello", "world", "its"]

    def test_empty(self):
        assert tokenize("... 123 !!!") == []


class TestStopWords:
    def test_common_words_present(self):
        assert {"the", "and", "of", "is", "a"} <= STOP_WORDS

    def test_content_words_absent(self):
        assert {"science", "politics", "cluster"} & STOP_WORDS == set()


class TestPorterStemmer:
    # End-to-end stems from the canonical Porter test vocabulary (note these
    # differ from the paper's per-step examples: later steps keep stripping,
    # e.g. relational -> relate in step 2 -> relat after step 5a).
    KNOWN = {
        # step 1a dominates
        "caresses": "caress", "ponies": "poni", "cats": "cat", "caress": "caress",
        # step 1b dominates
        "feed": "feed", "agreed": "agre", "plastered": "plaster", "bled": "bled",
        "motoring": "motor", "sing": "sing", "conflated": "conflat",
        "hopping": "hop", "falling": "fall", "hissing": "hiss", "filing": "file",
        # step 1c
        "happy": "happi", "sky": "sky",
        # step 2 entry points
        "relational": "relat", "conditional": "condit", "rational": "ration",
        "valenci": "valenc", "digitizer": "digit", "radicalli": "radic",
        "operator": "oper", "feudalism": "feudal", "decisiveness": "decis",
        "hopefulness": "hope", "formaliti": "formal", "sensitiviti": "sensit",
        # step 3 entry points
        "triplicate": "triplic", "formative": "form", "formalize": "formal",
        "electriciti": "electr", "electrical": "electr", "hopeful": "hope",
        "goodness": "good",
        # step 4
        "revival": "reviv", "allowance": "allow", "inference": "infer",
        "adjustable": "adjust", "defensible": "defens", "irritant": "irrit",
        "replacement": "replac", "adjustment": "adjust", "dependent": "depend",
        "adoption": "adopt", "communism": "commun", "activate": "activ",
        "effective": "effect",
        # step 5
        "probate": "probat", "rate": "rate", "cease": "ceas", "controll": "control",
        "roll": "roll",
    }

    @pytest.mark.parametrize("word,stem", sorted(KNOWN.items()))
    def test_known_stems(self, word, stem):
        assert PorterStemmer().stem(word) == stem

    def test_short_words_untouched(self):
        s = PorterStemmer()
        assert s.stem("be") == "be"
        assert s.stem("i") == "i"

    def test_idempotent_on_common_words(self):
        """Stemming a stem should rarely change it further (fixed point)."""
        s = PorterStemmer()
        words = ["running", "clusters", "computation", "databases", "engineering"]
        for w in words:
            once = s.stem(w)
            assert s.stem(once) == s.stem(once)  # calling again is stable

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=15))
    @settings(max_examples=200, deadline=None)
    def test_never_crashes_and_never_grows_much(self, word):
        out = PorterStemmer().stem(word)
        assert isinstance(out, str)
        assert len(out) <= len(word) + 1  # only 'e'-restoration can grow a stem


class TestPreprocess:
    def test_full_pipeline(self):
        html = "<p>The Clusters are forming and CLUSTERING continues</p>"
        tokens = preprocess_document(html, is_html=True)
        assert "the" not in tokens and "and" not in tokens
        assert tokens.count("cluster") == 2  # clusters + clustering both stem


class TestTfIdf:
    DOCS = [
        ["apple", "apple", "banana"],
        ["apple", "cherry"],
        ["banana", "cherry", "cherry"],
        ["apple", "banana", "cherry"],
    ]

    def test_vocabulary_size_capped(self):
        v = TfIdfVectorizer(n_features=2, min_df=1).fit(self.DOCS)
        assert len(v.vocabulary_) == 2

    def test_matrix_shape_and_range(self):
        X = TfIdfVectorizer(n_features=3, min_df=1).fit_transform(self.DOCS)
        assert X.shape == (4, 3)
        assert X.min() >= 0.0 and X.max() == pytest.approx(1.0)

    def test_absent_term_is_zero(self):
        v = TfIdfVectorizer(n_features=3, min_df=1).fit(self.DOCS)
        X = v.transform([["apple"]])
        j = v.vocabulary_["apple"]
        assert X[0, j] > 0
        assert X[0, [i for i in range(3) if i != j]].sum() == 0.0

    def test_min_df_filters_rare_terms(self):
        docs = self.DOCS + [["unique_term"]]
        v = TfIdfVectorizer(n_features=10, min_df=2).fit(docs)
        assert "unique_term" not in v.vocabulary_

    def test_rare_terms_have_higher_idf(self):
        docs = [["common", "rare"], ["common"], ["common"], ["common", "rare"]]
        v = TfIdfVectorizer(n_features=2, min_df=1).fit(docs)
        assert v.idf_[v.vocabulary_["rare"]] > v.idf_[v.vocabulary_["common"]]

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            TfIdfVectorizer().transform([["x"]])

    def test_all_terms_below_min_df(self):
        with pytest.raises(ValueError):
            TfIdfVectorizer(min_df=5).fit([["a"], ["b"]])

    def test_deterministic_column_order(self):
        a = TfIdfVectorizer(n_features=3, min_df=1).fit(self.DOCS).vocabulary_
        b = TfIdfVectorizer(n_features=3, min_df=1).fit(self.DOCS).vocabulary_
        assert a == b
