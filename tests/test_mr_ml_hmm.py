"""Tests for the discrete HMM (forward/backward, Viterbi, Baum-Welch)."""

import numpy as np
import pytest

from repro.mr_ml.hmm import HiddenMarkovModel


def two_state_model():
    """A crisp 2-state, 2-symbol model: state i emits symbol i w.p. 0.9."""
    hmm = HiddenMarkovModel(2, 2, seed=0)
    hmm.set_parameters(
        start=[0.5, 0.5],
        transition=[[0.9, 0.1], [0.1, 0.9]],
        emission=[[0.9, 0.1], [0.1, 0.9]],
    )
    return hmm


class TestConstruction:
    def test_random_tables_are_stochastic(self):
        hmm = HiddenMarkovModel(3, 5, seed=1)
        assert np.allclose(hmm.start_.sum(), 1.0)
        assert np.allclose(hmm.transition_.sum(axis=1), 1.0)
        assert np.allclose(hmm.emission_.sum(axis=1), 1.0)

    def test_set_parameters_validation(self):
        hmm = HiddenMarkovModel(2, 2)
        with pytest.raises(ValueError):
            hmm.set_parameters([0.5, 0.6], np.eye(2), np.eye(2))  # not a distribution
        with pytest.raises(ValueError):
            hmm.set_parameters([0.5, 0.5], np.eye(3), np.eye(2))  # wrong shape

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(0, 2)


class TestLikelihood:
    def test_matches_brute_force_enumeration(self):
        """Forward log-likelihood equals the exact sum over all state paths."""
        hmm = two_state_model()
        obs = np.array([0, 1, 0])
        total = 0.0
        for s0 in range(2):
            for s1 in range(2):
                for s2 in range(2):
                    p = hmm.start_[s0] * hmm.emission_[s0, obs[0]]
                    p *= hmm.transition_[s0, s1] * hmm.emission_[s1, obs[1]]
                    p *= hmm.transition_[s1, s2] * hmm.emission_[s2, obs[2]]
                    total += p
        assert hmm.log_likelihood(obs) == pytest.approx(np.log(total))

    def test_likely_sequences_score_higher(self):
        hmm = two_state_model()
        sticky = hmm.log_likelihood([0, 0, 0, 0, 1, 1, 1, 1])
        jumpy = hmm.log_likelihood([0, 1, 0, 1, 0, 1, 0, 1])
        assert sticky > jumpy

    def test_long_sequences_do_not_underflow(self):
        hmm = two_state_model()
        _, obs = hmm.sample(5000, seed=0)
        ll = hmm.log_likelihood(obs)
        assert np.isfinite(ll)

    def test_invalid_observations(self):
        hmm = two_state_model()
        with pytest.raises(ValueError):
            hmm.log_likelihood([])
        with pytest.raises(ValueError):
            hmm.log_likelihood([0, 5])


class TestViterbi:
    def test_recovers_generating_states_on_crisp_model(self):
        hmm = two_state_model()
        states, obs = hmm.sample(200, seed=3)
        decoded = hmm.viterbi(obs)
        assert np.mean(decoded == states) > 0.85

    def test_deterministic_model_exact(self):
        hmm = HiddenMarkovModel(2, 2)
        hmm.set_parameters(
            start=[1.0, 0.0],
            transition=[[0.0, 1.0], [1.0, 0.0]],  # strict alternation
            emission=[[1.0, 0.0], [0.0, 1.0]],
        )
        path = hmm.viterbi([0, 1, 0, 1])
        assert path.tolist() == [0, 1, 0, 1]


class TestBaumWelch:
    def test_likelihood_monotone_under_training(self):
        rng = np.random.default_rng(0)
        true = two_state_model()
        sequences = [true.sample(100, seed=i)[1] for i in range(5)]
        model = HiddenMarkovModel(2, 2, seed=7)
        before = sum(model.log_likelihood(s) for s in sequences)
        model.fit(sequences, max_iter=20)
        after = sum(model.log_likelihood(s) for s in sequences)
        assert after > before

    def test_learns_emission_structure(self):
        true = two_state_model()
        sequences = [true.sample(300, seed=i)[1] for i in range(8)]
        model = HiddenMarkovModel(2, 2, seed=5).fit(sequences, max_iter=50)
        # Each learned state should specialise in one symbol (up to state
        # permutation): the max emission probability per row is large.
        assert model.emission_.max(axis=1).min() > 0.7

    def test_estep_mstep_roundtrip_is_fit_iteration(self):
        """One manual E+M step equals one internal fit iteration (the
        MapReduce decomposition is faithful)."""
        true = two_state_model()
        sequences = [true.sample(50, seed=i)[1] for i in range(3)]
        a = HiddenMarkovModel(2, 2, seed=9)
        b = HiddenMarkovModel(2, 2, seed=9)
        # Manual: map-side estep per sequence, reduce-side pooled mstep.
        stats = [a.estep(s) for s in sequences]
        a.mstep(a._pool(stats))
        b.fit(sequences, max_iter=1, tol=-np.inf)
        assert np.allclose(a.transition_, b.transition_)
        assert np.allclose(a.emission_, b.emission_)

    def test_fit_requires_sequences(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(2, 2).fit([])


class TestSample:
    def test_shapes_and_alphabet(self):
        hmm = HiddenMarkovModel(3, 4, seed=0)
        states, obs = hmm.sample(64, seed=1)
        assert states.shape == obs.shape == (64,)
        assert states.max() < 3 and obs.max() < 4

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            HiddenMarkovModel(2, 2).sample(0)


class TestMapReduceTraining:
    def test_matches_local_baum_welch(self):
        from repro.mapreduce import MapReduceEngine
        from repro.mr_ml.hmm import fit_hmm_mapreduce

        true = two_state_model()
        sequences = [true.sample(80, seed=i)[1] for i in range(4)]
        local = HiddenMarkovModel(2, 2, seed=11).fit(sequences, max_iter=5, tol=-np.inf)
        distributed = fit_hmm_mapreduce(
            HiddenMarkovModel(2, 2, seed=11), sequences, MapReduceEngine(),
            max_iter=5, tol=-np.inf,
        )
        assert np.allclose(local.transition_, distributed.transition_)
        assert np.allclose(local.emission_, distributed.emission_)
        assert np.allclose(local.start_, distributed.start_)

    def test_requires_sequences(self):
        from repro.mapreduce import MapReduceEngine
        from repro.mr_ml.hmm import fit_hmm_mapreduce

        with pytest.raises(ValueError):
            fit_hmm_mapreduce(HiddenMarkovModel(2, 2), [], MapReduceEngine())
