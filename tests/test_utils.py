"""Unit tests for repro.utils (rng, timing, memory, validation)."""

import numpy as np
import pytest

from repro.utils import (
    MemoryLedger,
    Stopwatch,
    as_rng,
    block_diagonal_bytes,
    check_2d,
    check_labels,
    check_positive,
    check_probability,
    check_square,
    dense_matrix_bytes,
    sparse_matrix_bytes,
    spawn_rngs,
    timed,
)


class TestRng:
    def test_int_seed_is_deterministic(self):
        assert as_rng(7).integers(1000) == as_rng(7).integers(1000)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        same = as_rng(gen)
        assert same is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_count_and_independence(self):
        children = spawn_rngs(3, 4)
        assert len(children) == 4
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 4  # overwhelmingly likely for independent streams

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_zero_is_empty(self):
        assert spawn_rngs(0, 0) == []


class TestTiming:
    def test_stopwatch_accumulates_laps(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("a"):
            pass
        with sw.lap("b"):
            pass
        assert set(sw.laps) == {"a", "b"}
        assert sw.total == pytest.approx(sw.laps["a"] + sw.laps["b"])

    def test_stopwatch_merge_sums(self):
        a, b = Stopwatch(), Stopwatch()
        a.laps["x"] = 1.0
        b.laps["x"] = 2.0
        b.laps["y"] = 3.0
        a.merge(b)
        assert a.laps == {"x": 3.0, "y": 3.0}

    def test_stopwatch_merge_empty_other_is_noop(self):
        a = Stopwatch()
        a.laps["x"] = 1.5
        a.merge(Stopwatch())
        assert a.laps == {"x": 1.5}

    def test_stopwatch_lap_records_on_exception(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw.lap("fails"):
                raise RuntimeError("boom")
        assert "fails" in sw.laps
        assert sw.laps["fails"] >= 0.0

    def test_timed_records_nonnegative(self):
        with timed() as box:
            sum(range(100))
        assert box[0] >= 0.0

    def test_timed_box_is_zero_until_exit_then_filled(self):
        with timed() as box:
            assert box == [0.0]  # filled only at scope exit
            inner = box
        assert inner is box
        assert box[0] >= 0.0

    def test_timed_fills_box_on_exception(self):
        with pytest.raises(ValueError):
            with timed() as box:
                raise ValueError("boom")
        assert box[0] >= 0.0


class TestMemory:
    def test_dense_square(self):
        assert dense_matrix_bytes(10) == 10 * 10 * 4

    def test_dense_rectangular_and_itemsize(self):
        assert dense_matrix_bytes(3, 5, itemsize=8) == 120

    def test_dense_negative_raises(self):
        with pytest.raises(ValueError):
            dense_matrix_bytes(-1)

    def test_block_diagonal_equals_sum_of_squares(self):
        assert block_diagonal_bytes([2, 3]) == (4 + 9) * 4

    def test_block_diagonal_never_exceeds_dense(self):
        sizes = [5, 7, 3]
        assert block_diagonal_bytes(sizes) <= dense_matrix_bytes(sum(sizes))

    def test_sparse_csr_formula(self):
        # 10 rows, 20 nnz: 20*(4+4) values+indices, 11*4 indptr.
        assert sparse_matrix_bytes(10, 20) == 20 * 8 + 11 * 4

    def test_ledger_totals_and_peak(self):
        led = MemoryLedger()
        led.charge("a", 100)
        led.charge("a", 50)
        led.charge("b", 120)
        assert led.total == 270
        assert led.peak == 150

    def test_ledger_rejects_negative(self):
        with pytest.raises(ValueError):
            MemoryLedger().charge("a", -1)

    def test_empty_ledger(self):
        led = MemoryLedger()
        assert led.total == 0 and led.peak == 0


class TestValidation:
    def test_check_2d_accepts_lists(self):
        out = check_2d([[1, 2], [3, 4]])
        assert out.shape == (2, 2) and out.dtype == np.float64

    @pytest.mark.parametrize("bad", [np.zeros(3), np.zeros((0, 2)), np.zeros((2, 0))])
    def test_check_2d_rejects_bad_shapes(self, bad):
        with pytest.raises(ValueError):
            check_2d(bad)

    def test_check_2d_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_2d([[1.0, np.nan]])

    def test_check_2d_names_offending_columns(self):
        X = np.ones((4, 5))
        X[1, 2] = np.nan
        X[3, 4] = np.inf
        with pytest.raises(ValueError, match=r"column\(s\) \[2, 4\]"):
            check_2d(X)

    def test_check_2d_truncates_long_column_lists(self):
        X = np.full((2, 12), np.nan)
        with pytest.raises(ValueError, match=r"\[0, 1, 2, 3, 4, 5, 6, 7, \.\.\.\]"):
            check_2d(X)

    def test_check_2d_uses_caller_name(self):
        with pytest.raises(ValueError, match="features contains"):
            check_2d([[np.inf]], name="features")

    def test_check_2d_ensure_finite_off(self):
        out = check_2d([[np.nan, 1.0]], ensure_finite=False)
        assert np.isnan(out[0, 0])

    def test_check_square(self):
        assert check_square(np.eye(3)).shape == (3, 3)
        with pytest.raises(ValueError):
            check_square(np.zeros((2, 3)))

    def test_check_labels_coerces_integral_floats(self):
        out = check_labels(np.array([0.0, 1.0, 2.0]))
        assert out.dtype == np.int64

    def test_check_labels_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_labels(np.array([0.5, 1.0]))

    def test_check_labels_length(self):
        with pytest.raises(ValueError):
            check_labels([0, 1], n_samples=3)

    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0)
        assert check_positive(0.0, strict=False) == 0.0

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)
