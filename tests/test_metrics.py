"""Tests for the evaluation metrics (accuracy, DBI, ASE, Fnorm, NMI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    average_squared_error,
    clustering_accuracy,
    contingency_matrix,
    davies_bouldin_index,
    fnorm_ratio,
    frobenius_norm,
    hungarian_match,
    normalized_mutual_info,
)

label_lists = st.lists(st.integers(0, 4), min_size=2, max_size=60)


class TestAccuracy:
    def test_perfect_relabelling_is_one(self):
        y = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([2, 2, 0, 0, 1, 1])  # a permutation of the labels
        assert clustering_accuracy(y, pred) == 1.0

    def test_known_partial(self):
        y = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([0, 0, 1, 1, 1, 1])
        assert clustering_accuracy(y, pred) == pytest.approx(5 / 6)

    def test_extra_clusters_lose_mass(self):
        y = np.zeros(4, dtype=int)
        pred = np.array([0, 1, 2, 3])
        assert clustering_accuracy(y, pred) == pytest.approx(0.25)

    @given(label_lists, st.permutations(list(range(5))))
    @settings(max_examples=50, deadline=None)
    def test_invariant_under_relabelling(self, labels, perm):
        labels = np.array(labels)
        pred = np.array([perm[l] for l in labels])
        assert clustering_accuracy(labels, pred) == 1.0

    @given(label_lists)
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_symmetric_under_swap(self, labels):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 3, len(labels))
        acc = clustering_accuracy(labels, pred)
        assert 0.0 <= acc <= 1.0
        assert acc == pytest.approx(clustering_accuracy(pred, labels))

    def test_contingency_matrix_counts(self):
        table = contingency_matrix([0, 0, 1], [1, 1, 0])
        assert table.tolist() == [[0, 2], [1, 0]]

    def test_hungarian_match_rectangular(self):
        rows, cols = hungarian_match([0, 0, 1, 1], [0, 1, 2, 3])
        assert len(rows) == 2  # min(2 classes, 4 clusters)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            clustering_accuracy([0, 1], [0, 1, 2])


class TestDBI:
    def test_tight_separated_clusters_have_low_dbi(self, blobs_small):
        X, y = blobs_small
        good = davies_bouldin_index(X, y)
        rng = np.random.default_rng(0)
        bad = davies_bouldin_index(X, rng.permutation(y))
        assert good < 0.5 < bad

    def test_eq20_two_cluster_hand_computation(self):
        X = np.array([[0.0], [2.0], [10.0], [12.0]])
        labels = np.array([0, 0, 1, 1])
        # centroids 1 and 11, scatters 1 and 1, separation 10 -> DBI = 0.2.
        assert davies_bouldin_index(X, labels) == pytest.approx(0.2)

    def test_single_cluster_rejected(self):
        with pytest.raises(ValueError):
            davies_bouldin_index(np.ones((4, 2)), np.zeros(4, dtype=int))

    def test_coincident_centroids_give_inf(self):
        X = np.array([[0.0], [1.0], [0.0], [1.0]])
        labels = np.array([0, 0, 1, 1])  # identical centroids at 0.5
        assert davies_bouldin_index(X, labels) == np.inf


class TestASE:
    def test_eq21_hand_computation(self):
        X = np.array([[0.0], [2.0], [5.0]])
        labels = np.array([0, 0, 1])
        # cluster 0: centroid 1, squared dists 1+1=2; cluster 1: 0. ASE = 2/3.
        assert average_squared_error(X, labels) == pytest.approx(2 / 3)

    def test_zero_for_pure_singletons(self):
        X = np.arange(6, dtype=float).reshape(3, 2)
        assert average_squared_error(X, np.arange(3)) == 0.0

    def test_finer_clustering_never_increases_ase(self, blobs_small):
        X, y = blobs_small
        coarse = average_squared_error(X, np.zeros(len(X), dtype=int))
        fine = average_squared_error(X, y)
        assert fine <= coarse


class TestFnorm:
    def test_eq22_hand_value(self):
        A = np.array([[3.0, 0.0], [0.0, 4.0]])
        assert frobenius_norm(A) == pytest.approx(5.0)

    def test_matches_singular_values(self, rng):
        """Eq. 24: Fnorm equals sqrt(sum of squared singular values)."""
        A = rng.standard_normal((6, 4))
        sv = np.linalg.svd(A, compute_uv=False)
        assert frobenius_norm(A) == pytest.approx(np.sqrt((sv**2).sum()))

    def test_sparse_input(self, rng):
        import scipy.sparse as sp

        A = rng.standard_normal((5, 5))
        assert frobenius_norm(sp.csr_matrix(A)) == pytest.approx(frobenius_norm(A))

    def test_ratio_zero_denominator(self):
        with pytest.raises(ValueError):
            fnorm_ratio(np.ones((2, 2)), np.zeros((2, 2)))

    @given(st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_masking_entries_only_reduces_norm(self, seed):
        rng = np.random.default_rng(seed)
        A = rng.standard_normal((8, 8))
        mask = rng.integers(0, 2, (8, 8)).astype(bool)
        assert fnorm_ratio(A * mask, A) <= 1.0 + 1e-12


class TestNMI:
    def test_identical_partitions(self):
        assert normalized_mutual_info([0, 1, 0, 1], [1, 0, 1, 0]) == pytest.approx(1.0)

    def test_independent_partitions_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert normalized_mutual_info(a, b) < 0.05

    def test_refinement_scores_high(self):
        y = np.repeat([0, 1], 50)
        refined = np.concatenate([np.repeat([0, 1], 25), np.repeat([2, 3], 25)])
        assert normalized_mutual_info(y, refined) > 0.6

    def test_both_degenerate(self):
        assert normalized_mutual_info([0, 0], [1, 1]) == 1.0

    def test_one_degenerate(self):
        assert normalized_mutual_info([0, 0, 0], [0, 1, 2]) == 0.0

    @given(label_lists)
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, labels):
        rng = np.random.default_rng(1)
        pred = rng.integers(0, 3, len(labels))
        assert 0.0 <= normalized_mutual_info(labels, pred) <= 1.0
