"""Tests for kernel PCA and kernel K-Means over exact and approximated kernels."""

import numpy as np
import pytest

from repro.core import DASC
from repro.kernel_methods import KernelKMeans, KernelPCA, centre_gram
from repro.kernels import GaussianKernel, LinearKernel, gram_matrix
from repro.metrics import clustering_accuracy, normalized_mutual_info


class TestCentreGram:
    def test_centred_matrix_has_zero_means(self, rng):
        K = rng.standard_normal((10, 10))
        K = K @ K.T
        Kc = centre_gram(K)
        assert np.allclose(Kc.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Kc.mean(axis=1), 0.0, atol=1e-10)

    def test_idempotent(self, rng):
        K = rng.standard_normal((8, 8))
        K = K @ K.T
        assert np.allclose(centre_gram(centre_gram(K)), centre_gram(K))


class TestKernelPCA:
    def test_linear_kernel_matches_pca(self, rng):
        """KPCA with the linear kernel reproduces ordinary PCA scores."""
        X = rng.standard_normal((40, 6))
        K = gram_matrix(X, LinearKernel())
        scores = KernelPCA(3).fit_transform(K)
        Xc = X - X.mean(axis=0)
        _, s, vt = np.linalg.svd(Xc, full_matrices=False)
        pca_scores = Xc @ vt[:3].T
        # Same subspace up to per-component sign.
        for j in range(3):
            corr = abs(np.corrcoef(scores[:, j], pca_scores[:, j])[0, 1])
            assert corr > 0.999

    def test_eigenvalues_descending_nonnegative(self, rng):
        X = rng.standard_normal((30, 4))
        K = gram_matrix(X, GaussianKernel(1.0))
        kpca = KernelPCA(5).fit(K)
        vals = kpca.eigenvalues_
        assert (vals >= 0).all()
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_explained_ratio_sums_to_one(self, rng):
        X = rng.standard_normal((25, 3))
        kpca = KernelPCA(4).fit(gram_matrix(X, GaussianKernel(1.0)))
        assert kpca.explained_ratio().sum() == pytest.approx(1.0)

    def test_accepts_approximate_kernel(self, blobs_small):
        X, _ = blobs_small
        approx = DASC(seed=0, sigma=0.3, n_bits=4).transform(X)
        scores = KernelPCA(4).fit_transform(approx)
        assert scores.shape == (X.shape[0], 4)

    def test_approx_projection_close_to_exact_on_clustered_data(self, blobs_small):
        X, _ = blobs_small
        dasc = DASC(seed=0, sigma=0.3, n_bits=4)
        approx = dasc.transform(X)
        exact = gram_matrix(X, GaussianKernel(0.3), zero_diagonal=True)
        a = KernelPCA(4).fit_transform(approx)
        b = KernelPCA(4).fit_transform(exact)
        # Subspace alignment via principal angles.
        qa, _ = np.linalg.qr(a)
        qb, _ = np.linalg.qr(b)
        sv = np.linalg.svd(qa.T @ qb, compute_uv=False)
        assert sv.mean() > 0.9

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            KernelPCA(0)

    def test_explained_before_fit(self):
        with pytest.raises(RuntimeError):
            KernelPCA(2).explained_ratio()


class TestKernelKMeans:
    def test_recovers_blobs_from_full_kernel(self, blobs_small):
        X, y = blobs_small
        K = gram_matrix(X, GaussianKernel(0.3))
        labels = KernelKMeans(4, seed=0).fit_predict(K)
        assert clustering_accuracy(y, labels) > 0.95

    def test_blockwise_on_approximate_kernel(self, blobs_small):
        X, y = blobs_small
        approx = DASC(seed=0, sigma=0.3, n_bits=4).transform(X)
        km = KernelKMeans(4, seed=0).fit(approx)
        assert km.labels_.shape == (X.shape[0],)
        assert normalized_mutual_info(y, km.labels_) > 0.7

    def test_inertia_nonnegative_and_improves_with_restarts(self, rng):
        X = rng.uniform(0, 1, (80, 5))
        K = gram_matrix(X, GaussianKernel(0.5))
        one = KernelKMeans(5, n_init=1, seed=3).fit(K).inertia_
        many = KernelKMeans(5, n_init=6, seed=3).fit(K).inertia_
        assert many <= one + 1e-9
        assert many >= -1e-9

    def test_exact_cluster_count(self, blobs_small):
        X, _ = blobs_small
        K = gram_matrix(X, GaussianKernel(0.3))
        labels = KernelKMeans(4, seed=1).fit_predict(K)
        assert len(np.unique(labels)) == 4

    def test_nonconvex_shapes_with_gaussian_kernel(self):
        """Kernel K-Means separates the rings plain K-Means cannot."""
        from repro.data import make_rings
        from repro.spectral import KMeans

        X, y = make_rings(300, n_rings=2, noise=0.02, seed=4)
        K = gram_matrix(X, GaussianKernel(0.05))
        kk = clustering_accuracy(y, KernelKMeans(2, n_init=10, seed=0).fit_predict(K))
        plain = clustering_accuracy(y, KMeans(2, seed=0).fit_predict(X))
        assert kk > plain

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelKMeans(0)
        with pytest.raises(ValueError):
            KernelKMeans(5).fit(np.eye(3))


class TestKernelSVM:
    @staticmethod
    def _two_class_data(seed=0, n=120, margin=1.5):
        rng = np.random.default_rng(seed)
        a = rng.normal(-margin / 2, 0.4, (n // 2, 2))
        b = rng.normal(margin / 2, 0.4, (n // 2, 2))
        X = np.vstack([a, b])
        y = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
        order = rng.permutation(n)
        return X[order], y[order]

    def test_separable_data_high_accuracy(self):
        from repro.kernel_methods import KernelSVM

        X, y = self._two_class_data(margin=3.0)
        svm = KernelSVM(sigma=1.0, C=1.0, seed=0).fit(X, y)
        assert svm.score(X, y) > 0.97

    def test_nonlinear_boundary(self):
        """Gaussian-kernel SVM separates the rings a linear rule cannot."""
        from repro.data import make_rings
        from repro.kernel_methods import KernelSVM
        from repro.kernels import LinearKernel

        X, y = make_rings(200, n_rings=2, noise=0.02, seed=1)
        rbf = KernelSVM(sigma=0.1, C=10.0, seed=0).fit(X, y)
        linear = KernelSVM(kernel=LinearKernel(), C=10.0, seed=0).fit(X, y)
        assert rbf.score(X, y) > 0.95
        assert rbf.score(X, y) > linear.score(X, y)

    def test_predictions_use_original_labels(self):
        from repro.kernel_methods import KernelSVM

        X, y = self._two_class_data()
        y = y + 5  # labels {5, 6}
        svm = KernelSVM(sigma=1.0, seed=0).fit(X, y)
        assert set(np.unique(svm.predict(X))) <= {5, 6}

    def test_support_vectors_subset(self):
        from repro.kernel_methods import KernelSVM

        X, y = self._two_class_data(margin=3.0)
        svm = KernelSVM(sigma=1.0, C=1.0, seed=0).fit(X, y)
        # Well-separated data: only boundary points stay support vectors.
        assert 0 < len(svm.support_) < len(X)

    def test_validation(self):
        from repro.kernel_methods import KernelSVM

        with pytest.raises(ValueError):
            KernelSVM(C=0.0)
        with pytest.raises(ValueError):
            KernelSVM().fit(np.ones((4, 2)), [0, 0, 0, 0])  # one class

    def test_decision_before_fit(self):
        from repro.kernel_methods import KernelSVM

        with pytest.raises(RuntimeError):
            KernelSVM().decision_function(np.ones((2, 2)))
