"""Tests for data-locality-aware scheduling."""

import numpy as np
import pytest

from repro.mapreduce import (
    JobSpec,
    MapReduceEngine,
    NodeConfig,
    SimulatedCluster,
    SimulatedHDFS,
)


class TestScheduleWithLocality:
    def test_all_local_when_capacity_allows(self):
        cluster = SimulatedCluster(4, node=NodeConfig(map_slots=2, reduce_slots=1))
        tasks = [(1.0, (n,)) for n in range(4)] * 2  # 2 tasks per node, 2 slots each
        stats = cluster.schedule_with_locality(tasks)
        assert stats.locality_rate == 1.0
        assert stats.makespan == pytest.approx(1.0)

    def test_remote_penalty_charged(self):
        # One node, every task prefers a different (non-existent mod-mapped)
        # node id: the modulo maps them back, so make preference impossible
        # by loading the preferred node's slots first.
        cluster = SimulatedCluster(2, node=NodeConfig(map_slots=1, reduce_slots=1))
        # 3 tasks all prefer node 0, which has a single slot: at least one
        # must run remotely and pay the penalty.
        tasks = [(1.0, (0,))] * 3
        stats = cluster.schedule_with_locality(tasks, remote_penalty=0.5)
        assert stats.locality_rate < 1.0
        assert stats.total_cost > 3.0  # includes at least one 1.5 remote run

    def test_unconstrained_tasks_count_local(self):
        cluster = SimulatedCluster(2)
        stats = cluster.schedule_with_locality([(1.0, ()), (2.0, None)])
        assert stats.locality_rate == 1.0

    def test_remote_chosen_when_queueing_is_worse(self):
        cluster = SimulatedCluster(2, node=NodeConfig(map_slots=1, reduce_slots=1))
        # First task loads node 0's only slot; the second also prefers node
        # 0 but queueing there finishes at 2.0 while running remotely
        # finishes at 1.25 — the scheduler must pick remote and pay the
        # penalty.
        stats = cluster.schedule_with_locality(
            [(1.0, (0,)), (1.0, (0,))], remote_penalty=0.25
        )
        assert stats.n_local_tasks == 1
        assert stats.total_cost == pytest.approx(2.25)
        assert stats.makespan == pytest.approx(1.25)

    def test_local_chosen_when_queueing_is_cheaper(self):
        cluster = SimulatedCluster(2, node=NodeConfig(map_slots=1, reduce_slots=1))
        # With a punitive remote penalty (2.0: local queue finishes at 2.0,
        # remote at 3.0) both tasks stay on their preferred node.
        stats = cluster.schedule_with_locality(
            [(1.0, (0,)), (1.0, (0,))], remote_penalty=2.0
        )
        assert stats.n_local_tasks == 2
        assert stats.makespan == pytest.approx(2.0)

    def test_makespan_lower_bound_holds(self):
        cluster = SimulatedCluster(2)
        rng = np.random.default_rng(0)
        tasks = [(float(c), (int(rng.integers(2)),)) for c in rng.uniform(0.5, 3.0, 40)]
        stats = cluster.schedule_with_locality(tasks)
        assert stats.makespan >= max(c for c, _ in tasks)
        assert stats.makespan >= sum(c for c, _ in tasks) / cluster.map_slots

    def test_validation(self):
        cluster = SimulatedCluster(1)
        with pytest.raises(ValueError):
            cluster.schedule_with_locality([(1.0, ())], phase="wash")
        with pytest.raises(ValueError):
            cluster.schedule_with_locality([(-1.0, ())])
        with pytest.raises(ValueError):
            cluster.schedule_with_locality([(1.0, ())], remote_penalty=-0.1)


class TestEngineIntegration:
    def test_hdfs_splits_schedule_locally(self):
        fs = SimulatedHDFS(4, replication=2, default_split_size=2)
        fs.write("in", [(i, f"w{i}") for i in range(16)])
        engine = MapReduceEngine(SimulatedCluster(4))
        job = JobSpec(name="ident", mapper=lambda k, v, c: [(k, v)])
        result = engine.run(job, fs.splits("in"))
        # Placement info flowed through: locality tracked and high.
        assert result.map_stats.n_tasks == 8
        assert result.map_stats.locality_rate > 0.5

    def test_plain_lists_still_work(self):
        engine = MapReduceEngine(SimulatedCluster(2))
        job = JobSpec(name="ident", mapper=lambda k, v, c: [(k, v)])
        result = engine.run(job, [[(0, "a")], [(1, "b")]])
        assert result.map_stats.locality_rate == 1.0
