"""Tests for the Wikipedia-like corpus generator, vectorizer, and crawler."""

import numpy as np
import pytest

from repro.data import (
    Crawler,
    SyntheticWikipedia,
    WikipediaCorpusConfig,
    generate_corpus,
    make_wikipedia_dataset,
    vectorize_corpus,
)
from repro.data.wikipedia import TABLE1_CATEGORIES


class TestGenerateCorpus:
    def test_document_count(self):
        corpus = generate_corpus(n_documents=200, n_categories=5, seed=0)
        assert corpus.n_documents == 200
        assert corpus.n_categories == 5

    def test_eq15_default_categories(self):
        corpus = generate_corpus(n_documents=1024, seed=0)
        assert corpus.n_categories == 17  # Table 1's first row

    def test_labels_cover_all_categories(self):
        corpus = generate_corpus(n_documents=120, n_categories=6, seed=0)
        assert set(np.unique(corpus.labels())) == set(range(6))

    def test_balanced_category_sizes(self):
        corpus = generate_corpus(n_documents=103, n_categories=4, seed=0)
        counts = np.bincount(corpus.labels())
        assert counts.max() - counts.min() <= 1

    def test_documents_contain_stop_words(self):
        corpus = generate_corpus(n_documents=20, n_categories=2, seed=0)
        text = " ".join(d.text for d in corpus.documents)
        assert any(w in text.split() for w in ("the", "and", "of", "with"))

    def test_deterministic(self):
        a = generate_corpus(n_documents=50, n_categories=3, seed=7)
        b = generate_corpus(n_documents=50, n_categories=3, seed=7)
        assert [d.text for d in a.documents] == [d.text for d in b.documents]

    def test_categories_clipped_to_docs(self):
        corpus = generate_corpus(n_documents=3, n_categories=10, seed=0)
        assert corpus.n_categories == 3

    def test_invalid_options(self):
        with pytest.raises(TypeError):
            generate_corpus(bogus=1)
        with pytest.raises(ValueError):
            generate_corpus(n_documents=0)
        with pytest.raises(ValueError):
            generate_corpus(n_documents=10, topic_weight=1.5)

    def test_table1_reference_values(self):
        # The recorded paper data itself (used by the Table-1 bench).
        assert TABLE1_CATEGORIES[1024] == 17
        assert TABLE1_CATEGORIES[2097152] == 42493
        assert len(TABLE1_CATEGORIES) == 12


class TestVectorize:
    def test_feature_count_matches_paper_f(self, wiki_small):
        X, y, corpus = wiki_small
        assert X.shape == (512, 11)

    def test_values_normalised(self, wiki_small):
        X, _, _ = wiki_small
        assert X.min() >= 0.0 and X.max() == pytest.approx(1.0)

    def test_labels_align(self, wiki_small):
        X, y, corpus = wiki_small
        assert y.shape == (X.shape[0],)
        assert np.array_equal(y, corpus.labels())

    def test_categories_are_separable(self, wiki_small):
        """Same-category documents must be closer than cross-category ones."""
        X, y, _ = wiki_small
        within, across = [], []
        rng = np.random.default_rng(0)
        for _ in range(300):
            i, j = rng.integers(0, len(X), 2)
            d = np.linalg.norm(X[i] - X[j])
            (within if y[i] == y[j] else across).append(d)
        assert np.mean(within) < 0.5 * np.mean(across)

    def test_one_call_helper(self):
        X, y = make_wikipedia_dataset(64, n_categories=4, seed=1)
        assert X.shape[0] == 64 and len(np.unique(y)) == 4


class TestCrawler:
    @pytest.fixture(scope="class")
    def site(self):
        return SyntheticWikipedia(n_documents=120, n_categories=6, seed=0)

    def test_crawl_recovers_all_documents(self, site):
        result = Crawler(site).crawl()
        assert result.n_documents == 120

    def test_bullet_classes_in_category_pages(self, site):
        html = site.fetch("/wiki/Portal:Contents/Categories")
        assert "CategoryTreeBullet" in html or "CategoryTreeEmptyBullet" in html

    def test_tree_edges_form_a_tree(self, site):
        result = Crawler(site).crawl()
        children = [c for _, c in result.tree_edges]
        assert len(children) == len(set(children))  # each node has one parent

    def test_max_pages_cap(self, site):
        result = Crawler(site).crawl(max_pages=30)
        assert result.n_documents <= 30 + 25  # cap is checked between pages

    def test_article_pages_are_html(self, site):
        result = Crawler(site).crawl()
        url, html = next(iter(result.article_html.items()))
        assert html.startswith("<html>")
        assert site.category_of(url) in range(6)

    def test_crawled_text_pipeline_end_to_end(self, site):
        from repro.data import TfIdfVectorizer, preprocess_document

        result = Crawler(site).crawl()
        urls = sorted(result.article_html)[:50]
        tokens = [preprocess_document(result.article_html[u], is_html=True) for u in urls]
        X = TfIdfVectorizer(n_features=8).fit_transform(tokens)
        assert X.shape == (50, 8)
        assert (X >= 0).all()
