"""Batched columnar data plane: bit-identity with the record reference path.

The contract under test (DESIGN.md §13): for any job carrying batched
operator twins, the batched plane must produce the same labels/output,
counter totals, partition contents, and simulated makespans as the
record-at-a-time path — on the serial and the process-pool executors, and
falling back cleanly (to the record path) under fault injection or
non-columnar inputs. Only real wall-clock is allowed to differ.
"""

import numpy as np
import pytest

import repro.mapreduce.executor as executor_mod
from repro.dasc_mr.driver import DistributedDASC
from repro.mapreduce import (
    ElasticMapReduce,
    JobSpec,
    MapReduceEngine,
    ParallelExecutor,
    RecordBatch,
    SerialExecutor,
    resolve_data_plane,
)
from repro.mapreduce.engine import DATA_PLANE_ENV, approx_bytes
from repro.mapreduce.executor import load_batch, ship_batch
from repro.mapreduce.faults import FaultPolicy, FaultyEngine


# -- a job with both operator sets (record twins define the semantics) -------

def mod_mapper(key, value, ctx):
    yield (key % 5, value * 2)


def mod_batch_mapper(batch, ctx):
    return RecordBatch(
        keys=np.asarray(batch.keys) % 5, values=np.asarray(batch.values) * 2
    )


def sum_reducer(key, values, ctx):
    yield (key, sum(values))


def sum_batch_reducer(key, group, ctx):
    vals = np.asarray(group.values)
    return RecordBatch(
        keys=np.asarray([key]), values=np.asarray([vals.sum(dtype=vals.dtype)])
    )


def mod_partitioner(key, n):
    return int(key) % n


def mod_batch_partitioner(keys, n):
    return np.asarray(keys).astype(np.int64, copy=False) % np.int64(n)


def make_job(**kwargs):
    defaults = dict(
        name="modsum",
        mapper=mod_mapper,
        reducer=sum_reducer,
        batch_mapper=mod_batch_mapper,
        batch_reducer=sum_batch_reducer,
    )
    defaults.update(kwargs)
    return JobSpec(**defaults)


def make_splits(n=40, n_splits=4):
    keys = np.arange(n, dtype=np.int64)
    values = keys * 10
    per = -(-n // n_splits)
    return [
        list(zip(keys[i : i + per].tolist(), values[i : i + per].tolist()))
        for i in range(0, n, per)
    ]


def run_record(job, splits, monkeypatch, engine=None):
    """Run on the record path by flipping the kill switch."""
    monkeypatch.setenv(DATA_PLANE_ENV, "record")
    try:
        return (engine or MapReduceEngine()).run(job, splits)
    finally:
        monkeypatch.delenv(DATA_PLANE_ENV)


def as_pairs(records):
    """Outputs as plain (int, int) pairs so scalar types don't obscure equality."""
    return [(int(k), int(v)) for k, v in records]


def assert_results_identical(batched, record):
    assert as_pairs(batched.output) == as_pairs(record.output)
    assert batched.counters.as_dict() == record.counters.as_dict()
    assert batched.makespan == record.makespan
    assert batched.map_stats.makespan == record.map_stats.makespan
    assert batched.reduce_stats.makespan == record.reduce_stats.makespan
    assert set(batched.partitions) == set(record.partitions)
    for p in record.partitions:
        assert as_pairs(batched.partitions[p]) == as_pairs(record.partitions[p])


# -- RecordBatch container ---------------------------------------------------

class TestRecordBatch:
    def test_roundtrip(self):
        records = [(1, 10.0), (2, 20.0), (3, 30.0)]
        batch = RecordBatch.from_records(records)
        assert len(batch) == 3
        assert [(int(k), float(v)) for k, v in batch.to_records()] == records

    def test_matrix_values_roundtrip(self):
        records = [(i, np.full(3, float(i))) for i in range(4)]
        batch = RecordBatch.from_records(records)
        assert isinstance(batch.values, np.ndarray) and batch.values.shape == (4, 3)
        out = batch.to_records()
        assert all(np.array_equal(a[1], b[1]) for a, b in zip(out, records))

    def test_tuple_values_roundtrip(self):
        records = [(i, (i * 2, np.full(2, float(i)))) for i in range(3)]
        batch = RecordBatch.from_records(records)
        idx_col, vec_col = batch.values
        assert idx_col.tolist() == [0, 2, 4]
        assert vec_col.shape == (3, 2)
        out = batch.to_records()
        assert [int(r[1][0]) for r in out] == [0, 2, 4]

    def test_slice_and_take(self):
        batch = RecordBatch.from_records([(i, i * 1.0) for i in range(10)])
        view = batch[2:5]
        assert view.keys.tolist() == [2, 3, 4]
        taken = batch.take(np.array([9, 0]))
        assert taken.keys.tolist() == [9, 0]

    def test_concat(self):
        a = RecordBatch.from_records([(0, 1.0), (1, 2.0)])
        b = RecordBatch.from_records([(2, 3.0)])
        merged = RecordBatch.concat([a, b])
        assert merged.keys.tolist() == [0, 1, 2]

    def test_nbytes_matches_record_estimate(self):
        # The byte accounting that feeds shuffle-volume trace attributes
        # must agree with approx_bytes over the equivalent record list.
        flat = RecordBatch.from_records([(i, i * 1.0) for i in range(7)])
        assert flat.nbytes == approx_bytes(flat.to_records())
        nested = RecordBatch.from_records(
            [(i, (i, np.full(4, float(i)))) for i in range(5)]
        )
        assert nested.nbytes == approx_bytes(nested.to_records())

    def test_from_records_rejects_unconvertible(self):
        assert RecordBatch.from_records([]) is None
        assert RecordBatch.from_records([("a", 1)]) is None  # string keys
        assert RecordBatch.from_records([(1, "x")]) is None  # string values
        assert RecordBatch.from_records([(1, 1.0), (2, "x")]) is None  # mixed
        assert RecordBatch.from_records([((1, 2), 0.0)]) is None  # tuple keys

    def test_constructor_rejects_mismatched_columns(self):
        with pytest.raises(ValueError):
            RecordBatch(keys=np.arange(3), values=np.arange(4))


class TestRecordBatchEdges:
    """Boundary shapes: empty batches, degenerate concats, bad indices."""

    def test_empty_batch_roundtrip(self):
        batch = RecordBatch(
            keys=np.array([], dtype=np.int64), values=np.empty((0, 3))
        )
        assert len(batch) == 0
        assert batch.to_records() == []
        assert batch[0:0].to_records() == []
        assert len(batch.take(np.array([], dtype=np.int64))) == 0
        assert batch.nbytes == 0
        # from_records cannot infer a column layout from zero records —
        # the engine keeps empty partitions on the record path.
        assert RecordBatch.from_records(batch.to_records()) is None

    def test_concat_of_zero_batches_raises(self):
        with pytest.raises(ValueError, match="zero batches"):
            RecordBatch.concat([])

    def test_concat_of_one_batch_is_passthrough(self):
        batch = RecordBatch.from_records([(0, 1.0), (1, 2.0)])
        assert RecordBatch.concat([batch]) is batch

    def test_concat_of_slice_views(self):
        base = RecordBatch.from_records([(i, i * 1.0) for i in range(10)])
        merged = RecordBatch.concat([base[7:], base[:3], base[5:5]])
        assert merged.keys.tolist() == [7, 8, 9, 0, 1, 2]
        assert merged.values.tolist() == [7.0, 8.0, 9.0, 0.0, 1.0, 2.0]

    def test_concat_rejects_mismatched_structure(self):
        flat = RecordBatch.from_records([(0, 1.0)])
        nested = RecordBatch.from_records([(0, (1, 2.0))])
        with pytest.raises((TypeError, ValueError)):
            RecordBatch.concat([flat, nested])

    def test_take_out_of_range_raises_cleanly(self):
        batch = RecordBatch.from_records([(i, i * 1.0) for i in range(4)])
        with pytest.raises(IndexError, match="RecordBatch of 4"):
            batch.take(np.array([0, 4]))
        with pytest.raises(IndexError, match="RecordBatch of 4"):
            batch.take(np.array([-5]))
        # negative indices within range keep numpy semantics
        assert batch.take(np.array([-1])).keys.tolist() == [3]

    def test_take_on_empty_batch_rejects_any_index(self):
        batch = RecordBatch(keys=np.array([], dtype=np.int64), values=np.empty((0,)))
        with pytest.raises(IndexError, match="RecordBatch of 0"):
            batch.take(np.array([0]))

    def test_getitem_requires_slice(self):
        batch = RecordBatch.from_records([(0, 1.0)])
        with pytest.raises(TypeError, match="slice"):
            batch[0]

    def test_zero_column_batch_keeps_rows(self):
        # values=() is a batch of keyed empty tuples; the keys must survive
        # the columnar round-trip instead of vanishing into zip(*()).
        batch = RecordBatch(keys=np.arange(3), values=())
        assert len(batch) == 3
        assert batch.to_records() == [(0, ()), (1, ()), (2, ())]
        assert batch.take(np.array([2, 0])).to_records() == [(2, ()), (0, ())]
        # nbytes: 8/key-pointer + 16/tuple + key row bytes, no value bytes
        assert batch.nbytes == 8 * 3 + 3 * (16 + batch.keys.dtype.itemsize)


# -- engine-level equivalence ------------------------------------------------

class TestEngineEquivalence:
    def test_map_reduce_job_identical(self, monkeypatch):
        job = make_job(n_reducers=3, partitioner=mod_partitioner,
                       batch_partitioner=mod_batch_partitioner)
        splits = make_splits()
        batched = MapReduceEngine().run(job, splits)
        record = run_record(job, splits, monkeypatch)
        assert batched.output_batch is not None  # really took the batched path
        assert record.output_batch is None
        assert_results_identical(batched, record)

    def test_single_reducer_sorted_keys_identical(self, monkeypatch):
        job = make_job(sort_keys=True)
        splits = make_splits(n=23, n_splits=3)
        batched = MapReduceEngine().run(job, splits)
        record = run_record(job, splits, monkeypatch)
        assert_results_identical(batched, record)

    def test_map_only_job_identical(self, monkeypatch):
        job = make_job(reducer=None, batch_reducer=None)
        splits = make_splits()
        batched = MapReduceEngine().run(job, splits)
        record = run_record(job, splits, monkeypatch)
        assert batched.output_batch is not None
        assert as_pairs(batched.output) == as_pairs(record.output)
        assert batched.counters.as_dict() == record.counters.as_dict()
        assert batched.makespan == record.makespan

    def test_parallel_executor_identical_to_serial(self):
        job = make_job(n_reducers=2, partitioner=mod_partitioner,
                       batch_partitioner=mod_batch_partitioner)
        splits = make_splits()
        serial = MapReduceEngine().run(job, splits)
        parallel = MapReduceEngine(executor=ParallelExecutor(2)).run(job, splits)
        assert parallel.output_batch is not None
        assert_results_identical(parallel, serial)

    def test_columnar_splits_feed_batched_path(self):
        job = make_job()
        batch = RecordBatch(keys=np.arange(12, dtype=np.int64),
                            values=np.arange(12, dtype=np.int64) * 10)
        result = MapReduceEngine().run(job, [batch[:6], batch[6:]])
        assert result.output_batch is not None
        assert as_pairs(result.output) == as_pairs(
            MapReduceEngine().run(job, make_splits(n=12, n_splits=2)).output
        )

    def test_kill_switch_forces_record_path(self, monkeypatch):
        monkeypatch.setenv(DATA_PLANE_ENV, "record")
        result = MapReduceEngine().run(make_job(), make_splits())
        assert result.output_batch is None

    def test_unconvertible_records_fall_back(self):
        # String keys cannot be packed into columns: the engine must fall
        # back to the record path even though the job has batched operators.
        splits = [[("a", 1), ("b", 2)], [("a", 3)]]
        job = JobSpec(
            name="wc",
            mapper=lambda k, v, c: [(k, v)],
            reducer=sum_reducer,
            batch_mapper=mod_batch_mapper,
            batch_reducer=sum_batch_reducer,
        )
        result = MapReduceEngine().run(job, splits)
        assert result.output_batch is None
        assert dict(result.output) == {"a": 4, "b": 2}

    def test_missing_batch_reducer_falls_back(self):
        job = make_job(batch_reducer=None)
        result = MapReduceEngine().run(job, make_splits())
        assert result.output_batch is None

    def test_multi_reducer_without_batch_partitioner_falls_back(self):
        # stable_hash is key-type-sensitive; without a vectorized
        # partitioner the batched plane cannot reproduce it and must defer.
        job = make_job(n_reducers=3)
        result = MapReduceEngine().run(job, make_splits())
        assert result.output_batch is None

    def test_bad_batch_partitioner_rejected(self):
        job = make_job(
            n_reducers=2,
            partitioner=mod_partitioner,
            batch_partitioner=lambda keys, n: np.full(len(keys), 7, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="partitioner returned"):
            MapReduceEngine().run(job, make_splits())

    def test_resolve_data_plane(self, monkeypatch):
        assert resolve_data_plane("record") == "record"
        monkeypatch.delenv(DATA_PLANE_ENV, raising=False)
        assert resolve_data_plane(None) == "batched"
        monkeypatch.setenv(DATA_PLANE_ENV, "record")
        assert resolve_data_plane(None) == "record"
        with pytest.raises(ValueError):
            resolve_data_plane("rows")


# -- fault injection falls back cleanly --------------------------------------

class TestChaosFallback:
    def test_faulty_engine_runs_batched_jobs_on_record_path(self):
        job = make_job(n_reducers=2, partitioner=mod_partitioner,
                       batch_partitioner=mod_batch_partitioner)
        splits = make_splits()
        healthy = MapReduceEngine().run(job, splits)
        faulty = FaultyEngine(
            policy=FaultPolicy(failure_rate=0.2, max_attempts=12, seed=3)
        ).run(job, splits)
        # The fault engine overrides the record task hooks, so the batched
        # plane must defer to it — and re-executed attempts stay identical.
        assert faulty.output_batch is None
        assert as_pairs(faulty.output) == as_pairs(healthy.output)
        assert faulty.counters.value("faults", "map_failures") > 0

    def test_faulty_engine_accepts_columnar_splits(self):
        job = make_job()
        batch = RecordBatch(keys=np.arange(10, dtype=np.int64),
                            values=np.arange(10, dtype=np.int64))
        faulty = FaultyEngine(
            policy=FaultPolicy(failure_rate=0.2, max_attempts=12, seed=1)
        ).run(job, [batch])
        healthy = MapReduceEngine().run(job, [batch])
        assert as_pairs(faulty.output) == as_pairs(healthy.output)


# -- shared-memory batch shipping --------------------------------------------

class TestBatchShipping:
    def test_ship_load_roundtrip_small(self):
        batch = RecordBatch.from_records([(i, i * 1.0) for i in range(5)])
        shipped, owners = ship_batch(batch)
        assert owners == [] and shipped is batch
        assert load_batch(shipped) is batch

    def test_ship_load_roundtrip_shared(self):
        batch = RecordBatch(
            keys=np.arange(64, dtype=np.int64),
            values=np.arange(64, dtype=np.float64),
        )
        shipped, owners = ship_batch(batch, min_bytes=64)
        assert owners  # large columns went through shared memory
        try:
            loaded = load_batch(shipped)
            assert np.array_equal(loaded.keys, batch.keys)
            assert np.array_equal(loaded.values, batch.values)
        finally:
            for handle in owners:
                handle.unlink()

    def test_parallel_phase_with_shared_segments_identical(self, monkeypatch):
        # Force every column over shared memory and check bit-identity.
        monkeypatch.setattr(executor_mod, "SHARED_BATCH_MIN_BYTES", 1)
        job = make_job(n_reducers=2, partitioner=mod_partitioner,
                       batch_partitioner=mod_batch_partitioner)
        splits = make_splits()
        parallel = MapReduceEngine(executor=ParallelExecutor(2)).run(job, splits)
        monkeypatch.undo()
        serial = MapReduceEngine().run(job, splits)
        assert parallel.output_batch is not None
        assert_results_identical(parallel, serial)


# -- approx_bytes dict accounting (satellite fix) ----------------------------

class TestApproxBytesDict:
    def test_dict_charges_per_slot_overhead(self):
        # Two pointer words per entry, consistent with list/tuple's one word
        # per slot, plus the recursive content estimate.
        assert approx_bytes({}) == 0
        assert approx_bytes({1: 2}) == 16 + 8 + 8
        assert approx_bytes({"ab": [1, 2]}) == 16 + 2 + (8 * 2 + 16)

    def test_dict_consistent_with_item_tuples(self):
        d = {1: 2.0, 3: 4.0}
        items = list(d.items())
        assert approx_bytes(d) == approx_bytes(items) - 8 * len(items)


# -- full DASC pipeline ------------------------------------------------------

def blob_data(seed=0, n=240, d=5):
    rng = np.random.default_rng(seed)
    return np.vstack([
        rng.normal(0, 1, (n // 3, d)),
        rng.normal(6, 1, (n // 3, d)),
        rng.normal(-6, 1, (n - 2 * (n // 3), d)),
    ])


def run_dasc(data_plane, X, *, executor=None, spectral_mode="inline"):
    emr = ElasticMapReduce(executor=executor or SerialExecutor())
    model = DistributedDASC(
        6, n_nodes=4, split_size=64, emr=emr,
        spectral_mode=spectral_mode, data_plane=data_plane,
    )
    return model.run(X)


class TestDistributedEquivalence:
    def test_batched_vs_record_bit_identical(self):
        X = blob_data()
        batched = run_dasc("batched", X)
        record = run_dasc("record", X)
        assert np.array_equal(batched.labels, record.labels)
        assert batched.counters == record.counters
        assert batched.makespan == record.makespan
        assert batched.stage_makespans == record.stage_makespans
        assert batched.gram_bytes == record.gram_bytes
        assert batched.n_clusters == record.n_clusters
        assert batched.n_buckets == record.n_buckets

    def test_batched_parallel_vs_serial_bit_identical(self):
        X = blob_data(seed=1)
        serial = run_dasc("batched", X)
        parallel = run_dasc("batched", X, executor=ParallelExecutor(2))
        assert np.array_equal(serial.labels, parallel.labels)
        assert serial.counters == parallel.counters
        assert serial.makespan == parallel.makespan

    def test_mahout_mode_unaffected_by_data_plane(self):
        X = blob_data(seed=2, n=150)
        batched = run_dasc("batched", X, spectral_mode="mahout")
        record = run_dasc("record", X, spectral_mode="mahout")
        assert np.array_equal(batched.labels, record.labels)

    def test_env_kill_switch_reaches_driver(self, monkeypatch):
        monkeypatch.setenv(DATA_PLANE_ENV, "record")
        model = DistributedDASC(4, n_nodes=2)
        assert model.data_plane == "record"


class TestPerfImprovement:
    def test_stage1_and_shuffle_self_time_at_least_3x(self, tmp_path):
        # The tentpole's acceptance bar: stage-1 map + shuffle self-time on
        # the batched plane beats the record path by >= 3x (measured ~13x;
        # the margin absorbs runner jitter). Same workload shape as
        # benchmarks/perf_smoke.py, scaled up for a stable signal.
        from repro.data.synthetic import make_blobs
        from repro.observability import read_trace, snapshot_from_trace, trace_to

        X, _ = make_blobs(1600, n_clusters=4, n_features=16,
                          cluster_std=0.03, seed=0)

        def self_times(plane):
            path = str(tmp_path / f"{plane}.jsonl")
            with trace_to(path):
                run_dasc(plane, X)
            stages = snapshot_from_trace(read_trace(path), plane)["stages"]
            return sum(stages[s]["self"] for s in ("mr.map_task", "mr.shuffle"))

        record_time = self_times("record")
        batched_time = self_times("batched")
        assert record_time >= 3 * batched_time, (
            f"expected >=3x: record {record_time:.4f}s vs batched {batched_time:.4f}s"
        )
