"""Smoke tests: every example script runs to completion via its main().

The heavyweight examples (full EMR elasticity at 8K documents) are
exercised at reduced scale by the integration tests; here the fast ones run
verbatim so documentation and code cannot drift apart.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        pytest.param("quickstart", marks=pytest.mark.slow),
        "nongaussian_shapes",
        "kernel_pca_approx",
        "distributed_substrate",
        pytest.param("streaming_dasc", marks=pytest.mark.slow),
        pytest.param("wikipedia_clustering", marks=pytest.mark.slow),
        "near_duplicates",
    ],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 50  # produced its report

def test_all_examples_have_main_and_docstring():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert '"""' in source.split("\n", 1)[0] + source, path
        assert "def main()" in source, path
        assert '__name__ == "__main__"' in source, path
