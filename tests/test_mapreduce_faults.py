"""Tests for fault injection and task re-execution in the MapReduce engine."""

import numpy as np
import pytest

from repro.mapreduce import JobSpec, MapReduceEngine, SimulatedCluster
from repro.mapreduce.cluster import PhaseTask, SpeculationConfig
from repro.mapreduce.faults import (
    FaultPolicy,
    FaultyEngine,
    NodeFailurePolicy,
    StragglerPolicy,
    TaskFailedError,
)


def wc_mapper(key, value, ctx):
    for word in value.split():
        yield (word, 1)


def wc_reducer(key, values, ctx):
    yield (key, sum(values))


def wc_job():
    return JobSpec(name="wc", mapper=wc_mapper, reducer=wc_reducer)


SPLITS = [[(0, "a b a c")], [(1, "b b a")], [(2, "c a")]]


class TestFaultPolicy:
    def test_zero_rate_never_fails(self):
        oracle = FaultPolicy(failure_rate=0.0).make_oracle()
        assert not any(oracle() for _ in range(100))

    def test_rate_approximately_respected(self):
        oracle = FaultPolicy(failure_rate=0.3, seed=1).make_oracle()
        rate = sum(oracle() for _ in range(5000)) / 5000
        assert abs(rate - 0.3) < 0.03

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultPolicy(max_attempts=0)


class TestFaultyEngine:
    def test_output_identical_to_plain_engine(self):
        """Re-execution of deterministic tasks must not change results."""
        plain = MapReduceEngine().run(wc_job(), SPLITS)
        faulty = FaultyEngine(policy=FaultPolicy(failure_rate=0.4, max_attempts=12, seed=7)).run(
            wc_job(), SPLITS
        )
        assert dict(plain.output) == dict(faulty.output)

    def test_retries_counted(self):
        faulty = FaultyEngine(policy=FaultPolicy(failure_rate=0.5, max_attempts=12, seed=3)).run(
            wc_job(), SPLITS
        )
        total_failures = faulty.counters.value("faults", "map_failures") + faulty.counters.value(
            "faults", "reduce_failures"
        )
        assert total_failures > 0  # at 50% rate over 6 tasks, overwhelmingly likely

    def test_wasted_work_charged_to_clock(self):
        job = JobSpec(name="wc", mapper=wc_mapper, reducer=wc_reducer,
                      map_cost=lambda k, v: 10.0)
        plain = MapReduceEngine(SimulatedCluster(1)).run(job, SPLITS)
        faulty = FaultyEngine(
            SimulatedCluster(1), policy=FaultPolicy(failure_rate=0.5, max_attempts=12, seed=3)
        ).run(job, SPLITS)
        assert faulty.map_stats.total_cost >= plain.map_stats.total_cost
        if faulty.counters.value("faults", "map_failures") > 0:
            assert faulty.map_stats.total_cost > plain.map_stats.total_cost

    def test_exhausted_attempts_raise(self):
        # With failure_rate just below 1 and 1 attempt, failure is certain
        # at some task among many.
        policy = FaultPolicy(failure_rate=0.99, max_attempts=1, seed=0)
        with pytest.raises(TaskFailedError):
            FaultyEngine(policy=policy).run(wc_job(), SPLITS * 20)

    def test_zero_rate_behaves_exactly_like_plain(self):
        plain = MapReduceEngine().run(wc_job(), SPLITS)
        faulty = FaultyEngine(policy=FaultPolicy(failure_rate=0.0)).run(wc_job(), SPLITS)
        assert dict(plain.output) == dict(faulty.output)
        assert faulty.counters.value("faults", "map_failures") == 0

    def test_retries_do_not_inflate_record_counters(self):
        """Only the faults group may grow on re-executed attempts."""
        plain = MapReduceEngine().run(wc_job(), SPLITS)
        faulty = FaultyEngine(policy=FaultPolicy(failure_rate=0.5, max_attempts=12, seed=3)).run(
            wc_job(), SPLITS
        )
        failures = faulty.counters.value("faults", "map_failures") + faulty.counters.value(
            "faults", "reduce_failures"
        )
        assert failures > 0
        for group in ("map", "combine", "shuffle", "reduce", "job"):
            assert faulty.counters.group(group) == plain.counters.group(group)

    def test_dasc_pipeline_survives_faults(self, blobs_small):
        """End to end: distributed DASC is correct under 30% task failures."""
        from repro.core import DASCConfig
        from repro.dasc_mr import DistributedDASC
        from repro.mapreduce.emr import ElasticMapReduce
        from repro.metrics import clustering_accuracy

        X, y = blobs_small

        class FaultyEMR(ElasticMapReduce):
            def create_job_flow(self, n_nodes, *, split_size=1024):
                flow_id, flow = super().create_job_flow(n_nodes, split_size=split_size)
                flow.engine = FaultyEngine(
                    flow.engine.cluster, policy=FaultPolicy(failure_rate=0.3, max_attempts=12, seed=5)
                )
                return flow_id, flow

        result = DistributedDASC(
            4, n_nodes=4, config=DASCConfig(seed=0), emr=FaultyEMR()
        ).run(X)
        assert clustering_accuracy(y, result.labels) > 0.9


class TestSimulatePhase:
    def test_clean_phase_matches_plain_schedule(self):
        cluster = SimulatedCluster(3)
        costs = [5.0, 3.0, 8.0, 1.0, 2.0, 9.0, 4.0]
        plain = cluster.schedule(costs, phase="map")
        sim = cluster.simulate_phase([PhaseTask(c) for c in costs], phase="map")
        assert sim.makespan == pytest.approx(plain.makespan)
        assert sim.total_cost == pytest.approx(plain.total_cost)
        assert sim.n_node_failures == 0
        assert sim.wasted_cost == 0.0

    def test_map_node_kill_loses_outputs_and_recharges(self):
        cluster = SimulatedCluster(2)
        tasks = [PhaseTask(4.0) for _ in range(16)]
        clean = cluster.simulate_phase(tasks, phase="map")
        killed = cluster.simulate_phase(tasks, phase="map", node_failures=[(0, 0.9)])
        assert killed.n_node_failures == 1
        assert killed.n_tasks_lost + killed.n_map_outputs_lost > 0
        assert killed.n_map_outputs_lost > 0  # completed maps died with the node
        assert killed.makespan > clean.makespan
        assert killed.total_cost > clean.total_cost
        assert killed.wasted_cost > 0

    def test_completed_reduces_survive_node_kill(self):
        cluster = SimulatedCluster(2)
        tasks = [PhaseTask(4.0) for _ in range(8)]
        killed = cluster.simulate_phase(tasks, phase="reduce", node_failures=[(1, 1.0)])
        # At the very end of the phase everything has completed; reduce
        # outputs live on the DFS, so nothing needs re-execution.
        assert killed.n_map_outputs_lost == 0
        assert killed.n_tasks_lost == 0

    def test_last_node_never_killed(self):
        cluster = SimulatedCluster(1)
        stats = cluster.simulate_phase(
            [PhaseTask(2.0)], phase="map", node_failures=[(0, 0.5)]
        )
        assert stats.n_node_failures == 0

    def test_speculation_races_stragglers(self):
        cluster = SimulatedCluster(2)
        tasks = [PhaseTask(4.0) for _ in range(8)] + [PhaseTask(4.0, slowdown=10.0)]
        slow = cluster.simulate_phase(tasks, phase="map", speculation=None)
        raced = cluster.simulate_phase(
            tasks, phase="map", speculation=SpeculationConfig(lag_threshold=1.5)
        )
        assert raced.speculative_launched >= 1
        assert raced.speculative_won >= 1
        assert raced.makespan < slow.makespan
        assert raced.wasted_cost > 0  # the killed original still burned a slot

    def test_speculation_skipped_on_single_node(self):
        cluster = SimulatedCluster(1)
        tasks = [PhaseTask(1.0), PhaseTask(1.0, slowdown=20.0)]
        stats = cluster.simulate_phase(
            tasks, phase="map", speculation=SpeculationConfig(lag_threshold=1.5)
        )
        assert stats.speculative_launched == 0


class TestNodeFailurePolicy:
    def test_deterministic_draws(self):
        policy = NodeFailurePolicy(rate=0.5, seed=11)
        a, b = policy.make_oracle(), policy.make_oracle()
        for phase in range(5):
            assert a(phase, 8) == b(phase, 8)

    def test_explicit_kill_schedule(self):
        policy = NodeFailurePolicy(kills=((0, 1, 0.5), (2, 0, 0.25)))
        draw = policy.make_oracle()
        assert draw(0, 4) == [(1, 0.5)]
        assert draw(1, 4) == []
        assert draw(2, 4) == [(0, 0.25)]

    def test_min_survivors_trims_draws(self):
        policy = NodeFailurePolicy(rate=0.99, min_survivors=3, seed=0)
        draw = policy.make_oracle()
        assert len(draw(0, 4)) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFailurePolicy(rate=1.0)
        with pytest.raises(ValueError):
            NodeFailurePolicy(min_survivors=0)
        with pytest.raises(ValueError):
            NodeFailurePolicy(kills=((0, 1),))


class TestStragglerPolicy:
    def test_zero_rate_draws_unity(self):
        draw = StragglerPolicy().make_oracle()
        assert all(draw() == 1.0 for _ in range(20))

    def test_slowdowns_in_range(self):
        draw = StragglerPolicy(rate=0.9, slowdown=(2.0, 6.0), seed=1).make_oracle()
        factors = [draw() for _ in range(200)]
        slowed = [f for f in factors if f > 1.0]
        assert slowed and all(2.0 <= f <= 6.0 for f in slowed)

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerPolicy(rate=1.0)
        with pytest.raises(ValueError):
            StragglerPolicy(slowdown=(0.5, 2.0))


class TestFaultyEngineNodeFailures:
    def test_output_unchanged_under_node_loss(self):
        plain = MapReduceEngine(SimulatedCluster(4)).run(wc_job(), SPLITS * 8)
        faulty = FaultyEngine(
            SimulatedCluster(4),
            node_policy=NodeFailurePolicy(kills=((0, 2, 0.5), (1, 0, 0.5))),
        ).run(wc_job(), SPLITS * 8)
        assert dict(plain.output) == dict(faulty.output)
        assert faulty.counters.value("faults", "node_failures") == 2
        assert faulty.makespan > plain.makespan

    def test_output_unchanged_under_stragglers_with_speculation(self):
        plain = MapReduceEngine(SimulatedCluster(4)).run(wc_job(), SPLITS * 8)
        faulty = FaultyEngine(
            SimulatedCluster(4),
            straggler_policy=StragglerPolicy(rate=0.4, slowdown=(4.0, 8.0), seed=2),
        ).run(wc_job(), SPLITS * 8)
        assert dict(plain.output) == dict(faulty.output)
        assert faulty.counters.value("faults", "speculative_launched") >= faulty.counters.value(
            "faults", "speculative_won"
        )

    def test_speculation_bounds_straggler_makespan(self):
        job = JobSpec(name="wc", mapper=wc_mapper, reducer=wc_reducer,
                      map_cost=lambda k, v: 10.0)
        policy = dict(rate=0.3, slowdown=(6.0, 10.0), seed=4)
        raced = FaultyEngine(
            SimulatedCluster(4), straggler_policy=StragglerPolicy(**policy)
        ).run(job, SPLITS * 8)
        unraced = FaultyEngine(
            SimulatedCluster(4), straggler_policy=StragglerPolicy(speculation=False, **policy)
        ).run(job, SPLITS * 8)
        assert raced.counters.value("faults", "speculative_won") > 0
        assert raced.makespan < unraced.makespan

    def test_all_fault_modes_compose(self):
        plain = MapReduceEngine(SimulatedCluster(4)).run(wc_job(), SPLITS * 8)
        faulty = FaultyEngine(
            SimulatedCluster(4),
            policy=FaultPolicy(failure_rate=0.2, max_attempts=12, seed=1),
            node_policy=NodeFailurePolicy(rate=0.3, seed=2),
            straggler_policy=StragglerPolicy(rate=0.3, seed=3),
        ).run(wc_job(), SPLITS * 8)
        assert dict(plain.output) == dict(faulty.output)
        for group in ("map", "shuffle", "reduce", "job"):
            assert faulty.counters.group(group) == plain.counters.group(group)
