"""Tests for fault injection and task re-execution in the MapReduce engine."""

import numpy as np
import pytest

from repro.mapreduce import JobSpec, MapReduceEngine, SimulatedCluster
from repro.mapreduce.faults import FaultPolicy, FaultyEngine, TaskFailedError


def wc_mapper(key, value, ctx):
    for word in value.split():
        yield (word, 1)


def wc_reducer(key, values, ctx):
    yield (key, sum(values))


def wc_job():
    return JobSpec(name="wc", mapper=wc_mapper, reducer=wc_reducer)


SPLITS = [[(0, "a b a c")], [(1, "b b a")], [(2, "c a")]]


class TestFaultPolicy:
    def test_zero_rate_never_fails(self):
        oracle = FaultPolicy(failure_rate=0.0).make_oracle()
        assert not any(oracle() for _ in range(100))

    def test_rate_approximately_respected(self):
        oracle = FaultPolicy(failure_rate=0.3, seed=1).make_oracle()
        rate = sum(oracle() for _ in range(5000)) / 5000
        assert abs(rate - 0.3) < 0.03

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultPolicy(max_attempts=0)


class TestFaultyEngine:
    def test_output_identical_to_plain_engine(self):
        """Re-execution of deterministic tasks must not change results."""
        plain = MapReduceEngine().run(wc_job(), SPLITS)
        faulty = FaultyEngine(policy=FaultPolicy(failure_rate=0.4, max_attempts=12, seed=7)).run(
            wc_job(), SPLITS
        )
        assert dict(plain.output) == dict(faulty.output)

    def test_retries_counted(self):
        faulty = FaultyEngine(policy=FaultPolicy(failure_rate=0.5, max_attempts=12, seed=3)).run(
            wc_job(), SPLITS
        )
        total_failures = faulty.counters.value("faults", "map_failures") + faulty.counters.value(
            "faults", "reduce_failures"
        )
        assert total_failures > 0  # at 50% rate over 6 tasks, overwhelmingly likely

    def test_wasted_work_charged_to_clock(self):
        job = JobSpec(name="wc", mapper=wc_mapper, reducer=wc_reducer,
                      map_cost=lambda k, v: 10.0)
        plain = MapReduceEngine(SimulatedCluster(1)).run(job, SPLITS)
        faulty = FaultyEngine(
            SimulatedCluster(1), policy=FaultPolicy(failure_rate=0.5, max_attempts=12, seed=3)
        ).run(job, SPLITS)
        assert faulty.map_stats.total_cost >= plain.map_stats.total_cost
        if faulty.counters.value("faults", "map_failures") > 0:
            assert faulty.map_stats.total_cost > plain.map_stats.total_cost

    def test_exhausted_attempts_raise(self):
        # With failure_rate just below 1 and 1 attempt, failure is certain
        # at some task among many.
        policy = FaultPolicy(failure_rate=0.99, max_attempts=1, seed=0)
        with pytest.raises(TaskFailedError):
            FaultyEngine(policy=policy).run(wc_job(), SPLITS * 20)

    def test_zero_rate_behaves_exactly_like_plain(self):
        plain = MapReduceEngine().run(wc_job(), SPLITS)
        faulty = FaultyEngine(policy=FaultPolicy(failure_rate=0.0)).run(wc_job(), SPLITS)
        assert dict(plain.output) == dict(faulty.output)
        assert faulty.counters.value("faults", "map_failures") == 0

    def test_dasc_pipeline_survives_faults(self, blobs_small):
        """End to end: distributed DASC is correct under 30% task failures."""
        from repro.core import DASCConfig
        from repro.dasc_mr import DistributedDASC
        from repro.mapreduce.emr import ElasticMapReduce
        from repro.metrics import clustering_accuracy

        X, y = blobs_small

        class FaultyEMR(ElasticMapReduce):
            def create_job_flow(self, n_nodes, *, split_size=1024):
                flow_id, flow = super().create_job_flow(n_nodes, split_size=split_size)
                flow.engine = FaultyEngine(
                    flow.engine.cluster, policy=FaultPolicy(failure_rate=0.3, max_attempts=12, seed=5)
                )
                return flow_id, flow

        result = DistributedDASC(
            4, n_nodes=4, config=DASCConfig(seed=0), emr=FaultyEMR()
        ).run(X)
        assert clustering_accuracy(y, result.labels) > 0.9
