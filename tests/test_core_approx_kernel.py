"""Tests for the block-diagonal approximate kernel matrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx_kernel import build_approximate_kernel
from repro.core.buckets import group_by_signature
from repro.kernels import GaussianKernel, gram_matrix
from repro.metrics import fnorm_ratio, frobenius_norm


def make_approx(X, sigs, n_bits=3, sigma=0.5, zero_diagonal=True):
    buckets = group_by_signature(np.array(sigs, dtype=np.uint64), n_bits)
    return build_approximate_kernel(X, buckets, GaussianKernel(sigma), zero_diagonal=zero_diagonal), buckets


class TestBuild:
    def test_single_bucket_equals_full_matrix(self, rng):
        X = rng.uniform(0, 1, (20, 4))
        approx, _ = make_approx(X, [0] * 20)
        full = gram_matrix(X, GaussianKernel(0.5), zero_diagonal=True)
        assert np.allclose(approx.to_dense(), full)

    def test_block_structure(self, rng):
        X = rng.uniform(0, 1, (10, 3))
        sigs = [0] * 4 + [1] * 6
        approx, buckets = make_approx(X, sigs)
        dense = approx.to_dense()
        # Cross-bucket entries are zero.
        idx0, idx1 = buckets.members(0), buckets.members(1)
        assert np.allclose(dense[np.ix_(idx0, idx1)], 0.0)
        # Within-bucket entries match the true kernel.
        full = gram_matrix(X, GaussianKernel(0.5), zero_diagonal=True)
        assert np.allclose(dense[np.ix_(idx0, idx0)], full[np.ix_(idx0, idx0)])

    def test_to_sparse_matches_dense(self, rng):
        X = rng.uniform(0, 1, (12, 3))
        approx, _ = make_approx(X, [0, 0, 1, 1, 1, 2, 2, 2, 2, 0, 1, 2])
        assert np.allclose(approx.to_sparse().toarray(), approx.to_dense())

    def test_zero_diagonal_honoured(self, rng):
        X = rng.uniform(0, 1, (8, 3))
        approx, _ = make_approx(X, [0] * 4 + [1] * 4, zero_diagonal=True)
        assert np.allclose(np.diag(approx.to_dense()), 0.0)
        approx2, _ = make_approx(X, [0] * 4 + [1] * 4, zero_diagonal=False)
        assert np.allclose(np.diag(approx2.to_dense()), 1.0)

    def test_point_count_mismatch(self, rng):
        X = rng.uniform(0, 1, (5, 2))
        buckets = group_by_signature(np.zeros(4, dtype=np.uint64), 2)
        with pytest.raises(ValueError):
            build_approximate_kernel(X, buckets, GaussianKernel(1.0))


class TestAccounting:
    def test_nbytes_is_eq12(self, rng):
        X = rng.uniform(0, 1, (10, 3))
        approx, buckets = make_approx(X, [0] * 3 + [1] * 7)
        assert approx.nbytes == 4 * (3 * 3 + 7 * 7)

    def test_stored_entries(self, rng):
        X = rng.uniform(0, 1, (10, 3))
        approx, _ = make_approx(X, [0] * 3 + [1] * 7)
        assert approx.stored_entries == 9 + 49

    def test_block_sizes_sorted_by_bucket_id(self, rng):
        X = rng.uniform(0, 1, (9, 2))
        approx, buckets = make_approx(X, [2, 2, 5, 5, 5, 5, 9, 9, 9], 4)
        assert approx.block_sizes.tolist() == buckets.sizes.tolist()

    def test_frobenius_from_blocks_matches_dense(self, rng):
        X = rng.uniform(0, 1, (15, 4))
        approx, _ = make_approx(X, [0] * 5 + [1] * 5 + [2] * 5)
        assert approx.frobenius_norm() == pytest.approx(
            frobenius_norm(approx.to_dense())
        )


class TestApproximationQuality:
    @given(st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_fnorm_ratio_in_unit_interval(self, seed):
        """Figure 5's invariant: zeroing entries only lowers the Frobenius norm."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, (20, 4))
        sigs = rng.integers(0, 4, 20)
        approx, _ = make_approx(X, sigs.tolist())
        full = gram_matrix(X, GaussianKernel(0.5), zero_diagonal=True)
        ratio = fnorm_ratio(approx, full)
        assert 0.0 <= ratio <= 1.0 + 1e-12

    def test_finer_buckets_lower_ratio(self, rng):
        """More buckets discard more entries -> smaller Fnorm ratio (Fig. 5)."""
        X = rng.uniform(0, 1, (40, 4))
        full = gram_matrix(X, GaussianKernel(0.5), zero_diagonal=True)
        coarse, _ = make_approx(X, [i % 2 for i in range(40)])
        fine, _ = make_approx(X, [i % 8 for i in range(40)])
        assert fnorm_ratio(fine, full) < fnorm_ratio(coarse, full)
