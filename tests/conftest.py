"""Shared fixtures: small deterministic datasets reused across test modules."""

import numpy as np
import pytest

from repro.data import make_blobs, make_uniform
from repro.data.wikipedia import WikipediaCorpusConfig, generate_corpus, vectorize_corpus


@pytest.fixture(scope="session")
def blobs_small():
    """400 points, 4 well-separated clusters, 16 dims, values in [0, 1]."""
    return make_blobs(n_samples=400, n_clusters=4, n_features=16, cluster_std=0.03, seed=0)


@pytest.fixture(scope="session")
def blobs_medium():
    """1200 points, 6 clusters, 32 dims."""
    return make_blobs(n_samples=1200, n_clusters=6, n_features=32, cluster_std=0.04, seed=1)


@pytest.fixture(scope="session")
def uniform_small():
    """256 x 8 uniform points (the paper's synthetic-data shape, miniature)."""
    return make_uniform(256, 8, seed=2)


@pytest.fixture(scope="session")
def wiki_small():
    """A 512-document Wikipedia-like corpus, vectorized (X, y, corpus)."""
    corpus = generate_corpus(WikipediaCorpusConfig(n_documents=512, n_categories=8, seed=3))
    X, y = vectorize_corpus(corpus)
    return X, y, corpus


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(42)
