"""Tracing, metrics, logging, and trace-report tests.

Covers the span/tracer mechanics, the null (disabled) path's identity
semantics, histogram bucketing, the trace-file round trip through
``repro trace report``, fault-event itemization under the fault-injecting
engine, and driver traces surviving a crash/resume cycle.
"""

import io
import json
import logging

import numpy as np
import pytest

from repro.core import DASC, DASCConfig
from repro.dasc_mr import DistributedDASC
from repro.mapreduce import ElasticMapReduce, FaultyEngine, JobSpec, MapReduceEngine
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPolicy
from repro.observability import (
    Histogram,
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    NullTracer,
    Tracer,
    configure_logging,
    fault_summary,
    get_logger,
    get_tracer,
    pow2_buckets,
    read_trace,
    render_trace_report,
    set_tracer,
    stage_breakdown,
    trace_to,
    use_tracer,
)
from repro.observability.trace import NULL_TRACER, _NULL_SPAN


def wc_mapper(key, value, ctx):
    for word in value.split():
        yield (word, 1)


def wc_reducer(key, values, ctx):
    yield (key, sum(values))


WC_SPLITS = [[(0, "a b a c")], [(1, "b b a")], [(2, "c a")]]


class TestSpanMechanics:
    def test_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
                assert inner.parent_id == outer.span_id
            assert tracer.current_span is outer
        assert tracer.current_span is None
        records = tracer.sink.records
        # Emitted at close: inner first; seq preserves open order.
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[1]["seq"] < records[0]["seq"]
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", n=3) as span:
            span.set("extra", "x")
        (record,) = tracer.sink.records
        assert record["attributes"] == {"n": 3, "extra": "x"}
        assert record["duration"] >= 0.0
        assert record["duration"] == pytest.approx(record["end"] - record["start"])

    def test_exception_stamps_error_and_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.sink.records
        assert record["attributes"]["error"] == "RuntimeError: boom"
        assert record["end"] is not None
        assert tracer.current_span is None

    def test_events_hang_off_current_span_and_share_seq(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            event = tracer.event("tick", n=1)
        assert event["parent_id"] == span.span_id
        span_record = tracer.sink.records[-1]
        assert event["seq"] > span_record["seq"]  # event opened after the span

    def test_meta_record(self):
        tracer = Tracer()
        record = tracer.meta(run="r1")
        assert record["type"] == "meta"
        assert record["attributes"] == {"run": "r1"}
        assert record["unix_time"] > 0

    def test_flush_exports_metrics_once_nonempty(self):
        tracer = Tracer()
        tracer.flush()
        assert tracer.sink.records == []  # empty registry -> no metrics record
        tracer.metrics.counter("c").inc(2)
        tracer.flush()
        (record,) = tracer.sink.records
        assert record["type"] == "metrics"
        assert record["data"]["counters"] == {"c": 2}


class TestNullPath:
    def test_default_global_tracer_is_disabled(self):
        assert get_tracer() is NULL_TRACER
        assert get_tracer().enabled is False

    def test_null_span_is_shared_instance(self):
        tracer = NullTracer()
        cm = tracer.span("a", n=1)
        assert cm is tracer.span("b") is _NULL_SPAN
        with cm as span:
            span.set("ignored", 0)  # no-op, no allocation

    def test_null_metrics_retain_nothing(self):
        tracer = NullTracer()
        tracer.metrics.counter("c").inc(10)
        tracer.metrics.histogram("h").observe(5)
        assert len(tracer.metrics) == 0
        assert tracer.event("e") is None
        assert tracer.meta(k=1) is None

    def test_use_tracer_restores_previous(self):
        real = Tracer()
        with use_tracer(real):
            assert get_tracer() is real
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_disabled(self):
        previous = set_tracer(Tracer())
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(previous)
        assert get_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_value_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1)
        gauge.set(7)
        assert gauge.value == 7

    def test_histogram_bounds_are_inclusive_with_overflow(self):
        hist = Histogram("h", buckets=(1, 2, 4))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 5.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1, 1]  # <=1, <=2, <=4, overflow
        assert hist.count == 6
        assert hist.min == 0.5
        assert hist.max == 5.0
        assert hist.mean == pytest.approx(14.0 / 6)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2, 2))

    def test_pow2_buckets(self):
        assert pow2_buckets(3) == (1, 2, 4, 8)
        with pytest.raises(ValueError):
            pow2_buckets(-1)

    def test_registry_get_or_create_and_conflicts(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(0.5)
        registry.histogram("h", buckets=(1,)).observe(9)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["counts"] == [0, 1]
        empty = MetricsRegistry()
        empty.histogram("h")
        assert empty.snapshot()["histograms"]["h"]["min"] is None


class TestCountersZeroSkipAndDiff:
    def test_merge_skips_zero_amounts(self):
        a, b = Counters(), Counters()
        b.increment("g", "zero", 0)
        b.increment("g", "real", 2)
        a.merge(b)
        assert a.as_dict() == {"g": {"real": 2}}

    def test_from_dict_skips_zero_amounts(self):
        restored = Counters.from_dict({"g": {"zero": 0, "real": 3}})
        assert restored.as_dict() == {"g": {"real": 3}}

    def test_diff_returns_only_deltas(self):
        before = Counters()
        before.increment("g", "a", 1)
        after = before.copy()
        after.increment("g", "a", 4)
        after.increment("g", "b", 2)
        delta = after.diff(before)
        assert delta.as_dict() == {"g": {"a": 4, "b": 2}}

    def test_checkpoint_round_trip_does_not_resurrect_empty_groups(self):
        counters = Counters()
        counters.increment("faults", "map_failures", 0)
        counters.increment("job", "map_tasks", 3)
        assert Counters.from_dict(counters.as_dict()).as_dict() == {"job": {"map_tasks": 3}}


class TestSinkRoundTrip:
    def test_jsonlines_round_trip_and_seq_sort(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonLinesSink(path)
        sink.emit({"type": "event", "seq": 1, "attributes": {}})
        sink.emit({"type": "event", "seq": 0, "attributes": {"x": np.int64(3)}})
        sink.close()
        records = read_trace(path)
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["attributes"]["x"] == 3  # numpy coerced to plain int

    def test_append_mode_extends_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        JsonLinesSink(path).emit({"seq": 0})
        JsonLinesSink(path, mode="a").emit({"seq": 1})
        assert len(read_trace(path)) == 2

    def test_stream_sink_and_reader(self):
        buffer = io.StringIO()
        JsonLinesSink(buffer).emit({"seq": 0, "type": "meta", "attributes": {}})
        buffer.seek(0)
        assert read_trace(buffer)[0]["type"] == "meta"

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesSink(tmp_path / "t.jsonl", mode="x")


class TestPipelineTrace:
    def test_dasc_fit_emits_stage_spans_and_metrics(self, blobs_small):
        X, _ = blobs_small
        tracer = Tracer()
        with use_tracer(tracer):
            DASC(4, seed=0).fit(X)
        tracer.flush()
        names = {r["name"] for r in tracer.sink.records if r["type"] == "span"}
        assert {"dasc.fit", "dasc.hash", "dasc.bucket", "dasc.kernel", "dasc.spectral"} <= names
        fit = next(r for r in tracer.sink.records if r["name"] == "dasc.fit")
        children = [
            r for r in tracer.sink.records
            if r["type"] == "span" and r.get("parent_id") == fit["span_id"]
        ]
        assert sum(c["duration"] for c in children) <= fit["duration"]
        metrics = next(r for r in tracer.sink.records if r["type"] == "metrics")
        assert metrics["data"]["histograms"]["dasc.bucket_size"]["count"] >= 1

    def test_stage_breakdown_self_time_not_double_counted(self, blobs_small):
        X, _ = blobs_small
        tracer = Tracer()
        with use_tracer(tracer):
            DASC(4, seed=0).fit(X)
        breakdown = stage_breakdown(tracer.sink.records)
        total_self = sum(entry["self"] for entry in breakdown.values())
        wall = breakdown["dasc.fit"]["total"]
        assert total_self <= wall * 1.01

    def test_trace_report_cli_round_trip(self, blobs_small, tmp_path, capsys):
        from repro.cli import main

        X, _ = blobs_small
        path = tmp_path / "run.jsonl"
        with trace_to(path) as tracer:
            tracer.meta(run="test")
            DASC(4, seed=0).fit(X)
        assert main(["trace", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Stage breakdown" in out
        assert "dasc.fit" in out
        assert "run=test" in out

    def test_trace_report_empty_file_errors(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "report", str(path)]) == 1


class TestFaultItemization:
    def test_retries_itemized_with_wasted_cost(self):
        job = JobSpec(name="wc", mapper=wc_mapper, reducer=wc_reducer)
        engine = FaultyEngine(policy=FaultPolicy(failure_rate=0.4, max_attempts=10, seed=3))
        tracer = Tracer()
        with use_tracer(tracer):
            faulty = engine.run(job, WC_SPLITS)
        clean = MapReduceEngine().run(job, WC_SPLITS)
        assert sorted(faulty.output) == sorted(clean.output)
        retries = [
            r for r in tracer.sink.records
            if r["type"] == "event" and r["name"] in ("fault.map_retry", "fault.reduce_retry")
        ]
        n_counted = faulty.counters.value("faults", "map_failures") + faulty.counters.value(
            "faults", "reduce_failures"
        )
        assert n_counted > 0  # seed chosen so the schedule actually fires
        assert len(retries) == n_counted  # one event per failed attempt
        assert all(r["attributes"]["wasted_cost"] > 0 for r in retries)
        summary = fault_summary(tracer.sink.records)
        assert summary["wasted_cost"] == pytest.approx(
            sum(r["attributes"]["wasted_cost"] for r in retries)
        )
        assert len(summary["items"]) == len(retries)

    def test_report_renders_fault_ledger(self):
        job = JobSpec(name="wc", mapper=wc_mapper, reducer=wc_reducer)
        engine = FaultyEngine(policy=FaultPolicy(failure_rate=0.4, max_attempts=10, seed=3))
        tracer = Tracer()
        with use_tracer(tracer):
            engine.run(job, WC_SPLITS)
        report = render_trace_report(tracer.sink.records)
        assert "Faults" in report
        assert "total wasted cost" in report


class TestDriverTraceSurvivesResume:
    def test_submit_crash_resume_one_trace_file(self, blobs_small, tmp_path):
        X, _ = blobs_small
        path = tmp_path / "driver.jsonl"
        emr = ElasticMapReduce()
        dasc = DistributedDASC(4, n_nodes=4, config=DASCConfig(seed=0), emr=emr)
        with trace_to(path) as tracer:
            tracer.meta(phase="first-attempt")
            flow_id = dasc.submit(X)
            emr.run_job_flow(flow_id, max_steps=1)  # driver "crashes" mid-flow
        with trace_to(path, mode="a") as tracer:
            tracer.meta(phase="resume")
            result = dasc.resume(flow_id)
        assert 0 in result.resumed_steps
        records = read_trace(path)
        names = [r["name"] for r in records if r["type"] == "span"]
        assert "driver.submit" in names
        assert "driver.resume" in names
        assert "driver.collect" in names
        restores = [
            r for r in records if r["type"] == "event" and r["name"] == "jobflow.restore"
        ]
        assert restores  # the resumed flow restored step 0 from its checkpoint
        # Both lifecycle phases landed in one file, in order.
        metas = [r["attributes"]["phase"] for r in records if r["type"] == "meta"]
        assert metas == ["first-attempt", "resume"]


class TestLoggingConfiguration:
    def test_get_logger_qualifies_under_repro(self):
        assert get_logger("core.tuning").name == "repro.core.tuning"
        assert get_logger("repro.graph.build").name == "repro.graph.build"
        assert get_logger().name == "repro"

    def test_configure_installs_single_handler(self):
        root = configure_logging("INFO")
        first = list(root.handlers)
        root = configure_logging("DEBUG")
        assert len(root.handlers) == len(first)  # replaced, not stacked
        assert root.level == logging.DEBUG
        assert root.propagate is False

    def test_configure_module_levels_and_stream(self):
        stream = io.StringIO()
        configure_logging("WARNING", stream=stream, module_levels={"core.tuning": "DEBUG"})
        get_logger("core.tuning").debug("fine-grained %d", 1)
        get_logger("graph.build").debug("suppressed")
        output = stream.getvalue()
        assert "fine-grained 1" in output
        assert "suppressed" not in output

    def test_no_module_calls_basicconfig(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = [
            str(p)
            for p in src.rglob("*.py")
            if "basicConfig(" in p.read_text(encoding="utf-8")
        ]
        assert not offenders, f"library code must not call logging.basicConfig: {offenders}"
