"""Tests for the banded LSH index and its collision model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh import MinHasher
from repro.lsh.index import LSHIndex, banding_collision_probability


class TestBandingProbability:
    def test_extremes(self):
        assert banding_collision_probability(0.0, 8, 4) == 0.0
        assert banding_collision_probability(1.0, 8, 4) == 1.0

    def test_s_curve_monotone(self):
        probs = [banding_collision_probability(s, 8, 4) for s in np.linspace(0, 1, 21)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_more_bands_more_collisions(self):
        assert banding_collision_probability(0.5, 16, 4) > banding_collision_probability(0.5, 4, 4)

    def test_more_rows_fewer_collisions(self):
        assert banding_collision_probability(0.5, 8, 8) < banding_collision_probability(0.5, 8, 2)

    @given(st.floats(0, 1), st.integers(1, 20), st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_is_probability(self, s, b, r):
        assert 0.0 <= banding_collision_probability(s, b, r) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            banding_collision_probability(1.5, 4, 4)
        with pytest.raises(ValueError):
            banding_collision_probability(0.5, 0, 4)


class TestLSHIndex:
    def test_identical_items_always_candidates(self, rng):
        H = rng.integers(0, 100, (5, 32))
        H[3] = H[0]  # duplicate
        index = LSHIndex(n_bands=8, rows_per_band=4)
        index.add(H)
        assert 3 in index.candidates(0)
        assert (0, 3) in index.candidate_pairs()

    def test_unrelated_items_rarely_candidates(self, rng):
        H = rng.integers(0, 10**6, (20, 32))
        index = LSHIndex(n_bands=8, rows_per_band=4)
        index.add(H)
        assert len(index.candidate_pairs()) == 0

    def test_minhash_near_duplicates_found(self):
        """End to end with MinHash: overlapping sets become candidates."""
        d = 300
        base = np.zeros((1, d))
        base[0, :80] = 1.0
        near = base.copy()
        near[0, 75:85] = 1.0  # Jaccard ~ 0.88
        far = np.zeros((1, d))
        far[0, 200:280] = 1.0
        X = np.vstack([base, near, far])
        hasher = MinHasher(32, seed=0)
        index = LSHIndex(n_bands=8, rows_per_band=4)
        index.add(hasher.hash_values(X))
        pairs = index.candidate_pairs()
        assert (0, 1) in pairs
        assert (0, 2) not in pairs

    def test_incremental_add(self, rng):
        index = LSHIndex(n_bands=4, rows_per_band=2)
        index.add(rng.integers(0, 5, (3, 8)))
        index.add(rng.integers(0, 5, (2, 8)))
        assert len(index) == 5

    def test_candidates_out_of_range(self):
        index = LSHIndex(2, 2)
        with pytest.raises(IndexError):
            index.candidates(0)

    def test_wrong_width_rejected(self, rng):
        index = LSHIndex(n_bands=4, rows_per_band=4)
        with pytest.raises(ValueError):
            index.add(rng.integers(0, 5, (3, 8)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LSHIndex(0, 4)
