"""Integration tests: cross-module scenarios mirroring the paper's workflows."""

import numpy as np
import pytest

from repro import DASC, PSC, NystromSpectralClustering, SpectralClustering
from repro.core import DASCConfig
from repro.dasc_mr import DistributedDASC
from repro.data import (
    Crawler,
    SyntheticWikipedia,
    TfIdfVectorizer,
    make_blobs,
    make_wikipedia_dataset,
    preprocess_document,
)
from repro.kernels import GaussianKernel, gram_matrix
from repro.metrics import (
    average_squared_error,
    clustering_accuracy,
    davies_bouldin_index,
    fnorm_ratio,
)


class TestFigure3Shape:
    """All spectral variants accurate on documents; DASC tracks SC."""

    def test_accuracy_ordering_on_wikipedia(self):
        X, y = make_wikipedia_dataset(512, n_categories=8, seed=0)
        k = 8
        acc = {
            "DASC": clustering_accuracy(y, DASC(k, seed=0).fit_predict(X)),
            "SC": clustering_accuracy(y, SpectralClustering(k, sigma=0.5, seed=0).fit_predict(X)),
            "NYST": clustering_accuracy(
                y, NystromSpectralClustering(k, n_landmarks=100, sigma=0.5, seed=0).fit_predict(X)
            ),
        }
        assert acc["SC"] > 0.85
        assert acc["DASC"] > 0.85
        assert abs(acc["DASC"] - acc["SC"]) < 0.1  # DASC ~ SC (Figure 3)


class TestFigure5Shape:
    def test_fnorm_ratio_decreases_with_buckets(self):
        X, _ = make_blobs(600, n_clusters=6, n_features=32, cluster_std=0.05, seed=4)
        sigma = 0.5
        full = gram_matrix(X, GaussianKernel(sigma), zero_diagonal=True)
        ratios = []
        for n_bits in (2, 4, 6, 8):
            dasc = DASC(sigma=sigma, n_bits=n_bits, min_bucket_size=2, seed=0)
            approx = dasc.transform(X)
            ratios.append((dasc.buckets_.n_buckets, fnorm_ratio(approx, full)))
        buckets = [b for b, _ in ratios]
        values = [v for _, v in ratios]
        assert buckets[-1] > buckets[0]  # more bits -> more buckets
        assert values[-1] < values[0]  # more buckets -> lower ratio (Fig. 5)
        assert all(0.0 < v <= 1.0 for v in values)


class TestFigure6Shape:
    def test_dasc_memory_far_below_sc(self):
        X, _ = make_blobs(1500, n_clusters=8, n_features=32, cluster_std=0.03, seed=5)
        dasc = DASC(8, n_bits=8, min_bucket_size=4, seed=0).fit(X)
        sc_bytes = 4 * X.shape[0] ** 2
        assert dasc.approx_kernel_.nbytes < 0.6 * sc_bytes


class TestTable3Shape:
    def test_elasticity(self):
        X, y = make_wikipedia_dataset(1024, seed=1)
        k = 17
        rows = {}
        for nodes in (4, 16):
            cfg = DASCConfig(n_bits=9, min_bucket_size=4, seed=1)
            rows[nodes] = DistributedDASC(k, n_nodes=nodes, config=cfg).run(X)
        # Accuracy flat, memory identical, makespan non-increasing.
        acc4 = clustering_accuracy(y, rows[4].labels)
        acc16 = clustering_accuracy(y, rows[16].labels)
        assert acc4 == pytest.approx(acc16)
        assert rows[4].gram_bytes == rows[16].gram_bytes
        assert rows[16].makespan <= rows[4].makespan


class TestCrawlToClusterPipeline:
    def test_end_to_end(self):
        site = SyntheticWikipedia(n_documents=256, n_categories=6, seed=9)
        crawl = Crawler(site).crawl()
        urls = sorted(crawl.article_html)
        tokens = [preprocess_document(crawl.article_html[u], is_html=True) for u in urls]
        X = TfIdfVectorizer(n_features=11).fit_transform(tokens)
        y = np.array([site.category_of(u) for u in urls])
        labels = DASC(6, seed=0).fit_predict(X)
        assert clustering_accuracy(y, labels) > 0.8


class TestQualityMetricsAgree:
    def test_good_clustering_beats_random_on_all_metrics(self):
        X, y = make_blobs(300, n_clusters=5, n_features=16, cluster_std=0.03, seed=6)
        good = DASC(5, seed=0).fit_predict(X)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 5, len(X))
        assert davies_bouldin_index(X, good) < davies_bouldin_index(X, random_labels)
        assert average_squared_error(X, good) < average_squared_error(X, random_labels)

    def test_psc_runs_on_documents(self):
        X, y = make_wikipedia_dataset(256, n_categories=4, seed=2)
        labels = PSC(4, n_neighbors=20, sigma=0.5, seed=0).fit_predict(X)
        assert clustering_accuracy(y, labels) > 0.6


class TestGrandPipeline:
    """Everything at once: crawl -> text pipeline -> distributed DASC in the
    paper's literal (mahout) mode on a faulty cluster, verified streamingly."""

    def test_end_to_end_with_faults_and_streaming(self):
        from repro.core import DASCConfig
        from repro.core.streaming import StreamingDASC
        from repro.dasc_mr import DistributedDASC
        from repro.mapreduce.emr import ElasticMapReduce
        from repro.mapreduce.faults import FaultPolicy, FaultyEngine

        site = SyntheticWikipedia(n_documents=256, n_categories=6, seed=31)
        crawl = Crawler(site).crawl()
        urls = sorted(crawl.article_html)
        tokens = [preprocess_document(crawl.article_html[u], is_html=True) for u in urls]
        X = TfIdfVectorizer(n_features=11).fit_transform(tokens)
        y = np.array([site.category_of(u) for u in urls])

        class FaultyEMR(ElasticMapReduce):
            def create_job_flow(self, n_nodes, *, split_size=1024):
                flow_id, flow = super().create_job_flow(n_nodes, split_size=split_size)
                flow.engine = FaultyEngine(
                    flow.engine.cluster,
                    policy=FaultPolicy(failure_rate=0.2, max_attempts=12, seed=31),
                )
                return flow_id, flow

        # Distributed, paper-literal stage 2, under injected task failures.
        res = DistributedDASC(
            6, n_nodes=4, config=DASCConfig(seed=0), emr=FaultyEMR(),
            spectral_mode="mahout",
        ).run(X)
        assert clustering_accuracy(y, res.labels) > 0.8

        # The same data absorbed as a stream gives a consistent clustering.
        sd = StreamingDASC(6, config=DASCConfig(seed=0)).calibrate(X)
        for start in range(0, len(X), 64):
            sd.partial_fit(X[start : start + 64])
        stream_labels = sd.finalize()
        assert clustering_accuracy(y, stream_labels) > 0.8
